//! Criterion benchmarks of sandbox lifecycle operations (host time of the
//! modelled operations — the simulated costs are reported by the
//! micro_* binaries).

use criterion::{criterion_group, criterion_main, Criterion};
use hfi_wasm::compiler::Isolation;
use hfi_wasm::runtime::SandboxRuntime;

fn bench_lifecycle(c: &mut Criterion) {
    c.bench_function("create_teardown_guard_pages", |b| {
        b.iter(|| {
            let mut rt = SandboxRuntime::new(Isolation::GuardPages, 47);
            let id = rt.create_sandbox(16).unwrap();
            rt.teardown(id).unwrap();
        })
    });
    c.bench_function("create_teardown_hfi", |b| {
        b.iter(|| {
            let mut rt = SandboxRuntime::new(Isolation::Hfi, 47);
            let id = rt.create_sandbox(16).unwrap();
            rt.teardown(id).unwrap();
        })
    });
    c.bench_function("grow_64k_hfi", |b| {
        let mut rt = SandboxRuntime::new(Isolation::Hfi, 47);
        let id = rt.create_sandbox(1).unwrap();
        let mut grown = 1u64;
        b.iter(|| {
            if grown < 60_000 {
                rt.grow(id, 1).unwrap();
                grown += 1;
            }
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(1)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_lifecycle
}
criterion_main!(benches);
