//! Benchmarks of sandbox lifecycle operations (host time of the modelled
//! operations — the simulated costs are reported by the micro_*
//! binaries).

#[path = "support/mod.rs"]
mod support;

use hfi_wasm::compiler::Isolation;
use hfi_wasm::runtime::SandboxRuntime;
use support::Bench;

fn main() {
    let bench = Bench::new(1000);

    bench.run("create_teardown_guard_pages", || {
        let mut rt = SandboxRuntime::new(Isolation::GuardPages, 47);
        let id = rt.create_sandbox(16).unwrap();
        rt.teardown(id).unwrap();
    });
    bench.run("create_teardown_hfi", || {
        let mut rt = SandboxRuntime::new(Isolation::Hfi, 47);
        let id = rt.create_sandbox(16).unwrap();
        rt.teardown(id).unwrap();
    });

    let mut rt = SandboxRuntime::new(Isolation::Hfi, 47);
    let id = rt.create_sandbox(1).unwrap();
    let mut grown = 1u64;
    bench.run("grow_64k_hfi", || {
        if grown < 60_000 {
            rt.grow(id, 1).unwrap();
            grown += 1;
        }
    });
}
