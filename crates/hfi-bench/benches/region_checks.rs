//! Criterion microbenchmarks: HFI's check primitives.
//!
//! These are host-time benchmarks of the architectural model itself —
//! useful as a regression guard on the hot paths every simulated memory
//! access takes (implicit first-match, hmov effective-address check, the
//! 32-bit-comparator model).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hfi_core::region::{ExplicitDataRegion, ImplicitCodeRegion, ImplicitDataRegion};
use hfi_core::{Access, HfiContext, Region, SandboxConfig};

fn context() -> HfiContext {
    let mut hfi = HfiContext::new();
    hfi.set_region(0, Region::Code(ImplicitCodeRegion::new(0x40_0000, 0xFFFFF, true).unwrap()))
        .unwrap();
    for (i, base) in [0x10_0000u64, 0x20_0000, 0x30_0000, 0x7000_0000].iter().enumerate() {
        let region = ImplicitDataRegion::new(*base, 0xFFFF, true, true).unwrap();
        hfi.set_region(2 + i, Region::Data(region)).unwrap();
    }
    let heap = ExplicitDataRegion::large(0x1000_0000, 256 << 20, true, true).unwrap();
    hfi.set_region(6, Region::Explicit(heap)).unwrap();
    hfi.enter(SandboxConfig::hybrid()).unwrap();
    hfi
}

fn bench_checks(c: &mut Criterion) {
    let hfi = context();
    c.bench_function("implicit_check_first_region", |b| {
        b.iter(|| hfi.check_data(black_box(0x10_0800), 8, Access::Read))
    });
    c.bench_function("implicit_check_last_region", |b| {
        b.iter(|| hfi.check_data(black_box(0x7000_0800), 8, Access::Write))
    });
    c.bench_function("implicit_check_miss", |b| {
        b.iter(|| hfi.check_data(black_box(0xDEAD_0000), 8, Access::Read))
    });
    c.bench_function("hmov_check_hit", |b| {
        b.iter(|| hfi.hmov_check(0, black_box(0x1234), 8, 0x10, 8))
    });
    c.bench_function("fetch_check", |b| b.iter(|| hfi.check_fetch(black_box(0x40_1000), 4)));

    let region = ExplicitDataRegion::large(0x1000_0000, 256 << 20, true, true).unwrap();
    c.bench_function("hardware_comparator_large", |b| {
        b.iter(|| region.hardware_check(black_box(0x1100_0000), 8))
    });
}

fn bench_transitions(c: &mut Criterion) {
    c.bench_function("enter_exit_roundtrip", |b| {
        let mut hfi = context();
        hfi.exit().unwrap();
        b.iter(|| {
            hfi.enter(SandboxConfig::hybrid()).unwrap();
            hfi.exit().unwrap();
        })
    });
    c.bench_function("xsave_xrstor_roundtrip", |b| {
        let mut hfi = context();
        b.iter(|| {
            let area = hfi.save_area();
            hfi.restore_area(black_box(&area)).unwrap();
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_millis(800)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_checks, bench_transitions
}
criterion_main!(benches);
