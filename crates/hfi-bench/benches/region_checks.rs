//! Microbenchmarks: HFI's check primitives.
//!
//! These are host-time benchmarks of the architectural model itself —
//! useful as a regression guard on the hot paths every simulated memory
//! access takes (implicit first-match, hmov effective-address check, the
//! 32-bit-comparator model).

#[path = "support/mod.rs"]
mod support;

use hfi_core::region::{ExplicitDataRegion, ImplicitCodeRegion, ImplicitDataRegion};
use hfi_core::{Access, HfiContext, Region, SandboxConfig};
use support::{black_box, Bench};

fn context() -> HfiContext {
    let mut hfi = HfiContext::new();
    hfi.set_region(
        0,
        Region::Code(ImplicitCodeRegion::new(0x40_0000, 0xFFFFF, true).unwrap()),
    )
    .unwrap();
    for (i, base) in [0x10_0000u64, 0x20_0000, 0x30_0000, 0x7000_0000]
        .iter()
        .enumerate()
    {
        let region = ImplicitDataRegion::new(*base, 0xFFFF, true, true).unwrap();
        hfi.set_region(2 + i, Region::Data(region)).unwrap();
    }
    let heap = ExplicitDataRegion::large(0x1000_0000, 256 << 20, true, true).unwrap();
    hfi.set_region(6, Region::Explicit(heap)).unwrap();
    hfi.enter(SandboxConfig::hybrid()).unwrap();
    hfi
}

fn main() {
    let bench = Bench::new(800);

    let hfi = context();
    bench.run("implicit_check_first_region", || {
        hfi.check_data(black_box(0x10_0800), 8, Access::Read)
    });
    bench.run("implicit_check_last_region", || {
        hfi.check_data(black_box(0x7000_0800), 8, Access::Write)
    });
    bench.run("implicit_check_miss", || {
        hfi.check_data(black_box(0xDEAD_0000), 8, Access::Read)
    });
    bench.run("hmov_check_hit", || {
        hfi.hmov_check(0, black_box(0x1234), 8, 0x10, 8)
    });
    bench.run("fetch_check", || hfi.check_fetch(black_box(0x40_1000), 4));

    let region = ExplicitDataRegion::large(0x1000_0000, 256 << 20, true, true).unwrap();
    bench.run("hardware_comparator_large", || {
        region.hardware_check(black_box(0x1100_0000), 8)
    });

    let mut hfi = context();
    hfi.exit().unwrap();
    bench.run("enter_exit_roundtrip", || {
        hfi.enter(SandboxConfig::hybrid()).unwrap();
        hfi.exit().unwrap();
    });
    let mut hfi = context();
    bench.run("xsave_xrstor_roundtrip", || {
        let area = hfi.save_area();
        hfi.restore_area(black_box(&area)).unwrap();
    });
}
