//! Criterion benchmarks of the two execution vehicles: cycle-level and
//! functional simulation speed on a fixed kernel (host instructions per
//! simulated instruction is the relevant regression metric).

use criterion::{criterion_group, criterion_main, Criterion};
use hfi_sim::{Functional, Machine};
use hfi_wasm::compiler::{compile, CompileOptions, Isolation};
use hfi_wasm::kernels::sightglass;

fn bench_simulators(c: &mut Criterion) {
    let kernel = sightglass::sieve(1);
    let opts = CompileOptions::new(Isolation::Hfi);
    let compiled = compile(&kernel.func, &opts);

    c.bench_function("cycle_sim_sieve", |b| {
        b.iter(|| {
            let mut machine = Machine::new(compiled.program.clone());
            let result = machine.run(400_000_000);
            assert_eq!(result.regs[0], kernel.expected);
            result.cycles
        })
    });
    c.bench_function("functional_sieve", |b| {
        b.iter(|| {
            let mut machine = Functional::new(compiled.program.clone());
            let result = machine.run(2_000_000_000);
            assert_eq!(result.regs[0], kernel.expected);
            result.cycles
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_simulators
}
criterion_main!(benches);
