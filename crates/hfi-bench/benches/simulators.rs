//! Benchmarks of the two execution vehicles: cycle-level and functional
//! simulation speed on a fixed kernel (host instructions per simulated
//! instruction is the relevant regression metric).

#[path = "support/mod.rs"]
mod support;

use hfi_sim::{Functional, Machine};
use hfi_wasm::compiler::{compile, CompileOptions, Isolation};
use hfi_wasm::kernels::sightglass;
use support::Bench;

fn main() {
    let bench = Bench::new(3000);

    let kernel = sightglass::sieve(1);
    let opts = CompileOptions::new(Isolation::Hfi);
    let compiled = compile(&kernel.func, &opts);

    bench.run("cycle_sim_sieve", || {
        let mut machine = Machine::new(compiled.program.clone());
        let result = machine.run(400_000_000);
        assert_eq!(result.regs[0], kernel.expected);
        result.cycles
    });
    bench.run("functional_sieve", || {
        let mut machine = Functional::new(compiled.program.clone());
        let result = machine.run(2_000_000_000);
        assert_eq!(result.regs[0], kernel.expected);
        result.cycles
    });
}
