//! Minimal host-time measurement shared by the `harness = false` bench
//! binaries. A deliberate stand-in for Criterion that builds offline:
//! adaptive batch sizing, a few timed samples, min/mean ns-per-iteration.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Number of timed samples per benchmark.
const SAMPLES: usize = 7;

/// A bench runner with a fixed per-benchmark time budget.
pub struct Bench {
    warmup: Duration,
    sample_target: Duration,
}

impl Bench {
    /// A runner spending roughly `total_ms` milliseconds per benchmark
    /// (split across warmup and [`SAMPLES`] samples).
    pub fn new(total_ms: u64) -> Self {
        Self {
            warmup: Duration::from_millis(total_ms / 4),
            sample_target: Duration::from_millis((total_ms * 3 / 4) / SAMPLES as u64),
        }
    }

    /// Times `f`, printing `name: <min> ns/iter (mean <mean>, <n> iters/sample)`.
    pub fn run<T>(&self, name: &str, mut f: impl FnMut() -> T) {
        // Warm up and estimate the cost of one iteration.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warmup || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let batch = ((self.sample_target.as_secs_f64() / per_iter.max(1e-9)) as u64).max(1);

        let mut samples_ns = [0.0f64; SAMPLES];
        for sample in samples_ns.iter_mut() {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            *sample = start.elapsed().as_nanos() as f64 / batch as f64;
        }
        let min = samples_ns.iter().copied().fold(f64::INFINITY, f64::min);
        let mean = samples_ns.iter().sum::<f64>() / SAMPLES as f64;
        println!("{name}: {min:.1} ns/iter (mean {mean:.1}, {batch} iters/sample)");
    }
}
