//! Ablation (§4, §3.2 footnote 5): HFI's hardware budget choices.
//!
//! 1. First-match implicit lookup as region count grows (HFI fixes four
//!    data + two code regions; the checks run in parallel in hardware,
//!    so the budget is comparators, not latency — this table shows the
//!    model-level cost per added region and the gate budget).
//! 2. The 32-bit-comparator design for explicit regions vs. a
//!    hypothetical arbitrary-bounds design needing two 64-bit compares:
//!    what region shapes each admits and what hardware each costs.

use hfi_bench::{print_table, Harness};
use hfi_core::region::{ExplicitDataRegion, ImplicitDataRegion, RegionError};
use hfi_core::{Access, HfiContext, Region, SandboxConfig};
use std::time::Instant;

fn main() {
    let mut harness = Harness::from_env("ablation_region_checks");

    // --- 1. Implicit first-match: per-lookup model cost vs. count. ---
    let reps = harness.iters(2_000_000, 50_000);
    let counts: Vec<usize> = (1..=4).collect();
    let cells = harness.run_grid(&counts, |count| {
        let count = *count;
        let mut hfi = HfiContext::new();
        hfi.set_region(
            0,
            Region::Code(
                hfi_core::region::ImplicitCodeRegion::new(0x40_0000, 0xFFFF, true).expect("valid"),
            ),
        )
        .expect("code slot");
        for i in 0..count {
            let base = 0x10_0000 + (i as u64) * 0x10_0000;
            hfi.set_region(
                2 + i,
                Region::Data(ImplicitDataRegion::new(base, 0xFFFF, true, true).expect("valid")),
            )
            .expect("data slot");
        }
        hfi.enter(SandboxConfig::hybrid()).expect("enter");
        // Probe the LAST region (worst case for a serial first-match).
        let addr = 0x10_0000 + (count as u64 - 1) * 0x10_0000 + 0x800;
        let start = Instant::now();
        let mut ok = 0u64;
        for i in 0..reps {
            if hfi.check_data(addr + (i & 7), 8, Access::Read).is_ok() {
                ok += 1;
            }
        }
        let ns = start.elapsed().as_nanos() as f64 / reps as f64;
        assert_eq!(ok, reps);
        ns
    });
    let rows: Vec<Vec<String>> = counts
        .iter()
        .zip(&cells)
        .map(|(count, ns)| {
            vec![
                count.to_string(),
                format!("{ns:.1} ns"),
                format!("{count} x 64-bit AND + EQ"),
            ]
        })
        .collect();
    print_table(
        "Implicit first-match lookup: worst-case region position",
        &["data regions", "model ns/check", "hardware budget"],
        &rows,
    );
    println!("  (in hardware all comparisons run in parallel with the dtb lookup: zero latency;");
    println!("   the budget is 4 AND gates + 4 equality checks — paper S4 component list)");
    for (count, ns) in counts.iter().zip(&cells) {
        harness.note(&[
            ("data_regions", count.to_string()),
            ("reps", reps.to_string()),
            ("model_ns_per_check", format!("{ns:.3}")),
        ]);
    }

    // --- 2. Explicit-region constraints vs. arbitrary bounds. ---
    let cases: Vec<(&str, Result<ExplicitDataRegion, RegionError>)> = vec![
        (
            "large 64K-aligned, 1 MiB",
            ExplicitDataRegion::large(0x10_0000, 1 << 20, true, true),
        ),
        (
            "large unaligned base",
            ExplicitDataRegion::large(0x10_1234, 1 << 20, true, true),
        ),
        (
            "large unaligned bound",
            ExplicitDataRegion::large(0x10_0000, 0x1_2345, true, true),
        ),
        (
            "small byte-granular",
            ExplicitDataRegion::small(0x1234_5678, 999, true, true),
        ),
        (
            "small spanning 4 GiB",
            ExplicitDataRegion::small((1 << 32) - 100, 200, true, true),
        ),
        (
            "small 5 GiB bound",
            ExplicitDataRegion::small(0, 5 << 30, true, true),
        ),
    ];
    let rows: Vec<Vec<String>> = cases
        .into_iter()
        .map(|(name, result)| {
            let verdict = match result {
                Ok(_) => "accepted".to_string(),
                Err(e) => format!("rejected: {e}"),
            };
            harness.note(&[
                ("region_shape", name.to_string()),
                ("verdict", verdict.clone()),
            ]);
            vec![name.to_string(), verdict]
        })
        .collect();
    print_table(
        "Explicit-region constraints (the price of a single 32-bit comparator)",
        &["region shape", "verdict"],
        &rows,
    );
    println!("\n  hardware cost: HFI needs ONE 32-bit comparator + 2 sign-bit checks + 1");
    println!("  overflow check for all four explicit regions (S4.2). Arbitrary base/bound");
    println!("  regions would need TWO 64-bit comparators per region: ~16x the comparator");
    println!("  bits, in the timing-critical AGU/dtb neighbourhood the paper refuses to grow.");
    harness.finish().expect("write bench records");
}
