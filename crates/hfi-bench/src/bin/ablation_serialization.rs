//! Ablation (§3.4/§4.5): what does each Spectre-protection posture cost
//! per sandbox switch, measured in the pipeline?
//!
//! Sweeps a multiplexing loop over three postures: unserialized (fast,
//! speculatively unsafe), switch-on-exit (safe within the sandbox set,
//! unserialized switches), and fully serialized enter/exit (safe,
//! expensive). The paper's design bet is that the middle posture
//! recovers almost all of the unserialized performance.

use hfi_bench::print_table;
use hfi_core::region::{ExplicitDataRegion, ImplicitCodeRegion, ImplicitDataRegion};
use hfi_core::{Region, SandboxConfig, NUM_REGIONS};
use hfi_sim::{AluOp, Cond, HmovOperand, Machine, ProgramBuilder, Reg, Stop};

const CODE_BASE: u64 = 0x40_0000;
const ITERS: i64 = 200;

#[derive(Clone, Copy, PartialEq)]
enum Posture {
    Unserialized,
    SwitchOnExit,
    Serialized,
}

fn build(posture: Posture) -> Machine {
    let code = Region::Code(ImplicitCodeRegion::new(CODE_BASE, 0xFFFF, true).expect("valid"));
    let parent_data =
        Region::Data(ImplicitDataRegion::new(0x10_0000, 0xFFFF, true, true).expect("valid"));
    let heap = Region::Explicit(
        ExplicitDataRegion::large(0x100_0000, 1 << 20, true, true).expect("valid"),
    );
    let mut child_regions: [Option<Region>; NUM_REGIONS] = [None; NUM_REGIONS];
    child_regions[0] = Some(code);
    child_regions[6] = Some(heap);

    let mut asm = ProgramBuilder::new(CODE_BASE);
    asm.hfi_set_region(0, code);
    asm.hfi_set_region(2, parent_data);
    if posture == Posture::SwitchOnExit {
        // The trusted runtime itself runs serialized, once.
        asm.hfi_enter(SandboxConfig::hybrid().serialized());
    }
    let iter = Reg(5);
    asm.movi(iter, 0);
    let top = asm.label_here("top");
    match posture {
        Posture::Unserialized => {
            asm.hfi_set_region(6, heap);
            asm.hfi_enter(SandboxConfig::hybrid());
        }
        Posture::Serialized => {
            asm.hfi_set_region(6, heap);
            asm.hfi_enter(SandboxConfig::hybrid().serialized());
        }
        Posture::SwitchOnExit => {
            asm.hfi_enter_child(SandboxConfig::hybrid(), child_regions);
        }
    }
    // Child workload.
    asm.movi(Reg(1), 3);
    asm.hmov_store(0, Reg(1), HmovOperand::disp(0), 8);
    asm.hmov_load(0, Reg(2), HmovOperand::disp(0), 8);
    asm.hfi_exit();
    asm.alu_ri(AluOp::Add, iter, iter, 1);
    asm.branch_i(Cond::LtU, iter, ITERS, top);
    if posture == Posture::SwitchOnExit {
        asm.hfi_exit();
    }
    asm.halt();
    Machine::new(asm.finish())
}

fn main() {
    let mut rows = Vec::new();
    let mut base = 0u64;
    for (name, posture, safety) in [
        ("unserialized", Posture::Unserialized, "speculation may escape"),
        ("switch-on-exit", Posture::SwitchOnExit, "safe within sandbox set"),
        ("fully serialized", Posture::Serialized, "safe"),
    ] {
        let mut machine = build(posture);
        let result = machine.run(10_000_000);
        assert_eq!(result.stop, Stop::Halted);
        let per_switch = result.cycles / ITERS as u64;
        if posture == Posture::Unserialized {
            base = per_switch;
        }
        rows.push(vec![
            name.to_string(),
            per_switch.to_string(),
            format!("{:+}", per_switch as i64 - base as i64),
            result.stats.serializations.to_string(),
            safety.to_string(),
        ]);
    }
    print_table(
        &format!("Ablation: cycles per sandbox switch ({ITERS} switches)"),
        &["posture", "cycles/switch", "vs unserialized", "pipeline drains", "spectre posture"],
        &rows,
    );
    println!("\n  paper S4.5: switch-on-exit removes most serialization cost while staying safe");
}
