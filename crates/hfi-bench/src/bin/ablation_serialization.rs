//! Ablation (§3.4/§4.5): what does each Spectre-protection posture cost
//! per sandbox switch, measured in the pipeline?
//!
//! Sweeps a multiplexing loop over three postures: unserialized (fast,
//! speculatively unsafe), switch-on-exit (safe within the sandbox set,
//! unserialized switches), and fully serialized enter/exit (safe,
//! expensive). The paper's design bet is that the middle posture
//! recovers almost all of the unserialized performance.

use hfi_bench::{print_table, Harness};
use hfi_core::region::{ExplicitDataRegion, ImplicitCodeRegion, ImplicitDataRegion};
use hfi_core::{Region, SandboxConfig, NUM_REGIONS};
use hfi_sim::{AluOp, Cond, Executor, HmovOperand, Machine, ProgramBuilder, Reg, RunRecord, Stop};

const CODE_BASE: u64 = 0x40_0000;

#[derive(Clone, Copy, PartialEq)]
enum Posture {
    Unserialized,
    SwitchOnExit,
    Serialized,
}

fn build(posture: Posture, iters: i64) -> Machine {
    let code = Region::Code(ImplicitCodeRegion::new(CODE_BASE, 0xFFFF, true).expect("valid"));
    let parent_data =
        Region::Data(ImplicitDataRegion::new(0x10_0000, 0xFFFF, true, true).expect("valid"));
    let heap = Region::Explicit(
        ExplicitDataRegion::large(0x100_0000, 1 << 20, true, true).expect("valid"),
    );
    let mut child_regions: [Option<Region>; NUM_REGIONS] = [None; NUM_REGIONS];
    child_regions[0] = Some(code);
    child_regions[6] = Some(heap);

    let mut asm = ProgramBuilder::new(CODE_BASE);
    asm.hfi_set_region(0, code);
    asm.hfi_set_region(2, parent_data);
    if posture == Posture::SwitchOnExit {
        // The trusted runtime itself runs serialized, once.
        asm.hfi_enter(SandboxConfig::hybrid().serialized());
    }
    let iter = Reg(5);
    asm.movi(iter, 0);
    let top = asm.label_here("top");
    match posture {
        Posture::Unserialized => {
            asm.hfi_set_region(6, heap);
            asm.hfi_enter(SandboxConfig::hybrid());
        }
        Posture::Serialized => {
            asm.hfi_set_region(6, heap);
            asm.hfi_enter(SandboxConfig::hybrid().serialized());
        }
        Posture::SwitchOnExit => {
            asm.hfi_enter_child(SandboxConfig::hybrid(), child_regions);
        }
    }
    // Child workload.
    asm.movi(Reg(1), 3);
    asm.hmov_store(0, Reg(1), HmovOperand::disp(0), 8);
    asm.hmov_load(0, Reg(2), HmovOperand::disp(0), 8);
    asm.hfi_exit();
    asm.alu_ri(AluOp::Add, iter, iter, 1);
    asm.branch_i(Cond::LtU, iter, iters, top);
    if posture == Posture::SwitchOnExit {
        asm.hfi_exit();
    }
    asm.halt();
    Machine::new(asm.finish())
}

fn main() {
    let mut harness = Harness::from_env("ablation_serialization");
    let iters = harness.iters(200, 20) as i64;
    let grid = [
        (
            "unserialized",
            Posture::Unserialized,
            "speculation may escape",
        ),
        (
            "switch-on-exit",
            Posture::SwitchOnExit,
            "safe within sandbox set",
        ),
        ("fully serialized", Posture::Serialized, "safe"),
    ];
    let cells: Vec<(u64, RunRecord)> = harness.run_grid(&grid, |(name, posture, _)| {
        let mut machine = build(*posture, iters);
        let result = machine.run(10_000_000);
        assert_eq!(result.stop, Stop::Halted, "{name} did not halt");
        (result.cycles, Executor::stats(&machine))
    });

    let base = cells[0].0 / iters as u64;
    let mut rows = Vec::new();
    for ((name, _, safety), (cycles, record)) in grid.iter().zip(&cells) {
        let per_switch = cycles / iters as u64;
        rows.push(vec![
            name.to_string(),
            per_switch.to_string(),
            format!("{:+}", per_switch as i64 - base as i64),
            record.serializations.to_string(),
            safety.to_string(),
        ]);
        harness.record(
            &[
                ("posture", name.to_string()),
                ("switches", iters.to_string()),
                ("cycles_per_switch", per_switch.to_string()),
            ],
            record,
        );
    }
    print_table(
        &format!("Ablation: cycles per sandbox switch ({iters} switches)"),
        &[
            "posture",
            "cycles/switch",
            "vs unserialized",
            "pipeline drains",
            "spectre posture",
        ],
        &rows,
    );
    println!("\n  paper S4.5: switch-on-exit removes most serialization cost while staying safe");
    harness.finish().expect("write bench records");
}
