//! Host-side throughput of the cycle-level simulator on the Fig. 3
//! workload — the scaling lever for every figure in the reproduction.
//!
//! Runs the SPEC-like suite under the three Fig. 3 isolation schemes on
//! the cycle `Machine`, sequentially (per-core simulated-instruction
//! throughput is the metric; the parallel harness already saturates
//! cores), and emits `BENCH_throughput.json` at the repo root:
//!
//! ```text
//! cargo run --release -p hfi-bench --bin bench_throughput -- --smoke
//! ```
//!
//! Flags:
//!
//! * `--smoke` / `HFI_SMOKE=1` — first three kernels only (CI).
//! * `--check <baseline.json>` (alias `--baseline <baseline.json>`) —
//!   after measuring, gate against the baseline file's `"sim_mips"`
//!   value and print the old → new delta.
//! * `--out <path>` — output path (default `BENCH_throughput.json`).
//!
//! # Gate semantics
//!
//! The gate compares this run's aggregate sim-MIPS against the baseline
//! and **fails (exit 1)** if it regressed more than
//! [`REGRESSION_BUDGET`] (the printed gate line quotes the budget from
//! that constant — the one source of truth for the threshold). The
//! baseline is read *before* the output
//! file is written, so `--check BENCH_throughput.json --out
//! BENCH_throughput.json` gates against the previously committed numbers
//! — never against the file this run is about to write. A missing or
//! unreadable baseline is a usage error (exit 2), not a pass: a gate
//! that silently skips its comparison would green-light any regression.
//! Absolute MIPS are host-dependent, so a baseline is only meaningful
//! against runs on the same machine class.

use std::time::Instant;

use hfi_bench::{print_table, run_on_machine, Harness, FIG3_SCHEMES};
use hfi_wasm::kernels::speclike;

/// Allowed fractional sim-MIPS regression before `--check` fails.
const REGRESSION_BUDGET: f64 = 0.20;

struct CellResult {
    kernel: String,
    isolation: String,
    committed: u64,
    cycles: u64,
    host_ns: u64,
}

fn extract_json_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let start = json.find(&needle)? + needle.len();
    let rest = &json[start..];
    let end = rest
        .find(|c: char| c != '.' && c != '-' && c != '+' && c != 'e' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let harness = Harness::from_env("throughput");
    let mut check: Option<String> = None;
    let mut out_path = "BENCH_throughput.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" | "--baseline" => check = args.next(),
            "--out" => {
                if let Some(p) = args.next() {
                    out_path = p;
                }
            }
            _ => {}
        }
    }

    // Read the baseline up front: before the output file is written, so
    // `--check` against the default output path gates on the previous
    // run and not the file this run is about to write — and before the
    // measurement, so a mispointed path fails fast. A missing or
    // malformed baseline is a usage error (exit 2): silently skipping
    // the comparison would turn the gate into a no-op exactly when it
    // is mispointed.
    let baseline_mips = check.as_ref().map(|baseline_path| {
        let baseline = match std::fs::read_to_string(baseline_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!(
                    "[throughput] ERROR: cannot read baseline {baseline_path}: {e}\n\
                     [throughput] run once without --check to record a baseline first"
                );
                std::process::exit(2);
            }
        };
        extract_json_number(&baseline, "sim_mips").unwrap_or_else(|| {
            eprintln!("[throughput] ERROR: no \"sim_mips\" field in baseline {baseline_path}");
            std::process::exit(2);
        })
    });

    let kernels = harness.subset(speclike::suite(1), 3);
    let mut cells = Vec::new();
    for kernel in &kernels {
        for isolation in FIG3_SCHEMES {
            let started = Instant::now();
            let run = run_on_machine(kernel, isolation);
            let host_ns = started.elapsed().as_nanos() as u64;
            cells.push(CellResult {
                kernel: kernel.name.clone(),
                isolation: format!("{isolation:?}"),
                committed: run.instructions,
                cycles: run.cycles,
                host_ns,
            });
        }
    }

    let total_committed: u64 = cells.iter().map(|c| c.committed).sum();
    let total_cycles: u64 = cells.iter().map(|c| c.cycles).sum();
    let total_ns: u64 = cells.iter().map(|c| c.host_ns).sum::<u64>().max(1);
    let sim_mips = total_committed as f64 / (total_ns as f64 / 1e9) / 1e6;
    let host_ns_per_cycle = total_ns as f64 / total_cycles.max(1) as f64;

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            let mips = c.committed as f64 / (c.host_ns.max(1) as f64 / 1e9) / 1e6;
            vec![
                c.kernel.clone(),
                c.isolation.clone(),
                c.committed.to_string(),
                format!("{:.1}ms", c.host_ns as f64 / 1e6),
                format!("{mips:.2}"),
            ]
        })
        .collect();
    print_table(
        "Simulator throughput on the Fig. 3 workload",
        &["kernel", "isolation", "committed", "host time", "sim-MIPS"],
        &rows,
    );
    println!(
        "\n  aggregate: {total_committed} instructions in {:.1} ms -> {sim_mips:.2} sim-MIPS \
         ({host_ns_per_cycle:.1} host-ns/cycle)",
        total_ns as f64 / 1e6
    );

    let mut json = String::from("{");
    json.push_str(&format!(
        "\"figure\":\"throughput\",\"mode\":\"{}\",\"sim_mips\":{sim_mips:.3},\
         \"host_ns_per_cycle\":{host_ns_per_cycle:.3},\"total_committed\":{total_committed},\
         \"total_cycles\":{total_cycles},\"total_host_ns\":{total_ns},\"cells\":[",
        if harness.smoke() { "smoke" } else { "full" }
    ));
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"kernel\":\"{}\",\"isolation\":\"{}\",\"committed\":{},\"cycles\":{},\
             \"host_ns\":{}}}",
            c.kernel, c.isolation, c.committed, c.cycles, c.host_ns
        ));
    }
    json.push_str("]}");
    std::fs::write(&out_path, format!("{json}\n")).expect("write throughput json");
    eprintln!("[throughput] wrote {out_path}");

    if let Some(baseline_mips) = baseline_mips {
        let floor = baseline_mips * (1.0 - REGRESSION_BUDGET);
        let delta_pct = (sim_mips / baseline_mips - 1.0) * 100.0;
        println!("  delta: {baseline_mips:.2} -> {sim_mips:.2} sim-MIPS ({delta_pct:+.1}%)");
        println!(
            "  gate: measured {sim_mips:.2} sim-MIPS vs baseline {baseline_mips:.2} \
             (floor {floor:.2})"
        );
        if sim_mips < floor {
            eprintln!(
                "[throughput] FAIL: sim-MIPS regressed more than {:.0}% \
                 ({sim_mips:.2} < {floor:.2})",
                REGRESSION_BUDGET * 100.0
            );
            std::process::exit(1);
        }
        println!("  gate: OK");
    }
}
