//! Host-side throughput of the simulator tiers on the Fig. 3 workload —
//! the scaling lever for every figure in the reproduction.
//!
//! Runs the SPEC-like suite under the three Fig. 3 isolation schemes on
//! each executor tier — the cycle `Machine`, the reference functional
//! interpreter, and the fused (block-threaded superinstruction)
//! functional tier — sequentially (per-core simulated-instruction
//! throughput is the metric; the parallel harness already saturates
//! cores), and emits `BENCH_throughput.json` at the repo root:
//!
//! ```text
//! cargo run --release -p hfi-bench --bin bench_throughput -- --smoke
//! ```
//!
//! Flags:
//!
//! * `--smoke` / `HFI_SMOKE=1` — first three kernels only (CI).
//! * `--check <baseline.json>` (alias `--baseline <baseline.json>`) —
//!   after measuring, gate each tier against the baseline file's
//!   `"sim_mips_<tier>"` value and print the old → new delta per tier.
//! * `--out <path>` — output path (default `BENCH_throughput.json`).
//!
//! # Gate semantics
//!
//! The gate compares each tier's aggregate sim-MIPS against the
//! baseline's matching `sim_mips_cycle` / `sim_mips_functional` /
//! `sim_mips_fused` field **independently** and fails (exit 1) if any
//! tier regressed more than [`REGRESSION_BUDGET`] (the printed gate
//! lines quote the budget from that constant — the one source of truth
//! for the threshold). Gating per tier matters: a fused-tier rewrite
//! that accidentally slowed the cycle machine (or vice versa) must not
//! be able to hide inside a blended aggregate. The baseline is read
//! *before* the output file is written, so `--check
//! BENCH_throughput.json --out BENCH_throughput.json` gates against the
//! previously committed numbers — never against the file this run is
//! about to write. A missing or unreadable baseline, or a baseline
//! missing a tier's key, is a usage error (exit 2), not a pass: a gate
//! that silently skips its comparison would green-light any regression.
//! Absolute MIPS are host-dependent, so a baseline is only meaningful
//! against runs on the same machine class.

use std::time::Instant;

use hfi_bench::{
    compile_cached, median, print_table, run_functional_record, run_fused_record, run_on_machine,
    Harness, FIG3_SCHEMES,
};
use hfi_wasm::compiler::CompileOptions;
use hfi_wasm::kernels::speclike;

/// Allowed fractional sim-MIPS regression before `--check` fails.
const REGRESSION_BUDGET: f64 = 0.20;

/// The executor tiers the benchmark sweeps, in presentation order.
const TIERS: [&str; 3] = ["cycle", "functional", "fused"];

struct CellResult {
    tier: &'static str,
    kernel: String,
    isolation: String,
    committed: u64,
    cycles: u64,
    host_ns: u64,
}

struct TierResult {
    tier: &'static str,
    committed: u64,
    cycles: u64,
    host_ns: u64,
    sim_mips: f64,
}

fn extract_json_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let start = json.find(&needle)? + needle.len();
    let rest = &json[start..];
    let end = rest
        .find(|c: char| c != '.' && c != '-' && c != '+' && c != 'e' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let harness = Harness::from_env("throughput");
    let mut check: Option<String> = None;
    let mut out_path = "BENCH_throughput.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" | "--baseline" => check = args.next(),
            "--out" => {
                if let Some(p) = args.next() {
                    out_path = p;
                }
            }
            _ => {}
        }
    }

    // Read the baseline up front: before the output file is written, so
    // `--check` against the default output path gates on the previous
    // run and not the file this run is about to write — and before the
    // measurement, so a mispointed path fails fast. A missing or
    // malformed baseline is a usage error (exit 2): silently skipping
    // the comparison would turn the gate into a no-op exactly when it
    // is mispointed.
    let baseline_mips: Option<Vec<(&str, f64)>> = check.as_ref().map(|baseline_path| {
        let baseline = match std::fs::read_to_string(baseline_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!(
                    "[throughput] ERROR: cannot read baseline {baseline_path}: {e}\n\
                     [throughput] run once without --check to record a baseline first"
                );
                std::process::exit(2);
            }
        };
        TIERS
            .iter()
            .map(|tier| {
                let key = format!("sim_mips_{tier}");
                let mips = extract_json_number(&baseline, &key).unwrap_or_else(|| {
                    eprintln!(
                        "[throughput] ERROR: no \"{key}\" field in baseline {baseline_path}\n\
                         [throughput] re-record the baseline with this binary first"
                    );
                    std::process::exit(2);
                });
                (*tier, mips)
            })
            .collect()
    });

    let kernels = harness.subset(speclike::suite(1), 3);

    // Warm the compile cache so the first timed tier does not pay
    // wasm-compilation costs the later tiers get for free.
    for kernel in &kernels {
        for isolation in FIG3_SCHEMES {
            compile_cached(kernel, &CompileOptions::new(isolation));
        }
    }

    let mut cells = Vec::new();
    for tier in TIERS {
        for kernel in &kernels {
            for isolation in FIG3_SCHEMES {
                let started = Instant::now();
                let (committed, cycles) = match tier {
                    "cycle" => {
                        let run = run_on_machine(kernel, isolation);
                        (run.instructions, run.cycles)
                    }
                    "functional" => {
                        let record = run_functional_record(kernel, isolation);
                        (record.committed, record.cycles as u64)
                    }
                    "fused" => {
                        let record = run_fused_record(kernel, isolation);
                        (record.committed, record.cycles as u64)
                    }
                    _ => unreachable!(),
                };
                let host_ns = started.elapsed().as_nanos() as u64;
                cells.push(CellResult {
                    tier,
                    kernel: kernel.name.clone(),
                    isolation: format!("{isolation:?}"),
                    committed,
                    cycles,
                    host_ns,
                });
            }
        }
    }

    let tiers: Vec<TierResult> = TIERS
        .iter()
        .map(|tier| {
            let tier_cells: Vec<&CellResult> = cells.iter().filter(|c| c.tier == *tier).collect();
            let committed: u64 = tier_cells.iter().map(|c| c.committed).sum();
            let cycles: u64 = tier_cells.iter().map(|c| c.cycles).sum();
            let host_ns: u64 = tier_cells.iter().map(|c| c.host_ns).sum::<u64>().max(1);
            TierResult {
                tier,
                committed,
                cycles,
                host_ns,
                sim_mips: committed as f64 / (host_ns as f64 / 1e9) / 1e6,
            }
        })
        .collect();

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            let mips = c.committed as f64 / (c.host_ns.max(1) as f64 / 1e9) / 1e6;
            vec![
                c.tier.to_string(),
                c.kernel.clone(),
                c.isolation.clone(),
                c.committed.to_string(),
                format!("{:.1}ms", c.host_ns as f64 / 1e6),
                format!("{mips:.2}"),
            ]
        })
        .collect();
    print_table(
        "Simulator throughput on the Fig. 3 workload (per tier)",
        &[
            "tier",
            "kernel",
            "isolation",
            "committed",
            "host time",
            "sim-MIPS",
        ],
        &rows,
    );
    println!();
    for t in &tiers {
        println!(
            "  {:>10}: {} instructions in {:.1} ms -> {:.2} sim-MIPS",
            t.tier,
            t.committed,
            t.host_ns as f64 / 1e6,
            t.sim_mips
        );
    }
    let cycle = &tiers[0];
    let fused = &tiers[2];
    println!(
        "  host-ns/cycle (cycle tier): {:.1}; fused speedup over functional: {:.2}x",
        cycle.host_ns as f64 / cycle.cycles.max(1) as f64,
        fused.sim_mips / tiers[1].sim_mips.max(f64::MIN_POSITIVE)
    );

    let mut json = String::from("{");
    json.push_str(&format!(
        "\"figure\":\"throughput\",\"mode\":\"{}\"",
        if harness.smoke() { "smoke" } else { "full" }
    ));
    for t in &tiers {
        json.push_str(&format!(
            ",\"sim_mips_{}\":{:.3},\"total_committed_{}\":{},\"total_cycles_{}\":{},\
             \"total_host_ns_{}\":{}",
            t.tier, t.sim_mips, t.tier, t.committed, t.tier, t.cycles, t.tier, t.host_ns
        ));
    }
    json.push_str(&format!(
        ",\"host_ns_per_cycle\":{:.3},\"cells\":[",
        cycle.host_ns as f64 / cycle.cycles.max(1) as f64
    ));
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"tier\":\"{}\",\"kernel\":\"{}\",\"isolation\":\"{}\",\"committed\":{},\
             \"cycles\":{},\"host_ns\":{}}}",
            c.tier, c.kernel, c.isolation, c.committed, c.cycles, c.host_ns
        ));
    }
    json.push_str("]}");
    std::fs::write(&out_path, format!("{json}\n")).expect("write throughput json");
    eprintln!("[throughput] wrote {out_path}");

    // The fused-tier contract: on every kernel × isolation cell, block
    // dispatch must not lose to the reference functional loop by more
    // than REGRESSION_BUDGET — unless the small-kernel fallback
    // (`hfi_sim::fused_fallback`) routed that program through the
    // reference loop already, in which case any residual delta is two
    // timings of the same loop. Single-run cells are noisy at the
    // sub-millisecond scale, so an apparent violation is re-measured
    // (median of five back-to-back pairs) before it fails the run.
    let mut fused_violations = Vec::new();
    for kernel in &kernels {
        for isolation in FIG3_SCHEMES {
            let iso = format!("{isolation:?}");
            let func_ns = cells
                .iter()
                .find(|c| c.tier == "functional" && c.kernel == kernel.name && c.isolation == iso)
                .expect("every kernel has a functional cell")
                .host_ns;
            let fused_ns = cells
                .iter()
                .find(|c| c.tier == "fused" && c.kernel == kernel.name && c.isolation == iso)
                .expect("every kernel has a fused cell")
                .host_ns;
            if fused_ns as f64 <= func_ns as f64 * (1.0 + REGRESSION_BUDGET) {
                continue;
            }
            let compiled = compile_cached(kernel, &CompileOptions::new(isolation));
            if hfi_sim::fused_fallback(&compiled.program) {
                println!(
                    "  fused-cell[{}/{iso}]: fallback engaged (plan > {} ops), delta is \
                     reference-loop noise",
                    kernel.name,
                    hfi_sim::FUSED_FALLBACK_MAX_OPS
                );
                continue;
            }
            let mut func_samples = Vec::new();
            let mut fused_samples = Vec::new();
            for _ in 0..5 {
                let t = Instant::now();
                run_functional_record(kernel, isolation);
                func_samples.push(t.elapsed().as_nanos() as f64);
                let t = Instant::now();
                run_fused_record(kernel, isolation);
                fused_samples.push(t.elapsed().as_nanos() as f64);
            }
            let func_med = median(&func_samples);
            let fused_med = median(&fused_samples);
            if fused_med > func_med * (1.0 + REGRESSION_BUDGET) {
                fused_violations.push(format!(
                    "{}/{iso}: fused {fused_med:.0}ns vs functional {func_med:.0}ns \
                     ({:+.1}% median of 5; first run {:+.1}%)",
                    kernel.name,
                    (fused_med / func_med - 1.0) * 100.0,
                    (fused_ns as f64 / func_ns as f64 - 1.0) * 100.0
                ));
            } else {
                println!(
                    "  fused-cell[{}/{iso}]: first-run delta {:+.1}% was noise \
                     (median of 5: {:+.1}%)",
                    kernel.name,
                    (fused_ns as f64 / func_ns as f64 - 1.0) * 100.0,
                    (fused_med / func_med - 1.0) * 100.0
                );
            }
        }
    }
    if !fused_violations.is_empty() {
        for v in &fused_violations {
            eprintln!("[throughput] FAIL: fused tier slower than functional on {v}");
        }
        std::process::exit(1);
    }
    println!("  fused-cell check: fused >= functional (or fallback) on every cell");

    if let Some(baseline_mips) = baseline_mips {
        let mut failed = false;
        for (tier, baseline) in baseline_mips {
            let measured = tiers
                .iter()
                .find(|t| t.tier == tier)
                .expect("baseline tiers mirror TIERS")
                .sim_mips;
            let floor = baseline * (1.0 - REGRESSION_BUDGET);
            let delta_pct = (measured / baseline - 1.0) * 100.0;
            println!(
                "  gate[{tier}]: {baseline:.2} -> {measured:.2} sim-MIPS ({delta_pct:+.1}%, \
                 floor {floor:.2})"
            );
            if measured < floor {
                eprintln!(
                    "[throughput] FAIL: {tier} tier regressed more than {:.0}% \
                     ({measured:.2} < {floor:.2})",
                    REGRESSION_BUDGET * 100.0
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("  gate: OK (all tiers within budget)");
    }
}
