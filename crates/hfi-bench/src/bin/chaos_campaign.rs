//! `chaos_campaign` — sweep seeded runtime fault injection over the HFI
//! kernel suite and enforce the fail-closed contract.
//!
//! For every HFI-sandboxed kernel the experiments run, the campaign
//! first takes an uninjected **baseline** on the cycle machine with a
//! site counter and the shadow monitor attached (the baseline must
//! halt, return the reference result, and be violation-free — that
//! check is what makes the monitor's silence on injected runs
//! meaningful). It then runs one injected cell per (kernel × fault
//! class × rep): a seeded [`ChaosEngine`] perturbs exactly one site,
//! the [`ShadowMonitor`] replays every retired access against the
//! kernel's published [`SandboxSpec`], and the run is classified
//! fail-closed, benign, or **ESCAPE** (an out-of-spec access retired
//! silently — the one outcome the mechanism promises can never happen,
//! paper §3.3.2/§4.1).
//!
//! The per-class verdict matrix is printed as a Markdown table (CI
//! pastes it into the step summary) followed by a machine-greppable
//! `chaos-verdicts:` line; any escape exits nonzero.
//!
//! `--weaken` deliberately breaks the mechanism (every guard micro-op
//! dropped via [`WeakenedEngine`]) and inverts the acceptance: the
//! sweep must now produce at least one escape, proving the oracle can
//! actually see one. A zero-escape claim from an oracle that cannot
//! fail is worthless; CI runs both modes.
//!
//! `--fused` runs the sweep on the fused (block-threaded
//! superinstruction) tier of the functional executor instead of the
//! cycle machine: installing a hook forces the fused engine onto its
//! fully-observed per-op path, and this mode proves at campaign scale
//! that no injection site or oracle observation was lost to fusion.
//! The two speculative fault classes (wrong-path, predictor-clobber)
//! have no sites there and are accounted under `no-site`, exactly as
//! on the plain functional tier.
//!
//! `--serve` routes every injected cell through the `hfi-serve`
//! scheduler instead of running it inline: cells become [`Request`]s
//! with the chaos rig attached as the per-run hook, tenants pass the
//! verify-before-admit gate, and instances are *reused* across
//! injections via the warm pool (the pool's release reset must detach
//! the hook and scrub the scribbled state, or a fault would leak into
//! the next tenant's run). Zero escapes by exit code on the served
//! path proves the fail-closed contract survives warm reuse.
//! Combine with `--fused` to serve on the fused tier; alone it serves
//! on the plain functional tier.
//!
//! Cells run under the supervised harness (panic isolation, watchdog,
//! retries) and stream to `chaos.jsonl`; `--resume` skips journaled
//! cells and re-counts their recorded verdicts, so a killed sweep
//! continues without losing (or double-counting) its escape tally.
//! `--smoke` truncates the kernel suite, matching the other binaries.

use std::collections::BTreeMap;
use std::sync::Arc;

use hfi_bench::harness::{CellOutcome, Harness};
use hfi_bench::{compile_cached, print_table, FUNCTIONAL_LIMIT, MACHINE_LIMIT};
use hfi_chaos::{
    classify, ChaosEngine, ChaosPlan, FaultClass, Rig, ShadowMonitor, SiteCounter, SiteCounts,
    Verdict, WeakenedEngine,
};
use hfi_core::TransitionScheme;
use hfi_serve::{
    AdmitPolicy, Outcome as ServeOutcome, Request, Scheduler, TenantSpec, Tier, WarmPools,
};
use hfi_sim::{Executor, Functional, Machine, Program, RunRecord, Stop};
use hfi_util::{split_mix64, Rng};
use hfi_verify::SandboxSpec;
use hfi_wasm::compiler::{CompileOptions, Isolation};
use hfi_wasm::kernels::{sightglass, speclike};
use hfi_wasm::sandbox_spec;

/// Which executor carries the injected runs.
#[derive(Clone, Copy, PartialEq)]
enum Vehicle {
    /// The cycle-accurate machine (default).
    Machine,
    /// The plain functional tier (`--serve` without `--fused`).
    Functional,
    /// The fused superinstruction tier (`--fused`).
    Fused,
}

/// One HFI kernel the campaign perturbs.
struct Target {
    name: String,
    program: Arc<Program>,
    spec: SandboxSpec,
    heap_base: u64,
    heap_init: Vec<(u32, Vec<u8>)>,
    expected: u64,
    verified: Option<bool>,
    vehicle: Vehicle,
}

/// Baseline facts an injected cell is judged against.
#[derive(Clone)]
struct Baseline {
    counts: SiteCounts,
    record: RunRecord,
    /// Cycle budget for injected runs: generous multiple of the
    /// baseline (an operand flip can lengthen loops) but bounded, so a
    /// corruption-induced livelock cannot hang a cell.
    limit: u64,
}

/// Everything one supervised cell needs, self-contained (the grid
/// closure is `'static`).
struct Cell {
    target_idx: usize,
    name: String,
    program: Arc<Program>,
    spec: SandboxSpec,
    heap_base: u64,
    heap_init: Vec<(u32, Vec<u8>)>,
    class: FaultClass,
    rep: u64,
    seed: u64,
    sites: u64,
    baseline: Baseline,
    weaken: bool,
    vehicle: Vehicle,
}

/// One classified injected run.
struct CellResult {
    target_idx: usize,
    name: String,
    class: FaultClass,
    rep: u64,
    seed: u64,
    trigger: u64,
    fired: bool,
    stop: Stop,
    verdict: Verdict,
    record: RunRecord,
    violation: Option<String>,
}

fn load_heap(machine: &mut Machine, heap_base: u64, heap_init: &[(u32, Vec<u8>)]) {
    for (off, bytes) in heap_init {
        machine.prepare(heap_base + *off as u64, bytes);
    }
}

fn targets(smoke: bool, vehicle: Vehicle) -> Vec<Target> {
    let mut kernels = sightglass::suite(1);
    kernels.extend(speclike::suite(1));
    if smoke {
        kernels.truncate(3);
    }
    let opts = CompileOptions::new(Isolation::Hfi);
    let mut targets: Vec<Target> = kernels
        .iter()
        .map(|kernel| {
            let compiled = compile_cached(kernel, &opts);
            Target {
                name: kernel.name.clone(),
                program: compiled.program.clone(),
                spec: sandbox_spec(&opts).expect("sandboxed HFI kernels publish a spec"),
                heap_base: opts.heap_base,
                heap_init: kernel.heap_init.clone(),
                expected: kernel.expected,
                verified: compiled.verified,
                vehicle,
            }
        })
        .collect();
    // Springboard-compiled variants: the default scheme emits no marked
    // transition micro-ops, so without these the transition-corrupt
    // class would have zero sites campaign-wide. Two kernels suffice —
    // every springboard carries the same zeroing/stack-switch sequence.
    let springboard = CompileOptions::hfi_with_scheme(TransitionScheme::FullSpringboard);
    for kernel in kernels.iter().take(2) {
        let compiled = compile_cached(kernel, &springboard);
        targets.push(Target {
            name: format!("{}/springboard", kernel.name),
            program: compiled.program.clone(),
            spec: sandbox_spec(&springboard).expect("sandboxed HFI kernels publish a spec"),
            heap_base: springboard.heap_base,
            heap_init: kernel.heap_init.clone(),
            expected: kernel.expected,
            verified: compiled.verified,
            vehicle,
        });
    }
    targets
}

/// Runs one hooked execution on the campaign's vehicle and returns the
/// stop reason, counter record, and final registers.
fn run_hooked(
    program: &Arc<Program>,
    heap_base: u64,
    heap_init: &[(u32, Vec<u8>)],
    vehicle: Vehicle,
    hook: Box<dyn hfi_sim::ChaosHook>,
    limit: u64,
) -> (Stop, RunRecord, [u64; 16]) {
    match vehicle {
        Vehicle::Machine => {
            let mut machine = Machine::new(program.clone());
            load_heap(&mut machine, heap_base, heap_init);
            machine.set_chaos(hook);
            let stop = Executor::run(&mut machine, limit);
            (stop, Executor::stats(&machine), Executor::regs(&machine))
        }
        Vehicle::Functional | Vehicle::Fused => {
            let mut functional = if vehicle == Vehicle::Fused {
                Functional::new_fused(program.clone())
            } else {
                Functional::new(program.clone())
            };
            for (off, bytes) in heap_init {
                Executor::prepare(&mut functional, heap_base + *off as u64, bytes);
            }
            functional.set_chaos(hook);
            let stop = Executor::run(&mut functional, limit);
            (
                stop,
                Executor::stats(&functional),
                Executor::regs(&functional),
            )
        }
    }
}

/// Uninjected run with counter + monitor attached. Panics (loudly) if
/// the baseline itself misbehaves — an injected sweep over a broken
/// baseline proves nothing.
fn run_baseline(target: &Target) -> Baseline {
    let counter = SiteCounter::new();
    let monitor = ShadowMonitor::from_spec(&target.spec);
    let budget = if target.vehicle == Vehicle::Machine {
        MACHINE_LIMIT
    } else {
        FUNCTIONAL_LIMIT
    };
    let (stop, record, regs) = run_hooked(
        &target.program,
        target.heap_base,
        &target.heap_init,
        target.vehicle,
        Box::new(Rig::new(counter.clone(), monitor.clone())),
        budget,
    );
    assert_eq!(stop, Stop::Halted, "{}: baseline did not halt", target.name);
    assert_eq!(
        regs[0], target.expected,
        "{}: baseline returned the wrong result",
        target.name
    );
    let report = monitor.report();
    assert!(
        report.clean() && report.trap.is_none(),
        "{}: baseline violates its own spec — monitor/spec mismatch: {report:?}",
        target.name
    );
    // Pure-compute kernels (fib2, nestedloop) have no sandboxed memory
    // traffic; the oracle still checks every sandboxed fetch there.
    assert!(
        report.checked_accesses + report.checked_fetches > 0,
        "{}: monitor saw no sandboxed effects at all; the oracle would be vacuous",
        target.name
    );
    // Budget for injected runs: generous multiple of the baseline, in
    // the vehicle's own unit — cycles for the machine, retired
    // instructions for the functional tiers.
    let limit = if target.vehicle == Vehicle::Machine {
        ((record.cycles as u64).saturating_mul(8) + 1_000_000).min(MACHINE_LIMIT)
    } else {
        (record.committed.saturating_mul(8) + 1_000_000).min(FUNCTIONAL_LIMIT)
    };
    Baseline {
        counts: counter.counts(),
        record,
        limit,
    }
}

fn run_cell(cell: &Cell) -> CellResult {
    let mut rng = Rng::new(cell.seed);
    let trigger = rng.below(cell.sites.max(1));
    let plan = ChaosPlan {
        seed: rng.next_u64(),
        class: cell.class,
        trigger,
    };
    let engine = ChaosEngine::new(plan);
    let monitor = ShadowMonitor::from_spec(&cell.spec);
    let hook: Box<dyn hfi_sim::ChaosHook> = if cell.weaken {
        Box::new(Rig::new(
            WeakenedEngine::new(engine.clone()),
            monitor.clone(),
        ))
    } else {
        Box::new(Rig::new(engine.clone(), monitor.clone()))
    };
    let (stop, record, _) = run_hooked(
        &cell.program,
        cell.heap_base,
        &cell.heap_init,
        cell.vehicle,
        hook,
        cell.baseline.limit,
    );
    let report = monitor.report();
    let identical = stop == Stop::Halted && record == cell.baseline.record;
    let verdict = classify(&report, identical);
    CellResult {
        target_idx: cell.target_idx,
        name: cell.name.clone(),
        class: cell.class,
        rep: cell.rep,
        seed: cell.seed,
        trigger,
        fired: engine.fired().is_some(),
        stop,
        verdict,
        record,
        violation: report.violations.first().map(|v| {
            format!(
                "pc={:#x} {} {} byte(s) at {:#x}",
                v.pc, v.access, v.size, v.addr
            )
        }),
    }
}

/// Runs every injected cell through the `hfi-serve` scheduler instead
/// of inline: one warm-pooled tenant per target, the chaos rig riding
/// [`Request::chaos`], classification from the rig's shared handles
/// after the completion comes back. Instance reuse across injections is
/// the point — a hook or scribbled heap leaking past the pool's release
/// reset would show up here as a divergent (or escaped) later cell.
fn run_cells_served(
    targets: &[Target],
    cells: Vec<Cell>,
    vehicle: Vehicle,
    workers: usize,
) -> Vec<CellOutcome<CellResult>> {
    let tier = match vehicle {
        Vehicle::Fused => Tier::Fused,
        Vehicle::Functional => Tier::Functional,
        Vehicle::Machine => unreachable!("--serve always picks a functional tier"),
    };
    let tenants: Vec<TenantSpec> = targets
        .iter()
        .map(|t| {
            TenantSpec::from_program(
                t.name.clone(),
                t.program.clone(),
                t.verified,
                Isolation::Hfi,
                tier,
                t.heap_base,
                t.heap_init
                    .iter()
                    .map(|(off, bytes)| (*off as u64, bytes.clone()))
                    .collect(),
                Some(t.expected),
            )
        })
        .collect();
    let pools = Arc::new(WarmPools::new(
        Arc::new(tenants),
        42,
        64 << 20,
        AdmitPolicy::RequireVerified,
    ));
    let scheduler = Scheduler::new(Arc::clone(&pools), workers);

    // Submit everything; `arrival_ns` carries the cell index so the
    // out-of-order completions can be matched back.
    let mut rigs = Vec::with_capacity(cells.len());
    for (idx, cell) in cells.iter().enumerate() {
        let mut rng = Rng::new(cell.seed);
        let trigger = rng.below(cell.sites.max(1));
        let plan = ChaosPlan {
            seed: rng.next_u64(),
            class: cell.class,
            trigger,
        };
        let engine = ChaosEngine::new(plan);
        let monitor = ShadowMonitor::from_spec(&cell.spec);
        let hook: Box<dyn hfi_sim::ChaosHook> = if cell.weaken {
            Box::new(Rig::new(
                WeakenedEngine::new(engine.clone()),
                monitor.clone(),
            ))
        } else {
            Box::new(Rig::new(engine.clone(), monitor.clone()))
        };
        rigs.push((trigger, engine, monitor));
        scheduler.submit(Request {
            tenant: cell.target_idx,
            arrival_ns: idx as u64,
            limit: cell.baseline.limit,
            chaos: Some(hook),
        });
    }

    let mut by_cell: Vec<Option<hfi_serve::Completion>> = (0..cells.len()).map(|_| None).collect();
    for completion in scheduler.finish() {
        let idx = completion.arrival_ns as usize;
        by_cell[idx] = Some(completion);
    }
    let stats = pools.stats();
    eprintln!(
        "[chaos-serve] workers={} tier={} warm_hits={} cold_builds={} recycled={} peak_resident={}",
        workers,
        tier.as_str(),
        stats.warm_hits,
        stats.cold_builds,
        stats.recycled,
        stats.peak_resident,
    );

    cells
        .iter()
        .zip(rigs)
        .zip(by_cell)
        .map(|((cell, (trigger, engine, monitor)), completion)| {
            let Some(completion) = completion else {
                return CellOutcome::Panicked {
                    msg: format!("{}: completion lost by the scheduler", cell.name),
                };
            };
            match completion.outcome {
                ServeOutcome::Done { stop, record, .. } => {
                    let report = monitor.report();
                    let identical = stop == Stop::Halted && *record == cell.baseline.record;
                    let verdict = classify(&report, identical);
                    CellOutcome::Ok(CellResult {
                        target_idx: cell.target_idx,
                        name: cell.name.clone(),
                        class: cell.class,
                        rep: cell.rep,
                        seed: cell.seed,
                        trigger,
                        fired: engine.fired().is_some(),
                        stop,
                        verdict,
                        record: *record,
                        violation: report.violations.first().map(|v| {
                            format!(
                                "pc={:#x} {} {} byte(s) at {:#x}",
                                v.pc, v.access, v.size, v.addr
                            )
                        }),
                    })
                }
                ServeOutcome::Rejected { verified } => CellOutcome::Panicked {
                    msg: format!(
                        "{}: admission rejected a baseline-verified tenant (verified={verified:?})",
                        cell.name
                    ),
                },
                ServeOutcome::Overloaded => CellOutcome::Panicked {
                    msg: format!("{}: serving pool stayed overloaded", cell.name),
                },
            }
        })
        .collect()
}

fn context_for(name: &str, class: FaultClass, rep: u64) -> Vec<(&'static str, String)> {
    vec![
        ("kernel", name.to_string()),
        ("class", class.label().to_string()),
        ("rep", rep.to_string()),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let weaken = args.iter().any(|a| a == "--weaken");
    let fused = args.iter().any(|a| a == "--fused");
    let serve = args.iter().any(|a| a == "--serve");
    let vehicle = match (serve, fused) {
        (_, true) => Vehicle::Fused,
        (true, false) => Vehicle::Functional,
        (false, false) => Vehicle::Machine,
    };
    let figure = match (serve, fused, weaken) {
        (false, false, false) => "chaos",
        (false, false, true) => "chaos-weakened",
        (false, true, false) => "chaos-fused",
        (false, true, true) => "chaos-fused-weakened",
        (true, false, false) => "chaos-serve",
        (true, false, true) => "chaos-serve-weakened",
        (true, true, false) => "chaos-serve-fused",
        (true, true, true) => "chaos-serve-fused-weakened",
    };
    let mut harness = Harness::from_env(figure);

    let targets = targets(harness.smoke(), vehicle);
    let reps = harness.iters(3, 1);
    let campaign_seed = harness.seed_or(0x48_46_49); // "HFI"

    // Baselines in parallel (compilation is already cached+shared).
    let baselines: Vec<Baseline> = harness.run_grid(&targets, run_baseline);

    // Escapes already journaled by a previous, interrupted run.
    let mut resumed_cells = 0usize;
    let mut resumed_escapes = 0usize;
    let mut cells = Vec::new();
    let mut no_site: BTreeMap<&'static str, usize> = BTreeMap::new();
    for (target_idx, (target, baseline)) in targets.iter().zip(&baselines).enumerate() {
        for (class_idx, &class) in FaultClass::ALL.iter().enumerate() {
            let sites = baseline.counts.for_class(class);
            for rep in 0..reps {
                if sites == 0 {
                    *no_site.entry(class.label()).or_default() += 1;
                    continue;
                }
                let context = context_for(&target.name, class, rep);
                if harness.have(&context) {
                    resumed_cells += 1;
                    // `have` only proves the line exists; re-scan it for
                    // the verdict so resumed escapes still fail the run.
                    let prefix = format!("\"kernel\":\"{}\"", target.name);
                    resumed_escapes += harness
                        .lines()
                        .iter()
                        .filter(|l| {
                            l.contains(&prefix)
                                && l.contains(&format!("\"class\":\"{}\"", class.label()))
                                && l.contains(&format!("\"rep\":\"{rep}\""))
                                && l.contains("\"verdict\":\"ESCAPE\"")
                        })
                        .count();
                    continue;
                }
                let mut seed =
                    campaign_seed ^ ((target_idx as u64) << 40) ^ ((class_idx as u64) << 32) ^ rep;
                seed = split_mix64(&mut seed);
                cells.push(Cell {
                    target_idx,
                    name: target.name.clone(),
                    program: target.program.clone(),
                    spec: target.spec.clone(),
                    heap_base: target.heap_base,
                    heap_init: target.heap_init.clone(),
                    class,
                    rep,
                    seed,
                    sites,
                    baseline: baseline.clone(),
                    weaken,
                    vehicle,
                });
            }
        }
    }

    let outcomes = if serve {
        run_cells_served(&targets, cells, vehicle, harness.jobs().max(1))
    } else {
        harness.run_grid_supervised(cells, run_cell)
    };

    // verdict-label -> count per class, plus supervision failures.
    let mut matrix: BTreeMap<&'static str, BTreeMap<&'static str, usize>> = BTreeMap::new();
    let mut escapes = 0usize;
    let mut cell_failures = 0usize;
    let mut retried = 0usize;
    for outcome in &outcomes {
        match outcome {
            CellOutcome::Ok(result) | CellOutcome::Retried { result, .. } => {
                if matches!(outcome, CellOutcome::Retried { .. }) {
                    retried += 1;
                }
                *matrix
                    .entry(result.class.label())
                    .or_default()
                    .entry(result.verdict.label())
                    .or_default() += 1;
                if result.verdict.is_escape() {
                    escapes += 1;
                    eprintln!(
                        "ESCAPE: {} class={} rep={} seed={:#x} trigger={} ({})",
                        result.name,
                        result.class,
                        result.rep,
                        result.seed,
                        result.trigger,
                        result.violation.as_deref().unwrap_or("no detail")
                    );
                }
                let mut context = context_for(&result.name, result.class, result.rep);
                context.push(("seed", format!("{:#x}", result.seed)));
                context.push(("trigger", result.trigger.to_string()));
                context.push(("fired", result.fired.to_string()));
                context.push(("stop", format!("{:?}", result.stop)));
                context.push(("verdict", result.verdict.label().to_string()));
                context.push(("weaken", weaken.to_string()));
                context.push(("baseline_idx", result.target_idx.to_string()));
                let record = result.record;
                harness.record(&context, &record);
            }
            CellOutcome::Panicked { msg } => {
                cell_failures += 1;
                eprintln!("cell panicked: {msg}");
            }
            CellOutcome::TimedOut => {
                cell_failures += 1;
                eprintln!("cell timed out");
            }
        }
    }

    let verdict_labels = [
        "fail-closed",
        "benign-identical",
        "benign-divergent",
        "ESCAPE",
    ];
    let rows: Vec<Vec<String>> = FaultClass::ALL
        .iter()
        .map(|class| {
            let by_verdict = matrix.get(class.label());
            let mut row = vec![class.label().to_string()];
            for label in verdict_labels {
                let n = by_verdict.and_then(|m| m.get(label)).copied().unwrap_or(0);
                row.push(n.to_string());
            }
            row.push(no_site.get(class.label()).copied().unwrap_or(0).to_string());
            row
        })
        .collect();
    print_table(
        match (serve, fused, weaken) {
            (false, false, false) => "Chaos verdict matrix",
            (false, false, true) => "Chaos verdict matrix (WEAKENED build: guards disabled)",
            (false, true, false) => "Chaos verdict matrix (fused functional tier)",
            (false, true, true) => {
                "Chaos verdict matrix (fused tier, WEAKENED build: guards disabled)"
            }
            (true, false, false) => "Chaos verdict matrix (served, functional tier)",
            (true, false, true) => "Chaos verdict matrix (served, WEAKENED build: guards disabled)",
            (true, true, false) => "Chaos verdict matrix (served, fused tier)",
            (true, true, true) => {
                "Chaos verdict matrix (served, fused tier, WEAKENED build: guards disabled)"
            }
        },
        &[
            "class",
            "fail-closed",
            "benign-identical",
            "benign-divergent",
            "ESCAPE",
            "no-site",
        ],
        &rows,
    );

    let total_escapes = escapes + resumed_escapes;
    println!(
        "\nchaos-verdicts: kernels={} cells={} resumed={} retried={} failures={} escapes={}",
        targets.len(),
        outcomes.len(),
        resumed_cells,
        retried,
        cell_failures,
        total_escapes,
    );
    if let Ok(path) = harness.finish() {
        eprintln!("[chaos] journal: {}", path.display());
    }

    if cell_failures > 0 {
        eprintln!("FAIL: {cell_failures} cell(s) did not complete");
        std::process::exit(1);
    }
    if weaken {
        if total_escapes == 0 {
            eprintln!(
                "FAIL: weakened build produced no escape — the oracle cannot detect a broken \
                 mechanism, so its zero-escape claim on the real build is meaningless"
            );
            std::process::exit(1);
        }
        println!("weakened build escaped as expected: the oracle bites");
    } else if total_escapes > 0 {
        eprintln!(
            "FAIL: {total_escapes} silent out-of-spec retirement(s) — HFI is not fail-closed"
        );
        std::process::exit(1);
    }
}
