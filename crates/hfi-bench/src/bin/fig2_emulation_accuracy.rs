//! Figure 2: accuracy of the compiler-based HFI emulation.
//!
//! Runs each Sightglass-like kernel twice on the cycle simulator — once
//! with real HFI instructions (hardware model) and once after the
//! Appendix A.2 emulation transform — and reports the emulated runtime as
//! a percentage of the simulated runtime. The paper finds 98%–108% with a
//! geomean difference of 1.62%.

use hfi_bench::{geomean, print_table, run_on_machine};
use hfi_sim::{emulate, Machine, Stop, EMULATION_BASE};
use hfi_wasm::compiler::{compile, CompileOptions, Isolation};
use hfi_wasm::kernels::sightglass;

fn main() {
    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    for kernel in sightglass::suite(1) {
        let opts = CompileOptions::new(Isolation::Hfi);
        let hw = run_on_machine(&kernel, Isolation::Hfi);

        // The emulated variant: same program through the A.2 transform.
        // hmov turns into absolute addressing at EMULATION_BASE, so the
        // heap image is mirrored there (the paper's emulation likewise
        // runs the heap at its fixed base).
        let compiled = compile(&kernel.func, &opts);
        let emulated = emulate(&compiled.program);
        let mut machine = Machine::new(emulated);
        for (off, bytes) in &kernel.heap_init {
            machine.mem.write_bytes(opts.heap_base + *off as u64, bytes);
            machine.mem.write_bytes(EMULATION_BASE + *off as u64, bytes);
        }
        let result = machine.run(4_000_000_000);
        assert_eq!(result.stop, Stop::Halted, "{} emulation did not halt", kernel.name);
        assert_eq!(result.regs[0], kernel.expected, "{} emulation wrong result", kernel.name);

        let ratio = result.cycles as f64 / hw.cycles as f64;
        ratios.push(ratio);
        rows.push(vec![
            kernel.name.clone(),
            hw.cycles.to_string(),
            result.cycles.to_string(),
            format!("{:.1}%", ratio * 100.0),
        ]);
    }
    print_table(
        "Figure 2: emulated HFI vs. simulated HFI (cycle simulator)",
        &["kernel", "hfi cycles", "emulated cycles", "emu/hfi"],
        &rows,
    );
    let gm = geomean(&ratios);
    println!(
        "\n  geomean emu/hfi = {:.2}% (geomean |diff| = {:.2}%)",
        gm * 100.0,
        (geomean(&ratios.iter().map(|r| r.max(1.0 / r)).collect::<Vec<_>>()) - 1.0) * 100.0
    );
    println!("  paper: overheads 98%-108% of simulation, geomean diff 1.62%");
}
