//! Figure 2: accuracy of the compiler-based HFI emulation.
//!
//! Runs each Sightglass-like kernel on all three executor vehicles —
//! real HFI instructions on the cycle simulator, the Appendix A.2
//! emulation transform on the same simulator, and the calibrated
//! functional interpreter — and reports the emulated runtime as a
//! percentage of the simulated runtime. The paper finds 98%–108% with a
//! geomean difference of 1.62%.

use hfi_bench::{fig2_grid, geomean, print_table, Harness};

fn main() {
    let mut harness = Harness::from_env("fig2");
    let cells = fig2_grid(&harness);

    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    for cell in &cells {
        let ratio = cell.emulated.cycles as f64 / cell.cycle.cycles as f64;
        ratios.push(ratio);
        rows.push(vec![
            cell.kernel.clone(),
            cell.cycle.cycles.to_string(),
            cell.emulated.cycles.to_string(),
            format!("{:.1}%", ratio * 100.0),
            format!("{:.0}", cell.functional.cycles),
        ]);
    }
    print_table(
        "Figure 2: emulated HFI vs. simulated HFI (cycle simulator)",
        &[
            "kernel",
            "hfi cycles",
            "emulated cycles",
            "emu/hfi",
            "functional cycles",
        ],
        &rows,
    );
    let gm = geomean(&ratios);
    println!(
        "\n  geomean emu/hfi = {:.2}% (geomean |diff| = {:.2}%)",
        gm * 100.0,
        (geomean(&ratios.iter().map(|r| r.max(1.0 / r)).collect::<Vec<_>>()) - 1.0) * 100.0
    );
    println!("  paper: overheads 98%-108% of simulation, geomean diff 1.62%");

    for cell in &cells {
        let context = [
            ("kernel", cell.kernel.clone()),
            ("isolation", "hfi".to_string()),
        ];
        harness.record(&context, &cell.cycle.record);
        harness.record(&context, &cell.emulated.record);
        harness.record(&context, &cell.functional);
    }
    harness.finish().expect("write bench records");
}
