//! Figure 3: SPEC INT 2006-like suite, normalized against guard pages.
//!
//! Each kernel runs on the cycle simulator under explicit bounds checks,
//! guard pages, and HFI. The paper reports bounds checks at
//! +18.74%..+48.34% (median 34.67%) and HFI at 92.51%..107.45% of guard
//! pages (median 95.88%), with 445.gobmk the one benchmark where HFI
//! loses — i-cache pressure from longer hmov encodings.

use hfi_bench::{fig3_grid, geomean, median, print_table, Fig3Cell, Harness, FIG3_SCHEMES};
use hfi_wasm::compiler::Isolation;

fn main() {
    let mut harness = Harness::from_env("fig3");
    let cells = fig3_grid(&harness);

    let mut rows = Vec::new();
    let mut bounds_norm = Vec::new();
    let mut hfi_norm = Vec::new();
    // Suite-major order: each kernel's cells are one contiguous chunk in
    // FIG3_SCHEMES order (guard, bounds, hfi).
    for chunk in cells.chunks(FIG3_SCHEMES.len()) {
        let by_scheme = |iso: Isolation| -> &Fig3Cell {
            chunk
                .iter()
                .find(|c| c.isolation == iso)
                .expect("complete grid chunk")
        };
        let guard = by_scheme(Isolation::GuardPages);
        let bounds = by_scheme(Isolation::BoundsChecks);
        let hfi = by_scheme(Isolation::Hfi);
        let b = bounds.run.cycles as f64 / guard.run.cycles as f64;
        let h = hfi.run.cycles as f64 / guard.run.cycles as f64;
        bounds_norm.push(b);
        hfi_norm.push(h);
        rows.push(vec![
            guard.kernel.clone(),
            guard.run.cycles.to_string(),
            format!("{:.1}%", b * 100.0),
            format!("{:.1}%", h * 100.0),
        ]);
    }
    print_table(
        "Figure 3: runtime normalized to guard pages (100%)",
        &["benchmark", "guard cycles", "bounds-checks", "hfi"],
        &rows,
    );
    println!(
        "\n  bounds-checks: median {:.1}%, geomean {:.1}%  (paper: median 134.67%, geomean 134.7%)",
        median(&bounds_norm) * 100.0,
        geomean(&bounds_norm) * 100.0
    );
    println!(
        "  hfi:           median {:.1}%, geomean {:.1}%  (paper: median 95.88%, geomean 96.85%)",
        median(&hfi_norm) * 100.0,
        geomean(&hfi_norm) * 100.0
    );

    for cell in &cells {
        harness.record(
            &[
                ("kernel", cell.kernel.clone()),
                ("isolation", cell.isolation.to_string()),
            ],
            &cell.run.record,
        );
    }
    harness.finish().expect("write bench records");
}
