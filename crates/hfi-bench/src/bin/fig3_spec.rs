//! Figure 3: SPEC INT 2006-like suite, normalized against guard pages.
//!
//! Each kernel runs on the cycle simulator under explicit bounds checks,
//! guard pages, and HFI. The paper reports bounds checks at
//! +18.74%..+48.34% (median 34.67%) and HFI at 92.51%..107.45% of guard
//! pages (median 95.88%), with 445.gobmk the one benchmark where HFI
//! loses — i-cache pressure from longer hmov encodings.

use hfi_bench::{geomean, median, print_table, run_on_machine};
use hfi_wasm::compiler::Isolation;
use hfi_wasm::kernels::speclike;

fn main() {
    let mut rows = Vec::new();
    let mut bounds_norm = Vec::new();
    let mut hfi_norm = Vec::new();
    for kernel in speclike::suite(1) {
        let guard = run_on_machine(&kernel, Isolation::GuardPages);
        let bounds = run_on_machine(&kernel, Isolation::BoundsChecks);
        let hfi = run_on_machine(&kernel, Isolation::Hfi);
        let b = bounds.cycles as f64 / guard.cycles as f64;
        let h = hfi.cycles as f64 / guard.cycles as f64;
        bounds_norm.push(b);
        hfi_norm.push(h);
        rows.push(vec![
            kernel.name.clone(),
            guard.cycles.to_string(),
            format!("{:.1}%", b * 100.0),
            format!("{:.1}%", h * 100.0),
        ]);
    }
    print_table(
        "Figure 3: runtime normalized to guard pages (100%)",
        &["benchmark", "guard cycles", "bounds-checks", "hfi"],
        &rows,
    );
    println!(
        "\n  bounds-checks: median {:.1}%, geomean {:.1}%  (paper: median 134.67%, geomean 134.7%)",
        median(&bounds_norm) * 100.0,
        geomean(&bounds_norm) * 100.0
    );
    println!(
        "  hfi:           median {:.1}%, geomean {:.1}%  (paper: median 95.88%, geomean 96.85%)",
        median(&hfi_norm) * 100.0,
        geomean(&hfi_norm) * 100.0
    );
}
