//! §6.2 / Figure 4: sandboxed font and image rendering in Firefox.
//!
//! Image decoding happens one row of blocks per sandbox invocation, so
//! each row pays a (serialized, for HFI) transition pair; larger images
//! amortize it. The paper: HFI beats guard pages by 14%–37% on images and
//! 8.7% on font reflow; more-compressed images benefit more.

use hfi_bench::{print_table, run_functional_record, Harness};
use hfi_core::{CostModel, TransitionScheme};
use hfi_sim::RunRecord;
use hfi_wasm::compiler::Isolation;
use hfi_wasm::kernels::render;
use hfi_wasm::Transition;

/// (label, blocks_x, blocks_y) — block rows drive the transition count.
const SIZES: [(&str, u32, u32); 3] = [("1920p", 24, 16), ("480p", 8, 6), ("240p", 4, 4)];
/// (label, quality level): higher quality level = more compressed input =
/// more coefficient work.
const QUALITIES: [(&str, u32); 3] = [("best", 3), ("default", 2), ("none", 1)];

const SCHEMES: [Isolation; 3] = [
    Isolation::BoundsChecks,
    Isolation::GuardPages,
    Isolation::Hfi,
];

struct ImageCell {
    config: String,
    scheme: Isolation,
    total: f64,
    record: RunRecord,
}

fn main() {
    let mut harness = Harness::from_env("fig4");
    let costs = CostModel::default();

    // --- Image decode: one cell per (quality × size × scheme). ---
    let mut grid = Vec::new();
    for (qlabel, quality) in harness.subset(QUALITIES.to_vec(), 1) {
        for (slabel, bx, by) in harness.subset(SIZES.to_vec(), 1) {
            for scheme in SCHEMES {
                grid.push((format!("{qlabel}/{slabel}"), quality, bx, by, scheme));
            }
        }
    }
    let cells = harness.run_grid(&grid, |(config, quality, bx, by, scheme)| {
        let kernel = render::jpeg_like(*quality, *bx, *by);
        let record = run_functional_record(&kernel, *scheme);
        // One sandbox invocation per block row (Fig. 4's
        // per-line-of-pixels enters/exits). Firefox's Wasm2c integration
        // uses springboard-style transitions (context save/clear) for the
        // software schemes; HFI adds its serialized enter/exit on top of
        // a plain call.
        let transition = Transition::for_scheme(match scheme {
            Isolation::Hfi => TransitionScheme::HfiSerialized,
            _ => TransitionScheme::FullSpringboard,
        })
        .round_trip_cycles(&costs) as f64;
        ImageCell {
            config: config.clone(),
            scheme: *scheme,
            total: record.cycles + *by as f64 * transition,
            record,
        }
    });

    let mut rows = Vec::new();
    for chunk in cells.chunks(SCHEMES.len()) {
        let total = |iso: Isolation| -> f64 {
            chunk
                .iter()
                .find(|c| c.scheme == iso)
                .expect("complete chunk")
                .total
        };
        let guard_total = total(Isolation::GuardPages);
        let hfi_total = total(Isolation::Hfi);
        rows.push(vec![
            chunk[0].config.clone(),
            format!("{:.0}", total(Isolation::BoundsChecks)),
            format!("{:.0}", guard_total),
            format!("{:.0}", hfi_total),
            format!("{:+.1}%", (hfi_total / guard_total - 1.0) * 100.0),
        ]);
    }
    print_table(
        "Figure 4: image decode cycles (bounds / guard / hfi), per-row transitions",
        &["config", "bounds", "guard", "hfi", "hfi vs guard"],
        &rows,
    );
    for cell in &cells {
        harness.record(
            &[
                ("workload", format!("image/{}", cell.config)),
                ("isolation", cell.scheme.to_string()),
                ("total_cycles", format!("{:.0}", cell.total)),
            ],
            &cell.record,
        );
    }

    // --- Font rendering (§6.2: guard 1823 ms, bounds 2022 ms, HFI 1677 ms). ---
    let font = render::font_reflow(4);
    let reflows = harness.iters(10, 2) as f64;
    let font_cells = harness.run_grid(&SCHEMES, |scheme| run_functional_record(&font, *scheme));
    let guard_idx = SCHEMES
        .iter()
        .position(|s| *s == Isolation::GuardPages)
        .expect("guard pages in schemes");
    let guard_cycles = font_cells[guard_idx].cycles * reflows;
    let mut rows = Vec::new();
    for (scheme, record) in SCHEMES.iter().zip(&font_cells) {
        let cycles = record.cycles * reflows;
        rows.push(vec![
            scheme.to_string(),
            format!("{:.0}", cycles),
            format!("{:.1}%", cycles / guard_cycles * 100.0),
        ]);
        harness.record(
            &[
                ("workload", "font-reflow".to_string()),
                ("isolation", scheme.to_string()),
            ],
            record,
        );
    }
    print_table(
        "§6.2 font reflow x10 (normalized to guard pages)",
        &["scheme", "cycles", "vs guard"],
        &rows,
    );
    println!("\n  paper: font reflow guard 1823ms / bounds 2022ms (111%) / hfi 1677ms (92%)");
    println!("  paper: image decode hfi beats guard pages by 14%-37%");
    harness.finish().expect("write bench records");
}
