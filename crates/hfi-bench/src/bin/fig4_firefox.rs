//! §6.2 / Figure 4: sandboxed font and image rendering in Firefox.
//!
//! Image decoding happens one row of blocks per sandbox invocation, so
//! each row pays a (serialized, for HFI) transition pair; larger images
//! amortize it. The paper: HFI beats guard pages by 14%–37% on images and
//! 8.7% on font reflow; more-compressed images benefit more.

use hfi_bench::{print_table, run_functional};
use hfi_core::CostModel;
use hfi_wasm::compiler::Isolation;
use hfi_wasm::kernels::render;
use hfi_wasm::Transition;

/// (label, blocks_x, blocks_y) — block rows drive the transition count.
const SIZES: [(&str, u32, u32); 3] = [("1920p", 24, 16), ("480p", 8, 6), ("240p", 4, 4)];
/// (label, quality level): higher quality level = more compressed input =
/// more coefficient work.
const QUALITIES: [(&str, u32); 3] = [("best", 3), ("default", 2), ("none", 1)];

fn main() {
    let costs = CostModel::default();
    let schemes = [Isolation::BoundsChecks, Isolation::GuardPages, Isolation::Hfi];
    let mut rows = Vec::new();
    for (qlabel, quality) in QUALITIES {
        for (slabel, bx, by) in SIZES {
            let kernel = render::jpeg_like(quality, bx, by);
            let mut cells = vec![format!("{qlabel}/{slabel}")];
            let mut guard_total = 0.0;
            for scheme in schemes {
                let compute = run_functional(&kernel, scheme);
                // One sandbox invocation per block row (Fig. 4's
                // per-line-of-pixels enters/exits).
                // Firefox's Wasm2c integration uses springboard-style
                // transitions (context save/clear) for the software
                // schemes; HFI adds its serialized enter/exit on top of a
                // plain call.
                let transition = match scheme {
                    Isolation::Hfi => Transition::HfiSerialized.round_trip_cycles(&costs),
                    _ => Transition::Springboard.round_trip_cycles(&costs),
                } as f64;
                let total = compute + by as f64 * transition;
                if scheme == Isolation::GuardPages {
                    guard_total = total;
                }
                cells.push(format!("{:.0}", total));
            }
            let hfi_total: f64 = cells[3].parse().expect("numeric cell");
            cells.push(format!("{:+.1}%", (hfi_total / guard_total - 1.0) * 100.0));
            rows.push(cells);
        }
    }
    print_table(
        "Figure 4: image decode cycles (bounds / guard / hfi), per-row transitions",
        &["config", "bounds", "guard", "hfi", "hfi vs guard"],
        &rows,
    );

    // Font rendering (§6.2: guard 1823 ms, bounds 2022 ms, HFI 1677 ms).
    let font = render::font_reflow(4);
    let mut rows = Vec::new();
    let reflows = 10.0;
    let guard_ms = run_functional(&font, Isolation::GuardPages);
    for scheme in schemes {
        let cycles = run_functional(&font, scheme) * reflows;
        rows.push(vec![
            scheme.to_string(),
            format!("{:.0}", cycles),
            format!("{:.1}%", cycles / (guard_ms * reflows) * 100.0),
        ]);
    }
    print_table(
        "§6.2 font reflow x10 (normalized to guard pages)",
        &["scheme", "cycles", "vs guard"],
        &rows,
    );
    println!("\n  paper: font reflow guard 1823ms / bounds 2022ms (111%) / hfi 1677ms (92%)");
    println!("  paper: image decode hfi beats guard pages by 14%-37%");
}
