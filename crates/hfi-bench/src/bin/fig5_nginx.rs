//! Figure 5 / §6.4.2: NGINX with sandboxed OpenSSL — throughput vs. file
//! size under no protection, MPK, and HFI's native sandbox.

use hfi_bench::{print_table, Harness};
use hfi_native::nginx::{Protection, ServerModel, FIG5_FILE_SIZES};

const PROTECTIONS: [Protection; 3] = [Protection::None, Protection::Mpk, Protection::HfiNative];

fn main() {
    let mut harness = Harness::from_env("fig5");
    let model = ServerModel::default();
    let sizes = harness.subset(FIG5_FILE_SIZES.to_vec(), 3);
    let grid: Vec<(u64, Protection)> = sizes
        .iter()
        .flat_map(|size| PROTECTIONS.iter().map(move |p| (*size, *p)))
        .collect();
    let cells = harness.run_grid(&grid, |(size, protection)| {
        (
            model.request(*size, *protection),
            model.overhead(*size, *protection),
        )
    });

    let mut rows = Vec::new();
    for (chunk, size) in cells.chunks(PROTECTIONS.len()).zip(&sizes) {
        let (none, _) = &chunk[0];
        let (mpk, mpk_over) = &chunk[1];
        let (hfi, hfi_over) = &chunk[2];
        rows.push(vec![
            format!("{}K", size >> 10),
            format!("{:.0}", none.requests_per_second),
            format!("{:.0} ({:.1}%)", mpk.requests_per_second, mpk_over * 100.0),
            format!("{:.0} ({:.1}%)", hfi.requests_per_second, hfi_over * 100.0),
        ]);
    }
    print_table(
        "Figure 5: NGINX throughput (req/s) and overhead vs. unprotected",
        &["file size", "unprotected", "mpk", "hfi-native"],
        &rows,
    );
    println!("\n  paper: HFI overhead 2.9%-6.1%; MPK 1.9%-5.3% (HFI slightly above MPK");
    println!("  because it moves region metadata into registers on each transition)");

    for ((size, protection), (request, overhead)) in grid.iter().zip(&cells) {
        harness.note(&[
            ("file_bytes", size.to_string()),
            ("protection", protection.to_string()),
            (
                "requests_per_second",
                format!("{:.1}", request.requests_per_second),
            ),
            ("overhead", format!("{:.4}", overhead)),
        ]);
    }
    harness.finish().expect("write bench records");
}
