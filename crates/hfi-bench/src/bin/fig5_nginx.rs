//! Figure 5 / §6.4.2: NGINX with sandboxed OpenSSL — throughput vs. file
//! size under no protection, MPK, and HFI's native sandbox.

use hfi_bench::print_table;
use hfi_native::nginx::{Protection, ServerModel, FIG5_FILE_SIZES};

fn main() {
    let model = ServerModel::default();
    let mut rows = Vec::new();
    for &size in &FIG5_FILE_SIZES {
        let none = model.request(size, Protection::None);
        let mpk = model.request(size, Protection::Mpk);
        let hfi = model.request(size, Protection::HfiNative);
        rows.push(vec![
            format!("{}K", size >> 10),
            format!("{:.0}", none.requests_per_second),
            format!("{:.0} ({:.1}%)", mpk.requests_per_second, model.overhead(size, Protection::Mpk) * 100.0),
            format!("{:.0} ({:.1}%)", hfi.requests_per_second, model.overhead(size, Protection::HfiNative) * 100.0),
        ]);
    }
    print_table(
        "Figure 5: NGINX throughput (req/s) and overhead vs. unprotected",
        &["file size", "unprotected", "mpk", "hfi-native"],
        &rows,
    );
    println!("\n  paper: HFI overhead 2.9%-6.1%; MPK 1.9%-5.3% (HFI slightly above MPK");
    println!("  because it moves region metadata into registers on each transition)");
}
