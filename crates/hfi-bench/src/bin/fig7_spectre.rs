//! Figure 7 / §5.3: the Spectre-PHT proof of concept, with and without
//! HFI, plus the Spectre-BTB variant.
//!
//! Prints probe-access latencies around the secret byte: without HFI the
//! secret's slot is the one warm (low-latency) line; with HFI no
//! latency falls below the threshold at the secret.

use hfi_bench::{print_table, Harness};
use hfi_spectre::{btb, pht, Protection, HIT_THRESHOLD};

type Attack = fn(Protection) -> hfi_spectre::AttackOutcome;

fn main() {
    let mut harness = Harness::from_env("fig7");
    let attacks: [(&str, Attack); 2] = [
        ("Spectre-PHT (SafeSide-style)", pht::run_attack),
        ("Spectre-BTB (TransientFail-style)", btb::run_attack),
    ];
    let grid: Vec<(usize, Protection)> = (0..attacks.len())
        .flat_map(|i| [Protection::None, Protection::Hfi].map(|p| (i, p)))
        .collect();
    let outcomes = harness.run_grid(&grid, |(attack, protection)| {
        attacks[*attack].1(*protection)
    });

    for ((attack, protection), outcome) in grid.iter().zip(&outcomes) {
        let name = attacks[*attack].0;
        if *protection == Protection::None {
            println!("\n#### {name} ####");
        }
        let secret = outcome.secret as usize;
        let mut rows = Vec::new();
        for guess in (secret.saturating_sub(2))..=(secret + 2).min(255) {
            rows.push(vec![
                format!("{guess}{}", if guess == secret { " <- secret" } else { "" }),
                outcome.latencies[guess].to_string(),
                (if outcome.latencies[guess] < HIT_THRESHOLD {
                    "HIT"
                } else {
                    "miss"
                })
                .to_string(),
            ]);
        }
        print_table(
            &format!("{protection:?}: probe latencies near the secret"),
            &["byte guess", "latency (cycles)", "cache"],
            &rows,
        );
        println!(
            "  leaked secret: {} | warm slots: {:?} | wrong-path loads: {}",
            outcome.leaked(),
            outcome.warm_indices,
            outcome.speculative_loads
        );
        harness.note(&[
            ("attack", name.to_string()),
            ("protection", format!("{protection:?}")),
            ("leaked", outcome.leaked().to_string()),
            ("speculative_loads", outcome.speculative_loads.to_string()),
            ("warm_slots", format!("{:?}", outcome.warm_indices)),
        ]);
    }
    println!("\n  paper (Fig. 7): clear sub-threshold signal at the secret without HFI;");
    println!("  no probe latency below the threshold with HFI regions installed.");
    harness.finish().expect("write bench records");
}
