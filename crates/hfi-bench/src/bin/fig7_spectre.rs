//! Figure 7 / §5.3: the Spectre-PHT proof of concept, with and without
//! HFI, plus the Spectre-BTB variant.
//!
//! Prints probe-access latencies around the secret byte: without HFI the
//! secret's slot is the one warm (low-latency) line; with HFI no
//! latency falls below the threshold at the secret.

use hfi_bench::print_table;
use hfi_spectre::{btb, pht, Protection, HIT_THRESHOLD};

fn main() {
    let attacks: [(&str, fn(Protection) -> hfi_spectre::AttackOutcome); 2] = [
        ("Spectre-PHT (SafeSide-style)", pht::run_attack),
        ("Spectre-BTB (TransientFail-style)", btb::run_attack),
    ];
    for (name, run) in attacks {
        println!("\n#### {name} ####");
        for protection in [Protection::None, Protection::Hfi] {
            let outcome = run(protection);
            let secret = outcome.secret as usize;
            let mut rows = Vec::new();
            for guess in (secret.saturating_sub(2))..=(secret + 2).min(255) {
                rows.push(vec![
                    format!("{guess}{}", if guess == secret { " <- secret" } else { "" }),
                    outcome.latencies[guess].to_string(),
                    (if outcome.latencies[guess] < HIT_THRESHOLD { "HIT" } else { "miss" })
                        .to_string(),
                ]);
            }
            print_table(
                &format!("{protection:?}: probe latencies near the secret"),
                &["byte guess", "latency (cycles)", "cache"],
                &rows,
            );
            println!(
                "  leaked secret: {} | warm slots: {:?} | wrong-path loads: {}",
                outcome.leaked(),
                outcome.warm_indices,
                outcome.speculative_loads
            );
        }
    }
    println!("\n  paper (Fig. 7): clear sub-threshold signal at the secret without HFI;");
    println!("  no probe latency below the threshold with HFI regions installed.");
}
