//! §2: function chaining — an N-stage FaaS pipeline composed in-process
//! (HFI sandbox hops) vs. as one process per stage (IPC hops).

use hfi_bench::print_table;
use hfi_core::CostModel;
use hfi_faas::{evaluate_chain, Composition, ProfiledWorkload};
use hfi_wasm::kernels::faas;

fn main() {
    let costs = CostModel::default();
    let workload = ProfiledWorkload::profile(&faas::templated_html(1));
    println!(
        "pipeline stage: {} ({:.0} cycles of compute per stage)",
        workload.name, workload.base_cycles
    );
    let mut rows = Vec::new();
    for stages in [2usize, 4, 8, 16] {
        for composition in [
            Composition::HfiSwitchOnExit,
            Composition::HfiSerialized,
            Composition::ProcessPerStage,
        ] {
            let chain = evaluate_chain(composition, stages, workload.base_cycles, &costs);
            rows.push(vec![
                stages.to_string(),
                composition.to_string(),
                format!("{:.1}", chain.total_us),
                format!("{:.2}%", chain.transition_cycles / chain.total_cycles * 100.0),
            ]);
        }
    }
    print_table(
        "Function chaining: end-to-end latency by composition",
        &["stages", "composition", "end-to-end us", "hop overhead"],
        &rows,
    );
    println!("\n  paper S2: in-process hops are function-call-priced; IPC is 1000x-10000x a call,");
    println!("  which is why FaaS providers want many sandboxes in ONE address space.");
}
