//! §2: function chaining — an N-stage FaaS pipeline composed in-process
//! (HFI sandbox hops) vs. as one process per stage (IPC hops).

use hfi_bench::{print_table, Harness};
use hfi_core::CostModel;
use hfi_faas::{evaluate_chain, Composition, ProfiledWorkload};
use hfi_wasm::kernels::faas;

fn main() {
    let mut harness = Harness::from_env("micro_chaining");
    let costs = CostModel::default();
    let workload = ProfiledWorkload::profile(&faas::templated_html(1));
    println!(
        "pipeline stage: {} ({:.0} cycles of compute per stage)",
        workload.name, workload.base_cycles
    );
    let stages = harness.subset(vec![2usize, 4, 8, 16], 2);
    let grid: Vec<(usize, Composition)> = stages
        .iter()
        .flat_map(|n| {
            [
                Composition::HfiSwitchOnExit,
                Composition::HfiSerialized,
                Composition::ProcessPerStage,
            ]
            .map(|c| (*n, c))
        })
        .collect();
    let chains = harness.run_grid(&grid, |(n, composition)| {
        evaluate_chain(*composition, *n, workload.base_cycles, &costs)
    });

    let mut rows = Vec::new();
    for ((n, composition), chain) in grid.iter().zip(&chains) {
        rows.push(vec![
            n.to_string(),
            composition.to_string(),
            format!("{:.1}", chain.total_us),
            format!(
                "{:.2}%",
                chain.transition_cycles / chain.total_cycles * 100.0
            ),
        ]);
        harness.note(&[
            ("stages", n.to_string()),
            ("composition", composition.to_string()),
            ("total_us", format!("{:.3}", chain.total_us)),
            (
                "transition_cycles",
                format!("{:.0}", chain.transition_cycles),
            ),
            ("total_cycles", format!("{:.0}", chain.total_cycles)),
        ]);
    }
    print_table(
        "Function chaining: end-to-end latency by composition",
        &["stages", "composition", "end-to-end us", "hop overhead"],
        &rows,
    );
    println!("\n  paper S2: in-process hops are function-call-priced; IPC is 1000x-10000x a call,");
    println!("  which is why FaaS providers want many sandboxes in ONE address space.");
    harness.finish().expect("write bench records");
}
