//! §2: function chaining — an N-stage FaaS pipeline composed in-process
//! (HFI sandbox hops) vs. as one process per stage (IPC hops).
//!
//! Beyond the modeled compositions, an executed table prices each hop
//! with the *measured* per-scheme round trip from
//! [`hfi_bench::transitions`], so chain overhead tracks the real
//! enter/exit instructions the compiler emits.

use hfi_bench::{print_table, transitions, Harness};
use hfi_core::{CostModel, TransitionScheme};
use hfi_faas::{evaluate_chain, Composition, ProfiledWorkload};
use hfi_wasm::kernels::faas;

fn main() {
    let mut harness = Harness::from_env("micro_chaining");
    let costs = CostModel::default();
    let workload = ProfiledWorkload::profile(&faas::templated_html(1));
    println!(
        "pipeline stage: {} ({:.0} cycles of compute per stage)",
        workload.name, workload.base_cycles
    );
    let stages = harness.subset(vec![2usize, 4, 8, 16], 2);
    let grid: Vec<(usize, Composition)> = stages
        .iter()
        .flat_map(|n| {
            [
                Composition::HfiSwitchOnExit,
                Composition::HfiSerialized,
                Composition::ProcessPerStage,
            ]
            .map(|c| (*n, c))
        })
        .collect();
    let chains = harness.run_grid(&grid, |(n, composition)| {
        evaluate_chain(*composition, *n, workload.base_cycles, &costs)
    });

    let mut rows = Vec::new();
    for ((n, composition), chain) in grid.iter().zip(&chains) {
        rows.push(vec![
            n.to_string(),
            composition.to_string(),
            format!("{:.1}", chain.total_us),
            format!(
                "{:.2}%",
                chain.transition_cycles / chain.total_cycles * 100.0
            ),
        ]);
        harness.note(&[
            ("stages", n.to_string()),
            ("composition", composition.to_string()),
            ("total_us", format!("{:.3}", chain.total_us)),
            (
                "transition_cycles",
                format!("{:.0}", chain.transition_cycles),
            ),
            ("total_cycles", format!("{:.0}", chain.total_cycles)),
        ]);
    }
    print_table(
        "Function chaining: end-to-end latency by composition",
        &["stages", "composition", "end-to-end us", "hop overhead"],
        &rows,
    );
    println!("\n  paper S2: in-process hops are function-call-priced; IPC is 1000x-10000x a call,");
    println!("  which is why FaaS providers want many sandboxes in ONE address space.");

    // Executed hops: the same pipeline priced with each scheme's
    // measured round trip (scale-1 probe, functional tier), so the
    // chain table reflects the springboards the compiler really emits.
    let measured = harness.run_grid(&TransitionScheme::ALL, |s| transitions::measure(*s, 1));
    let mut rows = Vec::new();
    for m in &measured {
        for n in &stages {
            // N stages -> N enter/exit round trips bracketing each body.
            let hop_cycles = m.round_trip_functional * *n as u64;
            let body_cycles = workload.base_cycles * *n as f64;
            let total = body_cycles + hop_cycles as f64;
            rows.push(vec![
                m.scheme.label().to_string(),
                n.to_string(),
                hop_cycles.to_string(),
                format!("{:.2}%", hop_cycles as f64 / total * 100.0),
            ]);
            harness.note(&[
                ("scheme", m.scheme.label().to_string()),
                ("stages", n.to_string()),
                ("executed_hop_cycles", hop_cycles.to_string()),
                ("total_cycles", format!("{:.0}", total)),
            ]);
        }
    }
    print_table(
        "Function chaining: executed per-scheme hop tax (functional tier)",
        &["scheme", "stages", "hop cycles", "hop overhead"],
        &rows,
    );
    harness.finish().expect("write bench records");
}
