//! §6.1 heap-growth microbenchmark: grow a Wasm heap from one page to
//! 4 GiB in 64 KiB increments. The paper: mprotect() takes 10.92 s, HFI
//! 370 ms — about 30x.

use hfi_bench::{print_table, Harness};
use hfi_wasm::compiler::Isolation;
use hfi_wasm::runtime::SandboxRuntime;

fn main() {
    let mut harness = Harness::from_env("micro_heap_growth");
    // Full mode grows to 4 GiB; smoke stops at 64 MiB.
    let steps = harness.iters(
        (4u64 << 30) / (64 << 10) - 1,
        (64u64 << 20) / (64 << 10) - 1,
    );
    let grid = [Isolation::GuardPages, Isolation::Hfi];
    let cells = harness.run_grid(&grid, |isolation| {
        let mut rt = SandboxRuntime::new(*isolation, 47);
        let id = rt.create_sandbox(1).expect("create");
        rt.reset_clock();
        for _ in 0..steps {
            rt.grow(id, 1).expect("grow");
        }
        (rt.elapsed_ns(), rt.space().stats().syscalls)
    });
    let (mprotect_ns, guard_syscalls) = cells[0];
    let (hfi_ns, hfi_syscalls) = cells[1];
    print_table(
        "§6.1: growing 1 page -> 4 GiB in 64 KiB steps",
        &["scheme", "total time", "syscalls"],
        &[
            vec![
                "mprotect (guard pages)".into(),
                format!("{:.1} ms", mprotect_ns / 1e6),
                guard_syscalls.to_string(),
            ],
            vec![
                "hfi_set_region".into(),
                format!("{:.1} ms", hfi_ns / 1e6),
                hfi_syscalls.to_string(),
            ],
        ],
    );
    println!(
        "\n  ratio: {:.1}x  (paper: 10.92s vs 370ms = 29.5x)",
        mprotect_ns / hfi_ns
    );

    for (isolation, (ns, syscalls)) in grid.iter().zip(&cells) {
        harness.note(&[
            ("isolation", isolation.to_string()),
            ("grow_steps", steps.to_string()),
            ("total_ns", format!("{ns:.0}")),
            ("syscalls", syscalls.to_string()),
        ]);
    }
    harness.finish().expect("write bench records");
}
