//! §6.1 register-pressure experiment: reserving 1 and 2 registers from
//! the allocator (what guard pages / bounds checks cost in registers).
//! Paper, on Wasmtime's Spidermonkey benchmark: 2.25% and 2.40%.

use hfi_bench::{print_table, run_on_machine_with};
use hfi_wasm::compiler::{CompileOptions, Isolation};
use hfi_wasm::kernels::speclike;

fn main() {
    // Register-hungry workloads sitting at the allocator's spill edge.
    let kernels = [speclike::h264_like(1), speclike::mcf_like(1), speclike::hmmer_like(1)];
    let mut rows = Vec::new();
    for kernel in &kernels {
        let mut base_cycles = 0.0;
        for reserved in 0u8..=2 {
            let mut opts = CompileOptions::new(Isolation::Hfi);
            opts.extra_reserved_regs = reserved;
            let run = run_on_machine_with(kernel, &opts);
            if reserved == 0 {
                base_cycles = run.cycles as f64;
            }
            rows.push(vec![
                kernel.name.clone(),
                reserved.to_string(),
                run.cycles.to_string(),
                run.compiled.stats.spilled_vregs.to_string(),
                format!("{:+.2}%", (run.cycles as f64 / base_cycles - 1.0) * 100.0),
            ]);
        }
    }
    print_table(
        "§6.1: cost of reserving registers from the allocator",
        &["kernel", "reserved regs", "cycles", "spilled vregs", "overhead"],
        &rows,
    );
    println!("\n  paper (Spidermonkey in Wasmtime): 1 reg -> 2.25%, 2 regs -> 2.40%");
}
