//! §6.1 register-pressure experiment: reserving 1 and 2 registers from
//! the allocator (what guard pages / bounds checks cost in registers).
//! Paper, on Wasmtime's Spidermonkey benchmark: 2.25% and 2.40%.

use hfi_bench::{print_table, run_on_machine_with, Harness};
use hfi_wasm::compiler::{CompileOptions, Isolation};
use hfi_wasm::kernels::speclike;

fn main() {
    let mut harness = Harness::from_env("micro_register_pressure");
    // Register-hungry workloads sitting at the allocator's spill edge.
    let kernels = harness.subset(
        vec![
            speclike::h264_like(1),
            speclike::mcf_like(1),
            speclike::hmmer_like(1),
        ],
        1,
    );
    let grid: Vec<(usize, u8)> = (0..kernels.len())
        .flat_map(|k| (0u8..=2).map(move |r| (k, r)))
        .collect();
    let cells = harness.run_grid(&grid, |(k, reserved)| {
        let mut opts = CompileOptions::new(Isolation::Hfi);
        opts.extra_reserved_regs = *reserved;
        run_on_machine_with(&kernels[*k], &opts)
    });

    let mut rows = Vec::new();
    let mut base_cycles = 0.0;
    for ((k, reserved), run) in grid.iter().zip(&cells) {
        if *reserved == 0 {
            base_cycles = run.cycles as f64;
        }
        rows.push(vec![
            kernels[*k].name.clone(),
            reserved.to_string(),
            run.cycles.to_string(),
            run.compiled.stats.spilled_vregs.to_string(),
            format!("{:+.2}%", (run.cycles as f64 / base_cycles - 1.0) * 100.0),
        ]);
        harness.record(
            &[
                ("kernel", kernels[*k].name.clone()),
                ("reserved_regs", reserved.to_string()),
                (
                    "spilled_vregs",
                    run.compiled.stats.spilled_vregs.to_string(),
                ),
            ],
            &run.record,
        );
    }
    print_table(
        "§6.1: cost of reserving registers from the allocator",
        &[
            "kernel",
            "reserved regs",
            "cycles",
            "spilled vregs",
            "overhead",
        ],
        &rows,
    );
    println!("\n  paper (Spidermonkey in Wasmtime): 1 reg -> 2.25%, 2 regs -> 2.40%");
    harness.finish().expect("write bench records");
}
