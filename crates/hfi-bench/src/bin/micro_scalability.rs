//! §6.3.2 / §2: concurrent-sandbox scalability. Guard pages burn 8 GiB of
//! address space per sandbox (16K sandboxes in 47 bits); HFI's footprint
//! is the heap alone (256K 1-GiB sandboxes in 48 bits).

use hfi_bench::{print_table, Harness};
use hfi_faas::max_concurrent_sandboxes;
use hfi_wasm::compiler::Isolation;

fn main() {
    let mut harness = Harness::from_env("micro_scalability");
    let grid = [
        (
            "guard pages, 47-bit VA (8 GiB each)",
            Isolation::GuardPages,
            47u32,
            4u64 << 30,
        ),
        ("hfi, 48-bit VA, 1 GiB heaps", Isolation::Hfi, 48, 1 << 30),
    ];
    let cells = harness.run_grid(&grid, |(_, isolation, va_bits, heap)| {
        max_concurrent_sandboxes(*isolation, *va_bits, *heap)
    });
    let rows: Vec<Vec<String>> = grid
        .iter()
        .zip(&cells)
        .map(|((label, ..), max)| vec![label.to_string(), max.to_string()])
        .collect();
    print_table(
        "§6.3.2: maximum concurrent sandboxes",
        &["configuration", "max sandboxes"],
        &rows,
    );
    println!(
        "\n  paper: ~16K with guard reservations (S2); 256,000 1-GiB sandboxes with HFI (S6.3.2)"
    );

    for ((_, isolation, va_bits, heap), max) in grid.iter().zip(&cells) {
        harness.note(&[
            ("isolation", isolation.to_string()),
            ("va_bits", va_bits.to_string()),
            ("heap_bytes", heap.to_string()),
            ("max_sandboxes", max.to_string()),
        ]);
    }
    harness.finish().expect("write bench records");
}
