//! §6.3.2 / §2: concurrent-sandbox scalability. Guard pages burn 8 GiB of
//! address space per sandbox (16K sandboxes in 47 bits); HFI's footprint
//! is the heap alone (256K 1-GiB sandboxes in 48 bits).

use hfi_bench::print_table;
use hfi_faas::max_concurrent_sandboxes;
use hfi_wasm::compiler::Isolation;

fn main() {
    let guard = max_concurrent_sandboxes(Isolation::GuardPages, 47, 4 << 30);
    let hfi_1g = max_concurrent_sandboxes(Isolation::Hfi, 48, 1 << 30);
    print_table(
        "§6.3.2: maximum concurrent sandboxes",
        &["configuration", "max sandboxes"],
        &[
            vec!["guard pages, 47-bit VA (8 GiB each)".into(), guard.to_string()],
            vec!["hfi, 48-bit VA, 1 GiB heaps".into(), hfi_1g.to_string()],
        ],
    );
    println!("\n  paper: ~16K with guard reservations (S2); 256,000 1-GiB sandboxes with HFI (S6.3.2)");
}
