//! §6.4.1: syscall interposition — HFI's microcode redirect vs.
//! Seccomp-bpf. Paper: Seccomp costs 2.1% more than HFI.

use hfi_bench::print_table;
use hfi_native::syscalls::{run_benchmark, Interposition};

fn main() {
    let iters = 2000;
    let runs: Vec<_> = [Interposition::None, Interposition::Hfi, Interposition::Seccomp]
        .into_iter()
        .map(|mechanism| run_benchmark(iters, mechanism))
        .collect();
    let hfi_cycles = runs[1].cycles as f64;
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|run| {
            vec![
                format!("{:?}", run.mechanism),
                run.cycles.to_string(),
                run.syscalls.to_string(),
                format!("{:+.2}%", (run.cycles as f64 / hfi_cycles - 1.0) * 100.0),
            ]
        })
        .collect();
    print_table(
        &format!("§6.4.1: open/read/close x{iters} under interposition"),
        &["mechanism", "cycles", "kernel syscalls", "vs hfi"],
        &rows,
    );
    println!("\n  paper: Seccomp-bpf imposes 2.1% over HFI interposition");
}
