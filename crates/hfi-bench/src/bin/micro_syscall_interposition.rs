//! §6.4.1: syscall interposition — HFI's microcode redirect vs.
//! Seccomp-bpf. Paper: Seccomp costs 2.1% more than HFI.

use hfi_bench::{print_table, Harness};
use hfi_native::syscalls::{run_benchmark, Interposition};

fn main() {
    let mut harness = Harness::from_env("micro_syscall_interposition");
    let iters = harness.iters(2000, 200);
    let grid = [
        Interposition::None,
        Interposition::Hfi,
        Interposition::Seccomp,
    ];
    let runs = harness.run_grid(&grid, |mechanism| run_benchmark(iters, *mechanism));

    let hfi_cycles = runs[1].cycles as f64;
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|run| {
            vec![
                format!("{:?}", run.mechanism),
                run.cycles.to_string(),
                run.syscalls.to_string(),
                format!("{:+.2}%", (run.cycles as f64 / hfi_cycles - 1.0) * 100.0),
            ]
        })
        .collect();
    print_table(
        &format!("§6.4.1: open/read/close x{iters} under interposition"),
        &["mechanism", "cycles", "kernel syscalls", "vs hfi"],
        &rows,
    );
    println!("\n  paper: Seccomp-bpf imposes 2.1% over HFI interposition");

    for run in &runs {
        harness.note(&[
            ("mechanism", format!("{:?}", run.mechanism)),
            ("iterations", iters.to_string()),
            ("cycles", run.cycles.to_string()),
            ("kernel_syscalls", run.syscalls.to_string()),
            (
                "syscalls_redirected",
                run.result.stats.syscalls_redirected.to_string(),
            ),
        ]);
    }
    harness.finish().expect("write bench records");
}
