//! §6.3.1: per-sandbox teardown cost for 2000 sandboxes under the three
//! policies. Paper: stock 25.7 µs, HFI-batched 23.1 µs (-10.1%),
//! batching without HFI 31.1 µs.

use hfi_bench::{print_table, Harness};
use hfi_faas::{teardown_experiment, TeardownPolicy};

fn main() {
    let mut harness = Harness::from_env("micro_teardown");
    let sandboxes = harness.iters(2000, 200) as usize;
    let grid = [
        TeardownPolicy::StockPerSandbox,
        TeardownPolicy::HfiBatched,
        TeardownPolicy::BatchedWithGuards,
    ];
    let results = harness.run_grid(&grid, |policy| {
        teardown_experiment(sandboxes, *policy).expect("experiment")
    });

    let stock_us = results[0].per_sandbox_us;
    let mut rows = Vec::new();
    for (policy, result) in grid.iter().zip(&results) {
        rows.push(vec![
            format!("{policy:?}"),
            format!("{:.1} us", result.per_sandbox_us),
            result.madvise_calls.to_string(),
            format!("{:+.1}%", (result.per_sandbox_us / stock_us - 1.0) * 100.0),
        ]);
        harness.note(&[
            ("policy", format!("{policy:?}")),
            ("sandboxes", sandboxes.to_string()),
            ("per_sandbox_us", format!("{:.3}", result.per_sandbox_us)),
            ("madvise_calls", result.madvise_calls.to_string()),
        ]);
    }
    print_table(
        &format!("§6.3.1: teardown cost per sandbox ({sandboxes} sandboxes)"),
        &["policy", "per-sandbox", "madvise calls", "vs stock"],
        &rows,
    );
    println!(
        "\n  paper: stock 25.7us | hfi-batched 23.1us (-10.1%) | batched-with-guards 31.1us (+21%)"
    );
    harness.finish().expect("write bench records");
}
