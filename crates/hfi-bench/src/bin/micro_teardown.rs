//! §6.3.1: per-sandbox teardown cost for 2000 sandboxes under the three
//! policies. Paper: stock 25.7 µs, HFI-batched 23.1 µs (-10.1%),
//! batching without HFI 31.1 µs.

use hfi_bench::print_table;
use hfi_faas::{teardown_experiment, TeardownPolicy};

fn main() {
    let mut rows = Vec::new();
    let mut stock_us = 0.0;
    for policy in [
        TeardownPolicy::StockPerSandbox,
        TeardownPolicy::HfiBatched,
        TeardownPolicy::BatchedWithGuards,
    ] {
        let result = teardown_experiment(2000, policy).expect("experiment");
        if policy == TeardownPolicy::StockPerSandbox {
            stock_us = result.per_sandbox_us;
        }
        rows.push(vec![
            format!("{policy:?}"),
            format!("{:.1} us", result.per_sandbox_us),
            result.madvise_calls.to_string(),
            format!("{:+.1}%", (result.per_sandbox_us / stock_us - 1.0) * 100.0),
        ]);
    }
    print_table(
        "§6.3.1: teardown cost per sandbox (2000 sandboxes)",
        &["policy", "per-sandbox", "madvise calls", "vs stock"],
        &rows,
    );
    println!("\n  paper: stock 25.7us | hfi-batched 23.1us (-10.1%) | batched-with-guards 31.1us (+21%)");
}
