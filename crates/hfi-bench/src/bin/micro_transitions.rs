//! §1/§2/§3.4: the context-switch cost spectrum, from zero-cost Wasm
//! transitions to process IPC, including HFI's serialized and
//! switch-on-exit variants.

use hfi_bench::print_table;
use hfi_core::CostModel;
use hfi_wasm::Transition;

fn main() {
    let costs = CostModel::default();
    let zero = Transition::ZeroCost.round_trip_cycles(&costs) as f64;
    let rows: Vec<Vec<String>> = Transition::ALL
        .iter()
        .map(|t| {
            let cycles = t.round_trip_cycles(&costs);
            vec![
                t.to_string(),
                cycles.to_string(),
                format!("{:.1}x", cycles as f64 / zero),
            ]
        })
        .collect();
    print_table(
        "Sandbox transition round-trip costs",
        &["mechanism", "cycles", "vs function call"],
        &rows,
    );
    println!("\n  paper: Wasm transitions are 'low 10s of cycles, roughly a function call';");
    println!("  IPC is 1000x-10000x; switch-on-exit removes most serialization cost (S4.5)");
}
