//! §1/§2/§3.4: the context-switch cost spectrum, from zero-cost Wasm
//! transitions to process IPC, including HFI's serialized and
//! switch-on-exit variants.

use hfi_bench::{print_table, Harness};
use hfi_core::CostModel;
use hfi_wasm::Transition;

fn main() {
    let mut harness = Harness::from_env("micro_transitions");
    let costs = CostModel::default();
    let cycles = harness.run_grid(&Transition::ALL, |t| t.round_trip_cycles(&costs));
    let zero = cycles[0] as f64;
    let rows: Vec<Vec<String>> = Transition::ALL
        .iter()
        .zip(&cycles)
        .map(|(t, c)| {
            vec![
                t.to_string(),
                c.to_string(),
                format!("{:.1}x", *c as f64 / zero),
            ]
        })
        .collect();
    print_table(
        "Sandbox transition round-trip costs",
        &["mechanism", "cycles", "vs function call"],
        &rows,
    );
    println!("\n  paper: Wasm transitions are 'low 10s of cycles, roughly a function call';");
    println!("  IPC is 1000x-10000x; switch-on-exit removes most serialization cost (S4.5)");

    for (t, c) in Transition::ALL.iter().zip(&cycles) {
        harness.note(&[
            ("mechanism", t.to_string()),
            ("round_trip_cycles", c.to_string()),
        ]);
    }
    harness.finish().expect("write bench records");
}
