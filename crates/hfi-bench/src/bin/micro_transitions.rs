//! §1/§2/§3.4: sandbox transition costs — the modeled cost spectrum
//! *and* the executed per-scheme round trips measured from real
//! prologue/epilogue instructions on both executor tiers.
//!
//! The modeled table keeps the paper's context-switch spectrum (Wasm
//! call → HFI variants → MPK → process IPC). The executed tables come
//! from [`hfi_bench::transitions`]: each [`TransitionScheme`] compiles
//! a pure-compute probe with its real springboard, and the overhead
//! over the unsandboxed body *is* the transition tax — so zeroing,
//! stack switching, and serialization are priced by execution, not by
//! constants. The amortization sweep then spreads that tax over
//! growing bodies, and everything lands in `BENCH_transitions.json`:
//!
//! ```text
//! cargo run --release -p hfi-bench --bin micro_transitions
//! ```
//!
//! Flags (plus the shared harness flags, `--smoke`, `--jobs N`):
//!
//! * `--check <baseline.json>` — gate the executed functional-tier
//!   round trips against the committed baseline (they are deterministic
//!   simulator cycles, so the comparison is exact), on top of the
//!   always-on elision invariant below.
//! * `--out <path>` — output path (default `BENCH_transitions.json`).
//!
//! # Gate semantics
//!
//! Two checks, both fatal:
//!
//! * **Elision invariant** (always on): the ZeroCost scheme's executed
//!   round trip must be at most *half* the FullSpringboard round trip
//!   on both tiers — the verified-elision payoff the tentpole claims.
//! * **Baseline** (`--check`): per scheme, `rt_func_<label>` must match
//!   the baseline exactly; `rt_cycle_<label>` may drift ±25% (pipeline
//!   model churn moves it legitimately, cost-model regressions blow
//!   through it).

use hfi_bench::{print_table, transitions, Harness};
use hfi_core::{CostModel, TransitionScheme};
use hfi_wasm::Transition;

fn extract_json_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let start = json.find(&needle)? + needle.len();
    let rest = &json[start..];
    let end = rest
        .find(|c: char| c != '.' && c != '-' && c != '+' && c != 'e' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let mut harness = Harness::from_env("micro_transitions");
    let mut check: Option<String> = None;
    let mut out_path = "BENCH_transitions.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" | "--baseline" => check = args.next(),
            "--out" => {
                if let Some(p) = args.next() {
                    out_path = p;
                }
            }
            _ => {}
        }
    }
    // Read the baseline before writing the output so gating the default
    // path never compares a run to itself.
    let baseline = check.as_ref().map(|path| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!(
                "[transitions] ERROR: cannot read baseline {path}: {e}\n\
                 [transitions] run once without --check to record a baseline first"
            );
            std::process::exit(2);
        })
    });

    // --- The modeled spectrum (kept: the paper's §2 context table). ---
    let costs = CostModel::default();
    let cycles = harness.run_grid(&Transition::ALL, |t| t.round_trip_cycles(&costs));
    let zero = cycles[0] as f64;
    let rows: Vec<Vec<String>> = Transition::ALL
        .iter()
        .zip(&cycles)
        .map(|(t, c)| {
            vec![
                t.to_string(),
                c.to_string(),
                format!("{:.1}x", *c as f64 / zero),
            ]
        })
        .collect();
    print_table(
        "Modeled transition round-trip spectrum",
        &["mechanism", "cycles", "vs function call"],
        &rows,
    );
    for (t, c) in Transition::ALL.iter().zip(&cycles) {
        harness.note(&[
            ("mechanism", t.to_string()),
            ("round_trip_cycles", c.to_string()),
        ]);
    }

    // --- Executed round trips: real prologues on both tiers. ---
    let measured = harness.run_grid(&TransitionScheme::ALL, |s| transitions::measure(*s, 1));
    let rows: Vec<Vec<String>> = measured
        .iter()
        .map(|m| {
            vec![
                m.scheme.label().to_string(),
                m.transition_ops.to_string(),
                format!("{:?}", m.verified),
                m.round_trip_functional.to_string(),
                m.round_trip_cycle.to_string(),
                Transition::for_scheme(m.scheme)
                    .round_trip_cycles(&costs)
                    .to_string(),
            ]
        })
        .collect();
    print_table(
        "Executed enter/exit round trips per scheme (overhead vs unsandboxed body)",
        &[
            "scheme",
            "springboard ops",
            "verified",
            "functional",
            "cycle machine",
            "modeled",
        ],
        &rows,
    );
    for m in &measured {
        harness.note(&[
            ("scheme", m.scheme.label().to_string()),
            ("rt_functional", m.round_trip_functional.to_string()),
            ("rt_cycle", m.round_trip_cycle.to_string()),
            ("transition_ops", m.transition_ops.to_string()),
        ]);
    }

    // --- Amortization: the same tax over growing bodies. ---
    let scales = harness.subset(vec![1u32, 2, 4, 8], 2);
    let grid: Vec<(TransitionScheme, u32)> = TransitionScheme::ALL
        .iter()
        .flat_map(|s| scales.iter().map(move |scale| (*s, *scale)))
        .collect();
    let points = harness.run_grid(&grid, |(scheme, scale)| {
        transitions::amortize(*scheme, *scale)
    });
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.scheme.label().to_string(),
                p.scale.to_string(),
                p.body_cycles.to_string(),
                p.total_cycles.to_string(),
                p.overhead_cycles.to_string(),
                format!("{:.2}%", p.overhead_pct),
            ]
        })
        .collect();
    print_table(
        "Amortization: executed transition tax vs body size (functional tier)",
        &["scheme", "scale", "body", "total", "overhead", "overhead %"],
        &rows,
    );
    println!("\n  paper: Wasm transitions are 'low 10s of cycles, roughly a function call';");
    println!("  IPC is 1000x-10000x; switch-on-exit removes most serialization cost (S4.5);");
    println!("  Kolosick-style elision drops the springboard tax when the verifier proves it.");
    for p in &points {
        harness.note(&[
            ("scheme", p.scheme.label().to_string()),
            ("scale", p.scale.to_string()),
            ("body_cycles", p.body_cycles.to_string()),
            ("total_cycles", p.total_cycles.to_string()),
            ("overhead_cycles", p.overhead_cycles.to_string()),
        ]);
    }

    // --- BENCH_transitions.json. ---
    let mut json = String::from("{\"figure\":\"transitions\"");
    json.push_str(&format!(
        ",\"mode\":\"{}\"",
        if harness.smoke() { "smoke" } else { "full" }
    ));
    for m in &measured {
        json.push_str(&format!(
            ",\"rt_func_{0}\":{1},\"rt_cycle_{0}\":{2}",
            m.scheme.label(),
            m.round_trip_functional,
            m.round_trip_cycle
        ));
    }
    json.push_str(",\"amortization\":[");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"scheme\":\"{}\",\"scale\":{},\"body_cycles\":{},\"total_cycles\":{},\
             \"overhead_cycles\":{},\"overhead_pct\":{:.3}}}",
            p.scheme.label(),
            p.scale,
            p.body_cycles,
            p.total_cycles,
            p.overhead_cycles,
            p.overhead_pct
        ));
    }
    json.push_str("]}");
    std::fs::write(&out_path, format!("{json}\n")).expect("write transitions json");
    eprintln!("[transitions] wrote {out_path}");
    harness.finish().expect("write bench records");

    // --- Gates. ---
    let mut failed = false;
    let by = |s: TransitionScheme| {
        measured
            .iter()
            .find(|m| m.scheme == s)
            .expect("all schemes measured")
    };
    let zero = by(TransitionScheme::ZeroCost);
    let spring = by(TransitionScheme::FullSpringboard);
    for (tier, z, s) in [
        (
            "functional",
            zero.round_trip_functional,
            spring.round_trip_functional,
        ),
        ("cycle", zero.round_trip_cycle, spring.round_trip_cycle),
    ] {
        println!(
            "  elision [{tier}]: zero-cost {z} vs full-springboard {s} ({:.1}x)",
            s as f64 / z.max(1) as f64
        );
        if z * 2 > s {
            eprintln!(
                "[transitions] FAIL: elided round trip must be <= half the springboard's \
                 ({tier}: {z} * 2 > {s})"
            );
            failed = true;
        }
    }
    if let Some(baseline) = baseline {
        for m in &measured {
            let func_key = format!("rt_func_{}", m.scheme.label());
            let cycle_key = format!("rt_cycle_{}", m.scheme.label());
            let missing = |key: &str| -> f64 {
                eprintln!(
                    "[transitions] ERROR: no \"{key}\" in the baseline; re-record it \
                     with this binary first"
                );
                std::process::exit(2);
            };
            let base_func =
                extract_json_number(&baseline, &func_key).unwrap_or_else(|| missing(&func_key));
            let base_cycle =
                extract_json_number(&baseline, &cycle_key).unwrap_or_else(|| missing(&cycle_key));
            // Functional cycles are a deterministic cost-model sum:
            // any drift is a real transition-cost change.
            if m.round_trip_functional as f64 != base_func {
                eprintln!(
                    "[transitions] FAIL: {} functional round trip changed: {} -> {} \
                     (re-record the baseline if intentional)",
                    m.scheme.label(),
                    base_func,
                    m.round_trip_functional
                );
                failed = true;
            }
            let lo = base_cycle * 0.75;
            let hi = base_cycle * 1.25;
            let measured_cycle = m.round_trip_cycle as f64;
            if measured_cycle < lo || measured_cycle > hi {
                eprintln!(
                    "[transitions] FAIL: {} cycle-machine round trip drifted past 25%: \
                     {} -> {}",
                    m.scheme.label(),
                    base_cycle,
                    m.round_trip_cycle
                );
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("  transition checks: OK");
}
