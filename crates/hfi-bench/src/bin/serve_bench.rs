//! Offered-load sweeps over the `hfi-serve` scheduler — the serving
//! side of the paper's §6.3.2 density story, measured end to end.
//!
//! For each Fig. 3 isolation scheme the benchmark provisions ~1,200
//! warm tenants (kernel × replica, each a distinct FaaS function) over
//! the verifyset kernel suites, then drives deterministic open-loop
//! arrival schedules (seeded Poisson at several offered loads plus one
//! bursty MMPP level) through the sharded work-stealing scheduler on
//! the fused executor tier, and emits `BENCH_serving.json`:
//!
//! ```text
//! cargo run --release -p hfi-bench --bin serve_bench -- --smoke
//! ```
//!
//! Flags (plus the shared harness flags, `--smoke`, `--seed N`):
//!
//! * `--workers N` — scheduler worker threads (default: all cores).
//! * `--scheme <label|auto>` — transition scheme for the HFI tenants:
//!   a [`TransitionScheme`] label (e.g. `zero-cost`,
//!   `full-springboard`) pins every HFI tenant to that scheme; `auto`
//!   lets the pool pick the cheapest scheme whose elision proof the
//!   verifier accepts, per tenant. Default leaves the compiler default
//!   (so committed baselines stay comparable). Non-HFI schemes ignore
//!   the flag — they have no HFI springboard to vary.
//! * `--check <baseline.json>` (alias `--baseline`) — gate p99 latency
//!   (at the lowest Poisson load) and achieved throughput (at the
//!   highest) per scheme against the baseline file.
//! * `--out <path>` — output path (default `BENCH_serving.json`).
//!
//! # What the numbers mean
//!
//! * Latency is `finish - arrival` in *scheduler* time: an arrival that
//!   queued behind a saturated shard pays its queueing delay in full
//!   (the generator is open-loop — it never self-throttles).
//! * `warm_hit_rate` is the fraction of requests served from a warm
//!   pool instance. GuardPages caps at 512 resident instances in a
//!   42-bit address space (8 GiB guard reservation each), so with
//!   ~1,200 tenants it churns; HFI holds every tenant warm.
//! * `density_*` is the peak number of concurrently live sandbox
//!   instances per scheme, charged against the real `SandboxRuntime`.
//!
//! # Gate semantics
//!
//! `--check` compares, per scheme, `p99_ms_<scheme>` (must not grow by
//! more than [`REGRESSION_BUDGET`] plus [`P99_SLACK_MS`] of absolute
//! slack) and `achieved_rps_<scheme>` (must not shrink by more than
//! the budget). The baseline is read before the output file is
//! written, so gating against the committed `BENCH_serving.json` never
//! compares a run to itself; a missing or malformed baseline is a
//! usage error (exit 2). Latency budgets are wider than the throughput
//! benchmark's because tail latency on a shared CI host is inherently
//! noisier than aggregate sim-MIPS.

use std::sync::Arc;
use std::time::Duration;

use hfi_bench::{compile_cached, median, print_table, Harness, FIG3_SCHEMES, FUNCTIONAL_LIMIT};
use hfi_core::TransitionScheme;
use hfi_serve::{
    schedule, AdmitPolicy, Arrival, ArrivalProcess, Outcome, Request, Scheduler, TenantSpec, Tier,
    WarmPools,
};
use hfi_sim::Stop;
use hfi_wasm::compiler::{CompileOptions, Isolation};
use hfi_wasm::kernels::{sightglass, speclike};

/// How `--scheme` resolves the HFI tenants' transition scheme.
#[derive(Clone, Copy)]
enum SchemeChoice {
    /// Compiler default (what committed baselines were recorded with).
    Default,
    /// Per-tenant cheapest verified scheme via the warm pool's selector.
    Auto,
    /// Every HFI tenant pinned to one scheme.
    Fixed(TransitionScheme),
}

impl SchemeChoice {
    fn label(self) -> String {
        match self {
            SchemeChoice::Default => TransitionScheme::default().label().to_string(),
            SchemeChoice::Auto => "auto".to_string(),
            SchemeChoice::Fixed(s) => s.label().to_string(),
        }
    }
}

/// Allowed fractional regression (p99 growth / throughput shrink)
/// before `--check` fails. Tail latency on shared CI hosts is far
/// noisier than sim-MIPS, hence the wider budget than the throughput
/// benchmark's 20%.
const REGRESSION_BUDGET: f64 = 0.50;

/// Absolute slack added to the p99 ceiling. A smoke level serves only
/// a few dozen requests, so its p99 is nearly the max; measured on a
/// single-core container, back-to-back runs flap between 0.25 ms and
/// ~2 ms purely from host stalls. A real scheduling regression —
/// starvation, livelock, lost completions — overshoots this by orders
/// of magnitude (and trips the overload / achieved-rps / correctness
/// checks besides), so the generous slack costs no detection power.
const P99_SLACK_MS: f64 = 5.0;

/// Tenant floor: every scheme gets at least this many tenants so the
/// density comparison is about address space, not workload size.
const TENANT_FLOOR: usize = 1200;

/// Address-space width for the serving runtimes — 4 TiB, the same
/// setting `hfi-faas`'s Table 1 uses, where GuardPages caps at 512
/// sandboxes and HFI holds tens of thousands.
const VA_BITS: u32 = 42;

/// Per-sandbox heap reservation (64 MiB).
const MAX_HEAP: u64 = 64 << 20;

/// One measured (scheme × load level) cell.
struct LevelResult {
    scheme: String,
    level: String,
    offered_rps: f64,
    achieved_rps: f64,
    p50_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
    warm_hit_rate: f64,
    stolen: u64,
    overloaded: u64,
    requests: u64,
}

/// Per-scheme summary across all levels.
struct SchemeResult {
    scheme: String,
    density: u64,
    setup_warm_p50_us: f64,
    setup_cold_p50_us: f64,
    provisioned: usize,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn extract_json_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let start = json.find(&needle)? + needle.len();
    let rest = &json[start..];
    let end = rest
        .find(|c: char| c != '.' && c != '-' && c != '+' && c != 'e' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Paces the arrival schedule onto the scheduler in host time and
/// returns the epoch offset arrivals were rebased to.
fn drive(scheduler: &Scheduler, arrivals: &[Arrival]) -> u64 {
    let epoch = scheduler.now_ns();
    for arrival in arrivals {
        let target = epoch + arrival.at_ns;
        loop {
            let now = scheduler.now_ns();
            if now >= target {
                break;
            }
            let gap = target - now;
            if gap > 200_000 {
                std::thread::sleep(Duration::from_nanos(gap - 100_000));
            } else {
                std::hint::spin_loop();
            }
        }
        scheduler.submit(Request {
            tenant: arrival.tenant,
            arrival_ns: target,
            limit: FUNCTIONAL_LIMIT,
            chaos: None,
        });
    }
    epoch
}

fn main() {
    let harness = Harness::from_env("serving");
    let seed = harness.seed_or(0x5EED_F00D);
    let mut check: Option<String> = None;
    let mut out_path = "BENCH_serving.json".to_string();
    let mut scheme_choice = SchemeChoice::Default;
    let mut workers = std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(4);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" | "--baseline" => check = args.next(),
            "--out" => {
                if let Some(p) = args.next() {
                    out_path = p;
                }
            }
            "--workers" => {
                if let Some(w) = args.next() {
                    workers = w.parse().unwrap_or_else(|_| {
                        eprintln!("[serving] ERROR: invalid --workers value {w:?}");
                        std::process::exit(2);
                    });
                }
            }
            "--scheme" => {
                if let Some(s) = args.next() {
                    scheme_choice = match s.as_str() {
                        "auto" => SchemeChoice::Auto,
                        label => match TransitionScheme::parse(label) {
                            Some(scheme) => SchemeChoice::Fixed(scheme),
                            None => {
                                eprintln!(
                                    "[serving] ERROR: unknown --scheme {label:?}; expected \
                                     'auto' or one of: {}",
                                    TransitionScheme::ALL
                                        .iter()
                                        .map(|t| t.label())
                                        .collect::<Vec<_>>()
                                        .join(", ")
                                );
                                std::process::exit(2);
                            }
                        },
                    };
                }
            }
            _ => {}
        }
    }
    let scheme_label = scheme_choice.label();

    // Read the baseline before the output file is written (gating the
    // default output path must compare against the committed run) and
    // before measuring (a mispointed path fails fast).
    let baseline: Option<Vec<(String, f64, f64)>> = check.as_ref().map(|baseline_path| {
        let text = match std::fs::read_to_string(baseline_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!(
                    "[serving] ERROR: cannot read baseline {baseline_path}: {e}\n\
                     [serving] run once without --check to record a baseline first"
                );
                std::process::exit(2);
            }
        };
        FIG3_SCHEMES
            .iter()
            .map(|scheme| {
                let name = format!("{scheme:?}").to_lowercase();
                let missing = |key: &str| -> f64 {
                    eprintln!(
                        "[serving] ERROR: no \"{key}\" field in baseline {baseline_path}\n\
                         [serving] re-record the baseline with this binary first"
                    );
                    std::process::exit(2);
                };
                let p99_key = format!("p99_ms_{name}");
                let rps_key = format!("achieved_rps_{name}");
                let p99 = extract_json_number(&text, &p99_key).unwrap_or_else(|| missing(&p99_key));
                let rps = extract_json_number(&text, &rps_key).unwrap_or_else(|| missing(&rps_key));
                (name, p99, rps)
            })
            .collect()
    });

    // The verifyset kernel suites; smoke keeps the three cheapest
    // sightglass kernels so CI debug runs stay fast.
    let kernels = if harness.smoke() {
        harness.subset(sightglass::suite(1), 3)
    } else {
        let mut kernels = sightglass::suite(1);
        kernels.extend(speclike::suite(1));
        kernels
    };
    let replicas = TENANT_FLOOR.div_ceil(kernels.len());
    let tenant_count = kernels.len() * replicas;

    // Offered-load levels: a Poisson sweep plus one bursty MMPP level.
    // Virtual duration is short — open-loop latency only needs enough
    // arrivals per level for stable percentiles.
    let duration_ns: u64 = if harness.smoke() {
        400_000_000
    } else {
        2_000_000_000
    };
    let poisson_loads: &[f64] = if harness.smoke() {
        &[100.0, 250.0, 500.0]
    } else {
        &[200.0, 500.0, 1000.0, 1500.0]
    };
    let mut levels: Vec<(String, ArrivalProcess)> = poisson_loads
        .iter()
        .map(|rps| {
            (
                format!("poisson-{rps:.0}"),
                ArrivalProcess::Poisson { rate_rps: *rps },
            )
        })
        .collect();
    let base = poisson_loads[0];
    levels.push((
        "mmpp".to_string(),
        ArrivalProcess::Mmpp {
            base_rps: base,
            burst_rps: base * 10.0,
            mean_phase_ns: duration_ns / 8,
        },
    ));

    // One arrival schedule per level, shared across schemes so every
    // scheme faces byte-identical offered load.
    let schedules: Vec<(String, Vec<Arrival>)> = levels
        .iter()
        .map(|(name, process)| {
            (
                name.clone(),
                schedule(seed, *process, duration_ns, tenant_count),
            )
        })
        .collect();

    let mut level_results: Vec<LevelResult> = Vec::new();
    let mut scheme_results: Vec<SchemeResult> = Vec::new();
    let mut correctness_failures = 0u64;

    for scheme in FIG3_SCHEMES {
        let scheme_name = format!("{scheme:?}").to_lowercase();
        let mut opts = CompileOptions::new(scheme);
        // --scheme only varies HFI springboards; the other isolation
        // schemes have no HFI enter/exit sequence to re-plan.
        let auto = if opts.isolation == Isolation::Hfi {
            match scheme_choice {
                SchemeChoice::Default => false,
                SchemeChoice::Auto => true,
                SchemeChoice::Fixed(s) => {
                    opts.scheme = s;
                    false
                }
            }
        } else {
            false
        };
        let tenants: Vec<TenantSpec> = (0..replicas)
            .flat_map(|r| {
                kernels.iter().map(move |kernel| {
                    let name = format!("{}#{r}", kernel.name);
                    if auto {
                        TenantSpec::from_kernel_cheapest_scheme(
                            name,
                            kernel.clone(),
                            opts,
                            Tier::Fused,
                            compile_cached,
                        )
                    } else {
                        TenantSpec::from_kernel(
                            name,
                            kernel.clone(),
                            opts,
                            Tier::Fused,
                            compile_cached,
                        )
                    }
                })
            })
            .collect();
        let pools = Arc::new(WarmPools::new(
            Arc::new(tenants),
            VA_BITS,
            MAX_HEAP,
            AdmitPolicy::VerifiedOrExempt,
        ));

        // Provisioning phase: pre-warm every tenant (cold build +
        // release). Each call is one cold-setup latency sample; the
        // eviction machinery keeps over-capacity schemes at their
        // address-space cap instead of failing.
        let mut cold_setup_ns: Vec<f64> = Vec::with_capacity(tenant_count);
        let mut provisioned = 0usize;
        for tenant in 0..tenant_count {
            let started = std::time::Instant::now();
            if pools.provision(tenant).is_ok() {
                provisioned += 1;
                cold_setup_ns.push(started.elapsed().as_nanos() as f64);
            }
        }
        let density_after_provision = pools.resident();
        eprintln!(
            "[serving] {scheme_name}: provisioned {provisioned}/{tenant_count} tenants, \
             {density_after_provision} resident"
        );

        let mut warm_setup_ns: Vec<f64> = Vec::new();
        for (level_name, arrivals) in &schedules {
            let scheduler = Scheduler::new(Arc::clone(&pools), workers);
            let epoch = drive(&scheduler, arrivals);
            let completions = scheduler.finish();

            let mut latencies_ms: Vec<f64> = Vec::with_capacity(completions.len());
            let mut warm_hits = 0u64;
            let mut stolen = 0u64;
            let mut overloaded = 0u64;
            let mut last_finish_ns = epoch;
            for completion in &completions {
                last_finish_ns = last_finish_ns.max(completion.finish_ns);
                if completion.stolen {
                    stolen += 1;
                }
                match &completion.outcome {
                    Outcome::Done { stop, r0, .. } => {
                        latencies_ms
                            .push((completion.finish_ns - completion.arrival_ns) as f64 / 1e6);
                        if completion.warm {
                            warm_hits += 1;
                            warm_setup_ns.push(completion.setup_ns as f64);
                        }
                        let spec = &pools.tenants()[completion.tenant];
                        if *stop != Stop::Halted || spec.expected != Some(*r0) {
                            correctness_failures += 1;
                            eprintln!(
                                "[serving] FAIL: {} returned {r0} ({stop:?}), expected {:?}",
                                spec.name, spec.expected
                            );
                        }
                    }
                    Outcome::Overloaded => overloaded += 1,
                    Outcome::Rejected { verified } => {
                        correctness_failures += 1;
                        eprintln!(
                            "[serving] FAIL: verified tenant rejected at admission \
                             (verified: {verified:?})"
                        );
                    }
                }
            }
            latencies_ms.sort_by(f64::total_cmp);
            let span_s = (last_finish_ns.saturating_sub(epoch)).max(1) as f64 / 1e9;
            let done = latencies_ms.len() as u64;
            level_results.push(LevelResult {
                scheme: scheme_name.clone(),
                level: level_name.clone(),
                offered_rps: arrivals.len() as f64 / (duration_ns as f64 / 1e9),
                achieved_rps: done as f64 / span_s,
                p50_ms: percentile(&latencies_ms, 0.50),
                p99_ms: percentile(&latencies_ms, 0.99),
                p999_ms: percentile(&latencies_ms, 0.999),
                warm_hit_rate: warm_hits as f64 / (done.max(1)) as f64,
                stolen,
                overloaded,
                requests: completions.len() as u64,
            });
        }

        scheme_results.push(SchemeResult {
            scheme: scheme_name,
            density: pools.stats().peak_resident,
            setup_warm_p50_us: median(&warm_setup_ns) / 1e3,
            setup_cold_p50_us: median(&cold_setup_ns) / 1e3,
            provisioned,
        });
    }

    let rows: Vec<Vec<String>> = level_results
        .iter()
        .map(|r| {
            vec![
                r.scheme.clone(),
                r.level.clone(),
                format!("{:.0}", r.offered_rps),
                format!("{:.0}", r.achieved_rps),
                format!("{:.2}", r.p50_ms),
                format!("{:.2}", r.p99_ms),
                format!("{:.2}", r.p999_ms),
                format!("{:.1}%", r.warm_hit_rate * 100.0),
                r.stolen.to_string(),
                r.overloaded.to_string(),
            ]
        })
        .collect();
    print_table(
        "Serving latency under open-loop load (fused tier)",
        &[
            "scheme", "level", "offered", "achieved", "p50ms", "p99ms", "p999ms", "warm", "stolen",
            "overload",
        ],
        &rows,
    );
    println!();
    for s in &scheme_results {
        println!(
            "  {:>12}: density {} (provisioned {}/{tenant_count}), setup p50 warm {:.1}us / \
             cold {:.1}us",
            s.scheme, s.density, s.provisioned, s.setup_warm_p50_us, s.setup_cold_p50_us
        );
    }

    // Flat summary keys for the gate: per scheme, p99 at the lowest
    // Poisson load and achieved throughput at the highest.
    let lowest = format!("poisson-{:.0}", poisson_loads[0]);
    let highest = format!("poisson-{:.0}", poisson_loads[poisson_loads.len() - 1]);
    let mut json = String::from("{");
    json.push_str(&format!(
        "\"figure\":\"serving\",\"mode\":\"{}\",\"seed\":{seed},\"workers\":{workers},\
         \"tenants\":{tenant_count},\"tier\":\"{}\",\"transition_scheme\":\"{scheme_label}\"",
        if harness.smoke() { "smoke" } else { "full" },
        Tier::Fused.as_str()
    ));
    for s in &scheme_results {
        let p99 = level_results
            .iter()
            .find(|r| r.scheme == s.scheme && r.level == lowest)
            .map(|r| r.p99_ms)
            .unwrap_or(f64::NAN);
        let rps = level_results
            .iter()
            .find(|r| r.scheme == s.scheme && r.level == highest)
            .map(|r| r.achieved_rps)
            .unwrap_or(f64::NAN);
        let warm = level_results
            .iter()
            .filter(|r| r.scheme == s.scheme)
            .map(|r| r.warm_hit_rate)
            .sum::<f64>()
            / schedules.len() as f64;
        json.push_str(&format!(
            ",\"p99_ms_{0}\":{p99:.3},\"achieved_rps_{0}\":{rps:.1},\"density_{0}\":{1},\
             \"warm_hit_rate_{0}\":{warm:.4},\"setup_warm_p50_us_{0}\":{2:.2},\
             \"setup_cold_p50_us_{0}\":{3:.2}",
            s.scheme, s.density, s.setup_warm_p50_us, s.setup_cold_p50_us
        ));
    }
    let tier = Tier::Fused.as_str();
    json.push_str(",\"cells\":[");
    for (i, r) in level_results.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"scheme\":\"{}\",\"level\":\"{}\",\"seed\":{seed},\"tier\":\"{tier}\",\
             \"transition_scheme\":\"{scheme_label}\",\
             \"offered_rps\":{:.1},\"achieved_rps\":{:.1},\
             \"p50_ms\":{:.3},\"p99_ms\":{:.3},\"p999_ms\":{:.3},\"warm_hit_rate\":{:.4},\
             \"stolen\":{},\"overloaded\":{},\"requests\":{}}}",
            r.scheme,
            r.level,
            r.offered_rps,
            r.achieved_rps,
            r.p50_ms,
            r.p99_ms,
            r.p999_ms,
            r.warm_hit_rate,
            r.stolen,
            r.overloaded,
            r.requests
        ));
    }
    json.push_str("]}");
    std::fs::write(&out_path, format!("{json}\n")).expect("write serving json");
    eprintln!("[serving] wrote {out_path}");

    // Invariants this benchmark exists to demonstrate.
    let mut failed = correctness_failures > 0;
    if correctness_failures > 0 {
        eprintln!("[serving] FAIL: {correctness_failures} correctness failure(s)");
    }
    let hfi = scheme_results
        .iter()
        .find(|s| s.scheme == "hfi")
        .expect("hfi scheme measured");
    let guard = scheme_results
        .iter()
        .find(|s| s.scheme == "guardpages")
        .expect("guardpages scheme measured");
    if hfi.density < 1000 {
        eprintln!(
            "[serving] FAIL: HFI sustained only {} concurrent sandboxes (need >= 1000)",
            hfi.density
        );
        failed = true;
    }
    if hfi.density <= guard.density {
        eprintln!(
            "[serving] FAIL: HFI density {} must exceed GuardPages density {}",
            hfi.density, guard.density
        );
        failed = true;
    }
    println!(
        "  density check: hfi {} > guardpages {} (floor 1000)",
        hfi.density, guard.density
    );

    if let Some(baseline) = baseline {
        for (scheme, base_p99, base_rps) in baseline {
            let measured_p99 = level_results
                .iter()
                .find(|r| r.scheme == scheme && r.level == lowest)
                .map(|r| r.p99_ms)
                .unwrap_or(f64::NAN);
            let measured_rps = level_results
                .iter()
                .find(|r| r.scheme == scheme && r.level == highest)
                .map(|r| r.achieved_rps)
                .unwrap_or(f64::NAN);
            let p99_ceiling = base_p99 * (1.0 + REGRESSION_BUDGET) + P99_SLACK_MS;
            let rps_floor = base_rps * (1.0 - REGRESSION_BUDGET);
            println!(
                "  gate[{scheme}]: p99 {base_p99:.2} -> {measured_p99:.2} ms \
                 (ceiling {p99_ceiling:.2}); rps {base_rps:.0} -> {measured_rps:.0} \
                 (floor {rps_floor:.0})"
            );
            // NaN (scheme missing from this run) must fail the gate.
            if measured_p99.is_nan() || measured_p99 > p99_ceiling {
                eprintln!(
                    "[serving] FAIL: {scheme} p99 regressed more than {:.0}% \
                     ({measured_p99:.2} > {p99_ceiling:.2} ms)",
                    REGRESSION_BUDGET * 100.0
                );
                failed = true;
            }
            if measured_rps.is_nan() || measured_rps < rps_floor {
                eprintln!(
                    "[serving] FAIL: {scheme} throughput regressed more than {:.0}% \
                     ({measured_rps:.0} < {rps_floor:.0} rps)",
                    REGRESSION_BUDGET * 100.0
                );
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("  serving checks: OK");
}
