//! Table 1: FaaS workloads under Lucet(Unsafe) / Lucet+HFI / Lucet+Swivel.

use hfi_bench::{print_table, Harness};
use hfi_core::CostModel;
use hfi_faas::{evaluate, ProfiledWorkload, Scheme, WorkloadRow};
use hfi_wasm::kernels::faas;

const SCHEMES: [Scheme; 3] = [Scheme::Unsafe, Scheme::Hfi, Scheme::Swivel];

fn main() {
    let mut harness = Harness::from_env("table1");
    let costs = CostModel::default();
    // Profiling (one functional run per workload) happens in the grid
    // too: each cell profiles its own workload, so cells stay
    // independent and the grid parallelizes cleanly.
    let kernels = harness.subset(faas::suite(1), 2);
    let rows: Vec<WorkloadRow> = harness.run_grid(&kernels, |kernel| {
        let profiled = ProfiledWorkload::profile(kernel);
        let cells = SCHEMES.map(|scheme| (scheme, evaluate(&profiled, scheme, &costs)));
        WorkloadRow {
            name: profiled.name.clone(),
            cells,
        }
    });

    let mut cells = Vec::new();
    for row in &rows {
        for (scheme, cell) in &row.cells {
            cells.push(vec![
                row.name.clone(),
                scheme.to_string(),
                format!("{:.2}ms", cell.avg_latency_ms),
                format!("{:.2}ms", cell.tail_latency_ms),
                format!("{:.1}", cell.throughput_rps),
                format!("{:.2}MiB", cell.binary_bytes as f64 / (1 << 20) as f64),
                format!("{:+.1}%", row.tail_inflation(*scheme) * 100.0),
            ]);
            harness.note(&[
                ("workload", row.name.clone()),
                ("scheme", scheme.to_string()),
                ("avg_latency_ms", format!("{:.4}", cell.avg_latency_ms)),
                ("tail_latency_ms", format!("{:.4}", cell.tail_latency_ms)),
                ("throughput_rps", format!("{:.2}", cell.throughput_rps)),
                ("binary_bytes", cell.binary_bytes.to_string()),
            ]);
        }
    }
    print_table(
        "Table 1: FaaS latency/throughput under Spectre protection",
        &[
            "workload",
            "scheme",
            "avg lat",
            "tail lat",
            "thruput",
            "bin size",
            "tail vs unsafe",
        ],
        &cells,
    );
    println!("\n  paper: HFI raises tail latency 0%-2%; Swivel 9%-42%, hitting");
    println!("  branchy workloads (templated HTML, XML) hardest and dense math least.");
    println!("  (absolute times differ: our workloads are test-scaled; see EXPERIMENTS.md)");
    harness.finish().expect("write bench records");
}
