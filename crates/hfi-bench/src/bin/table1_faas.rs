//! Table 1: FaaS workloads under Lucet(Unsafe) / Lucet+HFI / Lucet+Swivel.

use hfi_bench::print_table;
use hfi_faas::build_table1;

fn main() {
    let rows = build_table1(1);
    let mut cells = Vec::new();
    for row in &rows {
        for (scheme, cell) in &row.cells {
            cells.push(vec![
                row.name.clone(),
                scheme.to_string(),
                format!("{:.2}ms", cell.avg_latency_ms),
                format!("{:.2}ms", cell.tail_latency_ms),
                format!("{:.1}", cell.throughput_rps),
                format!("{:.2}MiB", cell.binary_bytes as f64 / (1 << 20) as f64),
                format!("{:+.1}%", row.tail_inflation(*scheme) * 100.0),
            ]);
        }
    }
    print_table(
        "Table 1: FaaS latency/throughput under Spectre protection",
        &["workload", "scheme", "avg lat", "tail lat", "thruput", "bin size", "tail vs unsafe"],
        &cells,
    );
    println!("\n  paper: HFI raises tail latency 0%-2%; Swivel 9%-42%, hitting");
    println!("  branchy workloads (templated HTML, XML) hardest and dense math least.");
    println!("  (absolute times differ: our workloads are test-scaled; see EXPERIMENTS.md)");
}
