//! `verify_all` — run the static sandbox-safety verifier over every
//! program family the experiments execute.
//!
//! Default mode prints one row per target (kernel × family) with its
//! verdict, proof size, and memory-op count, and exits nonzero if any
//! target fails verification.
//!
//! `--mutants` additionally runs the proof-guided fault-injection suite:
//! every verified target is corrupted one site at a time across the
//! mutation classes (including the transition-contract classes
//! `unzeroed-leak` and `skipped-stack-switch`), and every mutant must
//! be rejected. The per-class
//! kill matrix is printed as a Markdown table (CI pastes it into the
//! step summary) followed by a machine-greppable `mutation-kill:` line;
//! any surviving mutant exits nonzero.
//!
//! `--smoke` truncates the kernel suites, matching the other binaries.

use std::collections::BTreeMap;

use hfi_bench::print_table;
use hfi_bench::verifyset::{all_targets, mutant_killed, mutants_for, verify_target};
use hfi_verify::MutationClass;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want_mutants = args.iter().any(|a| a == "--mutants");
    let smoke = args.iter().any(|a| a == "--smoke")
        || std::env::var("HFI_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");

    let targets = all_targets(smoke);
    let mut rows = Vec::new();
    let mut failures = 0usize;
    let mut proofs = Vec::new();
    for target in &targets {
        match verify_target(target) {
            Ok(proof) => {
                rows.push(vec![
                    target.name.clone(),
                    "ok".to_string(),
                    proof.guards.len().to_string(),
                    proof.mem_ops.to_string(),
                    proof.blocks.to_string(),
                ]);
                proofs.push(Some(proof));
            }
            Err(violations) => {
                failures += 1;
                rows.push(vec![
                    target.name.clone(),
                    format!("FAIL ({})", violations.len()),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                ]);
                for v in violations.iter().take(5) {
                    eprintln!("  {}: {v}", target.name);
                }
                proofs.push(None);
            }
        }
    }
    print_table(
        "Static sandbox-safety verification",
        &["target", "verdict", "guards", "mem ops", "blocks"],
        &rows,
    );
    println!(
        "\nverified: {}/{} targets",
        targets.len() - failures,
        targets.len()
    );

    let mut survivors = 0usize;
    if want_mutants {
        // killed/total per class, accumulated across every target.
        let mut matrix: BTreeMap<&'static str, (usize, usize)> = BTreeMap::new();
        for (target, proof) in targets.iter().zip(&proofs) {
            let Some(proof) = proof else { continue };
            for mutant in mutants_for(target, proof) {
                let cell = matrix.entry(class_name(mutant.class)).or_insert((0, 0));
                cell.1 += 1;
                if mutant_killed(target, &mutant) {
                    cell.0 += 1;
                } else {
                    survivors += 1;
                    eprintln!(
                        "SURVIVOR: {} [{}] {}",
                        target.name, mutant.class, mutant.description
                    );
                }
            }
        }
        let (mut killed, mut total) = (0, 0);
        println!("\n### Mutation-kill matrix\n");
        println!("| class | mutants | killed | survived |");
        println!("|---|---|---|---|");
        for (class, (k, t)) in &matrix {
            println!("| {class} | {t} | {k} | {} |", t - k);
            killed += k;
            total += t;
        }
        println!("\nmutation-kill: {killed}/{total}");
    }

    if failures > 0 || survivors > 0 {
        std::process::exit(1);
    }
}

fn class_name(class: MutationClass) -> &'static str {
    match class {
        MutationClass::DropGuard => "drop-guard",
        MutationClass::WidenMask => "widen-mask",
        MutationClass::UncheckMov => "uncheck-mov",
        MutationClass::RetargetBranch => "retarget-branch",
        MutationClass::UnzeroedLeak => "unzeroed-leak",
        MutationClass::SkippedStackSwitch => "skipped-stack-switch",
    }
}
