//! The shared experiment harness: job grids, worker fan-out, and
//! JSON-lines run telemetry.
//!
//! Every figure/table binary builds a grid of independent cells
//! (kernel × isolation × executor), hands it to [`Harness::run_grid`],
//! and gets results back **in grid order** regardless of how many worker
//! threads ran them — so `--jobs 4` output is bit-identical to a
//! sequential run. Cells compile through the process-wide
//! [`compile_cached`](crate::compile_cached) memo, so a kernel ×
//! isolation pair is compiled once no matter how many executors or
//! worker threads run it, and every vehicle shares one `Arc<Program>`
//! (and therefore one pre-decoded plan). After the grid, binaries append [`RunRecord`]s (or
//! model-level [`Harness::note`] lines) and [`Harness::finish`] writes
//! them to `target/bench-records/<figure>.jsonl`.
//!
//! Configuration comes from the command line and the environment:
//!
//! * `--jobs N` / `HFI_JOBS=N` — worker threads (`0` = all cores;
//!   default 1, the sequential fallback).
//! * `--smoke` / `HFI_SMOKE=1` — scaled-down iteration counts and kernel
//!   subsets, for CI.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use hfi_sim::RunRecord;

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn context_json(figure: &str, context: &[(&str, String)]) -> String {
    let mut line = format!("\"figure\":\"{}\"", json_escape(figure));
    for (key, value) in context {
        line.push_str(&format!(
            ",\"{}\":\"{}\"",
            json_escape(key),
            json_escape(value)
        ));
    }
    line
}

/// The experiment harness for one figure/table binary.
#[derive(Debug)]
pub struct Harness {
    figure: String,
    jobs: usize,
    smoke: bool,
    lines: Vec<String>,
}

impl Harness {
    /// A harness configured from `--jobs`/`--smoke` command-line flags
    /// and the `HFI_JOBS`/`HFI_SMOKE` environment (flags win).
    pub fn from_env(figure: &str) -> Self {
        let mut jobs: Option<usize> = None;
        let mut smoke = false;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--smoke" => smoke = true,
                "--jobs" => jobs = args.next().and_then(|v| v.parse().ok()),
                _ if arg.starts_with("--jobs=") => {
                    jobs = arg["--jobs=".len()..].parse().ok();
                }
                _ => {}
            }
        }
        if jobs.is_none() {
            jobs = std::env::var("HFI_JOBS").ok().and_then(|v| v.parse().ok());
        }
        if !smoke {
            smoke = std::env::var("HFI_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
        }
        Self::new(figure, jobs.unwrap_or(1), smoke)
    }

    /// A harness with explicit settings (tests use this; binaries use
    /// [`Harness::from_env`]). `jobs == 0` means one worker per core.
    pub fn new(figure: &str, jobs: usize, smoke: bool) -> Self {
        let jobs = if jobs == 0 {
            std::thread::available_parallelism()
                .map(usize::from)
                .unwrap_or(1)
        } else {
            jobs
        };
        Harness {
            figure: figure.to_string(),
            jobs,
            smoke,
            lines: Vec::new(),
        }
    }

    /// Worker-thread count for [`Harness::run_grid`].
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Whether this is a scaled-down CI run.
    pub fn smoke(&self) -> bool {
        self.smoke
    }

    /// Picks the iteration count for the current mode.
    pub fn iters(&self, full: u64, smoke: u64) -> u64 {
        if self.smoke {
            smoke
        } else {
            full
        }
    }

    /// In smoke mode, truncates a suite to its first `smoke_len` entries.
    pub fn subset<T>(&self, mut items: Vec<T>, smoke_len: usize) -> Vec<T> {
        if self.smoke {
            items.truncate(smoke_len);
        }
        items
    }

    /// Runs one closure per grid cell across the worker pool and returns
    /// the results **in cell order**.
    ///
    /// Workers pull cells from a shared cursor (no pre-partitioning, so
    /// an expensive cell does not serialize a whole stripe) and deposit
    /// each result in its cell's slot; with deterministic cell closures
    /// the returned vector is bit-identical for any `--jobs` value.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any cell (the harnesses' correctness
    /// assertions live inside the cells).
    pub fn run_grid<J, R, F>(&self, cells: &[J], f: F) -> Vec<R>
    where
        J: Sync,
        R: Send,
        F: Fn(&J) -> R + Sync,
    {
        let n = cells.len();
        if self.jobs <= 1 || n <= 1 {
            return cells.iter().map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            let mut workers = Vec::new();
            for _ in 0..self.jobs.min(n) {
                workers.push(scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let result = f(&cells[i]);
                    *slots[i].lock().expect("unpoisoned slot") = Some(result);
                }));
            }
            // Join explicitly so a panicking cell fails the experiment
            // loudly instead of leaving empty slots.
            for worker in workers {
                if let Err(panic) = worker.join() {
                    std::panic::resume_unwind(panic);
                }
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("unpoisoned slot")
                    .expect("worker filled slot")
            })
            .collect()
    }

    /// Appends one telemetry line: the figure name, the caller's context
    /// key/values, and the full counter surface of `record`.
    pub fn record(&mut self, context: &[(&str, String)], record: &RunRecord) {
        let line = format!(
            "{{{},{}}}",
            context_json(&self.figure, context),
            record.json_fields()
        );
        self.lines.push(line);
    }

    /// Appends a context-only telemetry line, for model-level experiments
    /// that have no pipeline counters (queueing models, cost tables).
    pub fn note(&mut self, context: &[(&str, String)]) {
        self.lines
            .push(format!("{{{}}}", context_json(&self.figure, context)));
    }

    /// Telemetry lines accumulated so far (tests inspect these).
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// Writes the accumulated lines to
    /// `target/bench-records/<figure>.jsonl` and returns the path.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory or file cannot
    /// be written.
    pub fn finish(&self) -> std::io::Result<PathBuf> {
        let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string());
        let dir = PathBuf::from(target).join("bench-records");
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.jsonl", self.figure));
        let mut file = fs::File::create(&path)?;
        for line in &self.lines {
            writeln!(file, "{line}")?;
        }
        eprintln!(
            "[harness] {} record(s) -> {}",
            self.lines.len(),
            path.display()
        );
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_order_is_deterministic_across_job_counts() {
        let cells: Vec<u64> = (0..97).collect();
        let work = |cell: &u64| {
            // Uneven per-cell cost so workers interleave.
            let mut acc = *cell;
            for _ in 0..(cell % 13) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (*cell, acc)
        };
        let sequential = Harness::new("test", 1, false).run_grid(&cells, work);
        for jobs in [2, 4, 8] {
            let parallel = Harness::new("test", jobs, false).run_grid(&cells, work);
            assert_eq!(sequential, parallel, "jobs={jobs} must be bit-identical");
        }
    }

    #[test]
    fn smoke_scales_iterations_and_suites() {
        let full = Harness::new("test", 1, false);
        let smoke = Harness::new("test", 1, true);
        assert_eq!(full.iters(1000, 10), 1000);
        assert_eq!(smoke.iters(1000, 10), 10);
        assert_eq!(full.subset(vec![1, 2, 3, 4], 2), vec![1, 2, 3, 4]);
        assert_eq!(smoke.subset(vec![1, 2, 3, 4], 2), vec![1, 2]);
    }

    #[test]
    fn telemetry_lines_carry_context_and_counters() {
        let mut harness = Harness::new("figX", 1, false);
        harness.note(&[("kernel", "fib\"2".to_string())]);
        assert_eq!(
            harness.lines()[0],
            "{\"figure\":\"figX\",\"kernel\":\"fib\\\"2\"}"
        );

        let program = {
            let mut asm = hfi_sim::ProgramBuilder::new(0x1000);
            asm.movi(hfi_sim::Reg(0), 7);
            asm.halt();
            asm.finish()
        };
        let mut machine = hfi_sim::Machine::new(program);
        machine.run(1_000);
        let record = hfi_sim::Executor::stats(&machine);
        harness.record(&[("isolation", "hfi".to_string())], &record);
        let line = &harness.lines()[1];
        assert!(
            line.starts_with("{\"figure\":\"figX\",\"isolation\":\"hfi\",\"executor\":\"cycle\"")
        );
        assert!(line.ends_with('}'));
        assert!(line.contains("\"rob_stall_cycles\":"));
        assert_eq!(line.matches('{').count(), 1);
    }

    #[test]
    fn zero_jobs_means_all_cores() {
        let harness = Harness::new("test", 0, false);
        assert!(harness.jobs() >= 1);
    }
}
