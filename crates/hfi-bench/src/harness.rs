//! The shared experiment harness: job grids, worker fan-out, and
//! crash-safe JSON-lines run telemetry.
//!
//! Every figure/table binary builds a grid of independent cells
//! (kernel × isolation × executor), hands it to [`Harness::run_grid`],
//! and gets results back **in grid order** regardless of how many worker
//! threads ran them — so `--jobs 4` output is bit-identical to a
//! sequential run. Cells compile through the process-wide
//! [`compile_cached`](crate::compile_cached) memo, so a kernel ×
//! isolation pair is compiled once no matter how many executors or
//! worker threads run it, and every vehicle shares one `Arc<Program>`
//! (and therefore one pre-decoded plan). After the grid, binaries append
//! [`RunRecord`]s (or model-level [`Harness::note`] lines) and
//! [`Harness::finish`] publishes them to
//! `target/bench-records/<figure>.jsonl`.
//!
//! # Fault tolerance
//!
//! Two grid runners cover two failure postures:
//!
//! * [`Harness::run_grid`] — a panicking cell no longer aborts the
//!   sweep mid-flight: every remaining cell still runs, and the first
//!   panic is re-raised only after the whole grid completes (the
//!   harnesses' correctness assertions live inside cells, so the panic
//!   must still fail the experiment loudly).
//! * [`Harness::run_grid_supervised`] — each cell runs under
//!   `catch_unwind` supervision and returns a structured
//!   [`CellOutcome`]: `Ok`, `Retried` (succeeded after transient
//!   panics, with bounded exponential backoff), `Panicked` (every
//!   attempt panicked; carries the payload message), or `TimedOut`
//!   (the per-cell deadline watchdog expired — the stuck worker thread
//!   is abandoned and a replacement spawned so the rest of the grid
//!   still completes). Long sweeps — the chaos campaign — use this and
//!   report failures instead of dying.
//!
//! Cell *fuel* is cooperative: simulator cells are already bounded by
//! the executor cycle/instruction budgets (`MACHINE_LIMIT`,
//! `FUNCTIONAL_LIMIT`), so the wall-clock deadline is the backstop for
//! host-level hangs, not the primary bound.
//!
//! # Crash safety and resume
//!
//! Harnesses built by [`Harness::from_env`] stream every
//! [`record`](Harness::record)/[`note`](Harness::note) line to
//! `<figure>.jsonl.partial` (flushed per line), and
//! [`finish`](Harness::finish) atomically renames the partial journal
//! over the final `<figure>.jsonl` — a killed run keeps every completed
//! line, and readers of the final path never observe a torn file. With
//! `--resume`, the harness preloads the journal left by a previous run
//! (the partial file if the run was killed, else the last finished
//! file); [`Harness::have`] then tells the binary which cells are
//! already journaled so it re-runs only the missing ones, and the
//! merged output is bit-identical to an uninterrupted run.
//!
//! Configuration comes from the command line and the environment:
//!
//! * `--jobs N` / `HFI_JOBS=N` — worker threads (`0` = all cores;
//!   default 1, the sequential fallback). A malformed value is a usage
//!   error (exit 2), not a silent fall-through to the default.
//! * `--smoke` / `HFI_SMOKE=1` — scaled-down iteration counts and
//!   kernel subsets, for CI.
//! * `--resume` / `HFI_RESUME=1` — preload the existing journal and
//!   skip cells already present ([`Harness::have`]).
//! * `--cell-deadline MS` — per-cell watchdog deadline in milliseconds
//!   for supervised grids (default: none).
//! * `--cell-retries N` — attempts to re-run a panicking supervised
//!   cell before reporting [`CellOutcome::Panicked`] (default 0).
//! * `--seed N` / `HFI_SEED=N` — RNG seed for binaries with stochastic
//!   inputs (the serving load generator, the chaos campaign plans);
//!   each binary documents its own default ([`Harness::seed_or`]).

use std::any::Any;
use std::collections::HashMap;
use std::fs;
use std::io::{BufWriter, Write as _};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use hfi_sim::RunRecord;

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn context_json(figure: &str, context: &[(&str, String)]) -> String {
    let mut line = format!("\"figure\":\"{}\"", json_escape(figure));
    for (key, value) in context {
        line.push_str(&format!(
            ",\"{}\":\"{}\"",
            json_escape(key),
            json_escape(value)
        ));
    }
    line
}

/// Renders a `catch_unwind` payload as a message.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// What happened to one supervised grid cell.
#[derive(Debug, Clone, PartialEq)]
pub enum CellOutcome<R> {
    /// The cell completed on its first attempt.
    Ok(R),
    /// The cell panicked `n` time(s) and then completed — a transient
    /// host failure absorbed by the bounded-retry policy.
    Retried {
        /// How many failed attempts preceded the success.
        n: u32,
        /// The eventual result.
        result: R,
    },
    /// Every attempt panicked; `msg` is the last panic payload.
    Panicked {
        /// The panic payload, rendered as text.
        msg: String,
    },
    /// The per-cell deadline expired before the cell finished. The
    /// worker thread is abandoned (safe Rust cannot kill it) and a
    /// replacement keeps the rest of the grid moving.
    TimedOut,
}

impl<R> CellOutcome<R> {
    /// The cell's result, if it produced one.
    pub fn result(&self) -> Option<&R> {
        match self {
            CellOutcome::Ok(r) | CellOutcome::Retried { result: r, .. } => Some(r),
            _ => None,
        }
    }

    /// Consumes the outcome, yielding the result if there is one.
    pub fn into_result(self) -> Option<R> {
        match self {
            CellOutcome::Ok(r) | CellOutcome::Retried { result: r, .. } => Some(r),
            _ => None,
        }
    }

    /// True for `Panicked` and `TimedOut`.
    pub fn is_failure(&self) -> bool {
        matches!(self, CellOutcome::Panicked { .. } | CellOutcome::TimedOut)
    }

    /// A short stable label ("ok", "retried", "panicked", "timed-out").
    pub fn label(&self) -> &'static str {
        match self {
            CellOutcome::Ok(_) => "ok",
            CellOutcome::Retried { .. } => "retried",
            CellOutcome::Panicked { .. } => "panicked",
            CellOutcome::TimedOut => "timed-out",
        }
    }
}

/// Supervision policy for [`run_supervised`] grids.
#[derive(Debug, Clone)]
pub struct GridOptions {
    /// Wall-clock watchdog per cell; `None` disables the watchdog.
    pub deadline: Option<Duration>,
    /// Extra attempts after a panicking first attempt.
    pub retries: u32,
    /// Base backoff slept before retry `k` is `backoff * 2^(k-1)`.
    pub backoff: Duration,
}

impl Default for GridOptions {
    fn default() -> Self {
        GridOptions {
            deadline: None,
            retries: 0,
            backoff: Duration::from_millis(25),
        }
    }
}

struct GridShared<J, F> {
    cells: Vec<J>,
    f: F,
    next: AtomicUsize,
    retries: u32,
    backoff: Duration,
}

enum Event<R> {
    Started {
        cell: usize,
        at: Instant,
    },
    Done {
        cell: usize,
        outcome: CellOutcome<R>,
    },
}

fn worker_loop<J, R, F>(shared: Arc<GridShared<J, F>>, tx: Sender<Event<R>>)
where
    J: Send + Sync + 'static,
    R: Send + 'static,
    F: Fn(&J) -> R + Send + Sync + 'static,
{
    let n = shared.cells.len();
    loop {
        let i = shared.next.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            return;
        }
        let _ = tx.send(Event::Started {
            cell: i,
            at: Instant::now(),
        });
        let mut attempt = 0u32;
        let outcome = loop {
            match catch_unwind(AssertUnwindSafe(|| (shared.f)(&shared.cells[i]))) {
                Ok(result) if attempt == 0 => break CellOutcome::Ok(result),
                Ok(result) => break CellOutcome::Retried { n: attempt, result },
                Err(payload) => {
                    let msg = panic_message(payload.as_ref());
                    if attempt >= shared.retries {
                        break CellOutcome::Panicked { msg };
                    }
                    attempt += 1;
                    std::thread::sleep(shared.backoff.saturating_mul(1 << (attempt - 1).min(10)));
                }
            }
        };
        let _ = tx.send(Event::Done { cell: i, outcome });
    }
}

/// Runs one closure per cell under full supervision and returns one
/// [`CellOutcome`] per cell, **in cell order**.
///
/// Workers are detached threads pulling cells from a shared cursor;
/// each attempt runs under `catch_unwind`, panics are retried up to
/// `opts.retries` times with exponential backoff, and a cell that
/// outlives `opts.deadline` is reported [`CellOutcome::TimedOut`]
/// while a replacement worker keeps draining the remaining cells (the
/// stuck thread is abandoned — safe Rust cannot preempt it — so it
/// no longer blocks the sweep).
pub fn run_supervised<J, R, F>(
    jobs: usize,
    cells: Vec<J>,
    opts: GridOptions,
    f: F,
) -> Vec<CellOutcome<R>>
where
    J: Send + Sync + 'static,
    R: Send + 'static,
    F: Fn(&J) -> R + Send + Sync + 'static,
{
    let n = cells.len();
    if n == 0 {
        return Vec::new();
    }
    let shared = Arc::new(GridShared {
        cells,
        f,
        next: AtomicUsize::new(0),
        retries: opts.retries,
        backoff: opts.backoff,
    });
    let (tx, rx) = mpsc::channel::<Event<R>>();
    let spawn_worker = |shared: &Arc<GridShared<J, F>>, tx: &Sender<Event<R>>| {
        let shared = Arc::clone(shared);
        let tx = tx.clone();
        std::thread::spawn(move || worker_loop(shared, tx));
    };
    for _ in 0..jobs.clamp(1, n) {
        spawn_worker(&shared, &tx);
    }

    let mut slots: Vec<Option<CellOutcome<R>>> = (0..n).map(|_| None).collect();
    let mut running: HashMap<usize, Instant> = HashMap::new();
    let mut done = 0usize;
    while done < n {
        let event = match opts.deadline {
            None => rx.recv().ok(),
            Some(deadline) => {
                // Wake at the earliest outstanding deadline to check
                // the watchdog even if no event arrives.
                let wake = running
                    .values()
                    .map(|at| (*at + deadline).saturating_duration_since(Instant::now()))
                    .min()
                    .unwrap_or(deadline);
                match rx.recv_timeout(wake) {
                    Ok(event) => Some(event),
                    Err(RecvTimeoutError::Timeout) => {
                        let now = Instant::now();
                        let expired: Vec<usize> = running
                            .iter()
                            .filter(|(_, at)| now.duration_since(**at) >= deadline)
                            .map(|(cell, _)| *cell)
                            .collect();
                        for cell in expired {
                            running.remove(&cell);
                            if slots[cell].is_none() {
                                slots[cell] = Some(CellOutcome::TimedOut);
                                done += 1;
                                // The worker is stuck inside this cell;
                                // replace it so the grid keeps moving.
                                spawn_worker(&shared, &tx);
                            }
                        }
                        continue;
                    }
                    Err(RecvTimeoutError::Disconnected) => None,
                }
            }
        };
        match event {
            Some(Event::Started { cell, at }) => {
                running.insert(cell, at);
            }
            Some(Event::Done { cell, outcome }) => {
                running.remove(&cell);
                // A late completion of a cell already timed out is
                // dropped: the outcome was published as TimedOut.
                if slots[cell].is_none() {
                    slots[cell] = Some(outcome);
                    done += 1;
                }
            }
            None => {
                // All senders gone with cells unaccounted for — a
                // worker died outside catch_unwind. Report rather than
                // hang.
                for slot in slots.iter_mut().filter(|s| s.is_none()) {
                    *slot = Some(CellOutcome::Panicked {
                        msg: "worker disappeared".to_string(),
                    });
                }
                break;
            }
        }
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every cell accounted for"))
        .collect()
}

/// The experiment harness for one figure/table binary.
#[derive(Debug)]
pub struct Harness {
    figure: String,
    jobs: usize,
    smoke: bool,
    lines: Vec<String>,
    /// `lines[..resumed]` were preloaded from a previous run's journal.
    resumed: usize,
    streaming: bool,
    writer: Option<BufWriter<fs::File>>,
    out_dir: Option<PathBuf>,
    cell_deadline: Option<Duration>,
    cell_retries: u32,
    seed: Option<u64>,
}

/// Parsed harness-relevant command-line flags.
#[derive(Debug, Default, PartialEq, Eq)]
struct CliConfig {
    jobs: Option<usize>,
    smoke: bool,
    resume: bool,
    deadline_ms: Option<u64>,
    retries: Option<u32>,
    seed: Option<u64>,
}

fn parse_value<T: std::str::FromStr>(flag: &str, value: Option<String>) -> Result<T, String> {
    let value = value.ok_or_else(|| format!("{flag} requires a value"))?;
    value
        .parse()
        .map_err(|_| format!("invalid {flag} value {value:?}: expected a non-negative integer"))
}

/// Parses the harness flags out of an argument stream, ignoring flags
/// it does not own (binaries add their own). A malformed value for a
/// flag the harness *does* own is an error — silently falling through
/// to a default turns a typo into a misconfigured sweep.
fn parse_cli(args: impl Iterator<Item = String>) -> Result<CliConfig, String> {
    let mut cfg = CliConfig::default();
    let mut args = args;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => cfg.smoke = true,
            "--resume" => cfg.resume = true,
            "--jobs" => cfg.jobs = Some(parse_value("--jobs", args.next())?),
            "--cell-deadline" => {
                cfg.deadline_ms = Some(parse_value("--cell-deadline", args.next())?)
            }
            "--cell-retries" => cfg.retries = Some(parse_value("--cell-retries", args.next())?),
            "--seed" => cfg.seed = Some(parse_value("--seed", args.next())?),
            a if a.starts_with("--jobs=") => {
                cfg.jobs = Some(parse_value(
                    "--jobs",
                    Some(a["--jobs=".len()..].to_string()),
                )?);
            }
            a if a.starts_with("--cell-deadline=") => {
                cfg.deadline_ms = Some(parse_value(
                    "--cell-deadline",
                    Some(a["--cell-deadline=".len()..].to_string()),
                )?);
            }
            a if a.starts_with("--cell-retries=") => {
                cfg.retries = Some(parse_value(
                    "--cell-retries",
                    Some(a["--cell-retries=".len()..].to_string()),
                )?);
            }
            a if a.starts_with("--seed=") => {
                cfg.seed = Some(parse_value(
                    "--seed",
                    Some(a["--seed=".len()..].to_string()),
                )?);
            }
            _ => {}
        }
    }
    Ok(cfg)
}

impl Harness {
    /// A harness configured from the command-line flags and environment
    /// documented in the module doc (flags win over environment).
    ///
    /// Exits with status 2 and a clear message on a malformed value —
    /// a typo in `--jobs` must not silently run the sweep sequentially.
    pub fn from_env(figure: &str) -> Self {
        match Self::try_from_env(figure) {
            Ok(harness) => harness,
            Err(msg) => {
                eprintln!("[harness] ERROR: {msg}");
                std::process::exit(2);
            }
        }
    }

    fn try_from_env(figure: &str) -> Result<Self, String> {
        let mut cfg = parse_cli(std::env::args().skip(1))?;
        if cfg.jobs.is_none() {
            if let Ok(v) = std::env::var("HFI_JOBS") {
                cfg.jobs = Some(v.parse().map_err(|_| {
                    format!("invalid HFI_JOBS value {v:?}: expected a non-negative integer")
                })?);
            }
        }
        if cfg.seed.is_none() {
            if let Ok(v) = std::env::var("HFI_SEED") {
                cfg.seed = Some(v.parse().map_err(|_| {
                    format!("invalid HFI_SEED value {v:?}: expected a non-negative integer")
                })?);
            }
        }
        let env_truthy = |name: &str| std::env::var(name).is_ok_and(|v| !v.is_empty() && v != "0");
        let smoke = cfg.smoke || env_truthy("HFI_SMOKE");
        let resume = cfg.resume || env_truthy("HFI_RESUME");

        let mut harness = Self::new(figure, cfg.jobs.unwrap_or(1), smoke).with_streaming();
        harness.cell_deadline = cfg.deadline_ms.map(Duration::from_millis);
        harness.cell_retries = cfg.retries.unwrap_or(0);
        harness.seed = cfg.seed;
        if resume {
            harness = harness.with_resume();
        }
        Ok(harness)
    }

    /// A harness with explicit settings (tests use this; binaries use
    /// [`Harness::from_env`]). `jobs == 0` means one worker per core.
    /// Telemetry is buffered until [`finish`](Harness::finish) — enable
    /// per-line journal streaming with [`with_streaming`](Harness::with_streaming).
    pub fn new(figure: &str, jobs: usize, smoke: bool) -> Self {
        let jobs = if jobs == 0 {
            std::thread::available_parallelism()
                .map(usize::from)
                .unwrap_or(1)
        } else {
            jobs
        };
        Harness {
            figure: figure.to_string(),
            jobs,
            smoke,
            lines: Vec::new(),
            resumed: 0,
            streaming: false,
            writer: None,
            out_dir: None,
            cell_deadline: None,
            cell_retries: 0,
            seed: None,
        }
    }

    /// Streams every recorded line to `<figure>.jsonl.partial` (flushed
    /// per line) so a killed run keeps its completed cells.
    pub fn with_streaming(mut self) -> Self {
        self.streaming = true;
        self
    }

    /// Redirects journal output away from `target/bench-records`
    /// (tests use this to stay hermetic).
    pub fn with_output_dir(mut self, dir: PathBuf) -> Self {
        self.out_dir = Some(dir);
        self
    }

    /// Sets the supervised-grid watchdog deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.cell_deadline = Some(deadline);
        self
    }

    /// Sets the supervised-grid retry budget.
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.cell_retries = retries;
        self
    }

    /// Sets the RNG seed (tests use this; binaries get it from
    /// `--seed` / `HFI_SEED` via [`Harness::from_env`]).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Preloads the journal left by a previous run — the `.partial`
    /// file if that run was killed mid-flight, else the last finished
    /// `<figure>.jsonl`. Preloaded lines are kept in order and
    /// republished by [`finish`](Harness::finish);
    /// [`have`](Harness::have) reports which cells they cover.
    pub fn with_resume(mut self) -> Self {
        let partial = self.partial_path();
        let finished = self.journal_path();
        let source = if partial.exists() {
            Some(partial)
        } else if finished.exists() {
            Some(finished)
        } else {
            None
        };
        if let Some(path) = source {
            match fs::read_to_string(&path) {
                Ok(text) => {
                    self.lines
                        .extend(text.lines().filter(|l| !l.is_empty()).map(String::from));
                    self.resumed = self.lines.len();
                    eprintln!(
                        "[harness] resumed {} record(s) from {}",
                        self.resumed,
                        path.display()
                    );
                }
                Err(e) => eprintln!(
                    "[harness] cannot resume from {}: {e}; starting fresh",
                    path.display()
                ),
            }
        }
        self
    }

    /// Worker-thread count for [`Harness::run_grid`].
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Whether this is a scaled-down CI run.
    pub fn smoke(&self) -> bool {
        self.smoke
    }

    /// The `--seed` / `HFI_SEED` value, or `default` when none was
    /// given. Stochastic binaries must route every RNG through this so
    /// one flag pins the whole run.
    pub fn seed_or(&self, default: u64) -> u64 {
        self.seed.unwrap_or(default)
    }

    /// The supervision policy configured by `--cell-deadline` /
    /// `--cell-retries` (or the builders).
    pub fn grid_options(&self) -> GridOptions {
        GridOptions {
            deadline: self.cell_deadline,
            retries: self.cell_retries,
            ..GridOptions::default()
        }
    }

    /// Picks the iteration count for the current mode.
    pub fn iters(&self, full: u64, smoke: u64) -> u64 {
        if self.smoke {
            smoke
        } else {
            full
        }
    }

    /// In smoke mode, truncates a suite to its first `smoke_len` entries.
    pub fn subset<T>(&self, mut items: Vec<T>, smoke_len: usize) -> Vec<T> {
        if self.smoke {
            items.truncate(smoke_len);
        }
        items
    }

    /// Runs one closure per grid cell across the worker pool and returns
    /// the results **in cell order**.
    ///
    /// Workers pull cells from a shared cursor (no pre-partitioning, so
    /// an expensive cell does not serialize a whole stripe) and deposit
    /// each result in its cell's slot; with deterministic cell closures
    /// the returned vector is bit-identical for any `--jobs` value.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any cell (the harnesses' correctness
    /// assertions live inside the cells) — but only **after every other
    /// cell has completed**, so one bad cell cannot waste the rest of
    /// an expensive sweep. Use [`Harness::run_grid_supervised`] to get
    /// failures back as structured [`CellOutcome`]s instead.
    pub fn run_grid<J, R, F>(&self, cells: &[J], f: F) -> Vec<R>
    where
        J: Sync,
        R: Send,
        F: Fn(&J) -> R + Sync,
    {
        let n = cells.len();
        type Slot<R> = Mutex<Option<Result<R, Box<dyn Any + Send>>>>;
        let run_one = |cell: &J| catch_unwind(AssertUnwindSafe(|| f(cell)));
        let outcomes: Vec<Result<R, Box<dyn Any + Send>>> = if self.jobs <= 1 || n <= 1 {
            cells.iter().map(run_one).collect()
        } else {
            let next = AtomicUsize::new(0);
            let slots: Vec<Slot<R>> = (0..n).map(|_| Mutex::new(None)).collect();
            std::thread::scope(|scope| {
                for _ in 0..self.jobs.min(n) {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let outcome = run_one(&cells[i]);
                        *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(outcome);
                    });
                }
            });
            slots
                .into_iter()
                .map(|slot| {
                    slot.into_inner()
                        .unwrap_or_else(|e| e.into_inner())
                        .expect("worker filled slot")
                })
                .collect()
        };
        let mut results = Vec::with_capacity(n);
        let mut first_panic = None;
        for (i, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                Ok(result) => results.push(result),
                Err(payload) => {
                    eprintln!(
                        "[harness] cell {i}/{n} panicked: {} (completing the sweep before \
                         re-raising)",
                        panic_message(payload.as_ref())
                    );
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
        results
    }

    /// Runs a grid under full supervision: panics are isolated per
    /// cell (with the configured retry budget) and a deadline watchdog
    /// abandons hung cells, so the sweep always completes and reports
    /// one structured [`CellOutcome`] per cell, in cell order.
    pub fn run_grid_supervised<J, R, F>(&self, cells: Vec<J>, f: F) -> Vec<CellOutcome<R>>
    where
        J: Send + Sync + 'static,
        R: Send + 'static,
        F: Fn(&J) -> R + Send + Sync + 'static,
    {
        run_supervised(self.jobs, cells, self.grid_options(), f)
    }

    /// True if a resumed journal already contains a line for this
    /// context (binaries skip re-running such cells under `--resume`).
    pub fn have(&self, context: &[(&str, String)]) -> bool {
        if self.resumed == 0 {
            return false;
        }
        let prefix = format!("{{{}", context_json(&self.figure, context));
        self.lines[..self.resumed].iter().any(|line| {
            line.strip_prefix(prefix.as_str())
                .is_some_and(|rest| rest.starts_with(',') || rest.starts_with('}'))
        })
    }

    /// Appends one telemetry line: the figure name, the caller's context
    /// key/values, and the full counter surface of `record`.
    pub fn record(&mut self, context: &[(&str, String)], record: &RunRecord) {
        let line = format!(
            "{{{},{}}}",
            context_json(&self.figure, context),
            record.json_fields()
        );
        self.push_line(line);
    }

    /// Appends a context-only telemetry line, for model-level experiments
    /// that have no pipeline counters (queueing models, cost tables).
    pub fn note(&mut self, context: &[(&str, String)]) {
        self.push_line(format!("{{{}}}", context_json(&self.figure, context)));
    }

    /// Telemetry lines accumulated so far (tests inspect these),
    /// including any preloaded by `--resume`.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    fn journal_dir(&self) -> PathBuf {
        self.out_dir.clone().unwrap_or_else(|| {
            let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string());
            PathBuf::from(target).join("bench-records")
        })
    }

    fn journal_path(&self) -> PathBuf {
        self.journal_dir().join(format!("{}.jsonl", self.figure))
    }

    fn partial_path(&self) -> PathBuf {
        self.journal_dir()
            .join(format!("{}.jsonl.partial", self.figure))
    }

    fn push_line(&mut self, line: String) {
        if self.streaming {
            if let Err(e) = self.stream_line(&line) {
                // Fall back to buffered-only: finish() still publishes.
                eprintln!("[harness] journal streaming failed ({e}); buffering instead");
                self.streaming = false;
                self.writer = None;
            }
        }
        self.lines.push(line);
    }

    /// Writes `line` through to the partial journal, opening it (and
    /// replaying any already-buffered lines, e.g. a resumed prefix) on
    /// first use. Each line is flushed so a kill loses at most the line
    /// in flight.
    fn stream_line(&mut self, line: &str) -> std::io::Result<()> {
        if self.writer.is_none() {
            fs::create_dir_all(self.journal_dir())?;
            let mut writer = BufWriter::new(fs::File::create(self.partial_path())?);
            for prior in &self.lines {
                writeln!(writer, "{prior}")?;
            }
            self.writer = Some(writer);
        }
        let writer = self.writer.as_mut().expect("writer just opened");
        writeln!(writer, "{line}")?;
        writer.flush()
    }

    /// Publishes the journal: writes any unstreamed lines to
    /// `<figure>.jsonl.partial`, then atomically renames it over
    /// `target/bench-records/<figure>.jsonl` and returns that path.
    /// Readers of the final path never observe a torn file.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory or file cannot
    /// be written.
    pub fn finish(&mut self) -> std::io::Result<PathBuf> {
        let dir = self.journal_dir();
        fs::create_dir_all(&dir)?;
        let partial = self.partial_path();
        match self.writer.take() {
            Some(mut writer) => writer.flush()?,
            None => {
                let mut file = BufWriter::new(fs::File::create(&partial)?);
                for line in &self.lines {
                    writeln!(file, "{line}")?;
                }
                file.flush()?;
            }
        }
        let path = self.journal_path();
        fs::rename(&partial, &path)?;
        eprintln!(
            "[harness] {} record(s) -> {}",
            self.lines.len(),
            path.display()
        );
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn grid_order_is_deterministic_across_job_counts() {
        let cells: Vec<u64> = (0..97).collect();
        let work = |cell: &u64| {
            // Uneven per-cell cost so workers interleave.
            let mut acc = *cell;
            for _ in 0..(cell % 13) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (*cell, acc)
        };
        let sequential = Harness::new("test", 1, false).run_grid(&cells, work);
        for jobs in [2, 4, 8] {
            let parallel = Harness::new("test", jobs, false).run_grid(&cells, work);
            assert_eq!(sequential, parallel, "jobs={jobs} must be bit-identical");
        }
    }

    #[test]
    fn smoke_scales_iterations_and_suites() {
        let full = Harness::new("test", 1, false);
        let smoke = Harness::new("test", 1, true);
        assert_eq!(full.iters(1000, 10), 1000);
        assert_eq!(smoke.iters(1000, 10), 10);
        assert_eq!(full.subset(vec![1, 2, 3, 4], 2), vec![1, 2, 3, 4]);
        assert_eq!(smoke.subset(vec![1, 2, 3, 4], 2), vec![1, 2]);
    }

    #[test]
    fn telemetry_lines_carry_context_and_counters() {
        let mut harness = Harness::new("figX", 1, false);
        harness.note(&[("kernel", "fib\"2".to_string())]);
        assert_eq!(
            harness.lines()[0],
            "{\"figure\":\"figX\",\"kernel\":\"fib\\\"2\"}"
        );

        let program = {
            let mut asm = hfi_sim::ProgramBuilder::new(0x1000);
            asm.movi(hfi_sim::Reg(0), 7);
            asm.halt();
            asm.finish()
        };
        let mut machine = hfi_sim::Machine::new(program);
        machine.run(1_000);
        let record = hfi_sim::Executor::stats(&machine);
        harness.record(&[("isolation", "hfi".to_string())], &record);
        let line = &harness.lines()[1];
        assert!(
            line.starts_with("{\"figure\":\"figX\",\"isolation\":\"hfi\",\"executor\":\"cycle\"")
        );
        assert!(line.ends_with('}'));
        assert!(line.contains("\"rob_stall_cycles\":"));
        assert_eq!(line.matches('{').count(), 1);
    }

    #[test]
    fn zero_jobs_means_all_cores() {
        let harness = Harness::new("test", 0, false);
        assert!(harness.jobs() >= 1);
    }

    #[test]
    fn malformed_jobs_values_are_rejected() {
        let args = |a: &[&str]| a.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        // `--jobs garbage` and `--jobs=garbage` must both be hard
        // errors, not a silent fall-through to the sequential default.
        assert!(parse_cli(args(&["--jobs", "garbage"]).into_iter()).is_err());
        assert!(parse_cli(args(&["--jobs=garbage"]).into_iter()).is_err());
        assert!(parse_cli(args(&["--jobs"]).into_iter()).is_err());
        assert!(parse_cli(args(&["--cell-deadline=soon"]).into_iter()).is_err());
        assert!(parse_cli(args(&["--cell-retries", "-1"]).into_iter()).is_err());

        let ok = parse_cli(args(&["--jobs", "4", "--smoke", "--resume"]).into_iter()).unwrap();
        assert_eq!(ok.jobs, Some(4));
        assert!(ok.smoke && ok.resume);
        let ok = parse_cli(args(&["--jobs=0", "--cell-deadline", "250"]).into_iter()).unwrap();
        assert_eq!(ok.jobs, Some(0));
        assert_eq!(ok.deadline_ms, Some(250));
        assert!(parse_cli(args(&["--seed", "garbage"]).into_iter()).is_err());
        let ok = parse_cli(args(&["--seed=42"]).into_iter()).unwrap();
        assert_eq!(ok.seed, Some(42));
        assert_eq!(Harness::new("test", 1, false).with_seed(7).seed_or(0), 7);
        assert_eq!(Harness::new("test", 1, false).seed_or(9), 9);
        // Foreign flags pass through untouched.
        assert!(parse_cli(args(&["--mutants", "--check", "x.json"]).into_iter()).is_ok());
    }

    #[test]
    fn run_grid_completes_remaining_cells_before_re_raising() {
        let cells: Vec<u32> = (0..16).collect();
        let ran = AtomicU32::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            Harness::new("test", 4, false).run_grid(&cells, |cell| {
                ran.fetch_add(1, Ordering::Relaxed);
                if *cell == 3 {
                    panic!("cell 3 exploded");
                }
                *cell
            })
        }));
        let payload = caught.expect_err("the cell panic must still propagate");
        assert_eq!(panic_message(payload.as_ref()), "cell 3 exploded");
        assert_eq!(
            ran.load(Ordering::Relaxed),
            16,
            "every cell must run despite the panic"
        );
    }

    #[test]
    fn supervised_grid_reports_panics_structurally() {
        let cells: Vec<u32> = (0..8).collect();
        let outcomes = Harness::new("test", 4, false).run_grid_supervised(cells, |cell| {
            if *cell == 5 {
                panic!("boom {cell}");
            }
            cell * 10
        });
        assert_eq!(outcomes.len(), 8);
        for (i, outcome) in outcomes.iter().enumerate() {
            if i == 5 {
                assert_eq!(
                    outcome,
                    &CellOutcome::Panicked {
                        msg: "boom 5".to_string()
                    }
                );
                assert!(outcome.is_failure());
            } else {
                assert_eq!(outcome.result(), Some(&(i as u32 * 10)), "cell {i}");
            }
        }
    }

    #[test]
    fn supervised_grid_retries_transient_failures() {
        // Cell 2 panics on its first attempt only.
        let attempts: Vec<AtomicU32> = (0..4).map(|_| AtomicU32::new(0)).collect();
        let attempts = Arc::new(attempts);
        let seen = Arc::clone(&attempts);
        let opts = GridOptions {
            retries: 2,
            backoff: Duration::from_millis(1),
            ..GridOptions::default()
        };
        let outcomes = run_supervised(2, (0..4u32).collect(), opts, move |cell: &u32| {
            let attempt = seen[*cell as usize].fetch_add(1, Ordering::Relaxed);
            if *cell == 2 && attempt == 0 {
                panic!("transient");
            }
            *cell
        });
        assert_eq!(outcomes[2], CellOutcome::Retried { n: 1, result: 2 });
        assert_eq!(outcomes[2].label(), "retried");
        for i in [0usize, 1, 3] {
            assert_eq!(outcomes[i], CellOutcome::Ok(i as u32));
        }
    }

    #[test]
    fn supervised_grid_times_out_hung_cells_and_finishes_the_rest() {
        let opts = GridOptions {
            deadline: Some(Duration::from_millis(100)),
            ..GridOptions::default()
        };
        // Cell 1 "hangs" (sleeps far past the deadline); the sweep must
        // still complete every other cell and report the hang.
        let outcomes = run_supervised(2, (0..6u32).collect(), opts, |cell: &u32| {
            if *cell == 1 {
                std::thread::sleep(Duration::from_secs(30));
            }
            *cell
        });
        assert_eq!(outcomes[1], CellOutcome::TimedOut);
        assert_eq!(outcomes[1].label(), "timed-out");
        for i in [0usize, 2, 3, 4, 5] {
            assert_eq!(outcomes[i], CellOutcome::Ok(i as u32), "cell {i}");
        }
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "hfi-harness-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn resume_merges_bit_identical_with_an_uninterrupted_run() {
        let dir = scratch_dir("resume");
        let ctx = |i: usize| vec![("cell", format!("c{i}"))];

        // Run A streams cells 0..3 and is "killed" (dropped, no finish):
        // the partial journal keeps the prefix.
        let mut killed = Harness::new("resume", 1, false)
            .with_output_dir(dir.clone())
            .with_streaming();
        for i in 0..3 {
            killed.note(&ctx(i));
        }
        drop(killed);
        assert!(dir.join("resume.jsonl.partial").exists());

        // Run B resumes: it must see the journaled cells, re-run only
        // the missing ones, and publish a merged journal.
        let mut resumed = Harness::new("resume", 1, false)
            .with_output_dir(dir.clone())
            .with_streaming()
            .with_resume();
        let mut reran = Vec::new();
        for i in 0..6 {
            let context = ctx(i);
            if resumed.have(&context) {
                continue;
            }
            reran.push(i);
            resumed.note(&context);
        }
        assert_eq!(reran, vec![3, 4, 5], "only missing cells re-run");
        let merged_path = resumed.finish().expect("finish resumed run");
        assert!(
            !dir.join("resume.jsonl.partial").exists(),
            "rename is atomic"
        );

        // An uninterrupted run of the same grid, for comparison.
        let clean_dir = scratch_dir("resume-clean");
        let mut clean = Harness::new("resume", 1, false).with_output_dir(clean_dir.clone());
        for i in 0..6 {
            clean.note(&ctx(i));
        }
        let clean_path = clean.finish().expect("finish clean run");

        let merged = fs::read_to_string(merged_path).unwrap();
        let clean = fs::read_to_string(clean_path).unwrap();
        assert_eq!(merged, clean, "merged journal must be bit-identical");
        fs::remove_dir_all(dir).ok();
        fs::remove_dir_all(clean_dir).ok();
    }

    #[test]
    fn finish_publishes_atomically_for_buffered_harnesses() {
        let dir = scratch_dir("buffered");
        let mut harness = Harness::new("buffered", 1, false).with_output_dir(dir.clone());
        harness.note(&[("k", "v".to_string())]);
        let path = harness.finish().expect("finish");
        assert_eq!(
            fs::read_to_string(path).unwrap(),
            "{\"figure\":\"buffered\",\"k\":\"v\"}\n"
        );
        assert!(!dir.join("buffered.jsonl.partial").exists());
        fs::remove_dir_all(dir).ok();
    }
}
