//! # hfi-bench — experiment harnesses for every table and figure
//!
//! One binary per experiment (see DESIGN.md's experiment index). This
//! library holds the shared plumbing:
//!
//! * [`Harness`] — job-grid fan-out over worker threads with
//!   deterministic result ordering, `--smoke` scaling, and JSON-lines
//!   [`RunRecord`] telemetry under `target/bench-records/`.
//! * Cell runners ([`run_on_machine`], [`run_functional`],
//!   [`run_emulated`], [`run_cell`]) — compile a kernel, execute it on
//!   one [`Executor`] vehicle, check the architectural result against
//!   the kernel's Rust reference, and capture the full counter surface.
//! * Shared figure grids ([`fig3_grid`], [`fig2_grid`]) used by both
//!   the binaries and the cross-executor integration tests.
//! * Plain-text table output and summary statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod transitions;
pub mod verifyset;

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use hfi_sim::{Emulated, Executor, Functional, Machine, RunRecord, Stop};
use hfi_wasm::compiler::{compile, CompileOptions, CompiledKernel, Isolation};
use hfi_wasm::kernels::{sightglass, speclike, Kernel};

pub use harness::{run_supervised, CellOutcome, GridOptions, Harness};

/// Cache key for [`compile_cached`]: a cheap structural fingerprint of
/// the kernel (name alone is not unique — suites are parameterized by
/// scale) plus the full `Debug` rendering of the compile options.
type CompileKey = (String, u64, usize, usize, String);

/// Process-wide compile memo backing [`compile_cached`].
static COMPILE_CACHE: OnceLock<Mutex<HashMap<CompileKey, CompiledKernel>>> = OnceLock::new();

/// Compiles `kernel` under `opts`, memoized per kernel × options for the
/// lifetime of the process.
///
/// Every vehicle wrapper below funnels through this, so a grid that runs
/// the same (kernel, isolation) cell on the cycle, emulated, and
/// functional executors compiles it once and hands all three the *same*
/// `Arc<Program>` allocation — which in turn means the identity-keyed
/// pre-decode (`plan_of`) and A.2-transform (`emulate_arc`) caches in
/// `hfi-sim` hit instead of re-lowering per executor.
///
/// A cache hit clones only counters and an `Arc` pointer; the program's
/// instruction vector is shared.
pub fn compile_cached(kernel: &Kernel, opts: &CompileOptions) -> CompiledKernel {
    let key: CompileKey = (
        kernel.name.clone(),
        kernel.expected,
        kernel.func.insts.len(),
        kernel.heap_init_len(),
        format!("{opts:?}"),
    );
    let cache = COMPILE_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    // The cache is insert-only, so a lock poisoned by a panicking grid
    // worker still guards a consistent map: recover the guard instead of
    // cascading that one panic into every subsequent cell.
    if let Some(hit) = cache.lock().unwrap_or_else(|e| e.into_inner()).get(&key) {
        return hit.clone();
    }
    // Compile outside the lock so parallel grid workers never serialize
    // on a miss; a racing duplicate insert just loses to `or_insert`.
    let compiled = compile(&kernel.func, opts);
    cache
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .entry(key)
        .or_insert(compiled)
        .clone()
}

/// Prints a fixed-width text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let joined: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        println!("  {}", joined.join("  "));
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Cycle budget for cycle-level runs (the machine stops past this).
pub const MACHINE_LIMIT: u64 = 4_000_000_000;
/// Instruction budget for functional runs.
pub const FUNCTIONAL_LIMIT: u64 = 50_000_000_000;

/// Result of running one kernel on a cycle-level vehicle.
#[derive(Debug, Clone)]
pub struct KernelRun {
    /// Cycles consumed.
    pub cycles: u64,
    /// Instructions committed.
    pub instructions: u64,
    /// The compiled artifact (for code-size reporting).
    pub compiled: CompiledKernel,
    /// The full counter surface of the run.
    pub record: RunRecord,
}

/// Loads a kernel's heap image, runs `executor` to completion, checks
/// the result against the kernel's Rust reference, and returns the
/// unified counter snapshot. This is the one code path every vehicle
/// shares; the per-vehicle wrappers below only pick the executor.
///
/// # Panics
///
/// Panics if the kernel misbehaves (does not halt or returns a wrong
/// result) — harnesses must not silently report nonsense.
pub fn run_cell(executor: &mut dyn Executor, kernel: &Kernel, heap_base: u64) -> RunRecord {
    for (off, bytes) in &kernel.heap_init {
        executor.prepare(heap_base + *off as u64, bytes);
    }
    let limit = match executor.kind() {
        hfi_sim::ExecutorKind::Functional | hfi_sim::ExecutorKind::Fused => FUNCTIONAL_LIMIT,
        _ => MACHINE_LIMIT,
    };
    let started = std::time::Instant::now();
    let stop = executor.run(limit);
    let host_ns = started.elapsed().as_nanos() as u64;
    assert_eq!(
        stop,
        Stop::Halted,
        "{} did not halt on {}",
        kernel.name,
        executor.kind()
    );
    assert_eq!(
        executor.regs()[0],
        kernel.expected,
        "{} wrong result on {}",
        kernel.name,
        executor.kind()
    );
    executor.stats().with_host_timing(host_ns)
}

/// Compiles and runs `kernel` on the cycle-level machine.
///
/// # Panics
///
/// Panics if the kernel misbehaves.
pub fn run_on_machine(kernel: &Kernel, isolation: Isolation) -> KernelRun {
    let opts = CompileOptions::new(isolation);
    run_on_machine_with(kernel, &opts)
}

/// Like [`run_on_machine`] with explicit compile options.
///
/// # Panics
///
/// Panics if the kernel misbehaves.
pub fn run_on_machine_with(kernel: &Kernel, opts: &CompileOptions) -> KernelRun {
    let compiled = compile_cached(kernel, opts);
    let mut machine = Machine::new(compiled.program.clone());
    let mut record = run_cell(&mut machine, kernel, opts.heap_base);
    record.verified = compiled.verified == Some(true);
    KernelRun {
        cycles: record.cycles as u64,
        instructions: record.committed,
        compiled,
        record,
    }
}

/// Compiles and runs `kernel` through the Appendix A.2 emulation
/// transform on the cycle-level machine (the Fig. 2 "emulated" leg).
///
/// # Panics
///
/// Panics if the kernel misbehaves.
pub fn run_emulated(kernel: &Kernel, isolation: Isolation) -> KernelRun {
    let opts = CompileOptions::new(isolation);
    let compiled = compile_cached(kernel, &opts);
    let mut emulated = Emulated::from_arc(&compiled.program, opts.heap_base);
    let mut record = run_cell(&mut emulated, kernel, opts.heap_base);
    // The emulated stream carries its own proof: translation validation
    // against the (verified) original, not trust in the transform.
    record.verified = hfi_wasm::verify_emulated_kernel(&compiled).is_some_and(|r| r.is_ok());
    KernelRun {
        cycles: record.cycles as u64,
        instructions: record.committed,
        compiled,
        record,
    }
}

/// Runs `kernel` on the fast functional executor; returns modelled
/// cycles and the counter snapshot.
///
/// # Panics
///
/// Panics if the kernel misbehaves.
pub fn run_functional_record(kernel: &Kernel, isolation: Isolation) -> RunRecord {
    let opts = CompileOptions::new(isolation);
    let compiled = compile_cached(kernel, &opts);
    let mut functional = Functional::new(compiled.program.clone());
    let mut record = run_cell(&mut functional, kernel, opts.heap_base);
    record.verified = compiled.verified == Some(true);
    record
}

/// Runs `kernel` on the fast functional executor; returns modelled cycles.
///
/// # Panics
///
/// Panics if the kernel misbehaves.
pub fn run_functional(kernel: &Kernel, isolation: Isolation) -> f64 {
    run_functional_record(kernel, isolation).cycles
}

/// Runs `kernel` on the fused (block-threaded superinstruction) tier of
/// the functional executor; returns the counter snapshot. Cycles,
/// counters, and registers are bit-identical to
/// [`run_functional_record`] — only the host-side throughput fields
/// differ (see `tests/predecode_differential.rs`).
///
/// # Panics
///
/// Panics if the kernel misbehaves.
pub fn run_fused_record(kernel: &Kernel, isolation: Isolation) -> RunRecord {
    let opts = CompileOptions::new(isolation);
    let compiled = compile_cached(kernel, &opts);
    let mut functional = Functional::new_fused(compiled.program.clone());
    let mut record = run_cell(&mut functional, kernel, opts.heap_base);
    record.verified = compiled.verified == Some(true);
    record
}

/// The isolation schemes of the Fig. 3 comparison, in presentation order.
pub const FIG3_SCHEMES: [Isolation; 3] = [
    Isolation::GuardPages,
    Isolation::BoundsChecks,
    Isolation::Hfi,
];

/// One (kernel × isolation) cell of the Fig. 3 grid.
#[derive(Debug, Clone)]
pub struct Fig3Cell {
    /// Kernel name.
    pub kernel: String,
    /// Isolation scheme this cell ran under.
    pub isolation: Isolation,
    /// The cycle-level run.
    pub run: KernelRun,
}

/// Runs the Fig. 3 grid — the SPEC-like suite × [`FIG3_SCHEMES`] — on
/// the cycle simulator through `harness`, in suite-major order. In smoke
/// mode the suite is truncated to its first three kernels.
///
/// # Panics
///
/// Panics if any kernel misbehaves.
pub fn fig3_grid(harness: &Harness) -> Vec<Fig3Cell> {
    let kernels = harness.subset(speclike::suite(1), 3);
    let cells: Vec<(&Kernel, Isolation)> = kernels
        .iter()
        .flat_map(|kernel| FIG3_SCHEMES.iter().map(move |iso| (kernel, *iso)))
        .collect();
    harness.run_grid(&cells, |(kernel, isolation)| Fig3Cell {
        kernel: kernel.name.clone(),
        isolation: *isolation,
        run: run_on_machine(kernel, *isolation),
    })
}

/// One kernel of the Fig. 2 cross-executor grid: the same program on all
/// three vehicles under HFI.
#[derive(Debug, Clone)]
pub struct Fig2Cell {
    /// Kernel name.
    pub kernel: String,
    /// Real HFI instructions on the cycle simulator.
    pub cycle: KernelRun,
    /// The Appendix A.2 emulation on the cycle simulator.
    pub emulated: KernelRun,
    /// The calibrated functional interpreter.
    pub functional: RunRecord,
}

/// Runs the Fig. 2 cross-executor grid — the Sightglass-like suite on
/// cycle, emulated, and functional vehicles — through `harness`. In
/// smoke mode the suite is truncated to its first three kernels.
///
/// # Panics
///
/// Panics if any kernel misbehaves on any vehicle.
pub fn fig2_grid(harness: &Harness) -> Vec<Fig2Cell> {
    let kernels = harness.subset(sightglass::suite(1), 3);
    harness.run_grid(&kernels, |kernel| Fig2Cell {
        kernel: kernel.name.clone(),
        cycle: run_on_machine(kernel, Isolation::Hfi),
        emulated: run_emulated(kernel, Isolation::Hfi),
        functional: run_functional_record(kernel, Isolation::Hfi),
    })
}

/// Geometric mean of a slice.
pub fn geomean(values: &[f64]) -> f64 {
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Median of a slice (`NaN` for an empty one).
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let mut sorted = values.to_vec();
    // total_cmp orders NaN after +inf, so a poisoned sample skews the
    // stat instead of panicking a whole figure binary mid-sweep.
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_and_median() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert!((median(&[3.0, 1.0, 2.0]) - 2.0).abs() < 1e-9);
        assert!((median(&[4.0, 1.0, 2.0, 3.0]) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn median_tolerates_nan_samples() {
        // total_cmp sorts NaN after +inf: the stat degrades gracefully
        // instead of panicking the binary.
        assert!((median(&[1.0, f64::NAN, 2.0]) - 2.0).abs() < 1e-9);
        assert!(median(&[f64::NAN, 1.0]).is_nan());
    }

    #[test]
    fn compile_cache_shares_one_program_per_cell() {
        let kernel = hfi_wasm::kernels::sightglass::fib2(1);
        let opts = CompileOptions::new(Isolation::Hfi);
        let a = compile_cached(&kernel, &opts);
        let b = compile_cached(&kernel, &opts);
        assert!(
            std::sync::Arc::ptr_eq(&a.program, &b.program),
            "same kernel × options must share one Arc<Program>"
        );
        // A different option set (or kernel scale) is a different cell.
        let other_opts = CompileOptions::new(Isolation::BoundsChecks);
        let c = compile_cached(&kernel, &other_opts);
        assert!(!std::sync::Arc::ptr_eq(&a.program, &c.program));
        let scaled = hfi_wasm::kernels::sightglass::fib2(2);
        let d = compile_cached(&scaled, &opts);
        assert!(!std::sync::Arc::ptr_eq(&a.program, &d.program));
    }

    #[test]
    fn machine_runner_checks_results() {
        let kernel = hfi_wasm::kernels::sightglass::fib2(1);
        let run = run_on_machine(&kernel, Isolation::Hfi);
        assert!(run.cycles > 0);
        assert!(run.instructions > 0);
        assert!(
            run.record.hfi_checks > 0,
            "HFI run must exercise the checker"
        );
    }

    #[test]
    fn all_three_vehicles_agree_on_results() {
        let kernel = hfi_wasm::kernels::sightglass::fib2(1);
        let cycle = run_on_machine(&kernel, Isolation::Hfi);
        let emulated = run_emulated(&kernel, Isolation::Hfi);
        let functional = run_functional_record(&kernel, Isolation::Hfi);
        // Same committed work on both cycle-level vehicles (the A.2
        // transform is index-preserving) and a successful functional run.
        assert!(emulated.instructions > 0);
        assert!(functional.committed > 0);
        assert!(cycle.cycles > 0 && emulated.cycles > 0);
    }

    #[test]
    fn fig3_smoke_grid_is_parallel_deterministic() {
        let sequential = fig3_grid(&Harness::new("fig3", 1, true));
        let parallel = fig3_grid(&Harness::new("fig3", 4, true));
        assert_eq!(sequential.len(), parallel.len());
        for (a, b) in sequential.iter().zip(&parallel) {
            assert_eq!(a.kernel, b.kernel);
            assert_eq!(a.isolation, b.isolation);
            assert_eq!(a.run.cycles, b.run.cycles, "{}", a.kernel);
            assert_eq!(a.run.record, b.run.record, "{}", a.kernel);
        }
    }
}
