//! # hfi-bench — experiment harnesses for every table and figure
//!
//! One binary per experiment (see DESIGN.md's experiment index); this
//! library holds the shared plumbing: kernel runners for both executors
//! and plain-text table output.

#![warn(missing_docs)]

use hfi_sim::{Functional, Machine, Stop};
use hfi_wasm::compiler::{compile, CompileOptions, CompiledKernel, Isolation};
use hfi_wasm::kernels::Kernel;

/// Prints a fixed-width text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let joined: Vec<String> =
            cells.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}", w = w)).collect();
        println!("  {}", joined.join("  "));
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Result of running one kernel on the cycle simulator.
#[derive(Debug, Clone)]
pub struct KernelRun {
    /// Cycles consumed.
    pub cycles: u64,
    /// Instructions committed.
    pub instructions: u64,
    /// The compiled artifact (for code-size reporting).
    pub compiled: CompiledKernel,
}

/// Compiles and runs `kernel` on the cycle-level machine, checking the
/// result against the kernel's reference.
///
/// # Panics
///
/// Panics if the kernel misbehaves (does not halt or returns a wrong
/// result) — harnesses must not silently report nonsense.
pub fn run_on_machine(kernel: &Kernel, isolation: Isolation) -> KernelRun {
    let opts = CompileOptions::new(isolation);
    run_on_machine_with(kernel, &opts)
}

/// Like [`run_on_machine`] with explicit compile options.
///
/// # Panics
///
/// Panics if the kernel misbehaves.
pub fn run_on_machine_with(kernel: &Kernel, opts: &CompileOptions) -> KernelRun {
    let compiled = compile(&kernel.func, opts);
    let mut machine = Machine::new(compiled.program.clone());
    for (off, bytes) in &kernel.heap_init {
        machine.mem.write_bytes(opts.heap_base + *off as u64, bytes);
    }
    let result = machine.run(4_000_000_000);
    assert_eq!(result.stop, Stop::Halted, "{} did not halt", kernel.name);
    assert_eq!(result.regs[0], kernel.expected, "{} wrong result", kernel.name);
    KernelRun { cycles: result.cycles, instructions: result.stats.committed, compiled }
}

/// Runs `kernel` on the fast functional executor; returns modelled cycles.
///
/// # Panics
///
/// Panics if the kernel misbehaves.
pub fn run_functional(kernel: &Kernel, isolation: Isolation) -> f64 {
    let opts = CompileOptions::new(isolation);
    let compiled = compile(&kernel.func, &opts);
    let mut machine = Functional::new(compiled.program);
    for (off, bytes) in &kernel.heap_init {
        machine.mem.write_bytes(opts.heap_base + *off as u64, bytes);
    }
    let result = machine.run(50_000_000_000);
    assert_eq!(result.stop, Stop::Halted, "{} did not halt", kernel.name);
    assert_eq!(result.regs[0], kernel.expected, "{} wrong result", kernel.name);
    result.cycles
}

/// Geometric mean of a slice.
pub fn geomean(values: &[f64]) -> f64 {
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Median of a slice.
pub fn median(values: &[f64]) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_and_median() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert!((median(&[3.0, 1.0, 2.0]) - 2.0).abs() < 1e-9);
        assert!((median(&[4.0, 1.0, 2.0, 3.0]) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn machine_runner_checks_results() {
        let kernel = hfi_wasm::kernels::sightglass::fib2(1);
        let run = run_on_machine(&kernel, Isolation::Hfi);
        assert!(run.cycles > 0);
        assert!(run.instructions > 0);
    }
}
