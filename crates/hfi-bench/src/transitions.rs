//! Executed transition-cost measurement: per-scheme enter/exit overhead
//! distilled from real runs instead of the modeled constants in
//! [`hfi_core::CostModel`].
//!
//! The probe is a pure-compute kernel ([`sightglass::fib2`]): no memory
//! traffic, so it compiles and verifies under every
//! [`TransitionScheme`] — including
//! [`ZeroCost`](TransitionScheme::ZeroCost), whose elision proof
//! demands a body that cannot observe unzeroed registers or touch the
//! guard state. Each cell compiles the same kernel twice: once under
//! the scheme (full prologue/epilogue) and once unsandboxed (body
//! only); the cycle difference *is* the executed round-trip transition
//! cost on whichever executor tier measured it. `micro_transitions`
//! sweeps this over body scales into the committed
//! `BENCH_transitions.json` amortization curves, and `micro_chaining`
//! reuses the same round trips to price executed pipeline hops.

use hfi_core::TransitionScheme;
use hfi_sim::{Functional, Machine};
use hfi_wasm::compiler::{CompileOptions, Isolation};
use hfi_wasm::kernels::{sightglass, Kernel};

use crate::{compile_cached, run_cell};

/// The executed round-trip cost of one scheme, measured at the probe's
/// smallest body so the subtraction isolates the prologue + epilogue.
#[derive(Debug, Clone)]
pub struct SchemeCost {
    /// The scheme measured.
    pub scheme: TransitionScheme,
    /// Executed enter/exit round-trip cycles on the functional tier.
    pub round_trip_functional: u64,
    /// Executed enter/exit round-trip cycles on the cycle machine.
    pub round_trip_cycle: u64,
    /// How many springboard micro-ops the compiler marked.
    pub transition_ops: usize,
    /// The static verifier's verdict on the probe under this scheme.
    pub verified: Option<bool>,
}

/// One point of a scheme's amortization curve: the same transition tax
/// spread over a growing sandbox body.
#[derive(Debug, Clone)]
pub struct AmortPoint {
    /// The scheme measured.
    pub scheme: TransitionScheme,
    /// Probe body scale ([`probe`] argument).
    pub scale: u32,
    /// Functional-tier cycles of the unsandboxed body alone.
    pub body_cycles: u64,
    /// Functional-tier cycles of the sandboxed run under the scheme.
    pub total_cycles: u64,
    /// `total - body`: the executed transition tax at this scale.
    pub overhead_cycles: u64,
    /// The tax as a fraction of the body (the amortization curve's y).
    pub overhead_pct: f64,
}

/// The pure-compute probe kernel at `scale`.
pub fn probe(scale: u32) -> Kernel {
    sightglass::fib2(scale)
}

/// Body-only compile options: same isolation, no prologue/epilogue.
pub fn baseline_opts() -> CompileOptions {
    let mut opts = CompileOptions::new(Isolation::Hfi);
    opts.sandboxed = false;
    opts
}

fn functional_cycles(kernel: &Kernel, opts: &CompileOptions) -> u64 {
    let compiled = compile_cached(kernel, opts);
    let mut functional = Functional::new(compiled.program.clone());
    run_cell(&mut functional, kernel, opts.heap_base)
        .cycles
        .round() as u64
}

fn machine_cycles(kernel: &Kernel, opts: &CompileOptions) -> u64 {
    let compiled = compile_cached(kernel, opts);
    let mut machine = Machine::new(compiled.program.clone());
    run_cell(&mut machine, kernel, opts.heap_base)
        .cycles
        .round() as u64
}

/// Measures one scheme's executed round trip on both executor tiers.
///
/// # Panics
///
/// Panics if the probe misbehaves on either tier.
pub fn measure(scheme: TransitionScheme, scale: u32) -> SchemeCost {
    let kernel = probe(scale);
    let base = baseline_opts();
    let opts = CompileOptions::hfi_with_scheme(scheme);
    let compiled = compile_cached(&kernel, &opts);
    SchemeCost {
        scheme,
        round_trip_functional: functional_cycles(&kernel, &opts)
            .saturating_sub(functional_cycles(&kernel, &base)),
        round_trip_cycle: machine_cycles(&kernel, &opts)
            .saturating_sub(machine_cycles(&kernel, &base)),
        transition_ops: compiled.program.transition_ops().len(),
        verified: compiled.verified,
    }
}

/// One amortization point: the scheme's tax over a `scale`-sized body
/// on the functional tier.
///
/// # Panics
///
/// Panics if the probe misbehaves.
pub fn amortize(scheme: TransitionScheme, scale: u32) -> AmortPoint {
    let kernel = probe(scale);
    let body_cycles = functional_cycles(&kernel, &baseline_opts());
    let total_cycles = functional_cycles(&kernel, &CompileOptions::hfi_with_scheme(scheme));
    let overhead_cycles = total_cycles.saturating_sub(body_cycles);
    AmortPoint {
        scheme,
        scale,
        body_cycles,
        total_cycles,
        overhead_cycles,
        overhead_pct: overhead_cycles as f64 / body_cycles.max(1) as f64 * 100.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executed_round_trips_follow_the_design_intent() {
        let costs: Vec<SchemeCost> = TransitionScheme::ALL
            .iter()
            .map(|s| measure(*s, 1))
            .collect();
        for cost in &costs {
            assert_eq!(
                cost.verified,
                Some(true),
                "{}: probe must verify",
                cost.scheme
            );
            assert!(
                cost.round_trip_functional > 0,
                "{}: no executed transition cost at all",
                cost.scheme
            );
        }
        let by = |s: TransitionScheme| {
            costs
                .iter()
                .find(|c| c.scheme == s)
                .expect("all schemes measured")
        };
        let zero = by(TransitionScheme::ZeroCost);
        let spring = by(TransitionScheme::FullSpringboard);
        // The headline claim the BENCH gate enforces: eliding the
        // springboard recovers at least 2x on the executed round trip.
        assert!(
            zero.round_trip_functional * 2 <= spring.round_trip_functional,
            "elision must halve the springboard tax: zero {} vs springboard {}",
            zero.round_trip_functional,
            spring.round_trip_functional
        );
        assert!(
            zero.round_trip_cycle * 2 <= spring.round_trip_cycle,
            "cycle tier: zero {} vs springboard {}",
            zero.round_trip_cycle,
            spring.round_trip_cycle
        );
        // Serialization costs more than the bare pair on both tiers.
        let unserialized = by(TransitionScheme::HfiUnserialized);
        let serialized = by(TransitionScheme::HfiSerialized);
        assert!(serialized.round_trip_functional > unserialized.round_trip_functional);
    }

    #[test]
    fn the_tax_amortizes_with_body_size() {
        let small = amortize(TransitionScheme::FullSpringboard, 1);
        let large = amortize(TransitionScheme::FullSpringboard, 4);
        assert!(large.body_cycles > small.body_cycles);
        assert!(
            large.overhead_pct < small.overhead_pct,
            "a bigger body must amortize the same tax: {} vs {}",
            large.overhead_pct,
            small.overhead_pct
        );
    }
}
