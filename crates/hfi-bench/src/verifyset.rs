//! The workspace-wide verification-target set.
//!
//! Every program family the experiments execute, paired with the safety
//! contract it publishes: the `hfi-wasm` kernels under each statically
//! checkable isolation strategy (direct, A.2-emulated, guard-emulated)
//! and the `hfi-native` interposition benchmark. The `verify_all` binary
//! and the mutation-kill integration test both iterate this set, so "the
//! verifier accepts everything we ship" and "the verifier rejects every
//! single-site corruption" are claims about the same programs.

use std::sync::Arc;

use hfi_core::TransitionScheme;
use hfi_native::{benchmark_program, interposition_spec, Interposition};
use hfi_sim::{emulate_arc, uses_hfi, Program};
use hfi_verify::{
    direct_mutants, emulation_mutants, verify_emulation, verify_fusion, Mutant, Proof, SandboxSpec,
    Violation,
};
use hfi_wasm::compiler::{CompileOptions, Isolation};
use hfi_wasm::kernels::{sightglass, speclike};
use hfi_wasm::{guarded_emulation, guarded_spec, sandbox_spec};

use crate::compile_cached;

/// How a target's program is checked against its spec.
#[derive(Debug, Clone)]
pub enum VerifyMode {
    /// Direct dataflow verification of the program itself, plus
    /// structural validation of its superinstruction fusion overlay
    /// (any directly-verified program may run on the fused tier, so the
    /// sweep checks the overlay it would dispatch through).
    Direct,
    /// Translation validation: verify `original`, then structurally
    /// validate the target's (emulated) program against it.
    Emulation {
        /// The pre-transform program the emulated stream must mirror.
        original: Arc<Program>,
    },
}

/// One program + contract pair the workspace must be able to verify.
#[derive(Debug, Clone)]
pub struct VerifyTarget {
    /// Human-readable `kernel/family` label.
    pub name: String,
    /// The published safety contract.
    pub spec: SandboxSpec,
    /// How the program is checked.
    pub mode: VerifyMode,
    /// The program under verification (the emulated stream in
    /// [`VerifyMode::Emulation`]).
    pub program: Arc<Program>,
}

/// Verifies one target according to its mode.
pub fn verify_target(target: &VerifyTarget) -> Result<Proof, Vec<Violation>> {
    match &target.mode {
        VerifyMode::Direct => verify_fusion(&target.program, &target.spec),
        VerifyMode::Emulation { original } => {
            verify_emulation(original, &target.program, &target.spec)
        }
    }
}

/// Checks one mutant of `target`: `true` when the verifier rejects it
/// (the mutant is *killed*).
pub fn mutant_killed(target: &VerifyTarget, mutant: &Mutant) -> bool {
    match &target.mode {
        VerifyMode::Direct => verify_fusion(&mutant.program, &target.spec).is_err(),
        VerifyMode::Emulation { original } => {
            verify_emulation(original, &mutant.program, &target.spec).is_err()
        }
    }
}

/// Proof-guided mutants of a verified target (see `hfi_verify::mutate`).
pub fn mutants_for(target: &VerifyTarget, proof: &Proof) -> Vec<Mutant> {
    match &target.mode {
        VerifyMode::Direct => direct_mutants(&target.program, proof),
        VerifyMode::Emulation { .. } => emulation_mutants(&target.program),
    }
}

/// The full target set. `smoke` truncates each kernel suite to its first
/// three entries (the CI convention across the bench binaries).
pub fn all_targets(smoke: bool) -> Vec<VerifyTarget> {
    let mut targets = Vec::new();
    let mut kernels = sightglass::suite(1);
    kernels.extend(speclike::suite(1));
    if smoke {
        kernels.truncate(3);
    }

    for kernel in &kernels {
        // Explicit software bounds checks: direct verification.
        let bounds_opts = CompileOptions::new(Isolation::BoundsChecks);
        let bounds = compile_cached(kernel, &bounds_opts);
        let spec = sandbox_spec(&bounds_opts).expect("bounds checks publish a spec");
        targets.push(VerifyTarget {
            name: format!("{}/bounds", kernel.name),
            spec,
            mode: VerifyMode::Direct,
            program: bounds.program.clone(),
        });

        // HFI: the real instructions, their A.2 emulation (translation
        // validation), and the guarded emulation (standalone).
        let hfi_opts = CompileOptions::new(Isolation::Hfi);
        let hfi = compile_cached(kernel, &hfi_opts);
        let spec = sandbox_spec(&hfi_opts).expect("sandboxed hfi publishes a spec");
        targets.push(VerifyTarget {
            name: format!("{}/hfi", kernel.name),
            spec: spec.clone(),
            mode: VerifyMode::Direct,
            program: hfi.program.clone(),
        });
        if uses_hfi(&hfi.program) {
            targets.push(VerifyTarget {
                name: format!("{}/hfi-emulated", kernel.name),
                spec,
                mode: VerifyMode::Emulation {
                    original: hfi.program.clone(),
                },
                program: emulate_arc(&hfi.program),
            });
        }
        let guarded = guarded_emulation(&hfi).expect("hfi kernels are guardable");
        targets.push(VerifyTarget {
            name: format!("{}/hfi-guarded", kernel.name),
            spec: guarded_spec(&hfi.options),
            mode: VerifyMode::Direct,
            program: Arc::new(guarded.program),
        });
    }

    // Transition-scheme variants. The springboard build publishes the
    // zeroing + stack-switch contract, which is what gives the
    // `unzeroed-leak` / `skipped-stack-switch` mutation classes their
    // sites; the zero-cost build of the pure-compute probe exercises
    // the elision-proof pass (it only verifies because the probe's body
    // provably cannot observe the elided springboard).
    let probe = sightglass::fib2(1);
    let spring_opts = CompileOptions::hfi_with_scheme(TransitionScheme::FullSpringboard);
    let spring = compile_cached(&kernels[0], &spring_opts);
    targets.push(VerifyTarget {
        name: format!("{}/hfi-springboard", kernels[0].name),
        spec: sandbox_spec(&spring_opts).expect("sandboxed hfi publishes a spec"),
        mode: VerifyMode::Direct,
        program: spring.program.clone(),
    });
    let zero_opts = CompileOptions::hfi_with_scheme(TransitionScheme::ZeroCost);
    let zero = compile_cached(&probe, &zero_opts);
    targets.push(VerifyTarget {
        name: format!("{}/hfi-zerocost", probe.name),
        spec: sandbox_spec(&zero_opts).expect("sandboxed hfi publishes a spec"),
        mode: VerifyMode::Direct,
        program: zero.program.clone(),
    });

    // The hfi-native §6.4.1 interposition benchmark under each mechanism.
    for mechanism in [
        Interposition::None,
        Interposition::Seccomp,
        Interposition::Hfi,
    ] {
        targets.push(VerifyTarget {
            name: format!("syscalls/{mechanism:?}").to_lowercase(),
            spec: interposition_spec(mechanism),
            mode: VerifyMode::Direct,
            program: Arc::new(benchmark_program(20, mechanism)),
        });
    }

    targets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_smoke_set_covers_every_family_and_verifies() {
        let targets = all_targets(true);
        for family in [
            "/bounds",
            "/hfi",
            "/hfi-emulated",
            "/hfi-guarded",
            "/hfi-springboard",
            "/hfi-zerocost",
            "syscalls/",
        ] {
            assert!(
                targets.iter().any(|t| t.name.contains(family)),
                "no target from family {family}"
            );
        }
        for target in &targets {
            let result = verify_target(target);
            assert!(
                result.is_ok(),
                "{} failed verification: {:?}",
                target.name,
                result.err()
            );
        }
    }
}
