//! The injection engines: seeded single-shot, site counting, and the
//! deliberately weakened variant the campaign uses to prove the oracle
//! bites.

use std::sync::{Arc, Mutex};

use hfi_core::{Access, HfiContext, FIRST_EXPLICIT_SLOT, NUM_REGIONS};
use hfi_sim::ChaosHook;
use hfi_util::Rng;

use crate::plan::{ChaosPlan, FaultClass, Injection};

/// How many eligible sites of each fault class one run visits.
///
/// A baseline run with a [`SiteCounter`] measures these so the campaign
/// can pick a uniformly random trigger index per class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteCounts {
    /// Effective-address computations ([`FaultClass::EaFlip`]).
    pub ea: u64,
    /// Result writebacks ([`FaultClass::OperandFlip`]).
    pub result: u64,
    /// Guard micro-ops ([`FaultClass::GuardSkip`]).
    pub guard: u64,
    /// Springboard transition micro-ops
    /// ([`FaultClass::TransitionCorrupt`]).
    pub transition: u64,
    /// Predicted branches ([`FaultClass::WrongPath`]).
    pub branch: u64,
    /// Instruction boundaries ([`FaultClass::RegionCorrupt`]).
    pub context: u64,
    /// Instruction boundaries ([`FaultClass::PredictorClobber`]).
    pub predictor: u64,
}

impl SiteCounts {
    /// The number of eligible sites for `class`.
    pub fn for_class(&self, class: FaultClass) -> u64 {
        match class {
            FaultClass::EaFlip => self.ea,
            FaultClass::OperandFlip => self.result,
            FaultClass::GuardSkip => self.guard,
            FaultClass::RegionCorrupt => self.context,
            FaultClass::TransitionCorrupt => self.transition,
            FaultClass::WrongPath => self.branch,
            FaultClass::PredictorClobber => self.predictor,
        }
    }
}

/// A pass-through hook that counts eligible injection sites per class.
///
/// Cloning shares the counter, so a clone can go into the executor
/// (boxed) while the original stays with the caller for readout. The
/// shared state is `Arc<Mutex<…>>` (not `Rc<RefCell<…>>`) so the boxed
/// clone satisfies `ChaosHook: Send` and can ride an executor across
/// the serving scheduler's shard workers while the campaign driver
/// keeps its readout handle.
#[derive(Debug, Clone, Default)]
pub struct SiteCounter {
    counts: Arc<Mutex<SiteCounts>>,
}

impl SiteCounter {
    /// A fresh counter with all sites at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counts accumulated so far.
    pub fn counts(&self) -> SiteCounts {
        *self.counts.lock().expect("site counter unpoisoned")
    }
}

impl ChaosHook for SiteCounter {
    fn perturb_ea(&mut self, _pc: u64, ea: u64) -> u64 {
        self.counts.lock().expect("site counter unpoisoned").ea += 1;
        ea
    }

    fn perturb_result(&mut self, _pc: u64, value: u64) -> u64 {
        self.counts.lock().expect("site counter unpoisoned").result += 1;
        value
    }

    fn skip_guard(&mut self, _pc: u64) -> bool {
        self.counts.lock().expect("site counter unpoisoned").guard += 1;
        false
    }

    fn flip_prediction(&mut self, _pc: u64) -> bool {
        self.counts.lock().expect("site counter unpoisoned").branch += 1;
        false
    }

    fn corrupt_transition(&mut self, _pc: u64) -> bool {
        self.counts
            .lock()
            .expect("site counter unpoisoned")
            .transition += 1;
        false
    }

    fn corrupt_context(&mut self, _hfi: &mut HfiContext) -> bool {
        self.counts.lock().expect("site counter unpoisoned").context += 1;
        false
    }

    fn clobber_predictors(&mut self) -> bool {
        self.counts
            .lock()
            .expect("site counter unpoisoned")
            .predictor += 1;
        false
    }
}

#[derive(Debug)]
struct EngineState {
    plan: ChaosPlan,
    rng: Rng,
    seen: u64,
    fired: Option<Injection>,
}

impl EngineState {
    /// Claims the next eligible site of `class`; returns `Some(site)`
    /// when this is the one the plan fires at (and nothing has fired
    /// yet — each plan injects exactly once).
    fn arm(&mut self, class: FaultClass) -> Option<u64> {
        if self.plan.class != class {
            return None;
        }
        let site = self.seen;
        self.seen += 1;
        (self.fired.is_none() && site >= self.plan.trigger).then_some(site)
    }
}

/// The seeded single-shot injection engine.
///
/// Implements every [`ChaosHook`] site as a pass-through except for the
/// plan's fault class, which fires exactly once at the plan's trigger
/// site with RNG-chosen detail bits. Cloning shares state (engine into
/// the executor, original kept for [`ChaosEngine::fired`] readout);
/// like [`SiteCounter`], the shared state is `Arc<Mutex<…>>` so the
/// boxed clone is `Send`.
#[derive(Debug, Clone)]
pub struct ChaosEngine {
    inner: Arc<Mutex<EngineState>>,
}

impl ChaosEngine {
    /// An engine executing `plan`.
    pub fn new(plan: ChaosPlan) -> Self {
        ChaosEngine {
            inner: Arc::new(Mutex::new(EngineState {
                rng: plan.rng(),
                plan,
                seen: 0,
                fired: None,
            })),
        }
    }

    /// The injection performed, once the run is over (`None` means the
    /// trigger site was never reached — e.g. the program faulted or
    /// halted first).
    pub fn fired(&self) -> Option<Injection> {
        self.inner.lock().expect("chaos engine unpoisoned").fired
    }

    /// How many eligible sites of the plan's class the run visited.
    pub fn sites_seen(&self) -> u64 {
        self.inner.lock().expect("chaos engine unpoisoned").seen
    }
}

impl ChaosHook for ChaosEngine {
    fn perturb_ea(&mut self, pc: u64, ea: u64) -> u64 {
        let state = &mut *self.inner.lock().expect("chaos engine unpoisoned");
        match state.arm(FaultClass::EaFlip) {
            Some(site) => {
                // Flip within the low 48 bits: the canonical virtual
                // address space, where a flip can land both inside and
                // outside the sandbox regions.
                let mask = 1u64 << state.rng.below(48);
                state.fired = Some(Injection { pc, site, mask });
                ea ^ mask
            }
            None => ea,
        }
    }

    fn perturb_result(&mut self, pc: u64, value: u64) -> u64 {
        let state = &mut *self.inner.lock().expect("chaos engine unpoisoned");
        match state.arm(FaultClass::OperandFlip) {
            Some(site) => {
                let mask = 1u64 << state.rng.below(64);
                state.fired = Some(Injection { pc, site, mask });
                value ^ mask
            }
            None => value,
        }
    }

    fn skip_guard(&mut self, pc: u64) -> bool {
        let state = &mut *self.inner.lock().expect("chaos engine unpoisoned");
        match state.arm(FaultClass::GuardSkip) {
            Some(site) => {
                state.fired = Some(Injection { pc, site, mask: 0 });
                true
            }
            None => false,
        }
    }

    fn flip_prediction(&mut self, pc: u64) -> bool {
        let state = &mut *self.inner.lock().expect("chaos engine unpoisoned");
        match state.arm(FaultClass::WrongPath) {
            Some(site) => {
                state.fired = Some(Injection { pc, site, mask: 0 });
                true
            }
            None => false,
        }
    }

    fn corrupt_transition(&mut self, pc: u64) -> bool {
        let state = &mut *self.inner.lock().expect("chaos engine unpoisoned");
        match state.arm(FaultClass::TransitionCorrupt) {
            Some(site) => {
                // The executor substitutes the deterministic
                // `transition_junk(pc)` value; nothing random to draw.
                state.fired = Some(Injection { pc, site, mask: 0 });
                true
            }
            None => false,
        }
    }

    fn corrupt_context(&mut self, hfi: &mut HfiContext) -> bool {
        let state = &mut *self.inner.lock().expect("chaos engine unpoisoned");
        match state.arm(FaultClass::RegionCorrupt) {
            Some(site) => {
                // Pick a random starting slot and take the first
                // injectable one from there (wrapping); a boundary where
                // nothing is injectable slides the trigger to the next
                // boundary (`arm` keeps returning `Some` until a flip
                // lands).
                //
                // The flip menu is the class's threat model — region
                // *bounds and permissions*, never an explicit-region
                // base: the §4.2 comparator checks the hmov offset
                // against the bound and the base is added downstream of
                // the guard, so an explicit base flip is post-check
                // datapath corruption HFI by design cannot catch
                // (implicit regions check absolute addresses, so their
                // prefix bits are fair game).
                let start = state.rng.below(NUM_REGIONS as u64) as usize;
                let kind = state.rng.below(3);
                let bit = state.rng.below(48);
                let perm = *state
                    .rng
                    .pick(&[Access::Read, Access::Write, Access::Fetch]);
                for k in 0..NUM_REGIONS {
                    let slot = (start + k) % NUM_REGIONS;
                    let (flipped, mask) = match kind {
                        0 => (hfi.inject_region_perm_flip(slot, perm), 0),
                        1 => (hfi.inject_region_bitflip(slot, 0, 1u64 << bit), 1u64 << bit),
                        _ if slot < FIRST_EXPLICIT_SLOT => {
                            (hfi.inject_region_bitflip(slot, 1u64 << bit, 0), 1u64 << bit)
                        }
                        _ => (hfi.inject_region_bitflip(slot, 0, 1u64 << bit), 1u64 << bit),
                    };
                    if flipped {
                        state.fired = Some(Injection { pc: 0, site, mask });
                        return true;
                    }
                }
                false
            }
            None => false,
        }
    }

    fn clobber_predictors(&mut self) -> bool {
        let state = &mut *self.inner.lock().expect("chaos engine unpoisoned");
        match state.arm(FaultClass::PredictorClobber) {
            Some(site) => {
                state.fired = Some(Injection {
                    pc: 0,
                    site,
                    mask: 0,
                });
                true
            }
            None => false,
        }
    }
}

/// A deliberately broken build of the engine: every guard micro-op is
/// dropped and every `hfi_enter` entry assertion is disabled,
/// unconditionally, on top of the wrapped plan's injection.
///
/// With guards gone, an [`FaultClass::EaFlip`] injection sails past the
/// (now absent) bounds check and retires out of spec; with the entry
/// assertion gone, a [`FaultClass::TransitionCorrupt`] injection walks
/// its junk pointer into the sandbox unchecked — the shadow monitor
/// **must** flag both. The campaign's `--weaken` mode exists to
/// demonstrate exactly that: a zero-escape result from the oracle means
/// something only if the oracle provably reports escapes when the
/// mechanism is broken.
#[derive(Debug, Clone)]
pub struct WeakenedEngine {
    engine: ChaosEngine,
}

impl WeakenedEngine {
    /// Wraps `engine`, disabling every guard.
    pub fn new(engine: ChaosEngine) -> Self {
        WeakenedEngine { engine }
    }

    /// The wrapped engine (for [`ChaosEngine::fired`] readout).
    pub fn engine(&self) -> &ChaosEngine {
        &self.engine
    }
}

impl ChaosHook for WeakenedEngine {
    fn perturb_ea(&mut self, pc: u64, ea: u64) -> u64 {
        self.engine.perturb_ea(pc, ea)
    }

    fn perturb_result(&mut self, pc: u64, value: u64) -> u64 {
        self.engine.perturb_result(pc, value)
    }

    fn skip_guard(&mut self, _pc: u64) -> bool {
        true
    }

    fn skip_transition_check(&mut self, _pc: u64) -> bool {
        true
    }

    fn corrupt_transition(&mut self, pc: u64) -> bool {
        self.engine.corrupt_transition(pc)
    }

    fn flip_prediction(&mut self, pc: u64) -> bool {
        self.engine.flip_prediction(pc)
    }

    fn corrupt_context(&mut self, hfi: &mut HfiContext) -> bool {
        self.engine.corrupt_context(hfi)
    }

    fn clobber_predictors(&mut self) -> bool {
        self.engine.clobber_predictors()
    }
}
