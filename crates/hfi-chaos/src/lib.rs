//! # hfi-chaos — runtime fault injection with a fail-closed oracle
//!
//! The static verifier (`hfi-verify`) proves that *programs* cannot
//! escape their sandbox contract. This crate attacks the other half of
//! the trust story: the *mechanism*. HFI's security argument (paper
//! §3.3.2, §4.1) is fail-closed — a transient hardware fault in the
//! datapath (a flipped address bit, a dropped guard micro-op, a
//! corrupted region register) must either be architecturally masked or
//! end in a precise trap; it must never let an out-of-spec access
//! retire silently.
//!
//! The pieces:
//!
//! * [`ChaosPlan`] / [`FaultClass`] — one deterministic, seeded
//!   injection: fault class × trigger site × RNG seed.
//! * [`ChaosEngine`] — a [`ChaosHook`] that performs exactly that
//!   injection through the executors' chaos seam; [`SiteCounter`]
//!   measures how many eligible sites a run has so triggers can be
//!   drawn uniformly; [`WeakenedEngine`] disables every guard to prove
//!   the oracle reports escapes when the mechanism is actually broken.
//! * [`ShadowMonitor`] — the oracle: rebuilds the allowed address set
//!   from the published [`SandboxSpec`](hfi_verify::SandboxSpec)
//!   (never from the — corruptible — live region registers) and checks
//!   every retired access and fetch against it.
//! * [`Rig`] — glues one injector and one monitor into the single
//!   [`ChaosHook`] slot an executor holds.
//! * [`Verdict`] / [`classify`] — folds a run into the campaign's
//!   three-way outcome: fail-closed, benign, or ESCAPE.
//!
//! The `chaos_campaign` binary in `hfi-bench` sweeps the verification
//! target suite × every fault class and enforces zero escapes.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod monitor;
mod plan;

pub use engine::{ChaosEngine, SiteCounter, SiteCounts, WeakenedEngine};
pub use monitor::{MonitorReport, ShadowMonitor, SpecViolation};
pub use plan::{ChaosPlan, FaultClass, Injection};

use hfi_core::{HfiContext, HfiFault};
use hfi_sim::{ArchEvent, ChaosHook};

/// One injector plus the shadow monitor, in the executor's single
/// [`ChaosHook`] slot: perturbation calls go to the injector, the
/// architectural event stream goes to both.
///
/// Both halves use shared-state clones, so the caller keeps its own
/// handles and reads them back after the run — no downcasting out of
/// the `Box<dyn ChaosHook>`.
#[derive(Debug, Clone)]
pub struct Rig<I: ChaosHook> {
    /// The perturbing half.
    pub injector: I,
    /// The observing half.
    pub monitor: ShadowMonitor,
}

impl<I: ChaosHook> Rig<I> {
    /// Combines an injector with a monitor.
    pub fn new(injector: I, monitor: ShadowMonitor) -> Self {
        Rig { injector, monitor }
    }
}

impl<I: ChaosHook> ChaosHook for Rig<I> {
    fn perturb_ea(&mut self, pc: u64, ea: u64) -> u64 {
        self.injector.perturb_ea(pc, ea)
    }

    fn perturb_result(&mut self, pc: u64, value: u64) -> u64 {
        self.injector.perturb_result(pc, value)
    }

    fn skip_guard(&mut self, pc: u64) -> bool {
        self.injector.skip_guard(pc)
    }

    fn flip_prediction(&mut self, pc: u64) -> bool {
        self.injector.flip_prediction(pc)
    }

    fn corrupt_context(&mut self, hfi: &mut HfiContext) -> bool {
        self.injector.corrupt_context(hfi)
    }

    fn corrupt_transition(&mut self, pc: u64) -> bool {
        self.injector.corrupt_transition(pc)
    }

    fn skip_transition_check(&mut self, pc: u64) -> bool {
        self.injector.skip_transition_check(pc)
    }

    fn clobber_predictors(&mut self) -> bool {
        self.injector.clobber_predictors()
    }

    fn observe(&mut self, event: &ArchEvent) {
        self.monitor.observe(event);
        self.injector.observe(event);
    }
}

/// The three-way outcome of one injected run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The fault was caught: a precise [`HfiFault`] trap was delivered
    /// and no out-of-spec access retired first. This is the designed
    /// response (§3.3.2).
    FailClosed {
        /// The delivered fault (exit-reason MSR contents).
        fault: HfiFault,
    },
    /// The fault was architecturally masked: no trap, no out-of-spec
    /// access. `identical` is true when the run's full counter surface
    /// is bit-identical to the uninjected baseline (expected for the
    /// purely microarchitectural classes).
    Benign {
        /// Counters bit-identical to the baseline run.
        identical: bool,
    },
    /// **Security failure**: at least one out-of-spec access retired
    /// silently. The campaign treats any escape as fatal.
    Escape {
        /// How many violations the monitor recorded (capped at
        /// [`ShadowMonitor::MAX_VIOLATIONS`]).
        violations: usize,
    },
}

impl Verdict {
    /// Stable label for telemetry and matrices.
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::FailClosed { .. } => "fail-closed",
            Verdict::Benign { identical: true } => "benign-identical",
            Verdict::Benign { identical: false } => "benign-divergent",
            Verdict::Escape { .. } => "ESCAPE",
        }
    }

    /// True for [`Verdict::Escape`].
    pub fn is_escape(&self) -> bool {
        matches!(self, Verdict::Escape { .. })
    }
}

/// Folds one run's monitor report into a [`Verdict`]. `identical` is
/// the caller's comparison of the run's counters against the uninjected
/// baseline ([`RunRecord`](hfi_sim::RunRecord)'s `PartialEq` already
/// ignores host-timing fields).
pub fn classify(report: &MonitorReport, identical: bool) -> Verdict {
    if !report.clean() {
        Verdict::Escape {
            violations: report.violations.len(),
        }
    } else if let Some((_, fault)) = report.trap {
        Verdict::FailClosed { fault }
    } else {
        Verdict::Benign { identical }
    }
}

/// Compile-time witnesses that every hook in this crate is `Send`
/// (required by `ChaosHook: Send` and by `chaos_campaign --serve`,
/// which boxes hooks into requests that cross the serving scheduler's
/// shard workers).
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<SiteCounter>();
    assert_send::<ChaosEngine>();
    assert_send::<WeakenedEngine>();
    assert_send::<ShadowMonitor>();
    assert_send::<Rig<ChaosEngine>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use hfi_core::region::{ExplicitDataRegion, ImplicitCodeRegion, ImplicitDataRegion};
    use hfi_core::{Access, Region, SandboxConfig};
    use hfi_sim::isa::MemOperand;
    use hfi_sim::{AluOp, Cond, Functional, HmovOperand, Machine, ProgramBuilder, Reg, Stop};
    use hfi_verify::SandboxSpec;

    const CODE_BASE: u64 = 0x40_0000;
    const DATA_BASE: u64 = 0x10_0000;
    const HEAP_BASE: u64 = 0x100_0000;

    /// A sandboxed program: stores then loads inside the implicit data
    /// region, does an `hmov` store into the explicit heap region, and
    /// exits cleanly.
    fn sandboxed_program() -> ProgramBuilder {
        let mut asm = ProgramBuilder::new(CODE_BASE);
        let code = ImplicitCodeRegion::new(CODE_BASE, 0xFFFF, true).unwrap();
        let data = ImplicitDataRegion::new(DATA_BASE, 0xFFFF, true, true).unwrap();
        let heap = ExplicitDataRegion::large(HEAP_BASE, 1 << 16, true, true).unwrap();
        asm.hfi_set_region(0, Region::Code(code));
        asm.hfi_set_region(2, Region::Data(data));
        asm.hfi_set_region(6, Region::Explicit(heap));
        asm.hfi_enter(SandboxConfig::hybrid());
        asm.movi(Reg(0), 0);
        asm.movi(Reg(1), 16);
        asm.movi(Reg(2), DATA_BASE as i64);
        let top = asm.label_here("top");
        asm.store(Reg(1), MemOperand::base_disp(Reg(2), 0x40), 8);
        asm.load(Reg(3), MemOperand::base_disp(Reg(2), 0x40), 8);
        asm.alu(AluOp::Add, Reg(0), Reg(0), Reg(3));
        asm.hmov_store(0, Reg(0), HmovOperand::disp(0x80), 8);
        asm.alu_ri(AluOp::Sub, Reg(1), Reg(1), 1);
        asm.branch_i(Cond::Ne, Reg(1), 0, top);
        asm.hfi_exit();
        asm.halt();
        asm
    }

    /// A sandboxed program with a declared springboard: three marked
    /// zeroing ops feeding the entry contract, then a store/load pair
    /// whose address flows through one of the scrubbed registers — the
    /// state a corrupted springboard would leak through.
    fn springboard_program() -> ProgramBuilder {
        let mut asm = ProgramBuilder::new(CODE_BASE);
        let code = ImplicitCodeRegion::new(CODE_BASE, 0xFFFF, true).unwrap();
        let data = ImplicitDataRegion::new(DATA_BASE, 0xFFFF, true, true).unwrap();
        let heap = ExplicitDataRegion::large(HEAP_BASE, 1 << 16, true, true).unwrap();
        for r in [3u8, 4, 5] {
            asm.movi(Reg(r), 0);
            asm.mark_last_transition();
        }
        asm.set_contract(hfi_core::TransitionContract {
            zeroed: (1 << 3) | (1 << 4) | (1 << 5),
            stack: None,
        });
        asm.hfi_set_region(0, Region::Code(code));
        asm.hfi_set_region(2, Region::Data(data));
        asm.hfi_set_region(6, Region::Explicit(heap));
        asm.hfi_enter(SandboxConfig::hybrid());
        asm.movi(Reg(1), 42);
        // Address = DATA_BASE + 0x40 + r4; the springboard guarantees
        // r4 == 0 here, so honest runs stay in the data window.
        asm.movi(Reg(2), DATA_BASE as i64);
        asm.alu(AluOp::Add, Reg(2), Reg(2), Reg(4));
        asm.store(Reg(1), MemOperand::base_disp(Reg(2), 0x40), 8);
        asm.load(Reg(3), MemOperand::base_disp(Reg(2), 0x40), 8);
        asm.hfi_exit();
        asm.halt();
        asm
    }

    fn spec() -> SandboxSpec {
        SandboxSpec::new("chaos-test")
            .window("data", DATA_BASE, 0x1_0000)
            .window("heap", HEAP_BASE, 1 << 16)
            .slot(
                0,
                Region::Code(ImplicitCodeRegion::new(CODE_BASE, 0xFFFF, true).unwrap()),
            )
    }

    fn run_machine(hook: Box<dyn hfi_sim::ChaosHook>) -> Stop {
        let mut machine = Machine::new(sandboxed_program().finish());
        machine.set_chaos(hook);
        machine.run(1_000_000).stop
    }

    fn run_functional(hook: Box<dyn hfi_sim::ChaosHook>) -> Stop {
        let mut functional = Functional::new(std::sync::Arc::new(sandboxed_program().finish()));
        functional.set_chaos(hook);
        functional.run(1_000_000).stop
    }

    #[test]
    fn baseline_is_clean_on_both_executors() {
        for runner in [run_machine, run_functional] {
            let counter = SiteCounter::new();
            let monitor = ShadowMonitor::from_spec(&spec());
            let stop = runner(Box::new(Rig::new(counter.clone(), monitor.clone())));
            assert_eq!(stop, Stop::Halted);
            let report = monitor.report();
            assert!(report.clean(), "baseline violations: {report:?}");
            assert!(report.trap.is_none());
            assert!(report.checked_accesses > 0);
            let counts = counter.counts();
            assert!(counts.ea > 0);
            assert!(counts.result > 0);
            assert!(counts.guard > 0);
            assert!(counts.context > 0);
        }
    }

    #[test]
    fn every_seeded_ea_flip_fails_closed_or_is_benign() {
        // Sweep triggers exhaustively on the functional executor: every
        // flipped address either still lands in spec (benign) or traps.
        let counter = SiteCounter::new();
        let monitor = ShadowMonitor::from_spec(&spec());
        run_functional(Box::new(Rig::new(counter.clone(), monitor)));
        let sites = counter.counts().ea;
        assert!(sites > 0);
        let mut trapped = 0;
        for trigger in 0..sites {
            let plan = ChaosPlan {
                seed: 0x5EED ^ trigger,
                class: FaultClass::EaFlip,
                trigger,
            };
            let engine = ChaosEngine::new(plan);
            let monitor = ShadowMonitor::from_spec(&spec());
            run_functional(Box::new(Rig::new(engine.clone(), monitor.clone())));
            let report = monitor.report();
            let verdict = classify(&report, false);
            assert!(
                !verdict.is_escape(),
                "trigger {trigger}: escape {report:?} after {:?}",
                engine.fired()
            );
            if matches!(verdict, Verdict::FailClosed { .. }) {
                trapped += 1;
            }
        }
        assert!(trapped > 0, "no EA flip ever trapped across {sites} sites");
    }

    #[test]
    fn guard_skip_alone_never_escapes_with_honest_addresses() {
        // Dropping a guard on an in-spec access changes nothing the
        // monitor can see: the access was legal anyway.
        let counter = SiteCounter::new();
        run_functional(Box::new(Rig::new(
            counter.clone(),
            ShadowMonitor::from_spec(&spec()),
        )));
        for trigger in 0..counter.counts().guard {
            let engine = ChaosEngine::new(ChaosPlan {
                seed: 7,
                class: FaultClass::GuardSkip,
                trigger,
            });
            let monitor = ShadowMonitor::from_spec(&spec());
            let stop = run_functional(Box::new(Rig::new(engine, monitor.clone())));
            assert_eq!(stop, Stop::Halted);
            assert!(monitor.report().clean());
        }
    }

    #[test]
    fn weakened_build_produces_a_visible_escape() {
        // Guards disabled + an EA flip that lands outside the spec: the
        // monitor must flag the silently-retired access. Sweep seeds
        // until one flip actually leaves the windows (a flip can land
        // in-spec; the campaign does the same search).
        let counter = SiteCounter::new();
        run_functional(Box::new(Rig::new(
            counter.clone(),
            ShadowMonitor::from_spec(&spec()),
        )));
        let sites = counter.counts().ea;
        let mut escaped = false;
        'search: for seed in 0..64u64 {
            for trigger in 0..sites {
                let engine = ChaosEngine::new(ChaosPlan {
                    seed,
                    class: FaultClass::EaFlip,
                    trigger,
                });
                let weakened = WeakenedEngine::new(engine);
                let monitor = ShadowMonitor::from_spec(&spec());
                run_functional(Box::new(Rig::new(weakened, monitor.clone())));
                if classify(&monitor.report(), false).is_escape() {
                    escaped = true;
                    break 'search;
                }
            }
        }
        assert!(
            escaped,
            "oracle never reported an escape on the weakened build"
        );
    }

    #[test]
    fn region_corrupt_on_machine_fails_closed_or_benign() {
        let counter = SiteCounter::new();
        let base_monitor = ShadowMonitor::from_spec(&spec());
        run_machine(Box::new(Rig::new(counter.clone(), base_monitor)));
        let sites = counter.counts().context;
        assert!(sites > 0);
        let step = (sites / 16).max(1);
        for trigger in (0..sites).step_by(step as usize) {
            let engine = ChaosEngine::new(ChaosPlan {
                seed: 0xC0FFEE ^ trigger,
                class: FaultClass::RegionCorrupt,
                trigger,
            });
            let monitor = ShadowMonitor::from_spec(&spec());
            run_machine(Box::new(Rig::new(engine.clone(), monitor.clone())));
            let verdict = classify(&monitor.report(), false);
            assert!(
                !verdict.is_escape(),
                "trigger {trigger}: {:?} escaped after {:?}",
                monitor.report(),
                engine.fired()
            );
        }
    }

    #[test]
    fn wrong_path_and_predictor_clobber_are_architecturally_invisible() {
        // Forced mispredictions and predictor clobbers may cost cycles
        // but must not change any architectural outcome.
        let monitor = ShadowMonitor::from_spec(&spec());
        let stop = run_machine(Box::new(Rig::new(SiteCounter::new(), monitor.clone())));
        assert_eq!(stop, Stop::Halted);
        for class in [FaultClass::WrongPath, FaultClass::PredictorClobber] {
            for trigger in [0, 3, 11] {
                let engine = ChaosEngine::new(ChaosPlan {
                    seed: 3,
                    class,
                    trigger,
                });
                let monitor = ShadowMonitor::from_spec(&spec());
                let stop = run_machine(Box::new(Rig::new(engine, monitor.clone())));
                assert_eq!(stop, Stop::Halted, "{class} trigger {trigger}");
                let report = monitor.report();
                assert!(report.clean() && report.trap.is_none());
            }
        }
    }

    #[test]
    fn transition_corrupt_fails_closed_on_both_executors() {
        // Corrupting any springboard zeroing op breaks the declared
        // entry contract; the `hfi_enter` assertion must trap before
        // the sandbox observes the leaked value.
        for fused in [false, true] {
            for trigger in 0..3u64 {
                let engine = ChaosEngine::new(ChaosPlan {
                    seed: 11 ^ trigger,
                    class: FaultClass::TransitionCorrupt,
                    trigger,
                });
                let monitor = ShadowMonitor::from_spec(&spec());
                let program = std::sync::Arc::new(springboard_program().finish());
                let stop = {
                    let mut functional = Functional::new(program);
                    functional.set_fused(fused);
                    functional.set_chaos(Box::new(Rig::new(engine.clone(), monitor.clone())));
                    functional.run(1_000_000).stop
                };
                assert!(engine.fired().is_some(), "trigger {trigger} never fired");
                assert!(
                    matches!(stop, Stop::Fault(HfiFault::TransitionContract { .. })),
                    "fused={fused} trigger {trigger}: expected contract trap, got {stop:?}"
                );
                let verdict = classify(&monitor.report(), false);
                assert!(
                    matches!(verdict, Verdict::FailClosed { .. }),
                    "fused={fused} trigger {trigger}: {verdict:?}"
                );
            }
            // Same sweep on the cycle machine.
            for trigger in 0..3u64 {
                let engine = ChaosEngine::new(ChaosPlan {
                    seed: 13 ^ trigger,
                    class: FaultClass::TransitionCorrupt,
                    trigger,
                });
                let monitor = ShadowMonitor::from_spec(&spec());
                let mut machine = Machine::new(springboard_program().finish());
                machine.set_chaos(Box::new(Rig::new(engine.clone(), monitor.clone())));
                let stop = machine.run(1_000_000).stop;
                assert!(
                    matches!(stop, Stop::Fault(HfiFault::TransitionContract { .. })),
                    "cycle trigger {trigger}: expected contract trap, got {stop:?}"
                );
                assert!(matches!(
                    classify(&monitor.report(), false),
                    Verdict::FailClosed { .. }
                ));
            }
        }
    }

    #[test]
    fn weakened_transition_corrupt_escapes() {
        // With the entry assertion and guards disabled, the junk value
        // walks into the sandbox, the store retires out of every spec
        // window, and the oracle must call it an escape.
        let engine = ChaosEngine::new(ChaosPlan {
            seed: 5,
            class: FaultClass::TransitionCorrupt,
            trigger: 1, // the r4 zeroing op — the one the address uses
        });
        let weakened = WeakenedEngine::new(engine.clone());
        let monitor = ShadowMonitor::from_spec(&spec());
        let mut functional = Functional::new(std::sync::Arc::new(springboard_program().finish()));
        functional.set_chaos(Box::new(Rig::new(weakened, monitor.clone())));
        functional.run(1_000_000);
        assert!(engine.fired().is_some());
        assert!(
            classify(&monitor.report(), false).is_escape(),
            "oracle missed the weakened transition escape: {:?}",
            monitor.report()
        );
    }

    #[test]
    fn monitor_flags_an_out_of_spec_store_directly() {
        struct NoHfi;
        impl hfi_sim::ChaosHook for NoHfi {}
        // A sandboxed store outside every window, observed through a
        // narrower spec than the installed regions: pure monitor test.
        let narrow = SandboxSpec::new("narrow").window("tiny", DATA_BASE, 0x50);
        let monitor = ShadowMonitor::from_spec(&narrow);
        let mut rig = Rig::new(NoHfi, monitor.clone());
        rig.observe(&ArchEvent::Mem {
            pc: CODE_BASE,
            addr: DATA_BASE + 0x48,
            size: 8,
            access: Access::Write,
            hmov: None,
            sandboxed: true,
        });
        assert!(monitor.report().clean());
        rig.observe(&ArchEvent::Mem {
            pc: CODE_BASE,
            addr: DATA_BASE + 0x49,
            size: 8,
            access: Access::Write,
            hmov: None,
            sandboxed: true,
        });
        let report = monitor.report();
        assert_eq!(report.violations.len(), 1);
        assert!(classify(&report, true).is_escape());
        // Unsandboxed accesses are unrestricted.
        rig.observe(&ArchEvent::Mem {
            pc: 0,
            addr: 0xDEAD_0000,
            size: 8,
            access: Access::Read,
            hmov: None,
            sandboxed: false,
        });
        assert_eq!(monitor.report().violations.len(), 1);
    }

    #[test]
    fn classify_orders_escape_over_trap() {
        let report = MonitorReport {
            violations: vec![SpecViolation {
                pc: 1,
                addr: 2,
                size: 8,
                access: Access::Read,
            }],
            trap: Some((1, HfiFault::PrivilegedInstruction)),
            checked_accesses: 1,
            checked_fetches: 0,
        };
        assert!(classify(&report, false).is_escape());
        let report = MonitorReport {
            trap: Some((1, HfiFault::PrivilegedInstruction)),
            ..Default::default()
        };
        assert_eq!(
            classify(&report, false),
            Verdict::FailClosed {
                fault: HfiFault::PrivilegedInstruction
            }
        );
        assert_eq!(
            classify(&MonitorReport::default(), true).label(),
            "benign-identical"
        );
    }
}
