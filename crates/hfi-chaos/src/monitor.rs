//! The shadow reference monitor: an independent fail-closed oracle.
//!
//! The monitor rebuilds the sandbox's allowed address set from its
//! *published contract* (the [`SandboxSpec`] the static verifier checks
//! programs against) and replays every architectural event the executor
//! emits against it. It never consults the live [`HfiContext`] region
//! registers — those are exactly what the chaos engine corrupts — so a
//! perturbed run is judged by what the sandbox *promised*, not by what
//! its (possibly flipped) hardware state currently claims.
//!
//! The one bit of machine state the monitor does trust is the
//! `sandboxed` flag on each event: the HFI enable bit is control state
//! no fault class touches (see [`hfi_sim::chaos`]). Accesses retired
//! outside the sandbox (runtime setup, exit handlers) are unrestricted,
//! as in the paper's threat model.

use std::sync::{Arc, Mutex};

use hfi_core::{Access, HfiFault, Region, NUM_CODE_REGIONS};
use hfi_sim::{ArchEvent, ChaosHook};
use hfi_verify::SandboxSpec;

/// One out-of-spec architectural effect the monitor observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecViolation {
    /// Byte PC of the retiring instruction.
    pub pc: u64,
    /// First byte of the out-of-spec range.
    pub addr: u64,
    /// Width in bytes (the instruction length for fetch violations).
    pub size: u8,
    /// What kind of access escaped.
    pub access: Access,
}

/// Everything the monitor saw during one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MonitorReport {
    /// Out-of-spec accesses that retired (capped at
    /// [`ShadowMonitor::MAX_VIOLATIONS`]; any entry means ESCAPE).
    pub violations: Vec<SpecViolation>,
    /// The first fault delivered, if any: `(pc, fault)`.
    pub trap: Option<(u64, HfiFault)>,
    /// Sandboxed memory accesses checked.
    pub checked_accesses: u64,
    /// Sandboxed instruction retirements checked against code ranges.
    pub checked_fetches: u64,
}

impl MonitorReport {
    /// True when no out-of-spec effect retired.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

#[derive(Debug, Default)]
struct MonitorState {
    /// Allowed `[start, end)` ranges for sandboxed data accesses: the
    /// spec's data windows unioned with its installed data/explicit
    /// region ranges (`u128` ends so `base + len` cannot wrap).
    data: Vec<(u128, u128)>,
    /// Allowed `[start, end)` ranges for sandboxed fetches (declared
    /// code slots). Empty means the spec declares no code contract and
    /// fetches go unchecked.
    code: Vec<(u128, u128)>,
    report: MonitorReport,
}

fn covered(ranges: &[(u128, u128)], addr: u64, size: u8) -> bool {
    let lo = addr as u128;
    let hi = lo + size as u128;
    ranges.iter().any(|&(start, end)| lo >= start && hi <= end)
}

/// The shadow reference monitor, attachable as a [`ChaosHook`] observer.
///
/// Cloning shares state: a clone rides inside the executor (usually via
/// [`Rig`](crate::Rig)) while the original stays with the caller for
/// [`ShadowMonitor::report`] readout. The shared state is
/// `Arc<Mutex<…>>` so the boxed clone satisfies `ChaosHook: Send` and
/// the monitored executor can cross the serving scheduler's shard
/// workers.
#[derive(Debug, Clone, Default)]
pub struct ShadowMonitor {
    inner: Arc<Mutex<MonitorState>>,
}

impl ShadowMonitor {
    /// Violations retained per run (the verdict only needs "any", the
    /// diagnostics only need the first few).
    pub const MAX_VIOLATIONS: usize = 16;

    /// Builds the allowed sets from a published sandbox contract.
    pub fn from_spec(spec: &SandboxSpec) -> Self {
        let mut state = MonitorState::default();
        for window in &spec.windows {
            state.data.push((
                window.base as u128,
                window.base as u128 + window.len as u128,
            ));
        }
        for (slot, region) in &spec.slots {
            let range = (
                region.base() as u128,
                region.base() as u128 + region.len() as u128,
            );
            if (*slot as usize) < NUM_CODE_REGIONS {
                state.code.push(range);
                // An executable region is also readable in this model's
                // data path only if a data window says so; code slots
                // grant fetch alone.
            } else {
                state.data.push(range);
            }
            debug_assert!(
                matches!(region, Region::Code(_)) == ((*slot as usize) < NUM_CODE_REGIONS),
                "spec slot kind/index mismatch"
            );
        }
        ShadowMonitor {
            inner: Arc::new(Mutex::new(state)),
        }
    }

    /// The report accumulated so far.
    pub fn report(&self) -> MonitorReport {
        self.inner
            .lock()
            .expect("shadow monitor unpoisoned")
            .report
            .clone()
    }
}

impl ChaosHook for ShadowMonitor {
    fn observe(&mut self, event: &ArchEvent) {
        let state = &mut *self.inner.lock().expect("shadow monitor unpoisoned");
        match *event {
            ArchEvent::Retire { pc, len, sandboxed } => {
                if sandboxed && !state.code.is_empty() {
                    state.report.checked_fetches += 1;
                    if !covered(&state.code, pc, len)
                        && state.report.violations.len() < Self::MAX_VIOLATIONS
                    {
                        state.report.violations.push(SpecViolation {
                            pc,
                            addr: pc,
                            size: len,
                            access: Access::Fetch,
                        });
                    }
                }
            }
            ArchEvent::Mem {
                pc,
                addr,
                size,
                access,
                sandboxed,
                ..
            } => {
                if sandboxed {
                    state.report.checked_accesses += 1;
                    if !covered(&state.data, addr, size)
                        && state.report.violations.len() < Self::MAX_VIOLATIONS
                    {
                        state.report.violations.push(SpecViolation {
                            pc,
                            addr,
                            size,
                            access,
                        });
                    }
                }
            }
            ArchEvent::Fault { pc, fault } => {
                if state.report.trap.is_none() {
                    state.report.trap = Some((pc, fault));
                }
            }
        }
    }
}
