//! Fault classes and the deterministic injection plan.

use hfi_util::Rng;

/// The runtime fault classes the chaos engine can inject (one per run).
///
/// Each class perturbs a different piece of live machine state through
/// the [`ChaosHook`](hfi_sim::ChaosHook) seam; the fail-closed contract
/// (paper §3.3.2, §4.1) is that none of them can make an out-of-spec
/// access retire silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// Flip one bit in a computed effective address (AGU output),
    /// *upstream* of the bounds check the address must still face.
    EaFlip,
    /// Flip one bit in a result value on the writeback bus, corrupting
    /// every dependent operand (including future address operands).
    OperandFlip,
    /// Drop the guard micro-op of one memory access: its bounds and
    /// permission check never executes.
    GuardSkip,
    /// Corrupt an occupied HFI region register between two
    /// instructions: flip a bound/length bit, a permission bit, or an
    /// implicit region's prefix bit, bypassing every construction-time
    /// validity check (what a physical register-file flip would do).
    /// Explicit-region *base* bits are exempt by design: the base is
    /// added downstream of the §4.2 bounds comparator, so flipping it
    /// is post-guard datapath corruption HFI does not claim to catch.
    RegionCorrupt,
    /// Corrupt one springboard transition micro-op (a register-zeroing
    /// or stack-switch write in an enter/exit sequence): its result is
    /// replaced with host-pointer-like junk, modelling a springboard
    /// whose scrub or stack install never landed. Fail-closed means the
    /// `hfi_enter` entry assertion traps on the broken contract before
    /// the sandbox sees the leaked state.
    TransitionCorrupt,
    /// Invert one branch prediction, forcing a mis-speculated path to
    /// issue and run until the branch resolves (§3.4's wrong-path
    /// hazard; cycle machine only).
    WrongPath,
    /// Clobber the branch predictors (PHT and BTB) at one instruction
    /// boundary. Purely microarchitectural (cycle machine only).
    PredictorClobber,
}

impl FaultClass {
    /// Every class, in campaign-matrix order.
    pub const ALL: [FaultClass; 7] = [
        FaultClass::EaFlip,
        FaultClass::OperandFlip,
        FaultClass::GuardSkip,
        FaultClass::RegionCorrupt,
        FaultClass::TransitionCorrupt,
        FaultClass::WrongPath,
        FaultClass::PredictorClobber,
    ];

    /// Stable kebab-case label (telemetry keys, matrix headers).
    pub fn label(self) -> &'static str {
        match self {
            FaultClass::EaFlip => "ea-flip",
            FaultClass::OperandFlip => "operand-flip",
            FaultClass::GuardSkip => "guard-skip",
            FaultClass::RegionCorrupt => "region-corrupt",
            FaultClass::TransitionCorrupt => "transition-corrupt",
            FaultClass::WrongPath => "wrong-path",
            FaultClass::PredictorClobber => "predictor-clobber",
        }
    }
}

impl std::fmt::Display for FaultClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One deterministic injection: fire fault `class` at the `trigger`-th
/// eligible site (0-based, in program order), with all random choices
/// (bit positions, slot indices) drawn from a [`Rng`] seeded with
/// `seed`. The same plan on the same program always perturbs the same
/// site the same way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Seed for the xoshiro256++ stream behind every random choice.
    pub seed: u64,
    /// Which fault class to inject.
    pub class: FaultClass,
    /// 0-based index of the eligible site to fire at.
    pub trigger: u64,
}

impl ChaosPlan {
    /// The RNG stream this plan's random choices come from.
    pub(crate) fn rng(&self) -> Rng {
        Rng::new(self.seed)
    }
}

/// A record of the one perturbation a [`ChaosEngine`](crate::ChaosEngine)
/// actually performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Injection {
    /// Byte PC of the perturbed site (0 for the between-instruction
    /// classes [`FaultClass::RegionCorrupt`] and
    /// [`FaultClass::PredictorClobber`], which fire at an instruction
    /// boundary rather than at a program counter).
    pub pc: u64,
    /// The eligible-site index that fired (equals the plan's trigger
    /// except for [`FaultClass::RegionCorrupt`], which slides forward
    /// past sites where no region register is occupied).
    pub site: u64,
    /// The XOR mask applied (0 for the non-flip classes).
    pub mask: u64,
}
