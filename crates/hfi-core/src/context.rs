//! The per-core HFI register state and instruction semantics.
//!
//! [`HfiContext`] models everything HFI adds to a CPU core: ten region
//! registers, the exit-handler register, the configuration (flags) register,
//! the exit-reason MSR, and — when the switch-on-exit extension is in use —
//! a shadow copy of the trusted runtime's registers (paper §4.5).
//!
//! Each public method corresponds to one HFI instruction from the interface
//! in Appendix A.1, or to one hardware check performed implicitly during
//! execution (data access, instruction fetch, syscall decode).

use crate::fault::{Access, ExitReason, HfiFault, HmovViolation, SyscallKind};
use crate::region::{ExplicitDataRegion, Region};

/// Number of implicit code region registers (slots `0..2`).
pub const NUM_CODE_REGIONS: usize = 2;
/// Number of implicit data region registers (slots `2..6`).
pub const NUM_IMPLICIT_DATA_REGIONS: usize = 4;
/// Number of explicit data region registers (slots `6..10`).
///
/// Appendix A.1 numbers explicit slots `6-10`, but §3.2 and the `hmov{0-3}`
/// instruction set fix the count at four; we follow the body text.
pub const NUM_EXPLICIT_REGIONS: usize = 4;
/// Total number of region registers.
pub const NUM_REGIONS: usize = NUM_CODE_REGIONS + NUM_IMPLICIT_DATA_REGIONS + NUM_EXPLICIT_REGIONS;

/// First explicit slot index.
pub const FIRST_EXPLICIT_SLOT: usize = NUM_CODE_REGIONS + NUM_IMPLICIT_DATA_REGIONS;

/// The trust model of a sandbox (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SandboxKind {
    /// Untrusted code: region registers lock at entry, system calls and
    /// `hfi_exit` redirect to the exit handler.
    #[default]
    Native,
    /// Trusted (verified/compiled-by-trusted-compiler) code such as a Wasm
    /// runtime: region updates and direct system calls remain allowed.
    Hybrid,
}

/// Parameters to `hfi_enter` (the `sandbox_t` structure of Appendix A.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SandboxConfig {
    /// Native or hybrid trust model.
    pub kind: SandboxKind,
    /// Serialize the pipeline on entry and exit (Spectre hardening, §3.4).
    pub serialize: bool,
    /// Use the switch-on-exit extension: exits atomically restore the
    /// parent sandbox instead of disabling HFI (§3.4, §4.5).
    pub switch_on_exit: bool,
    /// Where control lands on `hfi_exit` / interposed syscalls, if set.
    pub exit_handler: Option<u64>,
}

impl SandboxConfig {
    /// A native (untrusted-code) sandbox with the given exit handler.
    pub fn native(exit_handler: u64) -> Self {
        Self {
            kind: SandboxKind::Native,
            serialize: true,
            switch_on_exit: false,
            exit_handler: Some(exit_handler),
        }
    }

    /// A hybrid (trusted-runtime) sandbox with no exit handler: `hfi_exit`
    /// falls through to the code placed directly after it (§3.3.2).
    pub fn hybrid() -> Self {
        Self {
            kind: SandboxKind::Hybrid,
            serialize: false,
            switch_on_exit: false,
            exit_handler: None,
        }
    }

    /// Enables entry/exit serialization.
    pub fn serialized(mut self) -> Self {
        self.serialize = true;
        self
    }

    /// Enables the switch-on-exit extension for this entry.
    pub fn with_switch_on_exit(mut self) -> Self {
        self.switch_on_exit = true;
        self
    }
}

/// Where control flow goes after `hfi_exit` or an interposed syscall.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExitDisposition {
    /// HFI disabled; execution continues at the instruction after
    /// `hfi_exit` in trusted code.
    FallThrough,
    /// HFI disabled; control jumps to the configured exit handler.
    JumpToHandler(u64),
    /// Switch-on-exit: HFI stays enabled, the parent sandbox's registers
    /// were atomically restored, and execution continues after the parent's
    /// `hfi_enter`.
    SwitchedToParent,
}

/// What the decoder should do with a system-call instruction (paper §4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyscallDisposition {
    /// HFI disabled, or a hybrid sandbox: the syscall proceeds to the OS.
    Allow,
    /// Native sandbox: the syscall is converted into a jump to the exit
    /// handler; HFI is disabled and the MSR records the call.
    Redirect(u64),
    /// Native sandbox with no exit handler installed: architectural fault.
    Fault,
}

/// A serialization event the pipeline must honour (drain in-flight state).
///
/// Returned by operations whose cost depends on whether serialization was
/// required, so simulators can charge the 30–60 cycle drain (paper §3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SerializationEffect {
    /// No pipeline drain required.
    None,
    /// The pipeline must drain before proceeding.
    Serialize,
}

/// A snapshot of the HFI register file, as saved by `xsave` with the
/// save-hfi-regs flag (paper §3.3.3) or by the switch-on-exit shadow copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HfiSaveArea {
    regions: [Option<Region>; NUM_REGIONS],
    config: SandboxConfig,
    enabled: bool,
}

/// Misuse of the HFI interface detected architecturally (these raise faults
/// in hardware; we surface them as `HfiFault` via [`HfiContext`] methods).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlotKindError {
    /// The slot index is out of range (`>= NUM_REGIONS`).
    BadSlot,
    /// The region kind does not match the slot range (e.g. a code region in
    /// an explicit slot).
    KindMismatch,
}

impl std::fmt::Display for SlotKindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SlotKindError::BadSlot => f.write_str("region slot out of range"),
            SlotKindError::KindMismatch => f.write_str("region kind does not match slot"),
        }
    }
}

impl std::error::Error for SlotKindError {}

/// Architectural slot-kind rule (Appendix A.1): code regions go in slots
/// `0..NUM_CODE_REGIONS`, implicit data regions in the middle band, and
/// explicit regions in slots `FIRST_EXPLICIT_SLOT..NUM_REGIONS`. Exposed
/// so static tools (the `hfi-verify` checker) can apply exactly the rule
/// the hardware model enforces.
pub fn slot_accepts(slot: usize, region: &Region) -> Result<(), SlotKindError> {
    if slot >= NUM_REGIONS {
        return Err(SlotKindError::BadSlot);
    }
    let ok = match region {
        Region::Code(_) => slot < NUM_CODE_REGIONS,
        Region::Data(_) => (NUM_CODE_REGIONS..FIRST_EXPLICIT_SLOT).contains(&slot),
        Region::Explicit(_) => slot >= FIRST_EXPLICIT_SLOT,
    };
    if ok {
        Ok(())
    } else {
        Err(SlotKindError::KindMismatch)
    }
}

/// The complete HFI state of one CPU core.
///
/// # Examples
///
/// ```
/// use hfi_core::context::{HfiContext, SandboxConfig};
/// use hfi_core::region::{ExplicitDataRegion, ImplicitCodeRegion};
/// use hfi_core::Region;
///
/// let mut hfi = HfiContext::new();
/// // Map code and a heap before entering.
/// let code = ImplicitCodeRegion::new(0x40_0000, 0xFFFF, true)?;
/// let heap = ExplicitDataRegion::large(0x200_0000, 1 << 20, true, true)?;
/// hfi.set_region(0, Region::Code(code)).unwrap();
/// hfi.set_region(6, Region::Explicit(heap)).unwrap();
/// hfi.enter(SandboxConfig::hybrid()).unwrap();
/// assert!(hfi.enabled());
///
/// // hmov0 access at offset 0x100 resolves relative to the heap base.
/// let ea = hfi.hmov_check(0, 0x100, 1, 0, 8).unwrap();
/// assert_eq!(ea, 0x200_0100);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HfiContext {
    regions: [Option<Region>; NUM_REGIONS],
    config: SandboxConfig,
    enabled: bool,
    exit_reason: Option<ExitReason>,
    /// Shadow register set holding the parent (trusted-runtime) sandbox
    /// while a switch-on-exit child runs (paper §4.5 doubles the metadata
    /// registers for exactly this).
    shadow: Option<Box<HfiSaveArea>>,
    /// Configuration of the most recently exited sandbox, for `hfi_reenter`.
    last_exited: Option<(SandboxConfig, [Option<Region>; NUM_REGIONS])>,
}

impl HfiContext {
    /// Creates a core with HFI disabled and all region registers clear.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether HFI mode (sandboxing) is currently enabled.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The active sandbox configuration (meaningful while enabled).
    pub fn config(&self) -> SandboxConfig {
        self.config
    }

    /// Reads the exit-reason MSR.
    pub fn exit_reason(&self) -> Option<ExitReason> {
        self.exit_reason
    }

    /// True if a switch-on-exit parent context is currently shadowed.
    pub fn has_shadow(&self) -> bool {
        self.shadow.is_some()
    }

    /// `hfi_set_region`: stores `region` into register `slot`.
    ///
    /// Returns whether the pipeline must serialize: region updates while
    /// HFI is *disabled* do not serialize (they are always followed by an
    /// `hfi_enter`); updates from inside a hybrid sandbox serialize to keep
    /// in-flight memory operations correct (paper §4.3).
    ///
    /// # Errors
    ///
    /// * [`HfiFault::PrivilegedInstruction`] if executed inside a native
    ///   sandbox (registers are locked from `hfi_enter` to exit, §3.3.1).
    /// * [`HfiFault::PrivilegedInstruction`] if the slot/kind pairing is
    ///   invalid (modelled as an architectural fault).
    pub fn set_region(
        &mut self,
        slot: usize,
        region: Region,
    ) -> Result<SerializationEffect, HfiFault> {
        if self.enabled && self.config.kind == SandboxKind::Native {
            return Err(HfiFault::PrivilegedInstruction);
        }
        if slot_accepts(slot, &region).is_err() {
            return Err(HfiFault::PrivilegedInstruction);
        }
        self.regions[slot] = Some(region);
        if self.enabled {
            Ok(SerializationEffect::Serialize)
        } else {
            Ok(SerializationEffect::None)
        }
    }

    /// `hfi_get_region`: reads back register `slot`.
    ///
    /// # Errors
    ///
    /// Faults in a native sandbox, like all region-register operations.
    pub fn region(&self, slot: usize) -> Result<Option<Region>, HfiFault> {
        if self.enabled && self.config.kind == SandboxKind::Native {
            return Err(HfiFault::PrivilegedInstruction);
        }
        if slot >= NUM_REGIONS {
            return Err(HfiFault::PrivilegedInstruction);
        }
        Ok(self.regions[slot])
    }

    /// `hfi_clear_region`: clears register `slot`.
    ///
    /// # Errors
    ///
    /// Faults in a native sandbox or for an out-of-range slot.
    pub fn clear_region(&mut self, slot: usize) -> Result<SerializationEffect, HfiFault> {
        if self.enabled && self.config.kind == SandboxKind::Native {
            return Err(HfiFault::PrivilegedInstruction);
        }
        if slot >= NUM_REGIONS {
            return Err(HfiFault::PrivilegedInstruction);
        }
        self.regions[slot] = None;
        if self.enabled {
            Ok(SerializationEffect::Serialize)
        } else {
            Ok(SerializationEffect::None)
        }
    }

    /// `hfi_clear_all_regions`: clears every region register.
    ///
    /// # Errors
    ///
    /// Faults in a native sandbox.
    pub fn clear_all_regions(&mut self) -> Result<SerializationEffect, HfiFault> {
        if self.enabled && self.config.kind == SandboxKind::Native {
            return Err(HfiFault::PrivilegedInstruction);
        }
        self.regions = [None; NUM_REGIONS];
        if self.enabled {
            Ok(SerializationEffect::Serialize)
        } else {
            Ok(SerializationEffect::None)
        }
    }

    /// `hfi_enter`: enables HFI mode with `config`.
    ///
    /// For a switch-on-exit entry use [`enter_child`](Self::enter_child),
    /// which takes the child's register file. The returned effect says
    /// whether the pipeline serializes (`is-serialized` flag).
    ///
    /// # Errors
    ///
    /// Faults if executed inside a native sandbox, or if `switch_on_exit`
    /// is set (that flag requires the child metadata of `enter_child`).
    pub fn enter(&mut self, config: SandboxConfig) -> Result<SerializationEffect, HfiFault> {
        if self.enabled && self.config.kind == SandboxKind::Native {
            return Err(HfiFault::PrivilegedInstruction);
        }
        if config.switch_on_exit {
            return Err(HfiFault::PrivilegedInstruction);
        }
        self.config = config;
        self.enabled = true;
        self.exit_reason = None;
        if config.serialize {
            Ok(SerializationEffect::Serialize)
        } else {
            Ok(SerializationEffect::None)
        }
    }

    /// `hfi_enter` with the switch-on-exit flag: preserves the trusted
    /// runtime's metadata (the live registers) in the shadow set, then
    /// atomically loads the child sandbox's region file (paper §4.5).
    ///
    /// The child's `hfi_exit` (or any fault/syscall exit) switches back to
    /// the shadowed parent instead of disabling HFI, so neither edge needs
    /// serialization — that happened once, when the parent's own serialized
    /// sandbox was entered (paper §3.4).
    ///
    /// # Errors
    ///
    /// Faults if executed inside a native sandbox.
    pub fn enter_child(
        &mut self,
        config: SandboxConfig,
        child_regions: [Option<Region>; NUM_REGIONS],
    ) -> Result<SerializationEffect, HfiFault> {
        if self.enabled && self.config.kind == SandboxKind::Native {
            return Err(HfiFault::PrivilegedInstruction);
        }
        self.shadow = Some(Box::new(HfiSaveArea {
            regions: self.regions,
            config: self.config,
            enabled: self.enabled,
        }));
        self.regions = child_regions;
        let mut config = config;
        config.switch_on_exit = true;
        self.config = config;
        self.enabled = true;
        self.exit_reason = None;
        if config.serialize {
            Ok(SerializationEffect::Serialize)
        } else {
            Ok(SerializationEffect::None)
        }
    }

    /// A copy of the current region register file, e.g. to assemble a
    /// child register set for [`enter_child`](Self::enter_child).
    ///
    /// # Errors
    ///
    /// Faults in a native sandbox, like all region-register reads.
    pub fn regions_snapshot(&self) -> Result<[Option<Region>; NUM_REGIONS], HfiFault> {
        if self.enabled && self.config.kind == SandboxKind::Native {
            return Err(HfiFault::PrivilegedInstruction);
        }
        Ok(self.regions)
    }

    /// `hfi_exit`: leaves the current sandbox.
    ///
    /// Records [`ExitReason::Exit`] in the MSR. Under switch-on-exit the
    /// parent's registers are restored atomically and HFI *stays enabled*;
    /// otherwise HFI is disabled and control either falls through (hybrid
    /// with no handler) or jumps to the exit handler.
    ///
    /// # Errors
    ///
    /// Faults if HFI is not enabled (stray `hfi_exit` in trusted code).
    pub fn exit(&mut self) -> Result<(ExitDisposition, SerializationEffect), HfiFault> {
        if !self.enabled {
            return Err(HfiFault::PrivilegedInstruction);
        }
        self.exit_reason = Some(ExitReason::Exit);
        self.leave(ExitReason::Exit)
    }

    /// Common exit path for `hfi_exit`, interposed syscalls, and faults.
    fn leave(
        &mut self,
        reason: ExitReason,
    ) -> Result<(ExitDisposition, SerializationEffect), HfiFault> {
        self.exit_reason = Some(reason);
        let serialize = if self.config.serialize {
            SerializationEffect::Serialize
        } else {
            SerializationEffect::None
        };
        if self.config.switch_on_exit {
            let parent = self.shadow.take().ok_or(HfiFault::PrivilegedInstruction)?;
            self.last_exited = Some((self.config, self.regions));
            self.regions = parent.regions;
            self.config = parent.config;
            self.enabled = parent.enabled;
            // Exits from the switch-on-exit set are deliberately
            // unserialized; serialization happens when the trusted
            // runtime's own (serialized) sandbox exits (paper §3.4).
            return Ok((ExitDisposition::SwitchedToParent, SerializationEffect::None));
        }
        self.last_exited = Some((self.config, self.regions));
        self.enabled = false;
        let disposition = match self.config.exit_handler {
            Some(handler) => ExitDisposition::JumpToHandler(handler),
            None => ExitDisposition::FallThrough,
        };
        Ok((disposition, serialize))
    }

    /// `hfi_reenter`: re-enters the sandbox that was most recently exited,
    /// restoring its configuration and region registers.
    ///
    /// # Errors
    ///
    /// Faults if executed inside a native sandbox or if no sandbox has been
    /// exited since the last reset.
    pub fn reenter(&mut self) -> Result<SerializationEffect, HfiFault> {
        if self.enabled && self.config.kind == SandboxKind::Native {
            return Err(HfiFault::PrivilegedInstruction);
        }
        let (config, regions) = self.last_exited.ok_or(HfiFault::PrivilegedInstruction)?;
        if config.switch_on_exit {
            return self.enter_child(config, regions);
        }
        self.regions = regions;
        self.enter(config)
    }

    /// The implicit data-region check applied to every ordinary load/store
    /// while HFI is enabled (paper §4.1): first-match over slots 2–5, then a
    /// permission check. Runs in parallel with the dTLB lookup in hardware,
    /// so it contributes *zero latency*; simulators must not charge cycles.
    ///
    /// Accesses performed while HFI is disabled always succeed.
    ///
    /// # Errors
    ///
    /// [`HfiFault::DataBounds`] if no region matches or the first match
    /// lacks the required permission.
    pub fn check_data(&self, addr: u64, size: u64, access: Access) -> Result<(), HfiFault> {
        if !self.enabled {
            return Ok(());
        }
        let fault = HfiFault::DataBounds { addr, access };
        let last = addr.checked_add(size.max(1) - 1).ok_or(fault)?;
        for slot in NUM_CODE_REGIONS..FIRST_EXPLICIT_SLOT {
            if let Some(Region::Data(region)) = &self.regions[slot] {
                if region.contains(addr) {
                    // First match wins; the whole access must stay inside
                    // it and it must grant the permission.
                    if region.contains(last) && region.permits(access) {
                        return Ok(());
                    }
                    return Err(fault);
                }
            }
        }
        Err(fault)
    }

    /// The implicit code-region check applied at decode to every fetched
    /// instruction (paper §4.1). A failed check turns the decoded micro-ops
    /// into a faulting NOP, so out-of-bounds instructions never execute —
    /// not even speculatively.
    ///
    /// # Errors
    ///
    /// [`HfiFault::CodeBounds`] if no code region with execute permission
    /// covers `[pc, pc + len)`.
    pub fn check_fetch(&self, pc: u64, len: u64) -> Result<(), HfiFault> {
        if !self.enabled {
            return Ok(());
        }
        let fault = HfiFault::CodeBounds { pc };
        let last = pc.checked_add(len.max(1) - 1).ok_or(fault)?;
        for slot in 0..NUM_CODE_REGIONS {
            if let Some(Region::Code(region)) = &self.regions[slot] {
                if region.contains(pc) {
                    if region.contains(last) && region.exec() {
                        return Ok(());
                    }
                    return Err(fault);
                }
            }
        }
        Err(fault)
    }

    /// The `hmov{N}` effective-address computation and bounds check
    /// (paper §3.2, §4.2).
    ///
    /// `region` selects one of the four explicit regions (0–3, i.e. slot
    /// `6 + region`). The x86 base operand is ignored and replaced by the
    /// region base; `index * scale + disp` forms the relative offset. The
    /// returned value is the absolute effective address.
    ///
    /// Checks, in hardware order: sign bits of `index` and `disp` clear;
    /// no overflow in the effective-address add; 32-bit comparator bounds
    /// check; permission.
    ///
    /// # Errors
    ///
    /// [`HfiFault::Hmov`] describing the exact violation.
    pub fn hmov_check(
        &self,
        region: u8,
        index: i64,
        scale: u64,
        disp: i64,
        size: u64,
    ) -> Result<u64, HfiFault> {
        self.hmov_check_access(region, index, scale, disp, size, Access::Read)
    }

    /// Like [`hmov_check`](Self::hmov_check) but for a specific access kind
    /// (loads check read permission, stores check write permission).
    ///
    /// # Errors
    ///
    /// [`HfiFault::Hmov`] describing the exact violation.
    pub fn hmov_check_access(
        &self,
        region: u8,
        index: i64,
        scale: u64,
        disp: i64,
        size: u64,
        access: Access,
    ) -> Result<u64, HfiFault> {
        let fault = |violation| HfiFault::Hmov { region, violation };
        let slot = FIRST_EXPLICIT_SLOT + region as usize;
        if region as usize >= NUM_EXPLICIT_REGIONS {
            return Err(fault(HmovViolation::RegionNotConfigured));
        }
        let explicit: &ExplicitDataRegion = match &self.regions[slot] {
            Some(Region::Explicit(explicit)) => explicit,
            _ => return Err(fault(HmovViolation::RegionNotConfigured)),
        };
        // (2) hmov traps on negative operands (sign-bit checks).
        if index < 0 || disp < 0 {
            return Err(fault(HmovViolation::NegativeOperand));
        }
        // (3) hmov traps if the effective-address computation overflows.
        let scaled = (index as u64)
            .checked_mul(scale)
            .ok_or(fault(HmovViolation::Overflow))?;
        let offset = scaled
            .checked_add(disp as u64)
            .ok_or(fault(HmovViolation::Overflow))?;
        let ea = explicit
            .base()
            .checked_add(offset)
            .ok_or(fault(HmovViolation::Overflow))?;
        if !explicit.offset_in_bounds(offset, size.max(1)) {
            return Err(fault(HmovViolation::OutOfBounds));
        }
        if !explicit.permits(access) {
            return Err(fault(HmovViolation::PermissionDenied));
        }
        Ok(ea)
    }

    /// The microcode check added to the decode of `syscall`/`sysenter`/
    /// `int 0x80` (paper §4.4). In a native sandbox the call is converted
    /// into a jump to the exit handler: HFI records the reason and leaves
    /// the sandbox exactly as `hfi_exit` with a handler would.
    pub fn syscall(&mut self, number: u64, kind: SyscallKind) -> SyscallDisposition {
        if !self.enabled || self.config.kind == SandboxKind::Hybrid {
            return SyscallDisposition::Allow;
        }
        match self.config.exit_handler {
            Some(handler) => {
                let reason = ExitReason::Syscall { number, kind };
                // leave() cannot fail here: we are enabled.
                let _ = self.leave(reason);
                SyscallDisposition::Redirect(handler)
            }
            None => SyscallDisposition::Fault,
        }
    }

    /// Delivers a fault from sandboxed execution: disables the sandbox,
    /// records the cause in the MSR, and (in hardware) raises a trap the OS
    /// turns into a signal for the trusted runtime (paper §3.3.2).
    pub fn deliver_fault(&mut self, fault: HfiFault) -> ExitDisposition {
        if !self.enabled {
            self.exit_reason = Some(ExitReason::Fault(fault));
            return ExitDisposition::FallThrough;
        }
        match self.leave(ExitReason::Fault(fault)) {
            Ok((disposition, _)) => disposition,
            Err(_) => ExitDisposition::FallThrough,
        }
    }

    /// Fault-injection support (the `hfi-chaos` crate): XOR-corrupts the
    /// metadata stored in region register `slot` — `base_xor` into the
    /// base bits, `len_xor` into the length bits — **bypassing the
    /// slot-kind rule and every construction-time validity check**,
    /// exactly what a bit flip in the physical register file between two
    /// instructions would do. No privilege check applies: this models
    /// hardware corruption, not an instruction. Returns `false` (and
    /// changes nothing) if the slot is out of range or empty.
    ///
    /// The enforcement checks ([`check_data`](Self::check_data),
    /// [`check_fetch`](Self::check_fetch),
    /// [`hmov_check_access`](Self::hmov_check_access)) must fail closed
    /// on the corrupted state; the chaos campaign's shadow monitor
    /// verifies that they do.
    pub fn inject_region_bitflip(&mut self, slot: usize, base_xor: u64, len_xor: u64) -> bool {
        if slot >= NUM_REGIONS {
            return false;
        }
        match &mut self.regions[slot] {
            Some(region) => {
                *region = region.with_injected_bitflip(base_xor, len_xor);
                true
            }
            None => false,
        }
    }

    /// Fault-injection support: toggles the permission bit for `access`
    /// in region register `slot` (no privilege check — this models
    /// hardware corruption, not an instruction). Returns `false` (and
    /// changes nothing) if the slot is out of range, empty, or its
    /// region kind has no such permission bit.
    pub fn inject_region_perm_flip(&mut self, slot: usize, access: Access) -> bool {
        if slot >= NUM_REGIONS {
            return false;
        }
        match &mut self.regions[slot] {
            Some(region) => match region.with_toggled_permission(access) {
                Some(toggled) => {
                    *region = toggled;
                    true
                }
                None => false,
            },
            None => false,
        }
    }

    /// Fault-injection support: the raw `hmov` effective address with
    /// every §4.2 check bypassed — what the address-generation unit would
    /// produce if the guard micro-op were dropped from the pipeline. All
    /// arithmetic wraps, mirroring an unchecked AGU. Returns `None` only
    /// when the explicit region is not configured (there is no base to
    /// add, so not even a broken pipeline could form an address).
    pub fn hmov_unchecked_ea(&self, region: u8, index: i64, scale: u64, disp: i64) -> Option<u64> {
        let slot = FIRST_EXPLICIT_SLOT + region as usize;
        if region as usize >= NUM_EXPLICIT_REGIONS {
            return None;
        }
        let explicit: &ExplicitDataRegion = match &self.regions[slot] {
            Some(Region::Explicit(explicit)) => explicit,
            _ => return None,
        };
        Some(
            explicit
                .base()
                .wrapping_add((index as u64).wrapping_mul(scale))
                .wrapping_add(disp as u64),
        )
    }

    /// `xsave` with the save-hfi-regs flag: snapshots HFI state for an OS
    /// process context switch (paper §3.3.3).
    pub fn save_area(&self) -> HfiSaveArea {
        HfiSaveArea {
            regions: self.regions,
            config: self.config,
            enabled: self.enabled,
        }
    }

    /// `xrstor` with the save-hfi-regs flag.
    ///
    /// # Errors
    ///
    /// Faults in a *native* sandbox: letting untrusted code rewrite the HFI
    /// registers would break sandboxing (paper §3.3.3).
    pub fn restore_area(&mut self, area: &HfiSaveArea) -> Result<(), HfiFault> {
        if self.enabled && self.config.kind == SandboxKind::Native {
            return Err(HfiFault::PrivilegedInstruction);
        }
        self.regions = area.regions;
        self.config = area.config;
        self.enabled = area.enabled;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::{ExplicitDataRegion, ImplicitCodeRegion, ImplicitDataRegion};

    fn code_region(base: u64, mask: u64) -> Region {
        Region::Code(ImplicitCodeRegion::new(base, mask, true).unwrap())
    }

    fn data_region(base: u64, mask: u64, read: bool, write: bool) -> Region {
        Region::Data(ImplicitDataRegion::new(base, mask, read, write).unwrap())
    }

    fn ctx_with_heap() -> HfiContext {
        let mut hfi = HfiContext::new();
        hfi.set_region(0, code_region(0x40_0000, 0xFFFF)).unwrap();
        let heap = ExplicitDataRegion::large(0x200_0000, 1 << 20, true, true).unwrap();
        hfi.set_region(6, Region::Explicit(heap)).unwrap();
        hfi
    }

    #[test]
    fn default_deny_everything() {
        let mut hfi = HfiContext::new();
        hfi.set_region(0, code_region(0, 0xFFF)).unwrap();
        hfi.enter(SandboxConfig::hybrid()).unwrap();
        // No data regions mapped: all data access faults.
        assert!(hfi.check_data(0x1000, 8, Access::Read).is_err());
        // Fetch outside the code region faults.
        assert!(hfi.check_fetch(0x10_0000, 4).is_err());
        // Fetch inside succeeds.
        assert!(hfi.check_fetch(0x800, 4).is_ok());
    }

    #[test]
    fn disabled_hfi_checks_nothing() {
        let hfi = HfiContext::new();
        assert!(hfi.check_data(0xDEAD_BEEF, 8, Access::Write).is_ok());
        assert!(hfi.check_fetch(0xDEAD_BEEF, 4).is_ok());
    }

    #[test]
    fn first_match_semantics() {
        let mut hfi = HfiContext::new();
        hfi.set_region(0, code_region(0, 0xFFF)).unwrap();
        // Slot 2: read-only view of [0x1000, 0x2000).
        hfi.set_region(2, data_region(0x1000, 0xFFF, true, false))
            .unwrap();
        // Slot 3: read-write covering the same range — shadowed by slot 2.
        hfi.set_region(3, data_region(0x1000, 0xFFF, true, true))
            .unwrap();
        hfi.enter(SandboxConfig::hybrid()).unwrap();
        assert!(hfi.check_data(0x1800, 8, Access::Read).is_ok());
        // First match (read-only) wins even though a later region permits.
        assert!(hfi.check_data(0x1800, 8, Access::Write).is_err());
    }

    #[test]
    fn access_may_not_straddle_region_edge() {
        let mut hfi = HfiContext::new();
        hfi.set_region(0, code_region(0, 0xFFF)).unwrap();
        hfi.set_region(2, data_region(0x1000, 0xFFF, true, true))
            .unwrap();
        hfi.enter(SandboxConfig::hybrid()).unwrap();
        assert!(hfi.check_data(0x1FF8, 8, Access::Read).is_ok());
        assert!(hfi.check_data(0x1FF9, 8, Access::Read).is_err());
    }

    #[test]
    fn hmov_relative_addressing() {
        let mut hfi = ctx_with_heap();
        hfi.enter(SandboxConfig::hybrid()).unwrap();
        let ea = hfi.hmov_check(0, 2, 8, 0x10, 8).unwrap();
        assert_eq!(ea, 0x200_0000 + 2 * 8 + 0x10);
    }

    #[test]
    fn hmov_rejects_negative_operands() {
        let mut hfi = ctx_with_heap();
        hfi.enter(SandboxConfig::hybrid()).unwrap();
        let err = hfi.hmov_check(0, -1, 1, 0, 1).unwrap_err();
        assert_eq!(
            err,
            HfiFault::Hmov {
                region: 0,
                violation: HmovViolation::NegativeOperand
            }
        );
        let err = hfi.hmov_check(0, 0, 1, -8, 1).unwrap_err();
        assert_eq!(
            err,
            HfiFault::Hmov {
                region: 0,
                violation: HmovViolation::NegativeOperand
            }
        );
    }

    #[test]
    fn hmov_rejects_overflow() {
        let mut hfi = ctx_with_heap();
        hfi.enter(SandboxConfig::hybrid()).unwrap();
        let err = hfi.hmov_check(0, i64::MAX, 8, 0, 1).unwrap_err();
        assert_eq!(
            err,
            HfiFault::Hmov {
                region: 0,
                violation: HmovViolation::Overflow
            }
        );
    }

    #[test]
    fn hmov_bounds() {
        let mut hfi = ctx_with_heap();
        hfi.enter(SandboxConfig::hybrid()).unwrap();
        // Last in-bounds byte.
        assert!(hfi.hmov_check(0, 0, 1, (1 << 20) - 1, 1).is_ok());
        assert_eq!(
            hfi.hmov_check(0, 0, 1, 1 << 20, 1).unwrap_err(),
            HfiFault::Hmov {
                region: 0,
                violation: HmovViolation::OutOfBounds
            }
        );
    }

    #[test]
    fn hmov_unconfigured_region_faults() {
        let mut hfi = ctx_with_heap();
        hfi.enter(SandboxConfig::hybrid()).unwrap();
        assert_eq!(
            hfi.hmov_check(3, 0, 1, 0, 1).unwrap_err(),
            HfiFault::Hmov {
                region: 3,
                violation: HmovViolation::RegionNotConfigured
            }
        );
    }

    #[test]
    fn hmov_write_to_readonly_region_faults() {
        let mut hfi = HfiContext::new();
        let shared = ExplicitDataRegion::small(0x5000_0000, 0x100, true, false).unwrap();
        hfi.set_region(7, Region::Explicit(shared)).unwrap();
        hfi.enter(SandboxConfig::hybrid()).unwrap();
        assert!(hfi.hmov_check_access(1, 0, 1, 0, 8, Access::Read).is_ok());
        assert_eq!(
            hfi.hmov_check_access(1, 0, 1, 0, 8, Access::Write)
                .unwrap_err(),
            HfiFault::Hmov {
                region: 1,
                violation: HmovViolation::PermissionDenied
            }
        );
    }

    #[test]
    fn native_sandbox_locks_region_registers() {
        let mut hfi = ctx_with_heap();
        hfi.enter(SandboxConfig::native(0x7000)).unwrap();
        let heap = ExplicitDataRegion::large(0, 1 << 16, true, true).unwrap();
        assert_eq!(
            hfi.set_region(6, Region::Explicit(heap)).unwrap_err(),
            HfiFault::PrivilegedInstruction
        );
        assert!(hfi.clear_all_regions().is_err());
        assert!(hfi.region(6).is_err());
        assert!(hfi.enter(SandboxConfig::hybrid()).is_err());
    }

    #[test]
    fn hybrid_sandbox_may_update_regions_with_serialization() {
        let mut hfi = ctx_with_heap();
        hfi.enter(SandboxConfig::hybrid()).unwrap();
        let heap = ExplicitDataRegion::large(0x300_0000, 1 << 16, true, true).unwrap();
        assert_eq!(
            hfi.set_region(6, Region::Explicit(heap)).unwrap(),
            SerializationEffect::Serialize
        );
    }

    #[test]
    fn set_region_outside_sandbox_does_not_serialize() {
        let mut hfi = HfiContext::new();
        assert_eq!(
            hfi.set_region(0, code_region(0, 0xFFF)).unwrap(),
            SerializationEffect::None
        );
    }

    #[test]
    fn native_syscall_redirects_and_records_msr() {
        let mut hfi = ctx_with_heap();
        hfi.enter(SandboxConfig::native(0x7000)).unwrap();
        let disposition = hfi.syscall(2, SyscallKind::Syscall);
        assert_eq!(disposition, SyscallDisposition::Redirect(0x7000));
        assert!(!hfi.enabled());
        assert_eq!(
            hfi.exit_reason(),
            Some(ExitReason::Syscall {
                number: 2,
                kind: SyscallKind::Syscall
            })
        );
    }

    #[test]
    fn hybrid_syscall_allowed() {
        let mut hfi = ctx_with_heap();
        hfi.enter(SandboxConfig::hybrid()).unwrap();
        assert_eq!(
            hfi.syscall(1, SyscallKind::Syscall),
            SyscallDisposition::Allow
        );
        assert!(hfi.enabled());
    }

    #[test]
    fn exit_falls_through_without_handler() {
        let mut hfi = ctx_with_heap();
        hfi.enter(SandboxConfig::hybrid()).unwrap();
        let (disposition, _) = hfi.exit().unwrap();
        assert_eq!(disposition, ExitDisposition::FallThrough);
        assert!(!hfi.enabled());
        assert_eq!(hfi.exit_reason(), Some(ExitReason::Exit));
    }

    #[test]
    fn exit_jumps_to_handler() {
        let mut hfi = ctx_with_heap();
        hfi.enter(SandboxConfig::native(0xBEEF)).unwrap();
        let (disposition, effect) = hfi.exit().unwrap();
        assert_eq!(disposition, ExitDisposition::JumpToHandler(0xBEEF));
        assert_eq!(effect, SerializationEffect::Serialize);
    }

    #[test]
    fn switch_on_exit_restores_parent() {
        let mut hfi = HfiContext::new();
        // The trusted runtime runs in its own serialized hybrid sandbox.
        hfi.set_region(0, code_region(0x40_0000, 0xFFFF)).unwrap();
        hfi.set_region(2, data_region(0x10_0000, 0xFFFF, true, true))
            .unwrap();
        hfi.enter(SandboxConfig::hybrid().serialized()).unwrap();
        let parent_region = hfi.region(2).unwrap();

        // It assembles the child's region file and enters with
        // switch-on-exit; the entry itself is unserialized.
        let mut child_regions = hfi.regions_snapshot().unwrap();
        child_regions[2] = Some(data_region(0x20_0000, 0xFFFF, true, true));
        let effect = hfi
            .enter_child(
                SandboxConfig {
                    kind: SandboxKind::Hybrid,
                    ..SandboxConfig::hybrid()
                },
                child_regions,
            )
            .unwrap();
        assert_eq!(effect, SerializationEffect::None);
        assert!(hfi.has_shadow());

        // Child exits: atomically back to the parent sandbox, HFI still on.
        let (disposition, effect) = hfi.exit().unwrap();
        assert_eq!(disposition, ExitDisposition::SwitchedToParent);
        assert_eq!(effect, SerializationEffect::None);
        assert!(hfi.enabled());
        assert_eq!(hfi.region(2).unwrap(), parent_region);
    }

    #[test]
    fn reenter_restores_last_sandbox() {
        let mut hfi = ctx_with_heap();
        hfi.enter(SandboxConfig::hybrid()).unwrap();
        hfi.exit().unwrap();
        assert!(!hfi.enabled());
        hfi.reenter().unwrap();
        assert!(hfi.enabled());
        assert!(hfi.hmov_check(0, 0, 1, 0, 1).is_ok());
    }

    #[test]
    fn fault_disables_sandbox_and_records_reason() {
        let mut hfi = ctx_with_heap();
        hfi.enter(SandboxConfig::native(0x9000)).unwrap();
        let fault = HfiFault::DataBounds {
            addr: 0xBAD,
            access: Access::Write,
        };
        let disposition = hfi.deliver_fault(fault);
        assert_eq!(disposition, ExitDisposition::JumpToHandler(0x9000));
        assert!(!hfi.enabled());
        assert_eq!(hfi.exit_reason(), Some(ExitReason::Fault(fault)));
    }

    #[test]
    fn xrstor_in_native_sandbox_faults() {
        let mut hfi = ctx_with_heap();
        let saved = hfi.save_area();
        hfi.enter(SandboxConfig::native(0x1)).unwrap();
        assert_eq!(
            hfi.restore_area(&saved).unwrap_err(),
            HfiFault::PrivilegedInstruction
        );
    }

    #[test]
    fn xsave_xrstor_roundtrip() {
        let mut hfi = ctx_with_heap();
        hfi.enter(SandboxConfig::hybrid()).unwrap();
        let saved = hfi.save_area();
        let mut other = HfiContext::new();
        other.restore_area(&saved).unwrap();
        assert_eq!(other, hfi);
    }

    #[test]
    fn slot_kind_validation() {
        let mut hfi = HfiContext::new();
        // Code region in a data slot faults.
        assert!(hfi.set_region(2, code_region(0, 0xFFF)).is_err());
        // Data region in an explicit slot faults.
        assert!(hfi
            .set_region(6, data_region(0, 0xFFF, true, true))
            .is_err());
        // Explicit region in a code slot faults.
        let explicit = ExplicitDataRegion::small(0, 0x100, true, true).unwrap();
        assert!(hfi.set_region(0, Region::Explicit(explicit)).is_err());
        // Out-of-range slot faults.
        assert!(hfi.set_region(10, code_region(0, 0xFFF)).is_err());
    }
}
