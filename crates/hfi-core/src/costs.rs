//! Architectural cost parameters shared by the simulation layers.
//!
//! HFI's design goal is that its *checks* are free (they run in parallel
//! with the dTLB lookup and decode; paper §4.1–4.2) while its *transitions*
//! have small, well-defined costs. The values here are the single source of
//! truth used by both the cycle-level simulator (`hfi-sim`) and the
//! analytic models (`hfi-native`, `hfi-faas`); each constant cites where
//! its value comes from.

/// Cycle-domain cost parameters for HFI and comparison mechanisms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Pipeline-drain penalty of a serializing instruction, in cycles.
    /// The paper (§3.4) expects ≈30–60 cycles on x86-64 "based on the cost
    /// of similar serializing instructions"; we take the midpoint.
    pub serialize_cycles: u64,
    /// Base cost of `hfi_enter`/`hfi_exit` without serialization: flag and
    /// handler register writes, a few cycles like any register move.
    pub enter_exit_base_cycles: u64,
    /// Cost of one `hfi_set_region`: moving 2 region metadata registers
    /// from memory/GPRs (paper §6.4.2 notes HFI "takes a few cycles to
    /// move metadata from memory to HFI registers on each transition").
    pub set_region_cycles: u64,
    /// Extra decode penalty HFI adds to syscall instructions for the
    /// microcode native-mode check (paper §4.4: "a single cycle penalty").
    pub syscall_check_cycles: u64,
    /// Cost of `wrpkru` for the MPK comparison (ERIM reports 11–260 cycles
    /// across microarchitectures; ~26 cycles on Skylake-era parts is the
    /// commonly cited figure, and two are needed per transition).
    pub wrpkru_cycles: u64,
    /// Ring transition (user → kernel → user) for a minimal syscall, used
    /// to contrast HFI's user-space transitions with OS-based interposition
    /// (Hodor/ERIM measure ~150 cycles for bare `syscall`; with KPTI and
    /// real work this grows to thousands).
    pub syscall_roundtrip_cycles: u64,
    /// Per-syscall cost of evaluating a Seccomp-bpf filter (ERIM §6:
    /// a small filter adds tens of nanoseconds; we model ~90 cycles).
    pub seccomp_filter_cycles: u64,
    /// Cycles to save or restore the general-purpose register file in a
    /// springboard/trampoline transition (16 GPR stores + stack switch).
    pub springboard_cycles: u64,
    /// A plain call/return pair — the floor for zero-cost transitions
    /// (paper §1: Wasm context switches are "in the low 10s of cycles").
    pub call_return_cycles: u64,
}

impl CostModel {
    /// The calibrated Skylake-like defaults used throughout the repo.
    pub const fn skylake_like() -> Self {
        Self {
            serialize_cycles: 45,
            enter_exit_base_cycles: 4,
            set_region_cycles: 6,
            syscall_check_cycles: 1,
            wrpkru_cycles: 26,
            syscall_roundtrip_cycles: 150,
            seccomp_filter_cycles: 90,
            springboard_cycles: 40,
            call_return_cycles: 5,
        }
    }

    /// Cost in cycles of a full HFI native-sandbox transition pair
    /// (enter + exit), with `regions` region registers loaded from memory
    /// and optional serialization on both edges.
    pub fn hfi_transition_pair(&self, regions: u64, serialized: bool) -> u64 {
        let base = 2 * self.enter_exit_base_cycles + regions * self.set_region_cycles;
        if serialized {
            base + 2 * self.serialize_cycles
        } else {
            base
        }
    }

    /// Cost in cycles of an MPK transition pair (two `wrpkru`, which is
    /// itself serializing on real hardware — included in `wrpkru_cycles`).
    pub fn mpk_transition_pair(&self) -> u64 {
        2 * self.wrpkru_cycles
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::skylake_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_dominates_unserialized_transition() {
        let costs = CostModel::default();
        let unserialized = costs.hfi_transition_pair(4, false);
        let serialized = costs.hfi_transition_pair(4, true);
        assert!(serialized > unserialized + 2 * 30);
        assert!(serialized < unserialized + 2 * 60 + 1);
    }

    #[test]
    fn hfi_serialized_costs_slightly_more_than_mpk() {
        // Fig. 5 discussion: HFI's native-sandbox overhead is slightly
        // larger than MPK's because it moves region metadata on each
        // transition.
        let costs = CostModel::default();
        assert!(costs.hfi_transition_pair(4, true) > costs.mpk_transition_pair());
    }

    #[test]
    fn zero_cost_transition_is_call_like() {
        let costs = CostModel::default();
        assert!(costs.call_return_cycles < 15);
    }
}
