//! Fault and exit-reason types.
//!
//! HFI records the cause of every sandbox exit — voluntary
//! ([`ExitReason::Exit`]), system calls, and access violations — in a model
//! specific register (MSR) that the trusted runtime's exit handler or signal
//! handler reads to decide what to do next (paper §3.3.2).

use std::error::Error;
use std::fmt;

/// The kind of memory access being checked against a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// A data read (load).
    Read,
    /// A data write (store).
    Write,
    /// An instruction fetch.
    Fetch,
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Access::Read => f.write_str("read"),
            Access::Write => f.write_str("write"),
            Access::Fetch => f.write_str("fetch"),
        }
    }
}

/// The flavour of system-call instruction that triggered an interposed exit.
///
/// The paper (§3.3.2) notes the MSR records "which system call and type of
/// call (e.g., `int 0x80` vs. `sysenter`)".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyscallKind {
    /// The 64-bit `syscall` instruction.
    Syscall,
    /// The legacy `sysenter` instruction.
    Sysenter,
    /// The legacy `int 0x80` software interrupt.
    Int80,
}

impl fmt::Display for SyscallKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyscallKind::Syscall => f.write_str("syscall"),
            SyscallKind::Sysenter => f.write_str("sysenter"),
            SyscallKind::Int80 => f.write_str("int 0x80"),
        }
    }
}

/// Why an `hmov` instruction faulted (paper §3.2, §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HmovViolation {
    /// An index or displacement operand had its sign bit set.
    NegativeOperand,
    /// The effective-address computation overflowed.
    Overflow,
    /// The effective address fell outside the region's bound.
    OutOfBounds,
    /// The named explicit region register is not configured.
    RegionNotConfigured,
    /// The region is configured but lacks the required permission.
    PermissionDenied,
}

impl fmt::Display for HmovViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HmovViolation::NegativeOperand => f.write_str("negative index or displacement"),
            HmovViolation::Overflow => f.write_str("effective-address overflow"),
            HmovViolation::OutOfBounds => f.write_str("access beyond region bound"),
            HmovViolation::RegionNotConfigured => f.write_str("explicit region not configured"),
            HmovViolation::PermissionDenied => f.write_str("region permission denied"),
        }
    }
}

/// A fault raised while executing inside an HFI sandbox.
///
/// Faults atomically disable HFI mode, record their cause in the exit-reason
/// MSR, and surface to the trusted runtime as a hardware trap (delivered by
/// the OS as a signal, typically `SIGSEGV`; paper §3.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HfiFault {
    /// A load or store matched no implicit data region, or the first match
    /// lacked the required permission.
    DataBounds {
        /// Faulting virtual address.
        addr: u64,
        /// The access that was attempted.
        access: Access,
    },
    /// An instruction fetch matched no implicit code region with execute
    /// permission. At the microarchitectural level the fetched bytes decode
    /// to a faulting NOP (paper §4.1).
    CodeBounds {
        /// Faulting program counter.
        pc: u64,
    },
    /// An `hmov` check failed.
    Hmov {
        /// The explicit-region index (0–3) named by the instruction.
        region: u8,
        /// What went wrong.
        violation: HmovViolation,
    },
    /// Sandboxed code in a *native* sandbox attempted a privileged HFI
    /// operation: updating region registers, `hfi_enter`, or `xrstor` with
    /// the save-hfi-regs flag (paper §3.3.3).
    PrivilegedInstruction,
    /// An ordinary hardware fault (e.g. a null-pointer dereference hitting
    /// an unmapped page) occurred inside the sandbox.
    Hardware {
        /// Faulting virtual address.
        addr: u64,
    },
    /// The springboard's entry contract was violated at `hfi_enter`: a
    /// register the transition scheme promised to zero (or to point at
    /// the sandbox stack) held something else. The trusted runtime's
    /// entry assertion delivers this as a precise trap before any
    /// sandboxed instruction runs.
    TransitionContract {
        /// The register that broke the contract.
        reg: u8,
    },
}

impl fmt::Display for HfiFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HfiFault::DataBounds { addr, access } => {
                write!(f, "HFI data bounds violation: {access} at {addr:#x}")
            }
            HfiFault::CodeBounds { pc } => {
                write!(f, "HFI code bounds violation: fetch at {pc:#x}")
            }
            HfiFault::Hmov { region, violation } => {
                write!(f, "hmov{region} fault: {violation}")
            }
            HfiFault::PrivilegedInstruction => {
                f.write_str("privileged HFI operation inside a native sandbox")
            }
            HfiFault::Hardware { addr } => write!(f, "hardware fault at {addr:#x}"),
            HfiFault::TransitionContract { reg } => {
                write!(
                    f,
                    "transition contract violated: r{reg} not in its promised entry state"
                )
            }
        }
    }
}

impl Error for HfiFault {}

/// The contents of the HFI exit-reason MSR after the sandbox stopped running.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExitReason {
    /// Sandboxed code executed `hfi_exit`.
    Exit,
    /// A system call was interposed in a native sandbox and converted into a
    /// jump to the exit handler (paper §4.4).
    Syscall {
        /// The system-call number from the sandbox's ABI register.
        number: u64,
        /// Which system-call instruction flavour was used.
        kind: SyscallKind,
    },
    /// The sandbox faulted; the cause is recorded verbatim.
    Fault(HfiFault),
}

impl ExitReason {
    /// Returns `true` if this exit was caused by a fault rather than a
    /// voluntary exit or syscall.
    pub fn is_fault(&self) -> bool {
        matches!(self, ExitReason::Fault(_))
    }
}

impl fmt::Display for ExitReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExitReason::Exit => f.write_str("hfi_exit"),
            ExitReason::Syscall { number, kind } => {
                write!(f, "interposed {kind} #{number}")
            }
            ExitReason::Fault(fault) => write!(f, "fault: {fault}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_display_is_informative() {
        let fault = HfiFault::DataBounds {
            addr: 0x1000,
            access: Access::Write,
        };
        assert!(fault.to_string().contains("0x1000"));
        assert!(fault.to_string().contains("write"));
    }

    #[test]
    fn exit_reason_fault_detection() {
        assert!(!ExitReason::Exit.is_fault());
        let syscall = ExitReason::Syscall {
            number: 2,
            kind: SyscallKind::Syscall,
        };
        assert!(!syscall.is_fault());
        assert!(ExitReason::Fault(HfiFault::Hardware { addr: 0 }).is_fault());
    }

    #[test]
    fn hmov_violation_display() {
        let fault = HfiFault::Hmov {
            region: 2,
            violation: HmovViolation::Overflow,
        };
        let text = fault.to_string();
        assert!(text.contains("hmov2"));
        assert!(text.contains("overflow"));
    }
}
