//! # hfi-core — the HFI architectural model
//!
//! This crate implements the instruction-set-architecture contribution of
//! *"Going beyond the Limits of SFI: Flexible and Secure Hardware-Assisted
//! In-Process Isolation with HFI"* (ASPLOS 2023): the register state and
//! precise semantics of the HFI extension, independent of any particular
//! pipeline model.
//!
//! HFI adds to each CPU core:
//!
//! * ten **region registers** — two implicit *code* regions, four implicit
//!   *data* regions (prefix-checked, power-of-two), and four *explicit*
//!   regions (base/bound, accessed via `hmov0`–`hmov3`);
//! * an **exit-handler register** and a **configuration register**
//!   (sandbox kind, serialization, switch-on-exit);
//! * an **exit-reason MSR** recording why the sandbox stopped;
//! * an optional shadow register set for the **switch-on-exit** extension.
//!
//! [`HfiContext`] exposes each HFI instruction (`hfi_enter`, `hfi_exit`,
//! `hfi_reenter`, `hfi_set_region`, `hfi_get_region`, `hfi_clear_region`,
//! `hfi_clear_all_regions`) as a method, plus the three hardware checks the
//! pipeline performs implicitly: [`check_data`], [`check_fetch`], and the
//! [`hmov` effective-address check]. The cycle-level pipeline model lives
//! in the `hfi-sim` crate and consults this one for every verdict.
//!
//! ## Example: sandboxing with an explicit heap region
//!
//! ```
//! use hfi_core::{HfiContext, Region, SandboxConfig};
//! use hfi_core::region::{ExplicitDataRegion, ImplicitCodeRegion};
//!
//! let mut hfi = HfiContext::new();
//! let code = ImplicitCodeRegion::new(0x40_0000, 0xFFFF, true)?;
//! let heap = ExplicitDataRegion::large(0x2_0000_0000, 64 << 10, true, true)?;
//! hfi.set_region(0, Region::Code(code)).unwrap();
//! hfi.set_region(6, Region::Explicit(heap)).unwrap();
//! hfi.enter(SandboxConfig::hybrid()).unwrap();
//!
//! // In-bounds hmov0 access:
//! assert!(hfi.hmov_check(0, 0, 1, 0x100, 8).is_ok());
//! // Out-of-bounds access traps precisely:
//! assert!(hfi.hmov_check(0, 0, 1, 64 << 10, 8).is_err());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! [`check_data`]: HfiContext::check_data
//! [`check_fetch`]: HfiContext::check_fetch
//! [`hmov` effective-address check]: HfiContext::hmov_check

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod costs;
pub mod fault;
pub mod region;
pub mod transition;

pub use context::{
    slot_accepts, ExitDisposition, HfiContext, HfiSaveArea, SandboxConfig, SandboxKind,
    SerializationEffect, SlotKindError, SyscallDisposition, FIRST_EXPLICIT_SLOT, NUM_CODE_REGIONS,
    NUM_EXPLICIT_REGIONS, NUM_IMPLICIT_DATA_REGIONS, NUM_REGIONS,
};
pub use costs::CostModel;
pub use fault::{Access, ExitReason, HfiFault, HmovViolation, SyscallKind};
pub use region::{
    ExplicitDataRegion, ExplicitSize, ImplicitCodeRegion, ImplicitDataRegion, Region, RegionError,
};
pub use transition::{StackSwitch, TransitionContract, TransitionScheme};
