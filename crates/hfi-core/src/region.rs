//! HFI regions: the mechanism that controls all memory access in HFI mode.
//!
//! HFI offers two region flavours (paper §3.2):
//!
//! * **Implicit regions** apply to *every* ordinary load/store (data
//!   regions) or instruction fetch (code regions) on a first-match basis.
//!   They are prefix-checked — power-of-two sized and aligned — so the
//!   hardware check is one AND plus one equality compare per region.
//! * **Explicit regions** are handles accessed through `hmov{0-3}`.
//!   *Large* regions address up to 256 TiB at 64 KiB granularity; *small*
//!   regions address up to 4 GiB at byte granularity but may not span a
//!   4 GiB boundary. These constraints let the hardware bounds-check with a
//!   single 32-bit comparator (paper §4.2).

use std::error::Error;
use std::fmt;

use crate::fault::Access;

/// 64 KiB: the grain of large explicit regions and of Wasm heap growth.
pub const LARGE_REGION_ALIGN: u64 = 1 << 16;
/// Large explicit regions can address up to 256 TiB (2^48).
pub const LARGE_REGION_MAX: u64 = 1 << 48;
/// Small explicit regions can address up to 4 GiB (2^32).
pub const SMALL_REGION_MAX: u64 = 1 << 32;

/// An invalid region description, rejected at construction (C-VALIDATE).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionError {
    /// The low-bits mask of an implicit region was not of the form `2^k - 1`.
    NonContiguousMask,
    /// The base prefix of an implicit region had bits set inside the mask,
    /// i.e. the region was not aligned to its own size.
    MisalignedPrefix,
    /// A large explicit region's base or bound was not a 64 KiB multiple.
    Unaligned64K,
    /// An explicit region's bound exceeded the maximum for its size class.
    BoundTooLarge,
    /// A small explicit region spanned a 4 GiB boundary.
    Spans4GiB,
    /// A region's bound was zero.
    EmptyRegion,
    /// Base + bound overflowed the 64-bit address space.
    AddressOverflow,
}

impl fmt::Display for RegionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegionError::NonContiguousMask => f.write_str("lsb mask is not contiguous"),
            RegionError::MisalignedPrefix => f.write_str("base prefix not aligned to mask"),
            RegionError::Unaligned64K => f.write_str("large region not 64 KiB aligned"),
            RegionError::BoundTooLarge => f.write_str("bound exceeds region size class"),
            RegionError::Spans4GiB => f.write_str("small region spans a 4 GiB boundary"),
            RegionError::EmptyRegion => f.write_str("region bound is zero"),
            RegionError::AddressOverflow => f.write_str("base + bound overflows"),
        }
    }
}

impl Error for RegionError {}

/// An implicit code region: prefix-checked, grants instruction fetch.
///
/// # Examples
///
/// ```
/// use hfi_core::region::ImplicitCodeRegion;
///
/// // A 64 KiB code region at 0x40_0000.
/// let region = ImplicitCodeRegion::new(0x40_0000, 0xFFFF, true)?;
/// assert!(region.contains(0x40_1234));
/// assert!(!region.contains(0x41_0000));
/// # Ok::<(), hfi_core::region::RegionError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ImplicitCodeRegion {
    base_prefix: u64,
    lsb_mask: u64,
    exec: bool,
}

/// An implicit data region: prefix-checked, grants read and/or write.
///
/// Implicit data regions are the "safety net" a hybrid-sandbox runtime uses
/// to constrain even its own (speculative) accesses (paper §3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ImplicitDataRegion {
    base_prefix: u64,
    lsb_mask: u64,
    read: bool,
    write: bool,
}

fn validate_prefix(base_prefix: u64, lsb_mask: u64) -> Result<(), RegionError> {
    // A valid mask is 2^k - 1: adding one must yield a power of two (or zero
    // for the degenerate all-ones mask, which we reject as it would cover
    // the whole address space with alignment 2^64).
    if lsb_mask != 0 && !(lsb_mask.wrapping_add(1)).is_power_of_two() {
        return Err(RegionError::NonContiguousMask);
    }
    if lsb_mask == u64::MAX {
        return Err(RegionError::NonContiguousMask);
    }
    if base_prefix & lsb_mask != 0 {
        return Err(RegionError::MisalignedPrefix);
    }
    Ok(())
}

/// Shared prefix-match logic for the two implicit region kinds: the
/// hardware ANDs away the masked low bits and compares the remaining
/// prefix for equality (paper §4.1).
fn prefix_contains(base_prefix: u64, lsb_mask: u64, addr: u64) -> bool {
    (addr & !lsb_mask) == base_prefix
}

impl ImplicitCodeRegion {
    /// Creates a code region covering `[base_prefix, base_prefix + lsb_mask]`.
    ///
    /// # Errors
    ///
    /// Returns an error if `lsb_mask` is not of the form `2^k - 1` or if
    /// `base_prefix` is not aligned to the region size.
    pub fn new(base_prefix: u64, lsb_mask: u64, exec: bool) -> Result<Self, RegionError> {
        validate_prefix(base_prefix, lsb_mask)?;
        Ok(Self {
            base_prefix,
            lsb_mask,
            exec,
        })
    }

    /// The region's base address prefix.
    pub fn base_prefix(&self) -> u64 {
        self.base_prefix
    }

    /// The low-bits mask (`size - 1`).
    pub fn lsb_mask(&self) -> u64 {
        self.lsb_mask
    }

    /// Whether the region grants instruction fetch.
    pub fn exec(&self) -> bool {
        self.exec
    }

    /// Returns `true` if `addr` falls inside the region's range (regardless
    /// of permission).
    pub fn contains(&self, addr: u64) -> bool {
        prefix_contains(self.base_prefix, self.lsb_mask, addr)
    }

    /// The region size in bytes.
    pub fn len(&self) -> u64 {
        self.lsb_mask + 1
    }

    /// Regions are never empty; present for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl ImplicitDataRegion {
    /// Creates a data region covering `[base_prefix, base_prefix + lsb_mask]`.
    ///
    /// # Errors
    ///
    /// Returns an error if `lsb_mask` is not of the form `2^k - 1` or if
    /// `base_prefix` is not aligned to the region size.
    pub fn new(
        base_prefix: u64,
        lsb_mask: u64,
        read: bool,
        write: bool,
    ) -> Result<Self, RegionError> {
        validate_prefix(base_prefix, lsb_mask)?;
        Ok(Self {
            base_prefix,
            lsb_mask,
            read,
            write,
        })
    }

    /// The region's base address prefix.
    pub fn base_prefix(&self) -> u64 {
        self.base_prefix
    }

    /// The low-bits mask (`size - 1`).
    pub fn lsb_mask(&self) -> u64 {
        self.lsb_mask
    }

    /// Whether the region grants reads.
    pub fn read(&self) -> bool {
        self.read
    }

    /// Whether the region grants writes.
    pub fn write(&self) -> bool {
        self.write
    }

    /// Returns `true` if `addr` falls inside the region's range (regardless
    /// of permission).
    pub fn contains(&self, addr: u64) -> bool {
        prefix_contains(self.base_prefix, self.lsb_mask, addr)
    }

    /// Returns `true` if the region grants `access` (for `addr` already
    /// known to be contained).
    pub fn permits(&self, access: Access) -> bool {
        match access {
            Access::Read => self.read,
            Access::Write => self.write,
            Access::Fetch => false,
        }
    }

    /// The region size in bytes.
    pub fn len(&self) -> u64 {
        self.lsb_mask + 1
    }

    /// Regions are never empty; present for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// The size class of an explicit region (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExplicitSize {
    /// Up to 256 TiB, base and bound 64 KiB-aligned.
    Large,
    /// Up to 4 GiB, byte granular, must not span a 4 GiB boundary.
    Small,
}

/// An explicit data region: a handle addressed *relatively* through `hmov`.
///
/// All `hmov` addressing is relative to [`base`](Self::base); an access at
/// offset `x` touches `base + x` and is legal iff `x + size <= bound`.
///
/// # Examples
///
/// ```
/// use hfi_core::region::{ExplicitDataRegion, ExplicitSize};
///
/// // A Wasm heap: 128 MiB, 64 KiB aligned, read+write.
/// let heap = ExplicitDataRegion::new(
///     0x2000_0000,
///     128 << 20,
///     true,
///     true,
///     ExplicitSize::Large,
/// )?;
/// assert_eq!(heap.bound(), 128 << 20);
/// # Ok::<(), hfi_core::region::RegionError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExplicitDataRegion {
    base: u64,
    bound: u64,
    read: bool,
    write: bool,
    size_class: ExplicitSize,
}

impl ExplicitDataRegion {
    /// Creates an explicit region `[base, base + bound)`.
    ///
    /// # Errors
    ///
    /// Returns an error if the base/bound violate the constraints of the
    /// chosen size class: large regions must be 64 KiB aligned in both base
    /// and bound and no larger than 256 TiB; small regions must be no larger
    /// than 4 GiB and must not span a 4 GiB boundary.
    pub fn new(
        base: u64,
        bound: u64,
        read: bool,
        write: bool,
        size_class: ExplicitSize,
    ) -> Result<Self, RegionError> {
        if bound == 0 {
            return Err(RegionError::EmptyRegion);
        }
        let end = base
            .checked_add(bound)
            .ok_or(RegionError::AddressOverflow)?;
        match size_class {
            ExplicitSize::Large => {
                if !base.is_multiple_of(LARGE_REGION_ALIGN)
                    || !bound.is_multiple_of(LARGE_REGION_ALIGN)
                {
                    return Err(RegionError::Unaligned64K);
                }
                if bound > LARGE_REGION_MAX {
                    return Err(RegionError::BoundTooLarge);
                }
            }
            ExplicitSize::Small => {
                if bound > SMALL_REGION_MAX {
                    return Err(RegionError::BoundTooLarge);
                }
                // The region [base, end) may not cross a 4 GiB line; a
                // region ending exactly on the line is allowed.
                if (base >> 32) != ((end - 1) >> 32) {
                    return Err(RegionError::Spans4GiB);
                }
            }
        }
        Ok(Self {
            base,
            bound,
            read,
            write,
            size_class,
        })
    }

    /// Convenience constructor for a large (64 KiB-grain) region.
    ///
    /// # Errors
    ///
    /// See [`ExplicitDataRegion::new`].
    pub fn large(base: u64, bound: u64, read: bool, write: bool) -> Result<Self, RegionError> {
        Self::new(base, bound, read, write, ExplicitSize::Large)
    }

    /// Convenience constructor for a small (byte-grain) region.
    ///
    /// # Errors
    ///
    /// See [`ExplicitDataRegion::new`].
    pub fn small(base: u64, bound: u64, read: bool, write: bool) -> Result<Self, RegionError> {
        Self::new(base, bound, read, write, ExplicitSize::Small)
    }

    /// The region base address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The region length in bytes.
    pub fn bound(&self) -> u64 {
        self.bound
    }

    /// Whether reads are permitted.
    pub fn read(&self) -> bool {
        self.read
    }

    /// Whether writes are permitted.
    pub fn write(&self) -> bool {
        self.write
    }

    /// The region's size class.
    pub fn size_class(&self) -> ExplicitSize {
        self.size_class
    }

    /// Returns `true` if the region grants `access`.
    pub fn permits(&self, access: Access) -> bool {
        match access {
            Access::Read => self.read,
            Access::Write => self.write,
            Access::Fetch => false,
        }
    }

    /// Architectural (exact) bounds check: is the `size`-byte access at
    /// relative offset `offset` entirely inside the region?
    pub fn offset_in_bounds(&self, offset: u64, size: u64) -> bool {
        match offset.checked_add(size) {
            Some(end) => end <= self.bound,
            None => false,
        }
    }

    /// Microarchitectural bounds check, mirroring the single 32-bit
    /// comparator of paper §4.2.
    ///
    /// For **large** regions the hardware compares effective-address bits
    /// `[47:16]` against the stored upper bound `(base + bound) >> 16`; the
    /// 64 KiB alignment of base and bound makes the low 16 bits irrelevant.
    /// For **small** regions it compares the low 32 bits of the effective
    /// address (plus the carry out of the 32-bit add) against
    /// `(base & 0xFFFF_FFFF) + bound`, a 33-bit quantity; the no-4 GiB-span
    /// rule makes the high 32 bits irrelevant.
    ///
    /// The caller must already have established `offset >= 0` (sign-bit
    /// checks) and that `base + offset` did not overflow — the other two
    /// "trivial bit checks" of §4.2. Given those preconditions this check
    /// returns exactly the same verdict as [`offset_in_bounds`] for a
    /// one-byte access; a property test in this module verifies the
    /// equivalence.
    ///
    /// [`offset_in_bounds`]: Self::offset_in_bounds
    pub fn hardware_check(&self, effective_address: u64, size: u64) -> bool {
        let access_end = match effective_address.checked_add(size) {
            Some(end) => end,
            None => return false,
        };
        match self.size_class {
            ExplicitSize::Large => {
                // Compare bits [63:16]: because base + bound is 64 KiB
                // aligned, "prefix of the last byte < prefix of the end"
                // is exact.
                let upper = (self.base + self.bound) >> 16;
                ((access_end - 1) >> 16) < upper
            }
            ExplicitSize::Small => {
                // 33-bit compare of low halves (the carry bit is kept).
                let base_low = self.base & 0xFFFF_FFFF;
                let upper = base_low + self.bound; // <= 2^33, no overflow
                let ea_low = (access_end - 1) & 0xFFFF_FFFF;
                let carry = ((access_end - 1) >> 32) != (self.base >> 32);
                let ea_33 = ea_low + if carry { 1 << 32 } else { 0 };
                ea_33 < upper
            }
        }
    }
}

/// Any of the three region kinds, as stored in an HFI region register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// An implicit code region (slots 0–1).
    Code(ImplicitCodeRegion),
    /// An implicit data region (slots 2–5).
    Data(ImplicitDataRegion),
    /// An explicit data region (slots 6–9).
    Explicit(ExplicitDataRegion),
}

impl Region {
    /// The lowest address the region covers, uniformly across kinds
    /// (prefix base for implicit regions, base for explicit ones).
    pub fn base(&self) -> u64 {
        match self {
            Region::Code(r) => r.base_prefix(),
            Region::Data(r) => r.base_prefix(),
            Region::Explicit(r) => r.base(),
        }
    }

    /// The region length in bytes (`lsb_mask + 1` for implicit regions,
    /// the bound for explicit ones).
    pub fn len(&self) -> u64 {
        match self {
            Region::Code(r) => r.len(),
            Region::Data(r) => r.len(),
            Region::Explicit(r) => r.bound(),
        }
    }

    /// Regions are never empty; present for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether the region grants `access`. Code regions grant fetch iff
    /// executable; data regions never grant fetch.
    pub fn permits(&self, access: Access) -> bool {
        match self {
            Region::Code(r) => access == Access::Fetch && r.exec(),
            Region::Data(r) => r.permits(access),
            Region::Explicit(r) => r.permits(access),
        }
    }

    /// The explicit-region payload, when this is an explicit region.
    pub fn as_explicit(&self) -> Option<&ExplicitDataRegion> {
        match self {
            Region::Explicit(r) => Some(r),
            _ => None,
        }
    }

    /// Fault-injection support (the `hfi-chaos` crate): a copy of this
    /// region with `base_xor` XORed into the stored base bits and
    /// `len_xor` XORed into the stored length bits (`lsb_mask` for
    /// implicit regions, `bound` for explicit ones), **bypassing every
    /// construction-time validity check** — exactly what a bit flip in
    /// the physical region register file would produce. The result may
    /// violate the C-VALIDATE invariants (misaligned prefix, mask that
    /// is not `2^k - 1`, unaligned or oversized bound); the enforcement
    /// checks must still fail closed on it, which is what the chaos
    /// campaign exercises.
    pub fn with_injected_bitflip(&self, base_xor: u64, len_xor: u64) -> Region {
        match *self {
            Region::Code(r) => Region::Code(ImplicitCodeRegion {
                base_prefix: r.base_prefix ^ base_xor,
                lsb_mask: r.lsb_mask ^ len_xor,
                exec: r.exec,
            }),
            Region::Data(r) => Region::Data(ImplicitDataRegion {
                base_prefix: r.base_prefix ^ base_xor,
                lsb_mask: r.lsb_mask ^ len_xor,
                read: r.read,
                write: r.write,
            }),
            Region::Explicit(r) => Region::Explicit(ExplicitDataRegion {
                base: r.base ^ base_xor,
                bound: r.bound ^ len_xor,
                read: r.read,
                write: r.write,
                size_class: r.size_class,
            }),
        }
    }

    /// Fault-injection support: a copy of this region with the
    /// permission bit for `access` toggled, or `None` when the region
    /// has no such bit (code regions carry only `exec`, data regions
    /// only `read`/`write`).
    pub fn with_toggled_permission(&self, access: Access) -> Option<Region> {
        match (*self, access) {
            (Region::Code(r), Access::Fetch) => {
                Some(Region::Code(ImplicitCodeRegion { exec: !r.exec, ..r }))
            }
            (Region::Data(r), Access::Read) => {
                Some(Region::Data(ImplicitDataRegion { read: !r.read, ..r }))
            }
            (Region::Data(r), Access::Write) => Some(Region::Data(ImplicitDataRegion {
                write: !r.write,
                ..r
            })),
            (Region::Explicit(r), Access::Read) => {
                Some(Region::Explicit(ExplicitDataRegion { read: !r.read, ..r }))
            }
            (Region::Explicit(r), Access::Write) => Some(Region::Explicit(ExplicitDataRegion {
                write: !r.write,
                ..r
            })),
            _ => None,
        }
    }
}

impl From<ImplicitCodeRegion> for Region {
    fn from(region: ImplicitCodeRegion) -> Self {
        Region::Code(region)
    }
}

impl From<ImplicitDataRegion> for Region {
    fn from(region: ImplicitDataRegion) -> Self {
        Region::Data(region)
    }
}

impl From<ExplicitDataRegion> for Region {
    fn from(region: ExplicitDataRegion) -> Self {
        Region::Explicit(region)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implicit_mask_must_be_contiguous() {
        assert_eq!(
            ImplicitDataRegion::new(0, 0b1010, true, true),
            Err(RegionError::NonContiguousMask)
        );
        assert!(ImplicitDataRegion::new(0, 0b1111, true, true).is_ok());
    }

    #[test]
    fn implicit_prefix_must_be_aligned() {
        assert_eq!(
            ImplicitDataRegion::new(0x1234, 0xFFFF, true, true),
            Err(RegionError::MisalignedPrefix)
        );
        assert!(ImplicitDataRegion::new(0x1_0000, 0xFFFF, true, true).is_ok());
    }

    #[test]
    fn implicit_containment_matches_range() {
        let region = ImplicitDataRegion::new(0x40_0000, 0x3_FFFF, true, false).unwrap();
        assert!(region.contains(0x40_0000));
        assert!(region.contains(0x43_FFFF));
        assert!(!region.contains(0x44_0000));
        assert!(!region.contains(0x3F_FFFF));
        assert_eq!(region.len(), 0x4_0000);
    }

    #[test]
    fn implicit_data_permissions() {
        let readonly = ImplicitDataRegion::new(0, 0xFFF, true, false).unwrap();
        assert!(readonly.permits(Access::Read));
        assert!(!readonly.permits(Access::Write));
        assert!(!readonly.permits(Access::Fetch));
    }

    #[test]
    fn code_region_never_permits_data() {
        let code = ImplicitCodeRegion::new(0x1000, 0xFFF, true).unwrap();
        assert!(code.exec());
        assert!(code.contains(0x1800));
    }

    #[test]
    fn large_region_requires_64k_alignment() {
        assert_eq!(
            ExplicitDataRegion::large(0x1234, 0x1_0000, true, true),
            Err(RegionError::Unaligned64K)
        );
        assert_eq!(
            ExplicitDataRegion::large(0x1_0000, 0x1234, true, true),
            Err(RegionError::Unaligned64K)
        );
        assert!(ExplicitDataRegion::large(0x1_0000, 0x1_0000, true, true).is_ok());
    }

    #[test]
    fn small_region_may_not_span_4gib() {
        // Region straddling the 4 GiB line is rejected.
        assert_eq!(
            ExplicitDataRegion::small((1 << 32) - 0x100, 0x200, true, true),
            Err(RegionError::Spans4GiB)
        );
        // Ending exactly on the line is fine.
        assert!(ExplicitDataRegion::small((1 << 32) - 0x100, 0x100, true, true).is_ok());
    }

    #[test]
    fn small_region_bound_capped_at_4gib() {
        assert_eq!(
            ExplicitDataRegion::small(0, (1 << 32) + 1, true, true),
            Err(RegionError::BoundTooLarge)
        );
        assert!(ExplicitDataRegion::small(0, 1 << 32, true, true).is_ok());
    }

    #[test]
    fn large_region_bound_capped_at_256tib() {
        assert_eq!(
            ExplicitDataRegion::large(0, (1 << 48) + (1 << 16), true, true),
            Err(RegionError::BoundTooLarge)
        );
    }

    #[test]
    fn zero_bound_rejected() {
        assert_eq!(
            ExplicitDataRegion::small(0x1000, 0, true, true),
            Err(RegionError::EmptyRegion)
        );
    }

    #[test]
    fn exact_bounds_check() {
        let region = ExplicitDataRegion::small(0x1000, 0x100, true, true).unwrap();
        assert!(region.offset_in_bounds(0, 1));
        assert!(region.offset_in_bounds(0xFF, 1));
        assert!(region.offset_in_bounds(0xF8, 8));
        assert!(!region.offset_in_bounds(0x100, 1));
        assert!(!region.offset_in_bounds(0xF9, 8));
        assert!(!region.offset_in_bounds(u64::MAX, 8));
    }

    #[test]
    fn hardware_check_large_region() {
        let region = ExplicitDataRegion::large(0x10_0000, 0x2_0000, true, true).unwrap();
        assert!(region.hardware_check(0x10_0000, 1));
        assert!(region.hardware_check(0x11_FFFF, 1));
        assert!(!region.hardware_check(0x12_0000, 1));
    }

    #[test]
    fn unified_region_accessors() {
        let code = Region::from(ImplicitCodeRegion::new(0x40_0000, 0xFFFF, true).unwrap());
        let data = Region::from(ImplicitDataRegion::new(0x10_0000, 0xFFF, true, false).unwrap());
        let heap =
            Region::from(ExplicitDataRegion::large(0x1000_0000, 1 << 20, true, true).unwrap());
        assert_eq!(code.base(), 0x40_0000);
        assert_eq!(code.len(), 0x1_0000);
        assert_eq!(data.base(), 0x10_0000);
        assert_eq!(data.len(), 0x1000);
        assert_eq!(heap.base(), 0x1000_0000);
        assert_eq!(heap.len(), 1 << 20);
        assert!(code.permits(Access::Fetch) && !code.permits(Access::Read));
        assert!(data.permits(Access::Read) && !data.permits(Access::Write));
        assert!(heap.permits(Access::Write) && !heap.permits(Access::Fetch));
        assert!(heap.as_explicit().is_some());
        assert!(code.as_explicit().is_none() && data.as_explicit().is_none());
    }

    #[test]
    fn hardware_check_small_region_with_carry() {
        // Region hugging the top of a 4 GiB window: the 33rd bit (carry)
        // must participate in the compare.
        let base = (7u64 << 32) + 0xFFFF_F000;
        let region = ExplicitDataRegion::small(base, 0x1000, true, true).unwrap();
        assert!(region.hardware_check(base, 1));
        assert!(region.hardware_check(base + 0xFFF, 1));
        assert!(!region.hardware_check(base + 0x1000, 1));
    }
}
