//! Transition schemes and the springboard entry contract.
//!
//! The paper's pitch (§1, §2) is that HFI keeps sandbox transitions in
//! the "low 10s of cycles" regime; *Isolation Without Taxation*
//! (Kolosick et al.) shows the residual springboard tax — register
//! zeroing, stack switching, serialization — can be *elided* when a
//! verifier proves the sandboxed code cannot observe or escape through
//! the skipped state. This module names the executable enter/exit
//! mechanisms a sandbox can be compiled with ([`TransitionScheme`]) and
//! the machine-checkable obligation a springboard leaves at `hfi_enter`
//! ([`TransitionContract`]): which registers must have been zeroed and
//! where the stack pointer must point. Executors re-validate the
//! contract at `hfi_enter` (the trusted runtime's entry assertion), and
//! the static verifier proves it from the instruction stream — which is
//! exactly what licenses eliding it.

use std::fmt;

/// A selectable sandbox enter/exit mechanism: what the compiler emits
/// around `hfi_enter`/`hfi_exit` and how the pair is configured.
///
/// Ordered cheapest-first by design intent. The default
/// ([`TransitionScheme::HfiUnserialized`]) emits the bare HFI pair with
/// no springboard — byte-identical to the historical compiler output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum TransitionScheme {
    /// Bare `hfi_enter`/`hfi_exit`, unserialized, with the whole
    /// springboard *elided* — admissible only with a verifier proof
    /// that the sandbox body cannot observe unzeroed registers, never
    /// touches the host stack, and preserves the guard state
    /// (Kolosick-style zero-cost transitions).
    ZeroCost,
    /// Zero the non-interface register file before `hfi_enter` (no
    /// stack switch, no serialization). Leaves a checkable
    /// [`TransitionContract`].
    CalleeSaveZeroing,
    /// The full springboard tax: register zeroing, a register-only
    /// stack switch onto a sandbox stack inside the spill window, and a
    /// serializing fence on both edges (NaCl-style trampoline).
    FullSpringboard,
    /// Bare `hfi_enter`/`hfi_exit` pair, unserialized — the historical
    /// default; trusts the HFI checks alone, accepting speculative
    /// exposure (hybrid sandboxes, §3.4).
    #[default]
    HfiUnserialized,
    /// Bare pair with `is-serialized` set: full Spectre protection at
    /// ~2x serialization cost per round trip (§3.4).
    HfiSerialized,
    /// Switch-on-exit (§4.5): one `hfi_enter_child` loads the child's
    /// region file and shadows the register file; unserialized child
    /// switches under a serialized trusted runtime.
    SwitchOnExit,
}

impl TransitionScheme {
    /// Every scheme, cheapest first by design intent.
    pub const ALL: [TransitionScheme; 6] = [
        TransitionScheme::ZeroCost,
        TransitionScheme::HfiUnserialized,
        TransitionScheme::SwitchOnExit,
        TransitionScheme::CalleeSaveZeroing,
        TransitionScheme::HfiSerialized,
        TransitionScheme::FullSpringboard,
    ];

    /// True if the scheme sets `is-serialized` in the sandbox config.
    pub fn serialized(self) -> bool {
        matches!(self, TransitionScheme::HfiSerialized)
    }

    /// True if the scheme emits register-zeroing ops before
    /// `hfi_enter`.
    pub fn zeroes_registers(self) -> bool {
        matches!(
            self,
            TransitionScheme::CalleeSaveZeroing | TransitionScheme::FullSpringboard
        )
    }

    /// True if the scheme switches to a dedicated sandbox stack.
    pub fn switches_stack(self) -> bool {
        matches!(self, TransitionScheme::FullSpringboard)
    }

    /// True if admission requires the verifier's elision proof (the
    /// scheme skips springboard work *because* it is proven safe, not
    /// because the hardware covers it).
    pub fn requires_elision_proof(self) -> bool {
        matches!(self, TransitionScheme::ZeroCost)
    }

    /// Stable kebab-case label (benchmarks, JSON records, CLI flags).
    pub fn label(self) -> &'static str {
        match self {
            TransitionScheme::ZeroCost => "zero-cost",
            TransitionScheme::CalleeSaveZeroing => "callee-save-zeroing",
            TransitionScheme::FullSpringboard => "full-springboard",
            TransitionScheme::HfiUnserialized => "hfi-unserialized",
            TransitionScheme::HfiSerialized => "hfi-serialized",
            TransitionScheme::SwitchOnExit => "switch-on-exit",
        }
    }

    /// Parses the [`label`](Self::label) form.
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|t| t.label() == s)
    }
}

impl fmt::Display for TransitionScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The obligation a springboard leaves at `hfi_enter`: the register
/// state the host promised the sandbox would start from.
///
/// A program compiled with a zeroing or stack-switching
/// [`TransitionScheme`] carries its contract; the executors re-check it
/// when `hfi_enter` retires (faulting
/// [`HfiFault::TransitionContract`](crate::HfiFault::TransitionContract)
/// on violation — the fail-closed backstop runtime fault injection
/// leans on), and the static verifier proves it from the zeroing
/// instructions themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TransitionContract {
    /// Bitmask over `r0..r15` of registers that must be zero at
    /// `hfi_enter`.
    pub zeroed: u16,
    /// Stack switch obligation, if the scheme performs one.
    pub stack: Option<StackSwitch>,
}

/// A register-only stack switch: the host stack pointer is parked in a
/// reserved register and the stack register re-pointed at a sandbox
/// stack inside the spill window (no memory traffic, so the springboard
/// itself needs no data-window exemption).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StackSwitch {
    /// The stack register being switched.
    pub reg: u8,
    /// The value it must hold at `hfi_enter` (top of the sandbox
    /// stack).
    pub top: u64,
    /// The reserved register the host stack pointer was parked in.
    pub save: u8,
}

impl TransitionContract {
    /// True if the contract demands nothing.
    pub fn is_empty(&self) -> bool {
        self.zeroed == 0 && self.stack.is_none()
    }

    /// Checks an architectural register file against the contract,
    /// returning the first violating register.
    pub fn first_violation(&self, regs: &[u64; 16]) -> Option<u8> {
        for r in 0..16u8 {
            if self.zeroed & (1 << r) != 0 && regs[r as usize] != 0 {
                return Some(r);
            }
        }
        match self.stack {
            Some(sw) if regs[sw.reg as usize] != sw.top => Some(sw.reg),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for scheme in TransitionScheme::ALL {
            assert_eq!(TransitionScheme::parse(scheme.label()), Some(scheme));
        }
        assert_eq!(TransitionScheme::parse("nonsense"), None);
    }

    #[test]
    fn default_scheme_is_the_bare_unserialized_pair() {
        let scheme = TransitionScheme::default();
        assert_eq!(scheme, TransitionScheme::HfiUnserialized);
        assert!(!scheme.zeroes_registers());
        assert!(!scheme.switches_stack());
        assert!(!scheme.serialized());
        assert!(!scheme.requires_elision_proof());
    }

    #[test]
    fn contract_first_violation_checks_zeroing_then_stack() {
        let contract = TransitionContract {
            zeroed: (1 << 1) | (1 << 3),
            stack: Some(StackSwitch {
                reg: 10,
                top: 0x7000_1000,
                save: 9,
            }),
        };
        let mut regs = [0u64; 16];
        regs[10] = 0x7000_1000;
        assert_eq!(contract.first_violation(&regs), None);
        regs[3] = 7;
        assert_eq!(contract.first_violation(&regs), Some(3));
        regs[3] = 0;
        regs[10] = 0xdead;
        assert_eq!(contract.first_violation(&regs), Some(10));
    }

    #[test]
    fn empty_contract_always_holds() {
        let contract = TransitionContract::default();
        assert!(contract.is_empty());
        assert_eq!(contract.first_violation(&[u64::MAX; 16]), None);
    }
}
