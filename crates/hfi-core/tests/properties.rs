//! Randomized tests for the HFI region algebra.
//!
//! These verify the invariants the paper's hardware design relies on:
//! the cheap microarchitectural checks (prefix match, single 32-bit
//! comparator) must agree exactly with the architectural bounds semantics.
//!
//! The cases are driven by the vendored deterministic PRNG rather than
//! `proptest` so the suite builds offline; seeds are fixed, so failures
//! reproduce exactly.

use hfi_core::context::{SandboxConfig, NUM_REGIONS};
use hfi_core::region::{ExplicitDataRegion, ImplicitDataRegion, Region, LARGE_REGION_ALIGN};
use hfi_core::{Access, HfiContext};
use hfi_util::Rng;

const CASES: u64 = 512;

/// A valid implicit region: pick an order k and an aligned base.
fn implicit_region(rng: &mut Rng) -> ImplicitDataRegion {
    let order = rng.range_u64(4, 40) as u32;
    let slot = rng.below(1 << 20);
    let mask = (1u64 << order) - 1;
    let base = (slot << order) & !mask;
    ImplicitDataRegion::new(base, mask, true, true).expect("constructed valid region")
}

/// A valid large explicit region.
fn large_region(rng: &mut Rng) -> ExplicitDataRegion {
    let base_unit = rng.below(1 << 24);
    let bound_unit = rng.range_u64(1, 1 << 16);
    ExplicitDataRegion::large(
        base_unit * LARGE_REGION_ALIGN,
        bound_unit * LARGE_REGION_ALIGN,
        true,
        true,
    )
    .expect("constructed valid large region")
}

/// A valid small explicit region (byte granular, confined to one 4 GiB
/// window).
fn small_region(rng: &mut Rng) -> ExplicitDataRegion {
    let window = rng.below(256);
    let offset = rng.below((1 << 32) - 1);
    let max_bound = rng.range_u64(1, 1 << 20);
    let base = (window << 32) + offset;
    let room = (1u64 << 32) - offset;
    let bound = max_bound.min(room).max(1);
    ExplicitDataRegion::small(base, bound, true, true).expect("constructed valid small region")
}

/// Prefix containment must equal arithmetic range containment.
#[test]
fn prefix_match_equals_range_check() {
    let mut rng = Rng::new(0x01);
    for _ in 0..CASES {
        let region = implicit_region(&mut rng);
        let addr = rng.next_u64();
        let lo = region.base_prefix();
        let hi = lo + region.lsb_mask();
        assert_eq!(region.contains(addr), addr >= lo && addr <= hi);
    }
}

/// The single-comparator hardware check of §4.2 must agree with the exact
/// architectural bounds semantics for large regions.
#[test]
fn large_hardware_check_matches_exact() {
    let mut rng = Rng::new(0x02);
    for _ in 0..CASES {
        let region = large_region(&mut rng);
        let offset = rng.below(1 << 33);
        let size = rng.range_u64(1, 16);
        let exact = region.offset_in_bounds(offset, size);
        let hw = region.hardware_check(region.base() + offset, size);
        assert_eq!(exact, hw, "offset={offset:#x} size={size}");
    }
}

/// ...and for small regions, including the carry (33rd) bit.
#[test]
fn small_hardware_check_matches_exact() {
    let mut rng = Rng::new(0x03);
    for _ in 0..CASES {
        let region = small_region(&mut rng);
        // The hardware check presumes the offset itself fits the small
        // region's addressable range (offsets are 32-bit values in the
        // hmov encoding for small regions).
        let offset = rng.below(1 << 32);
        let size = rng.range_u64(1, 16);
        let exact = region.offset_in_bounds(offset, size);
        let hw = region.hardware_check(region.base() + offset, size);
        assert_eq!(exact, hw, "offset={offset:#x} size={size}");
    }
}

/// hmov never yields an effective address outside [base, base+bound).
#[test]
fn hmov_ea_always_in_region() {
    let mut rng = Rng::new(0x04);
    for _ in 0..CASES {
        let region = large_region(&mut rng);
        let index = rng.next_u64() as i64;
        let scale = *rng.pick(&[1u64, 2, 4, 8]);
        let disp = rng.next_u64() as i64;
        let size = rng.range_u64(1, 16);

        let mut hfi = HfiContext::new();
        hfi.set_region(6, Region::Explicit(region)).unwrap();
        hfi.enter(SandboxConfig::hybrid()).unwrap();
        if let Ok(ea) = hfi.hmov_check(0, index, scale, disp, size) {
            assert!(ea >= region.base());
            assert!(ea + size <= region.base() + region.bound());
        }
    }
}

/// First-match implicit semantics: an access succeeds iff the first
/// containing region permits the whole access.
#[test]
fn implicit_first_match_oracle() {
    let mut rng = Rng::new(0x05);
    for _ in 0..CASES {
        let count = rng.range_u64(1, 4) as usize;
        let regions: Vec<ImplicitDataRegion> =
            (0..count).map(|_| implicit_region(&mut rng)).collect();
        let addr = rng.next_u64();
        let size = rng.range_u64(1, 16);

        let mut hfi = HfiContext::new();
        for (i, r) in regions.iter().enumerate() {
            hfi.set_region(2 + i, Region::Data(*r)).unwrap();
        }
        hfi.enter(SandboxConfig::hybrid()).unwrap();

        let oracle = regions.iter().find(|r| r.contains(addr)).map(|r| {
            addr.checked_add(size - 1)
                .map(|last| r.contains(last))
                .unwrap_or(false)
        });
        let verdict = hfi.check_data(addr, size, Access::Read).is_ok();
        assert_eq!(verdict, oracle.unwrap_or(false));
    }
}

/// xsave/xrstor round-trips the complete register file.
#[test]
fn save_restore_roundtrip() {
    let mut rng = Rng::new(0x06);
    for _ in 0..CASES {
        let count = rng.below(4) as usize;
        let regions: Vec<ImplicitDataRegion> =
            (0..count).map(|_| implicit_region(&mut rng)).collect();

        let mut hfi = HfiContext::new();
        for (i, r) in regions.iter().enumerate() {
            hfi.set_region(2 + i, Region::Data(*r)).unwrap();
        }
        let area = hfi.save_area();
        let mut restored = HfiContext::new();
        restored.restore_area(&area).unwrap();
        for slot in 0..NUM_REGIONS {
            assert_eq!(restored.region(slot).unwrap(), hfi.region(slot).unwrap());
        }
    }
}
