//! Property-based tests for the HFI region algebra.
//!
//! These verify the invariants the paper's hardware design relies on:
//! the cheap microarchitectural checks (prefix match, single 32-bit
//! comparator) must agree exactly with the architectural bounds semantics.

use hfi_core::context::{SandboxConfig, NUM_REGIONS};
use hfi_core::region::{
    ExplicitDataRegion, ImplicitDataRegion, Region, LARGE_REGION_ALIGN,
};
use hfi_core::{Access, HfiContext};
use proptest::prelude::*;

/// Strategy for a valid implicit region: pick an order k and an aligned base.
fn implicit_region() -> impl Strategy<Value = ImplicitDataRegion> {
    (4u32..40, 0u64..(1 << 20)).prop_map(|(order, slot)| {
        let mask = (1u64 << order) - 1;
        let base = (slot << order) & !mask;
        ImplicitDataRegion::new(base, mask, true, true).expect("constructed valid region")
    })
}

/// Strategy for a valid large explicit region.
fn large_region() -> impl Strategy<Value = ExplicitDataRegion> {
    (0u64..(1 << 24), 1u64..(1 << 16)).prop_map(|(base_unit, bound_unit)| {
        ExplicitDataRegion::large(
            base_unit * LARGE_REGION_ALIGN,
            bound_unit * LARGE_REGION_ALIGN,
            true,
            true,
        )
        .expect("constructed valid large region")
    })
}

/// Strategy for a valid small explicit region (byte granular, confined to
/// one 4 GiB window).
fn small_region() -> impl Strategy<Value = ExplicitDataRegion> {
    (0u64..256, 0u64..((1 << 32) - 1), 1u64..(1 << 20)).prop_flat_map(
        |(window, offset, max_bound)| {
            let base = (window << 32) + offset;
            let room = (1u64 << 32) - offset;
            let bound = max_bound.min(room).max(1);
            Just(
                ExplicitDataRegion::small(base, bound, true, true)
                    .expect("constructed valid small region"),
            )
        },
    )
}

proptest! {
    /// Prefix containment must equal arithmetic range containment.
    #[test]
    fn prefix_match_equals_range_check(region in implicit_region(), addr: u64) {
        let lo = region.base_prefix();
        let hi = lo + region.lsb_mask();
        prop_assert_eq!(region.contains(addr), addr >= lo && addr <= hi);
    }

    /// The single-comparator hardware check of §4.2 must agree with the
    /// exact architectural bounds semantics for large regions.
    #[test]
    fn large_hardware_check_matches_exact(
        region in large_region(),
        offset in 0u64..(1 << 33),
        size in 1u64..16,
    ) {
        let exact = region.offset_in_bounds(offset, size);
        let hw = region.hardware_check(region.base() + offset, size);
        prop_assert_eq!(exact, hw, "offset={:#x} size={}", offset, size);
    }

    /// ...and for small regions, including the carry (33rd) bit.
    #[test]
    fn small_hardware_check_matches_exact(
        region in small_region(),
        offset in 0u64..(1 << 33),
        size in 1u64..16,
    ) {
        // The hardware check presumes the offset itself fits the small
        // region's addressable range (offsets are 32-bit values in the
        // hmov encoding for small regions).
        prop_assume!(offset < (1 << 32));
        let exact = region.offset_in_bounds(offset, size);
        let hw = region.hardware_check(region.base() + offset, size);
        prop_assert_eq!(exact, hw, "offset={:#x} size={}", offset, size);
    }

    /// hmov never yields an effective address outside [base, base+bound).
    #[test]
    fn hmov_ea_always_in_region(
        region in large_region(),
        index in any::<i64>(),
        scale in prop::sample::select(vec![1u64, 2, 4, 8]),
        disp in any::<i64>(),
        size in 1u64..16,
    ) {
        let mut hfi = HfiContext::new();
        hfi.set_region(6, Region::Explicit(region)).unwrap();
        hfi.enter(SandboxConfig::hybrid()).unwrap();
        if let Ok(ea) = hfi.hmov_check(0, index, scale, disp, size) {
            prop_assert!(ea >= region.base());
            prop_assert!(ea + size <= region.base() + region.bound());
        }
    }

    /// First-match implicit semantics: an access succeeds iff the first
    /// containing region permits the whole access.
    #[test]
    fn implicit_first_match_oracle(
        regions in prop::collection::vec(implicit_region(), 1..4),
        addr: u64,
        size in 1u64..16,
    ) {
        let mut hfi = HfiContext::new();
        for (i, r) in regions.iter().enumerate() {
            hfi.set_region(2 + i, Region::Data(*r)).unwrap();
        }
        hfi.enter(SandboxConfig::hybrid()).unwrap();

        let oracle = regions.iter().find(|r| r.contains(addr)).map(|r| {
            addr.checked_add(size - 1).map(|last| r.contains(last)).unwrap_or(false)
        });
        let verdict = hfi.check_data(addr, size, Access::Read).is_ok();
        prop_assert_eq!(verdict, oracle.unwrap_or(false));
    }

    /// xsave/xrstor round-trips the complete register file.
    #[test]
    fn save_restore_roundtrip(
        regions in prop::collection::vec(implicit_region(), 0..4),
    ) {
        let mut hfi = HfiContext::new();
        for (i, r) in regions.iter().enumerate() {
            hfi.set_region(2 + i, Region::Data(*r)).unwrap();
        }
        let area = hfi.save_area();
        let mut restored = HfiContext::new();
        restored.restore_area(&area).unwrap();
        for slot in 0..NUM_REGIONS {
            prop_assert_eq!(restored.region(slot).unwrap(), hfi.region(slot).unwrap());
        }
    }
}
