//! Pins the region-register slot layout against the paper.
//!
//! Appendix A.1 numbers the slots `(0-1) code, (2-5) implicit_data,
//! (6-10) explicit_data`, but §3.2 and the `hmov{0-3}` instruction set
//! fix the explicit count at four. We follow the body text — explicit
//! slots are `6..=9`, ten registers total — and DESIGN.md documents the
//! appendix off-by-one. These tests keep that decision from regressing
//! silently: every constant and every slot/kind pairing is pinned.

use hfi_core::region::{ExplicitDataRegion, ImplicitCodeRegion, ImplicitDataRegion};
use hfi_core::{
    HfiContext, Region, FIRST_EXPLICIT_SLOT, NUM_CODE_REGIONS, NUM_EXPLICIT_REGIONS,
    NUM_IMPLICIT_DATA_REGIONS, NUM_REGIONS,
};

fn code() -> Region {
    Region::Code(ImplicitCodeRegion::new(0x40_0000, 0xFFFF, true).expect("valid code region"))
}

fn data() -> Region {
    Region::Data(ImplicitDataRegion::new(0x10_0000, 0xFFFF, true, true).expect("valid data region"))
}

fn explicit() -> Region {
    Region::Explicit(
        ExplicitDataRegion::large(0x100_0000, 1 << 20, true, true).expect("valid explicit region"),
    )
}

#[test]
fn constants_match_the_paper_body_text() {
    assert_eq!(NUM_CODE_REGIONS, 2, "slots 0-1 are implicit code");
    assert_eq!(NUM_IMPLICIT_DATA_REGIONS, 4, "slots 2-5 are implicit data");
    assert_eq!(
        NUM_EXPLICIT_REGIONS, 4,
        "hmov0-3 address exactly four explicit regions"
    );
    assert_eq!(NUM_REGIONS, 10, "ten region registers total");
    assert_eq!(FIRST_EXPLICIT_SLOT, 6, "explicit slots start at 6");
    assert_eq!(
        FIRST_EXPLICIT_SLOT + NUM_EXPLICIT_REGIONS,
        NUM_REGIONS,
        "explicit slots are 6..=9 (not 6..=10 as Appendix A.1 numbers them)"
    );
}

#[test]
fn each_slot_range_accepts_only_its_kind() {
    for slot in 0..NUM_REGIONS {
        let expected_kind = if slot < NUM_CODE_REGIONS {
            "code"
        } else if slot < FIRST_EXPLICIT_SLOT {
            "data"
        } else {
            "explicit"
        };
        for (kind, region) in [("code", code()), ("data", data()), ("explicit", explicit())] {
            let mut hfi = HfiContext::new();
            let result = hfi.set_region(slot, region);
            if kind == expected_kind {
                assert!(result.is_ok(), "slot {slot} must accept {kind}");
            } else {
                assert!(result.is_err(), "slot {slot} must reject {kind}");
            }
        }
    }
}

#[test]
fn appendix_slot_ten_does_not_exist() {
    let mut hfi = HfiContext::new();
    // Appendix A.1's "6-10" range would make this valid; the body text's
    // four-explicit-slot budget makes it a fault.
    assert!(hfi.set_region(NUM_REGIONS, explicit()).is_err());
    assert!(hfi.region(NUM_REGIONS).is_err());
    // The last real slot works.
    assert!(hfi.set_region(NUM_REGIONS - 1, explicit()).is_ok());
    assert!(hfi
        .region(NUM_REGIONS - 1)
        .expect("readable slot")
        .is_some());
}
