//! Function chaining (§2): FaaS applications are often pipelines of
//! functions. In one address space a hop between functions is a sandbox
//! switch — "as fast as a function call"; across processes it is IPC,
//! "easily 1000x to 10000x slower".
//!
//! This experiment runs an N-stage pipeline under each composition
//! mechanism and reports end-to-end latency, mixing measured per-stage
//! compute (functional executor) with the transition cost spectrum.

use hfi_core::CostModel;
use hfi_wasm::Transition;

use crate::platform::{ProfiledWorkload, CPU_HZ};

/// How the pipeline's stages are composed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Composition {
    /// All stages in one process, HFI sandboxes, switch-on-exit hops.
    HfiSwitchOnExit,
    /// All stages in one process, HFI sandboxes, serialized hops.
    HfiSerialized,
    /// One process per stage, synchronous IPC between them.
    ProcessPerStage,
}

impl std::fmt::Display for Composition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Composition::HfiSwitchOnExit => f.write_str("hfi + switch-on-exit"),
            Composition::HfiSerialized => f.write_str("hfi serialized"),
            Composition::ProcessPerStage => f.write_str("process per stage (IPC)"),
        }
    }
}

/// One evaluated chain configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChainResult {
    /// Composition mechanism.
    pub composition: Composition,
    /// Number of pipeline stages.
    pub stages: usize,
    /// End-to-end cycles for one request through the whole chain.
    pub total_cycles: f64,
    /// Of which, composition (transition) overhead.
    pub transition_cycles: f64,
    /// End-to-end microseconds at the modelled clock.
    pub total_us: f64,
}

/// Evaluates an `stages`-deep chain where every stage performs
/// `stage_cycles` of compute.
pub fn evaluate_chain(
    composition: Composition,
    stages: usize,
    stage_cycles: f64,
    costs: &CostModel,
) -> ChainResult {
    let hop = match composition {
        Composition::HfiSwitchOnExit => Transition::SwitchOnExit.round_trip_cycles(costs),
        Composition::HfiSerialized => Transition::HfiSerialized.round_trip_cycles(costs),
        Composition::ProcessPerStage => Transition::Ipc.round_trip_cycles(costs),
    } as f64;
    let transition_cycles = hop * stages as f64;
    let total_cycles = stage_cycles * stages as f64 + transition_cycles;
    ChainResult {
        composition,
        stages,
        total_cycles,
        transition_cycles,
        total_us: total_cycles / CPU_HZ * 1e6,
    }
}

/// Evaluates a chain whose per-stage compute is measured from a real
/// workload kernel.
pub fn evaluate_chain_for(
    composition: Composition,
    stages: usize,
    workload: &ProfiledWorkload,
    costs: &CostModel,
) -> ChainResult {
    evaluate_chain(composition, stages, workload.base_cycles, costs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_process_chaining_dominates_ipc() {
        // §2: in-process communication is 1000x-10000x cheaper than IPC.
        let costs = CostModel::default();
        let soe = evaluate_chain(Composition::HfiSwitchOnExit, 8, 0.0, &costs);
        let ipc = evaluate_chain(Composition::ProcessPerStage, 8, 0.0, &costs);
        let ratio = ipc.transition_cycles / soe.transition_cycles;
        assert!(ratio > 100.0, "IPC/in-process hop ratio only {ratio:.0}");
    }

    #[test]
    fn transition_share_shrinks_with_stage_size() {
        let costs = CostModel::default();
        let small = evaluate_chain(Composition::HfiSerialized, 4, 1_000.0, &costs);
        let large = evaluate_chain(Composition::HfiSerialized, 4, 1_000_000.0, &costs);
        let share_small = small.transition_cycles / small.total_cycles;
        let share_large = large.transition_cycles / large.total_cycles;
        assert!(share_small > share_large);
    }

    #[test]
    fn switch_on_exit_beats_serialized_chaining() {
        let costs = CostModel::default();
        let soe = evaluate_chain(Composition::HfiSwitchOnExit, 16, 500.0, &costs);
        let ser = evaluate_chain(Composition::HfiSerialized, 16, 500.0, &costs);
        assert!(soe.total_cycles < ser.total_cycles);
    }
}
