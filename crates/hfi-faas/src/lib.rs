//! # hfi-faas — a Wasm FaaS platform over HFI (Table 1, §6.3)
//!
//! Models the paper's function-as-a-service setting: many short-lived
//! Wasm sandboxes serving requests in one process. Three questions from
//! the evaluation are answered here:
//!
//! * **What does Spectre protection cost?** ([`platform`], [`table1`]) —
//!   request latency distributions under stock Lucet, Lucet+HFI, and
//!   Lucet+Swivel, with service times measured by actually executing the
//!   Table 1 workloads and Swivel's slowdown derived from each workload's
//!   branch density.
//! * **What does sandbox teardown cost?** ([`lifecycle`]) — per-sandbox
//!   vs. batched `madvise`, with and without HFI's guard-page elision
//!   (§6.3.1: 25.7 / 23.1 / 31.1 µs).
//! * **How many sandboxes fit?** ([`lifecycle`]) — address-space
//!   exhaustion with 8 GiB guard reservations vs. HFI's heap-only
//!   footprint (§6.3.2: 256,000 1 GiB sandboxes).
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaining;
pub mod lifecycle;
pub mod platform;
pub mod table1;

pub use chaining::{evaluate_chain, ChainResult, Composition};
pub use lifecycle::{
    max_concurrent_sandboxes, teardown_experiment, TeardownPolicy, TeardownResult,
};
pub use platform::{evaluate, simulate_queue, CellResult, ProfiledWorkload, Scheme, CPU_HZ};
pub use table1::{build as build_table1, WorkloadRow};
