//! Sandbox setup/teardown and scalability experiments (§6.3).
//!
//! §6.3.1: 2000 sandboxes are created, run a trivial workload, and torn
//! down under three policies — stock (one `madvise` per sandbox),
//! HFI-batched (guard elision makes heaps adjacent, so batches coalesce),
//! and batched-without-HFI (batching across guard regions pays a walk
//! over 8 GiB of reservation per sandbox).
//!
//! §6.3.2: how many sandboxes fit before the address space runs out —
//! guard pages cap a 47/48-bit space at thousands; HFI makes the heap the
//! only footprint.

use hfi_wasm::compiler::Isolation;
use hfi_wasm::runtime::{RuntimeError, SandboxRuntime};

/// Teardown policy for the §6.3.1 comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TeardownPolicy {
    /// Stock Wasmtime: one `madvise` per sandbox (guard pages backend).
    StockPerSandbox,
    /// HFI: guard pages elided, teardowns deferred and coalesced.
    HfiBatched,
    /// Batched `madvise` but *with* guard pages still in place.
    BatchedWithGuards,
}

/// Result of one teardown experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TeardownResult {
    /// Policy measured.
    pub policy: TeardownPolicy,
    /// Sandboxes created and destroyed.
    pub sandboxes: usize,
    /// Mean per-sandbox teardown cost in microseconds.
    pub per_sandbox_us: f64,
    /// madvise calls issued during teardown.
    pub madvise_calls: u64,
}

/// Runs the §6.3.1 experiment: create `count` sandboxes, touch a little
/// memory in each (the "trivial short-lived workload"), then tear down
/// under `policy`.
///
/// # Errors
///
/// Propagates runtime errors (e.g. address-space exhaustion).
pub fn teardown_experiment(
    count: usize,
    policy: TeardownPolicy,
) -> Result<TeardownResult, RuntimeError> {
    let isolation = match policy {
        TeardownPolicy::StockPerSandbox | TeardownPolicy::BatchedWithGuards => {
            Isolation::GuardPages
        }
        TeardownPolicy::HfiBatched => Isolation::Hfi,
    };
    let mut runtime = SandboxRuntime::new(isolation, 48);
    runtime.set_max_heap(64 << 20); // modest heaps so 2000 sandboxes fit
    let ids: Vec<_> = (0..count)
        .map(|_| runtime.create_sandbox(16))
        .collect::<Result<_, _>>()?;
    for &id in &ids {
        // Trivial workload: write some constant data into the heap.
        runtime.touch_heap(id, 256 << 10)?;
    }
    let before_madvise = runtime.space().stats().madvises;
    runtime.reset_clock();
    match policy {
        TeardownPolicy::StockPerSandbox => {
            for &id in &ids {
                runtime.teardown(id)?;
            }
        }
        TeardownPolicy::HfiBatched | TeardownPolicy::BatchedWithGuards => {
            for &id in &ids {
                runtime.teardown_deferred(id)?;
            }
            runtime.flush_teardowns()?;
        }
    }
    let elapsed_us = runtime.elapsed_ns() / 1e3;
    let madvise_calls = runtime.space().stats().madvises - before_madvise;
    Ok(TeardownResult {
        policy,
        sandboxes: count,
        per_sandbox_us: elapsed_us / count as f64,
        madvise_calls,
    })
}

/// §6.3.2: counts how many `heap_bytes`-sized sandboxes fit in a
/// `va_bits` address space under `isolation`.
pub fn max_concurrent_sandboxes(isolation: Isolation, va_bits: u32, heap_bytes: u64) -> usize {
    let mut runtime = SandboxRuntime::new(isolation, va_bits);
    runtime.set_max_heap(heap_bytes);
    let mut count = 0;
    while runtime.create_sandbox(1).is_ok() {
        count += 1;
        // Don't loop forever if something is off.
        if count > 1_000_000 {
            break;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hfi_batched_beats_stock_beats_guarded_batching() {
        // §6.3.1's ordering: 23.1 µs < 25.7 µs < 31.1 µs per sandbox.
        let n = 256;
        let stock = teardown_experiment(n, TeardownPolicy::StockPerSandbox).expect("stock");
        let hfi = teardown_experiment(n, TeardownPolicy::HfiBatched).expect("hfi");
        let guarded = teardown_experiment(n, TeardownPolicy::BatchedWithGuards).expect("guarded");
        assert!(
            hfi.per_sandbox_us < stock.per_sandbox_us,
            "HFI batched {:.1}µs !< stock {:.1}µs",
            hfi.per_sandbox_us,
            stock.per_sandbox_us
        );
        assert!(
            stock.per_sandbox_us < guarded.per_sandbox_us,
            "stock {:.1}µs !< guarded batching {:.1}µs",
            stock.per_sandbox_us,
            guarded.per_sandbox_us
        );
        // HFI coalesces everything into very few madvise calls.
        assert!(hfi.madvise_calls < stock.madvise_calls / 10);
    }

    #[test]
    fn hfi_scales_to_full_address_space() {
        // Shrunk §6.3.2: in a 2^42 space, 8 GiB guard reservations allow
        // 512 sandboxes; 1 GiB HFI heaps allow ~4096.
        let guard = max_concurrent_sandboxes(Isolation::GuardPages, 42, 1 << 30);
        let hfi = max_concurrent_sandboxes(Isolation::Hfi, 42, 1 << 30);
        assert!(guard <= 512, "guard {guard}");
        assert!(hfi >= 4090, "hfi {hfi}");
        assert!(hfi >= 7 * guard, "hfi {hfi} vs guard {guard}");
    }
}
