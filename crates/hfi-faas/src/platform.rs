//! The FaaS platform simulation: open-loop request service with
//! per-scheme protection costs (Table 1, §6.5).
//!
//! Each workload's *service time* comes from actually executing its
//! kernel on the functional executor; each Spectre-protection scheme then
//! modifies requests the way the real systems do:
//!
//! * **Unsafe** (stock Lucet): nothing — fast and vulnerable.
//! * **HFI**: one serialized `hfi_enter`/`hfi_exit` pair per request
//!   (§3.4); a few hundred cycles against millisecond-scale requests,
//!   hence Table 1's 0–2% tail inflation.
//! * **Swivel-SFI**: compiler-based hardening — every branch becomes a
//!   linear-block dispatch and indirect control flow is interlocked, so
//!   the *compute itself* slows in proportion to the workload's branch
//!   density, and the binary grows. Table 1's 9–42% tail inflation, with
//!   parse/template workloads (branchy) hurt most and dense math barely
//!   touched.
//!
//! Latency distributions come from a discrete-event M/D/1 simulation with
//! Poisson arrivals at fixed utilization.

use hfi_core::CostModel;
use hfi_sim::{Functional, FunctionalResult, Stop};
use hfi_util::Rng;
use hfi_wasm::compiler::{compile, CompileOptions, Isolation};
use hfi_wasm::kernels::Kernel;

/// Simulated CPU frequency (cycles per second).
pub const CPU_HZ: f64 = 3.3e9;

/// The Spectre-protection scheme applied to guest code (Table 1 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Stock Lucet: no Spectre protection.
    Unsafe,
    /// Lucet + HFI native-sandbox protection (serialized transitions).
    Hfi,
    /// Lucet + Swivel-SFI compiler hardening.
    Swivel,
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scheme::Unsafe => f.write_str("Lucet(Unsafe)"),
            Scheme::Hfi => f.write_str("Lucet+HFI"),
            Scheme::Swivel => f.write_str("Lucet+Swivel"),
        }
    }
}

/// A workload profiled for the platform: measured service cycles and the
/// instruction-mix facts the Swivel model needs.
#[derive(Debug, Clone)]
pub struct ProfiledWorkload {
    /// Workload name.
    pub name: String,
    /// Cycles per request under no protection (functional model).
    pub base_cycles: f64,
    /// Fraction of retired instructions that were branches.
    pub branch_fraction: f64,
    /// Code bytes of the compiled guest.
    pub code_bytes: u64,
    /// Data (heap image) bytes — model weights etc.
    pub data_bytes: u64,
}

impl ProfiledWorkload {
    /// Profiles `kernel` by running it on the functional executor.
    ///
    /// # Panics
    ///
    /// Panics if the kernel fails to run to completion (a kernel bug).
    pub fn profile(kernel: &Kernel) -> Self {
        let opts = CompileOptions::new(Isolation::Hfi);
        let compiled = compile(&kernel.func, &opts);
        let code_bytes = compiled.stats.code_bytes;
        let mut machine = Functional::new(compiled.program);
        for (off, bytes) in &kernel.heap_init {
            machine.mem.write_bytes(opts.heap_base + *off as u64, bytes);
        }
        let result: FunctionalResult = machine.run(20_000_000_000);
        assert_eq!(result.stop, Stop::Halted, "{} failed to halt", kernel.name);
        assert_eq!(
            result.regs[0], kernel.expected,
            "{} produced a wrong result while profiling",
            kernel.name
        );
        let branch_fraction = result.stats.branches as f64 / result.stats.retired.max(1) as f64;
        Self {
            name: kernel.name.clone(),
            base_cycles: result.cycles,
            branch_fraction,
            code_bytes,
            data_bytes: kernel.heap_init.iter().map(|(_, b)| b.len() as u64).sum(),
        }
    }

    /// Swivel's compute slowdown for this instruction mix: linear-block
    /// conversion and CBP-interlock costs scale with branch density.
    pub fn swivel_slowdown(&self) -> f64 {
        1.0 + 1.35 * self.branch_fraction + 0.015
    }

    /// Service cycles per request under `scheme`.
    pub fn service_cycles(&self, scheme: Scheme, costs: &CostModel) -> f64 {
        match scheme {
            Scheme::Unsafe => self.base_cycles,
            // Two serialized transitions per request (§6.5: "two per
            // connection ... amortized by the cost of the workload").
            Scheme::Hfi => self.base_cycles + costs.hfi_transition_pair(4, true) as f64,
            Scheme::Swivel => self.base_cycles * self.swivel_slowdown(),
        }
    }

    /// Guest binary size in bytes under `scheme`: Swivel's block
    /// conversion bloats the *code* (Table 1 shows ≈15–20% code growth,
    /// invisible on the model-weight-dominated workload).
    pub fn binary_bytes(&self, scheme: Scheme) -> u64 {
        // A Lucet module carries runtime scaffolding beyond our kernel.
        let scaffolding: u64 = 512 << 10;
        let code = match scheme {
            Scheme::Unsafe | Scheme::Hfi => self.code_bytes + scaffolding,
            Scheme::Swivel => (self.code_bytes + scaffolding) * 117 / 100,
        };
        code + self.data_bytes
    }
}

/// Latency/throughput measurements for one (workload, scheme) cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellResult {
    /// Mean sojourn (queue + service) time, milliseconds.
    pub avg_latency_ms: f64,
    /// 99th-percentile sojourn time, milliseconds.
    pub tail_latency_ms: f64,
    /// Sustainable throughput, requests/second (1/service time).
    pub throughput_rps: f64,
    /// Guest binary size in bytes.
    pub binary_bytes: u64,
}

/// Simulates `requests` Poisson arrivals into a single-worker queue at
/// `utilization`, with deterministic service `service_cycles`.
pub fn simulate_queue(
    service_cycles: f64,
    utilization: f64,
    requests: usize,
    seed: u64,
) -> (f64, f64) {
    let service_s = service_cycles / CPU_HZ;
    let mean_interarrival = service_s / utilization;
    let mut rng = Rng::new(seed);
    let mut clock = 0.0f64;
    let mut server_free_at = 0.0f64;
    let mut sojourns: Vec<f64> = Vec::with_capacity(requests);
    for _ in 0..requests {
        // Exponential inter-arrival (clamp u away from 0 so ln is finite).
        let u: f64 = rng.f64().max(1e-12);
        clock += -mean_interarrival * u.ln();
        let start = clock.max(server_free_at);
        let done = start + service_s;
        server_free_at = done;
        sojourns.push(done - clock);
    }
    sojourns.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let avg = sojourns.iter().sum::<f64>() / sojourns.len() as f64;
    let idx = ((sojourns.len() as f64 * 0.99) as usize).min(sojourns.len() - 1);
    let p99 = sojourns[idx];
    (avg * 1e3, p99 * 1e3)
}

/// Evaluates one (workload, scheme) cell.
pub fn evaluate(workload: &ProfiledWorkload, scheme: Scheme, costs: &CostModel) -> CellResult {
    let cycles = workload.service_cycles(scheme, costs);
    let (avg, p99) = simulate_queue(cycles, 0.60, 4000, 0x5EED);
    CellResult {
        avg_latency_ms: avg,
        tail_latency_ms: p99,
        throughput_rps: CPU_HZ / cycles,
        binary_bytes: workload.binary_bytes(scheme),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_workload(branchy: bool) -> ProfiledWorkload {
        ProfiledWorkload {
            name: "toy".into(),
            base_cycles: 1.0e6,
            branch_fraction: if branchy { 0.22 } else { 0.02 },
            code_bytes: 100 << 10,
            data_bytes: 1 << 20,
        }
    }

    #[test]
    fn hfi_adds_almost_nothing() {
        let costs = CostModel::default();
        let w = toy_workload(true);
        let unsafe_cycles = w.service_cycles(Scheme::Unsafe, &costs);
        let hfi_cycles = w.service_cycles(Scheme::Hfi, &costs);
        assert!((hfi_cycles / unsafe_cycles - 1.0) < 0.001);
    }

    #[test]
    fn swivel_hits_branchy_code_hardest() {
        let costs = CostModel::default();
        let branchy = toy_workload(true);
        let dense = toy_workload(false);
        let branchy_over = branchy.service_cycles(Scheme::Swivel, &costs) / branchy.base_cycles;
        let dense_over = dense.service_cycles(Scheme::Swivel, &costs) / dense.base_cycles;
        assert!(branchy_over > 1.25);
        assert!(dense_over < 1.10);
    }

    #[test]
    fn swivel_bloats_binaries_hfi_does_not() {
        let w = toy_workload(true);
        assert_eq!(w.binary_bytes(Scheme::Unsafe), w.binary_bytes(Scheme::Hfi));
        assert!(w.binary_bytes(Scheme::Swivel) > w.binary_bytes(Scheme::Unsafe));
    }

    #[test]
    fn queue_latency_grows_with_utilization() {
        let (_, p99_low) = simulate_queue(1e6, 0.3, 4000, 7);
        let (_, p99_high) = simulate_queue(1e6, 0.9, 4000, 7);
        assert!(p99_high > p99_low);
    }
}
