//! Assembles Table 1: the four FaaS workloads × three protection schemes.

use hfi_core::CostModel;
use hfi_wasm::kernels::faas;

use crate::platform::{evaluate, CellResult, ProfiledWorkload, Scheme};

/// One assembled row group (one workload, all schemes).
#[derive(Debug, Clone)]
pub struct WorkloadRow {
    /// Workload name (Table 1 column group).
    pub name: String,
    /// Per-scheme measurements, in [`Scheme`] declaration order
    /// (Unsafe, HFI, Swivel).
    pub cells: [(Scheme, CellResult); 3],
}

impl WorkloadRow {
    /// Tail-latency inflation of `scheme` over the unsafe baseline.
    pub fn tail_inflation(&self, scheme: Scheme) -> f64 {
        let base = self.cells[0].1.tail_latency_ms;
        let cell = self
            .cells
            .iter()
            .find(|(s, _)| *s == scheme)
            .expect("all schemes present")
            .1;
        cell.tail_latency_ms / base - 1.0
    }
}

/// Builds the full table at workload `scale` (1 = test-sized).
pub fn build(scale: u32) -> Vec<WorkloadRow> {
    let costs = CostModel::default();
    faas::suite(scale)
        .iter()
        .map(|kernel| {
            let profiled = ProfiledWorkload::profile(kernel);
            let cells = [Scheme::Unsafe, Scheme::Hfi, Scheme::Swivel]
                .map(|scheme| (scheme, evaluate(&profiled, scheme, &costs)));
            WorkloadRow {
                name: profiled.name.clone(),
                cells,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_shape_matches_paper() {
        let rows = build(1);
        assert_eq!(rows.len(), 4);
        for row in &rows {
            // HFI: 0–2% tail inflation (Table 1's headline claim);
            // we allow a little simulation noise.
            let hfi = row.tail_inflation(Scheme::Hfi);
            assert!(
                (-0.01..0.04).contains(&hfi),
                "{}: HFI tail inflation {:.1}% out of band",
                row.name,
                hfi * 100.0
            );
            // Swivel: noticeably worse than HFI.
            let swivel = row.tail_inflation(Scheme::Swivel);
            assert!(
                swivel > hfi,
                "{}: Swivel ({:.1}%) must exceed HFI ({:.1}%)",
                row.name,
                swivel * 100.0,
                hfi * 100.0
            );
        }
        // The branchy workloads (xml, templated html) take the biggest
        // Swivel hit; dense math (classification, sha rounds) the least.
        let inflation: std::collections::HashMap<&str, f64> = rows
            .iter()
            .map(|r| (r.name.as_str(), r.tail_inflation(Scheme::Swivel)))
            .collect();
        assert!(inflation["templated-html"] > inflation["image-classification"]);
        assert!(inflation["xml-to-json"] > inflation["check-sha256"]);
    }

    #[test]
    fn classification_is_slowest_workload() {
        let rows = build(1);
        let lat = |name: &str| {
            rows.iter()
                .find(|r| r.name == name)
                .expect("workload present")
                .cells[0]
                .1
                .avg_latency_ms
        };
        assert!(lat("image-classification") > lat("xml-to-json"));
        assert!(lat("image-classification") > lat("check-sha256"));
        assert!(lat("xml-to-json") > lat("templated-html"));
    }

    #[test]
    fn binary_sizes_only_bloat_under_swivel() {
        let rows = build(1);
        for row in &rows {
            let sizes: Vec<u64> = row.cells.iter().map(|(_, c)| c.binary_bytes).collect();
            assert_eq!(sizes[0], sizes[1], "{}: HFI must not bloat", row.name);
            assert!(sizes[2] > sizes[0], "{}: Swivel must bloat", row.name);
        }
    }
}
