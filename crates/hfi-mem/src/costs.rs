//! Nanosecond-domain cost model for OS virtual-memory operations.
//!
//! Wasm's SFI design leans on the MMU: guard-page reservations, `mprotect`
//! for heap growth, `madvise(MADV_DONTNEED)` for teardown. HFI's wins in
//! §6.1/§6.3 come from *eliding* these operations, so their costs are the
//! knobs this model exposes. Values are calibrated from the paper's own
//! measurements (noted per field) and from commonly cited Linux numbers.

/// Cost parameters for the modelled OS memory-management layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OsCosts {
    /// Kernel entry/exit for any syscall (KPTI-era Linux: ~300–700 ns).
    pub syscall_base_ns: f64,
    /// Per-VMA bookkeeping when a call splits or merges mappings. The
    /// paper's heap-growth experiment (§6.1: 65,535 `mprotect` grows take
    /// 10.92 s ≈ 166 µs/call) shows VMA maintenance dominating once a
    /// reservation has been carved into tens of thousands of mappings; we
    /// model that as a per-existing-VMA logarithmic factor plus this
    /// per-split constant.
    pub vma_op_ns: f64,
    /// Per-resident-page cost of `madvise(MADV_DONTNEED)` / `munmap`
    /// (page-table teardown and page freeing; ~90 ns/page).
    pub page_discard_ns: f64,
    /// Per-page cost of changing permissions in `mprotect` (PTE rewrite).
    pub page_protect_ns: f64,
    /// Cost of walking reserved-but-unmapped address space (guard
    /// regions), per GiB. The kernel skips unpopulated ranges at VMA
    /// granularity, so this is small but non-zero — it is exactly the cost
    /// HFI's guard elision avoids in batched teardown (§6.3.1).
    pub reserved_walk_ns_per_gib: f64,
    /// An inter-processor-interrupt TLB shootdown, charged when another
    /// thread shares the address space (§2: "unmapping memory incurs a TLB
    /// shootdown").
    pub tlb_shootdown_ns: f64,
    /// Per-page cost of first-touch (demand paging: fault + zero + map).
    pub page_fault_ns: f64,
}

impl OsCosts {
    /// The calibrated Linux-on-Skylake-like defaults used repo-wide.
    pub const fn linux_like() -> Self {
        Self {
            syscall_base_ns: 500.0,
            vma_op_ns: 8_000.0,
            page_discard_ns: 90.0,
            page_protect_ns: 95.0,
            reserved_walk_ns_per_gib: 220.0,
            tlb_shootdown_ns: 4_000.0,
            page_fault_ns: 1_500.0,
        }
    }
}

impl Default for OsCosts {
    fn default() -> Self {
        Self::linux_like()
    }
}

/// Page size of the modelled machine (4 KiB).
pub const PAGE_SIZE: u64 = 4096;

/// Rounds `len` up to a whole number of pages.
pub fn pages(len: u64) -> u64 {
    len.div_ceil(PAGE_SIZE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_rounds_up() {
        assert_eq!(pages(0), 0);
        assert_eq!(pages(1), 1);
        assert_eq!(pages(PAGE_SIZE), 1);
        assert_eq!(pages(PAGE_SIZE + 1), 2);
    }

    #[test]
    fn defaults_are_positive() {
        let costs = OsCosts::default();
        assert!(costs.syscall_base_ns > 0.0);
        assert!(costs.tlb_shootdown_ns > costs.syscall_base_ns);
    }
}
