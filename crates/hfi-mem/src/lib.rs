//! # hfi-mem — modelled virtual-memory substrate
//!
//! The OS-facing half of the reproduction: a process [`AddressSpace`] whose
//! `mmap`/`mprotect`/`munmap`/`madvise(MADV_DONTNEED)` operations carry a
//! calibrated nanosecond cost model ([`OsCosts`]) and maintain VMA-level
//! state (splits, residency, guard reservations).
//!
//! Wasm's SFI scheme leans on exactly these operations — 8 GiB guard
//! reservations per sandbox, `mprotect` for 64 KiB heap growth, `madvise`
//! for teardown — and HFI's lifecycle wins (paper §6.1, §6.3) consist of
//! eliding them. Reproducing those experiments therefore requires this
//! substrate to model where the time actually goes: syscall entry, VMA
//! maintenance, per-page PTE work, guard-range walks, and TLB shootdowns.
//!
//! ```
//! use hfi_mem::{AddressSpace, Prot};
//!
//! // A Wasm-with-guard-pages heap reservation:
//! let mut space = AddressSpace::new(47);
//! let slot = space.mmap(8 << 30, Prot::NONE)?;       // reserve 8 GiB
//! space.mprotect(slot, 64 << 10, Prot::READ_WRITE)?; // grow one Wasm page
//! # Ok::<(), hfi_mem::MemError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod costs;
pub mod space;

pub use costs::{pages, OsCosts, PAGE_SIZE};
pub use space::{AddressSpace, MemError, OsStats, Prot};
