//! A modelled process address space with cost-accounted `mmap`/`mprotect`/
//! `munmap`/`madvise`.
//!
//! This is the substrate under every lifecycle experiment in the paper:
//! guard-page reservations (§2), `mprotect`-based heap growth (§6.1),
//! `madvise(MADV_DONTNEED)` teardown and its batching (§5.1, §6.3.1), and
//! address-space exhaustion (§6.3.2). Every operation advances a simulated
//! nanosecond clock according to [`OsCosts`] and updates VMA-level state so
//! that costs depend on real structure (number of mappings, resident pages,
//! reserved guard ranges) rather than being constants.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use crate::costs::{pages, OsCosts, PAGE_SIZE};

/// Page protection bits for a mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Prot {
    /// Readable.
    pub read: bool,
    /// Writable.
    pub write: bool,
}

impl Prot {
    /// `PROT_NONE`: reserved address space with no access (guard regions).
    pub const NONE: Prot = Prot {
        read: false,
        write: false,
    };
    /// `PROT_READ | PROT_WRITE`.
    pub const READ_WRITE: Prot = Prot {
        read: true,
        write: true,
    };
    /// `PROT_READ`.
    pub const READ: Prot = Prot {
        read: true,
        write: false,
    };
}

/// A failed address-space operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemError {
    /// Not enough contiguous free virtual address space (`ENOMEM`).
    OutOfAddressSpace,
    /// The range is not page aligned (`EINVAL`).
    Unaligned,
    /// The range does not correspond to existing mappings (`ENOMEM`).
    NotMapped,
    /// An explicit placement collided with an existing mapping (`EEXIST`).
    Overlap,
    /// A zero-length range was supplied (`EINVAL`).
    ZeroLength,
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfAddressSpace => f.write_str("out of virtual address space"),
            MemError::Unaligned => f.write_str("range not page aligned"),
            MemError::NotMapped => f.write_str("range not mapped"),
            MemError::Overlap => f.write_str("requested range overlaps existing mapping"),
            MemError::ZeroLength => f.write_str("zero-length range"),
        }
    }
}

impl Error for MemError {}

/// One virtual memory area.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Vma {
    len: u64,
    prot: Prot,
    /// Pages actually faulted in (resident). `madvise(DONTNEED)` resets
    /// this to zero without touching the mapping itself.
    resident_pages: u64,
}

/// Running counters for the modelled OS layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OsStats {
    /// Number of syscalls issued (mmap + mprotect + munmap + madvise).
    pub syscalls: u64,
    /// mmap calls.
    pub mmaps: u64,
    /// mprotect calls.
    pub mprotects: u64,
    /// munmap calls.
    pub munmaps: u64,
    /// madvise calls.
    pub madvises: u64,
    /// TLB shootdowns performed.
    pub tlb_shootdowns: u64,
    /// Pages discarded by madvise/munmap.
    pub pages_discarded: u64,
}

/// A modelled process address space.
///
/// # Examples
///
/// ```
/// use hfi_mem::{AddressSpace, Prot};
///
/// let mut space = AddressSpace::new(47); // 128 TiB of user VA
/// // Reserve an 8 GiB Wasm slot (4 GiB heap + 4 GiB guard), no access:
/// let slot = space.mmap(8 << 30, Prot::NONE)?;
/// // Commit the first 64 KiB of heap:
/// space.mprotect(slot, 64 << 10, Prot::READ_WRITE)?;
/// assert!(space.elapsed_ns() > 0.0);
/// # Ok::<(), hfi_mem::MemError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AddressSpace {
    va_bits: u32,
    /// Start address → VMA.
    vmas: BTreeMap<u64, Vma>,
    costs: OsCosts,
    clock_ns: f64,
    stats: OsStats,
    /// Threads sharing this address space; >1 makes unmapping require TLB
    /// shootdowns.
    threads: u32,
    /// Lowest address handed out (we skip the canonical null/low region).
    floor: u64,
}

impl AddressSpace {
    /// Creates an address space with `va_bits` of user virtual addresses
    /// (47 for standard x86-64, 48/57 for large configurations) and default
    /// costs.
    pub fn new(va_bits: u32) -> Self {
        Self::with_costs(va_bits, OsCosts::default())
    }

    /// Creates an address space with explicit cost parameters.
    pub fn with_costs(va_bits: u32, costs: OsCosts) -> Self {
        assert!(
            (30..=57).contains(&va_bits),
            "va_bits out of modelled range"
        );
        Self {
            va_bits,
            vmas: BTreeMap::new(),
            costs,
            clock_ns: 0.0,
            stats: OsStats::default(),
            threads: 1,
            floor: 0x1_0000,
        }
    }

    /// Total user virtual address space in bytes.
    pub fn va_size(&self) -> u64 {
        1u64 << self.va_bits
    }

    /// Simulated time consumed by OS operations so far, in nanoseconds.
    pub fn elapsed_ns(&self) -> f64 {
        self.clock_ns
    }

    /// Resets the simulated clock (for per-phase measurements).
    pub fn reset_clock(&mut self) {
        self.clock_ns = 0.0;
    }

    /// Operation counters.
    pub fn stats(&self) -> OsStats {
        self.stats
    }

    /// Number of live VMAs.
    pub fn vma_count(&self) -> usize {
        self.vmas.len()
    }

    /// Bytes of virtual address space currently reserved (all mappings).
    pub fn reserved_bytes(&self) -> u64 {
        self.vmas.values().map(|vma| vma.len).sum()
    }

    /// Resident (faulted-in) pages across all mappings.
    pub fn resident_pages(&self) -> u64 {
        self.vmas.values().map(|vma| vma.resident_pages).sum()
    }

    /// Sets the number of threads sharing the space (affects shootdowns).
    pub fn set_threads(&mut self, threads: u32) {
        self.threads = threads.max(1);
    }

    fn charge(&mut self, ns: f64) {
        self.clock_ns += ns;
    }

    fn charge_syscall(&mut self) {
        self.stats.syscalls += 1;
        self.charge(self.costs.syscall_base_ns);
    }

    /// VMA maintenance cost: a split/merge plus rb-tree work that grows
    /// with the mapping count (log factor).
    fn vma_maintenance_ns(&self) -> f64 {
        let n = self.vmas.len().max(2) as f64;
        self.costs.vma_op_ns * n.log2()
    }

    fn maybe_shootdown(&mut self) {
        if self.threads > 1 {
            self.stats.tlb_shootdowns += 1;
            self.charge(self.costs.tlb_shootdown_ns * (self.threads - 1) as f64);
        }
    }

    /// Finds a free gap of `len` bytes. Fast path: bump-allocate past the
    /// highest live mapping (O(log n)); only when the top of the address
    /// space is exhausted does it fall back to a first-fit scan of the
    /// gaps left by unmapping (O(n)). This keeps the §6.3.2 experiment —
    /// hundreds of thousands of reservations — linear overall.
    fn find_gap(&self, len: u64) -> Option<u64> {
        let top = self
            .vmas
            .iter()
            .next_back()
            .map(|(&start, vma)| start + vma.len)
            .unwrap_or(self.floor)
            .max(self.floor);
        if self.va_size() > top && self.va_size() - top >= len {
            return Some(top);
        }
        let mut cursor = self.floor;
        for (&start, vma) in &self.vmas {
            if start >= cursor && start - cursor >= len {
                return Some(cursor);
            }
            cursor = cursor.max(start + vma.len);
        }
        if self.va_size() > cursor && self.va_size() - cursor >= len {
            Some(cursor)
        } else {
            None
        }
    }

    fn overlaps(&self, addr: u64, len: u64) -> bool {
        // Any VMA starting before addr+len whose end exceeds addr.
        self.vmas
            .range(..addr + len)
            .next_back()
            .is_some_and(|(&start, vma)| start + vma.len > addr)
    }

    /// `mmap(NULL, len, prot, MAP_ANONYMOUS, ...)`: reserves `len` bytes at
    /// a kernel-chosen address and returns it.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfAddressSpace`] when no gap fits, reproducing the
    /// exhaustion arithmetic of §2/§6.3.2; [`MemError::ZeroLength`] or
    /// [`MemError::Unaligned`] for invalid arguments.
    pub fn mmap(&mut self, len: u64, prot: Prot) -> Result<u64, MemError> {
        if len == 0 {
            return Err(MemError::ZeroLength);
        }
        if !len.is_multiple_of(PAGE_SIZE) {
            return Err(MemError::Unaligned);
        }
        self.charge_syscall();
        self.stats.mmaps += 1;
        let addr = self.find_gap(len).ok_or(MemError::OutOfAddressSpace)?;
        self.charge(self.vma_maintenance_ns());
        self.vmas.insert(
            addr,
            Vma {
                len,
                prot,
                resident_pages: 0,
            },
        );
        Ok(addr)
    }

    /// `mmap(addr, ..., MAP_FIXED_NOREPLACE)`: reserves at a caller-chosen
    /// address.
    ///
    /// # Errors
    ///
    /// [`MemError::Overlap`] if the range collides with a live mapping,
    /// plus the argument errors of [`mmap`](Self::mmap).
    pub fn mmap_fixed(&mut self, addr: u64, len: u64, prot: Prot) -> Result<(), MemError> {
        if len == 0 {
            return Err(MemError::ZeroLength);
        }
        if !len.is_multiple_of(PAGE_SIZE) || !addr.is_multiple_of(PAGE_SIZE) {
            return Err(MemError::Unaligned);
        }
        if addr + len > self.va_size() {
            return Err(MemError::OutOfAddressSpace);
        }
        self.charge_syscall();
        self.stats.mmaps += 1;
        if self.overlaps(addr, len) {
            return Err(MemError::Overlap);
        }
        self.charge(self.vma_maintenance_ns());
        self.vmas.insert(
            addr,
            Vma {
                len,
                prot,
                resident_pages: 0,
            },
        );
        Ok(())
    }

    /// Splits VMAs so that `addr` and `addr + len` fall on VMA edges.
    /// Returns an error if any part of the range is unmapped.
    fn split_at(&mut self, addr: u64, len: u64) -> Result<(), MemError> {
        // Split the VMA containing addr.
        if let Some((&start, &vma)) = self.vmas.range(..=addr).next_back() {
            if start < addr && start + vma.len > addr {
                let head_len = addr - start;
                self.vmas.insert(
                    start,
                    Vma {
                        len: head_len,
                        prot: vma.prot,
                        resident_pages: vma.resident_pages.min(pages(head_len)),
                    },
                );
                self.vmas.insert(
                    addr,
                    Vma {
                        len: vma.len - head_len,
                        prot: vma.prot,
                        resident_pages: vma.resident_pages.saturating_sub(pages(head_len)),
                    },
                );
            }
        }
        let end = addr + len;
        if let Some((&start, &vma)) = self.vmas.range(..end).next_back() {
            if start < end && start + vma.len > end {
                let head_len = end - start;
                self.vmas.insert(
                    start,
                    Vma {
                        len: head_len,
                        prot: vma.prot,
                        resident_pages: vma.resident_pages.min(pages(head_len)),
                    },
                );
                self.vmas.insert(
                    end,
                    Vma {
                        len: vma.len - head_len,
                        prot: vma.prot,
                        resident_pages: vma.resident_pages.saturating_sub(pages(head_len)),
                    },
                );
            }
        }
        // Verify full coverage.
        let mut cursor = addr;
        for (&start, vma) in self.vmas.range(addr..end) {
            if start != cursor {
                return Err(MemError::NotMapped);
            }
            cursor = start + vma.len;
        }
        if cursor < end {
            return Err(MemError::NotMapped);
        }
        Ok(())
    }

    /// `mprotect(addr, len, prot)`: changes permissions; used by Wasm
    /// runtimes to grow heaps inside a guard reservation (§2, §6.1).
    ///
    /// # Errors
    ///
    /// [`MemError::NotMapped`] if the range is not fully mapped, or the
    /// argument errors of [`mmap`](Self::mmap).
    pub fn mprotect(&mut self, addr: u64, len: u64, prot: Prot) -> Result<(), MemError> {
        if len == 0 {
            return Err(MemError::ZeroLength);
        }
        if !len.is_multiple_of(PAGE_SIZE) || !addr.is_multiple_of(PAGE_SIZE) {
            return Err(MemError::Unaligned);
        }
        self.charge_syscall();
        self.stats.mprotects += 1;
        self.split_at(addr, len)?;
        self.charge(self.vma_maintenance_ns());
        let end = addr + len;
        let mut reducing = false;
        let starts: Vec<u64> = self.vmas.range(addr..end).map(|(&s, _)| s).collect();
        for start in starts {
            let vma = self.vmas.get_mut(&start).expect("split ensured presence");
            if (vma.prot.write && !prot.write) || (vma.prot.read && !prot.read) {
                reducing = true;
            }
            vma.prot = prot;
        }
        self.charge(self.costs.page_protect_ns * pages(len) as f64);
        if reducing {
            // Dropping permissions requires remote TLB invalidation.
            self.maybe_shootdown();
        }
        Ok(())
    }

    /// `madvise(addr, len, MADV_DONTNEED)`: discards resident pages but
    /// keeps the mapping. Walking reserved (guard) ranges is charged at
    /// [`OsCosts::reserved_walk_ns_per_gib`] — the cost HFI's guard elision
    /// removes from batched teardown (§5.1, §6.3.1).
    ///
    /// # Errors
    ///
    /// [`MemError::NotMapped`] if the range is not fully mapped, or the
    /// argument errors of [`mmap`](Self::mmap).
    pub fn madvise_dontneed(&mut self, addr: u64, len: u64) -> Result<(), MemError> {
        if len == 0 {
            return Err(MemError::ZeroLength);
        }
        if !len.is_multiple_of(PAGE_SIZE) || !addr.is_multiple_of(PAGE_SIZE) {
            return Err(MemError::Unaligned);
        }
        self.charge_syscall();
        self.stats.madvises += 1;
        self.split_at(addr, len)?;
        let end = addr + len;
        let mut discarded = 0u64;
        let mut reserved_bytes = 0u64;
        let starts: Vec<u64> = self.vmas.range(addr..end).map(|(&s, _)| s).collect();
        for start in starts {
            let vma = self.vmas.get_mut(&start).expect("split ensured presence");
            if vma.prot == Prot::NONE {
                reserved_bytes += vma.len;
            }
            discarded += vma.resident_pages;
            vma.resident_pages = 0;
        }
        self.stats.pages_discarded += discarded;
        self.charge(self.costs.page_discard_ns * discarded as f64);
        self.charge(
            self.costs.reserved_walk_ns_per_gib * reserved_bytes as f64 / (1u64 << 30) as f64,
        );
        if discarded > 0 {
            self.maybe_shootdown();
        }
        Ok(())
    }

    /// `munmap(addr, len)`: removes mappings.
    ///
    /// # Errors
    ///
    /// [`MemError::NotMapped`] if the range is not fully mapped, or the
    /// argument errors of [`mmap`](Self::mmap).
    pub fn munmap(&mut self, addr: u64, len: u64) -> Result<(), MemError> {
        if len == 0 {
            return Err(MemError::ZeroLength);
        }
        if !len.is_multiple_of(PAGE_SIZE) || !addr.is_multiple_of(PAGE_SIZE) {
            return Err(MemError::Unaligned);
        }
        self.charge_syscall();
        self.stats.munmaps += 1;
        self.split_at(addr, len)?;
        self.charge(self.vma_maintenance_ns());
        let end = addr + len;
        let starts: Vec<u64> = self.vmas.range(addr..end).map(|(&s, _)| s).collect();
        let mut discarded = 0;
        for start in starts {
            let vma = self.vmas.remove(&start).expect("split ensured presence");
            discarded += vma.resident_pages;
        }
        self.stats.pages_discarded += discarded;
        self.charge(self.costs.page_discard_ns * discarded as f64);
        self.maybe_shootdown();
        Ok(())
    }

    /// Simulates the application touching (faulting in) `len` bytes at
    /// `addr`: demand-paging cost, resident-page accounting.
    ///
    /// # Errors
    ///
    /// [`MemError::NotMapped`] if the range is not fully mapped with access.
    pub fn touch(&mut self, addr: u64, len: u64) -> Result<(), MemError> {
        if len == 0 {
            return Ok(());
        }
        let first_page = addr / PAGE_SIZE * PAGE_SIZE;
        let span = addr + len - first_page;
        self.split_at(first_page, pages(span) * PAGE_SIZE)?;
        let end = first_page + pages(span) * PAGE_SIZE;
        let starts: Vec<u64> = self.vmas.range(first_page..end).map(|(&s, _)| s).collect();
        let mut faulted = 0u64;
        for start in starts {
            let vma = self.vmas.get_mut(&start).expect("split ensured presence");
            if !vma.prot.read && !vma.prot.write {
                return Err(MemError::NotMapped);
            }
            let vma_pages = pages(vma.len);
            let newly = vma_pages.saturating_sub(vma.resident_pages);
            faulted += newly;
            vma.resident_pages = vma_pages;
        }
        self.charge(self.costs.page_fault_ns * faulted as f64);
        Ok(())
    }

    /// Protection of the page containing `addr`, if mapped.
    pub fn prot_at(&self, addr: u64) -> Option<Prot> {
        let (&start, vma) = self.vmas.range(..=addr).next_back()?;
        if start + vma.len > addr {
            Some(vma.prot)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GIB: u64 = 1 << 30;

    #[test]
    fn mmap_returns_disjoint_ranges() {
        let mut space = AddressSpace::new(40);
        let a = space.mmap(8 * GIB, Prot::NONE).unwrap();
        let b = space.mmap(8 * GIB, Prot::NONE).unwrap();
        assert!(a + 8 * GIB <= b || b + 8 * GIB <= a);
    }

    #[test]
    fn address_space_exhaustion() {
        // 2^40 = 1 TiB space: 128 reservations of 8 GiB fill it.
        let mut space = AddressSpace::new(40);
        let mut count = 0;
        while space.mmap(8 * GIB, Prot::NONE).is_ok() {
            count += 1;
        }
        // The floor steals a little below 64 KiB, so 127 full slots fit.
        assert!(count == 127 || count == 128, "count={count}");
    }

    #[test]
    fn mprotect_splits_vmas() {
        let mut space = AddressSpace::new(40);
        let base = space.mmap(8 * GIB, Prot::NONE).unwrap();
        space.mprotect(base, 64 << 10, Prot::READ_WRITE).unwrap();
        assert_eq!(space.vma_count(), 2);
        assert_eq!(space.prot_at(base), Some(Prot::READ_WRITE));
        assert_eq!(space.prot_at(base + (64 << 10)), Some(Prot::NONE));
    }

    #[test]
    fn mprotect_unmapped_fails() {
        let mut space = AddressSpace::new(40);
        assert_eq!(
            space.mprotect(0x10_0000, PAGE_SIZE, Prot::READ),
            Err(MemError::NotMapped)
        );
    }

    #[test]
    fn munmap_subrange() {
        let mut space = AddressSpace::new(40);
        let base = space.mmap(16 * PAGE_SIZE, Prot::READ_WRITE).unwrap();
        space.munmap(base + 4 * PAGE_SIZE, 4 * PAGE_SIZE).unwrap();
        assert_eq!(space.prot_at(base), Some(Prot::READ_WRITE));
        assert_eq!(space.prot_at(base + 5 * PAGE_SIZE), None);
        assert_eq!(space.prot_at(base + 8 * PAGE_SIZE), Some(Prot::READ_WRITE));
    }

    #[test]
    fn touch_and_discard_accounting() {
        let mut space = AddressSpace::new(40);
        let base = space.mmap(GIB, Prot::READ_WRITE).unwrap();
        space.touch(base, 1 << 20).unwrap();
        assert_eq!(space.resident_pages(), 256);
        space.madvise_dontneed(base, GIB).unwrap();
        assert_eq!(space.resident_pages(), 0);
        assert_eq!(space.stats().pages_discarded, 256);
    }

    #[test]
    fn touch_protnone_fails() {
        let mut space = AddressSpace::new(40);
        let base = space.mmap(1 << 20, Prot::NONE).unwrap();
        assert_eq!(space.touch(base, 8), Err(MemError::NotMapped));
    }

    #[test]
    fn madvise_over_guards_costs_more_than_heap_only() {
        // The §6.3.1 effect in miniature: discarding across guard
        // reservations is strictly slower than the same discard without.
        let costs = OsCosts::default();
        let mut with_guards = AddressSpace::with_costs(44, costs);
        let heap = with_guards.mmap(2 << 20, Prot::READ_WRITE).unwrap();
        let _guard = with_guards.mmap(8 * GIB, Prot::NONE).unwrap();
        with_guards.touch(heap, 2 << 20).unwrap();
        with_guards.reset_clock();
        with_guards.madvise_dontneed(heap, 2 << 20).unwrap();
        let heap_only = with_guards.elapsed_ns();
        with_guards.touch(heap, 2 << 20).unwrap();
        with_guards.reset_clock();
        // One batched call across heap + guard.
        with_guards
            .madvise_dontneed(heap, (2 << 20) + 8 * GIB)
            .unwrap();
        let with_guard_walk = with_guards.elapsed_ns();
        assert!(with_guard_walk > heap_only);
    }

    #[test]
    fn shootdowns_only_with_threads() {
        let mut space = AddressSpace::new(40);
        let base = space.mmap(1 << 20, Prot::READ_WRITE).unwrap();
        space.munmap(base, 1 << 20).unwrap();
        assert_eq!(space.stats().tlb_shootdowns, 0);

        let mut threaded = AddressSpace::new(40);
        threaded.set_threads(4);
        let base = threaded.mmap(1 << 20, Prot::READ_WRITE).unwrap();
        threaded.munmap(base, 1 << 20).unwrap();
        assert_eq!(threaded.stats().tlb_shootdowns, 1);
    }

    #[test]
    fn mmap_fixed_detects_overlap() {
        let mut space = AddressSpace::new(40);
        space
            .mmap_fixed(0x100_0000, 1 << 20, Prot::READ_WRITE)
            .unwrap();
        assert_eq!(
            space.mmap_fixed(0x100_0000 + (1 << 19), 1 << 20, Prot::NONE),
            Err(MemError::Overlap)
        );
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut space = AddressSpace::new(40);
        let t0 = space.elapsed_ns();
        let base = space.mmap(1 << 20, Prot::READ_WRITE).unwrap();
        let t1 = space.elapsed_ns();
        assert!(t1 > t0);
        space.mprotect(base, PAGE_SIZE, Prot::READ).unwrap();
        assert!(space.elapsed_ns() > t1);
    }
}
