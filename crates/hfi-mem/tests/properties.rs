//! Randomized tests of the address-space model: random operation
//! sequences must preserve the VMA invariants the cost model depends on.
//!
//! Driven by the vendored deterministic PRNG (fixed seeds, offline
//! build) instead of `proptest`.

use hfi_mem::{AddressSpace, Prot, PAGE_SIZE};
use hfi_util::Rng;

#[derive(Debug, Clone)]
enum Op {
    Mmap {
        pages: u64,
        writable: bool,
    },
    MprotectWithin {
        slot: usize,
        first: u64,
        count: u64,
        writable: bool,
    },
    MunmapWithin {
        slot: usize,
        first: u64,
        count: u64,
    },
    Madvise {
        slot: usize,
    },
    Touch {
        slot: usize,
        bytes: u64,
    },
}

fn random_op(rng: &mut Rng) -> Op {
    match rng.below(5) {
        0 => Op::Mmap {
            pages: rng.range_u64(1, 64),
            writable: rng.bool(),
        },
        1 => Op::MprotectWithin {
            slot: rng.below(8) as usize,
            first: rng.below(32),
            count: rng.range_u64(1, 16),
            writable: rng.bool(),
        },
        2 => Op::MunmapWithin {
            slot: rng.below(8) as usize,
            first: rng.below(32),
            count: rng.range_u64(1, 16),
        },
        3 => Op::Madvise {
            slot: rng.below(8) as usize,
        },
        _ => Op::Touch {
            slot: rng.below(8) as usize,
            bytes: rng.range_u64(1, 5000),
        },
    }
}

#[test]
fn address_space_invariants_hold() {
    let mut rng = Rng::new(0x11);
    for _case in 0..64 {
        let steps = rng.range_u64(1, 60);
        let mut space = AddressSpace::new(36);
        // (base, pages) of live regions we created, for targeting.
        let mut slots: Vec<(u64, u64)> = Vec::new();
        let mut last_clock = 0.0f64;
        for _ in 0..steps {
            match random_op(&mut rng) {
                Op::Mmap { pages, writable } => {
                    let prot = if writable {
                        Prot::READ_WRITE
                    } else {
                        Prot::NONE
                    };
                    if let Ok(base) = space.mmap(pages * PAGE_SIZE, prot) {
                        assert_eq!(base % PAGE_SIZE, 0, "mmap returns aligned bases");
                        slots.push((base, pages));
                    }
                }
                Op::MprotectWithin {
                    slot,
                    first,
                    count,
                    writable,
                } => {
                    if let Some(&(base, pages)) = slots.get(slot % slots.len().max(1)) {
                        let first = first % pages;
                        let count = count.min(pages - first);
                        if count > 0 {
                            let prot = if writable {
                                Prot::READ_WRITE
                            } else {
                                Prot::READ
                            };
                            space
                                .mprotect(base + first * PAGE_SIZE, count * PAGE_SIZE, prot)
                                .expect("mprotect inside a live mapping succeeds");
                        }
                    }
                }
                Op::MunmapWithin { slot, first, count } => {
                    if !slots.is_empty() {
                        let idx = slot % slots.len();
                        let (base, pages) = slots[idx];
                        let first = first % pages;
                        let count = count.min(pages - first);
                        if count > 0 {
                            space
                                .munmap(base + first * PAGE_SIZE, count * PAGE_SIZE)
                                .expect("munmap inside a live mapping succeeds");
                            // Conservatively forget the whole slot.
                            slots.remove(idx);
                        }
                    }
                }
                Op::Madvise { slot } => {
                    if let Some(&(base, pages)) = slots.get(slot % slots.len().max(1)) {
                        space
                            .madvise_dontneed(base, pages * PAGE_SIZE)
                            .expect("madvise over a live mapping succeeds");
                    }
                }
                Op::Touch { slot, bytes } => {
                    if let Some(&(base, pages)) = slots.get(slot % slots.len().max(1)) {
                        let bytes = bytes.min(pages * PAGE_SIZE);
                        // May fail on PROT_NONE mappings; both outcomes ok.
                        let _ = space.touch(base, bytes);
                    }
                }
            }
            // Invariants after every step:
            assert!(space.reserved_bytes() <= space.va_size());
            assert!(
                space.resident_pages() * PAGE_SIZE <= space.reserved_bytes(),
                "residency cannot exceed reservations"
            );
            assert!(space.elapsed_ns() >= last_clock, "time is monotonic");
            last_clock = space.elapsed_ns();
        }
    }
}

#[test]
fn mmap_regions_never_overlap() {
    let mut rng = Rng::new(0x12);
    for _case in 0..64 {
        let count = rng.range_u64(1, 30);
        let mut space = AddressSpace::new(36);
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for _ in 0..count {
            let pages = rng.range_u64(1, 64);
            if let Ok(base) = space.mmap(pages * PAGE_SIZE, Prot::READ_WRITE) {
                let end = base + pages * PAGE_SIZE;
                for &(other_base, other_end) in &ranges {
                    assert!(
                        end <= other_base || base >= other_end,
                        "[{base:#x},{end:#x}) overlaps [{other_base:#x},{other_end:#x})"
                    );
                }
                ranges.push((base, end));
            }
        }
    }
}

#[test]
fn mprotect_split_preserves_coverage() {
    let mut rng = Rng::new(0x13);
    for _case in 0..256 {
        let pages = rng.range_u64(4, 64);
        let cut_first = rng.range_u64(1, 32) % (pages - 1);
        let cut_count = rng.range_u64(1, 16).min(pages - cut_first);
        let mut space = AddressSpace::new(36);
        let base = space.mmap(pages * PAGE_SIZE, Prot::NONE).expect("fits");
        space
            .mprotect(
                base + cut_first * PAGE_SIZE,
                cut_count * PAGE_SIZE,
                Prot::READ_WRITE,
            )
            .expect("in-range mprotect");
        // Every page is still mapped, with the right protection.
        for page in 0..pages {
            let addr = base + page * PAGE_SIZE;
            let prot = space.prot_at(addr).expect("page still mapped");
            let expected_writable = page >= cut_first && page < cut_first + cut_count;
            assert_eq!(prot.write, expected_writable, "page {page}");
        }
    }
}
