//! Property-based tests of the address-space model: random operation
//! sequences must preserve the VMA invariants the cost model depends on.

use hfi_mem::{AddressSpace, Prot, PAGE_SIZE};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Mmap { pages: u64, writable: bool },
    MprotectWithin { slot: usize, first: u64, count: u64, writable: bool },
    MunmapWithin { slot: usize, first: u64, count: u64 },
    Madvise { slot: usize },
    Touch { slot: usize, bytes: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..64, any::<bool>()).prop_map(|(pages, writable)| Op::Mmap { pages, writable }),
        (0usize..8, 0u64..32, 1u64..16, any::<bool>()).prop_map(
            |(slot, first, count, writable)| Op::MprotectWithin { slot, first, count, writable }
        ),
        (0usize..8, 0u64..32, 1u64..16)
            .prop_map(|(slot, first, count)| Op::MunmapWithin { slot, first, count }),
        (0usize..8).prop_map(|slot| Op::Madvise { slot }),
        (0usize..8, 1u64..5000).prop_map(|(slot, bytes)| Op::Touch { slot, bytes }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn address_space_invariants_hold(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let mut space = AddressSpace::new(36);
        // (base, pages) of live regions we created, for targeting.
        let mut slots: Vec<(u64, u64)> = Vec::new();
        let mut last_clock = 0.0f64;
        for op in ops {
            match op {
                Op::Mmap { pages, writable } => {
                    let prot = if writable { Prot::READ_WRITE } else { Prot::NONE };
                    if let Ok(base) = space.mmap(pages * PAGE_SIZE, prot) {
                        prop_assert_eq!(base % PAGE_SIZE, 0, "mmap returns aligned bases");
                        slots.push((base, pages));
                    }
                }
                Op::MprotectWithin { slot, first, count, writable } => {
                    if let Some(&(base, pages)) = slots.get(slot % slots.len().max(1)) {
                        let first = first % pages;
                        let count = count.min(pages - first);
                        if count > 0 {
                            let prot = if writable { Prot::READ_WRITE } else { Prot::READ };
                            space
                                .mprotect(base + first * PAGE_SIZE, count * PAGE_SIZE, prot)
                                .expect("mprotect inside a live mapping succeeds");
                        }
                    }
                }
                Op::MunmapWithin { slot, first, count } => {
                    if !slots.is_empty() {
                        let idx = slot % slots.len();
                        let (base, pages) = slots[idx];
                        let first = first % pages;
                        let count = count.min(pages - first);
                        if count > 0 {
                            space
                                .munmap(base + first * PAGE_SIZE, count * PAGE_SIZE)
                                .expect("munmap inside a live mapping succeeds");
                            // Conservatively forget the whole slot.
                            slots.remove(idx);
                        }
                    }
                }
                Op::Madvise { slot } => {
                    if let Some(&(base, pages)) = slots.get(slot % slots.len().max(1)) {
                        space
                            .madvise_dontneed(base, pages * PAGE_SIZE)
                            .expect("madvise over a live mapping succeeds");
                    }
                }
                Op::Touch { slot, bytes } => {
                    if let Some(&(base, pages)) = slots.get(slot % slots.len().max(1)) {
                        let bytes = bytes.min(pages * PAGE_SIZE);
                        // May fail on PROT_NONE mappings; both outcomes ok.
                        let _ = space.touch(base, bytes);
                    }
                }
            }
            // Invariants after every step:
            prop_assert!(space.reserved_bytes() <= space.va_size());
            prop_assert!(
                space.resident_pages() * PAGE_SIZE <= space.reserved_bytes(),
                "residency cannot exceed reservations"
            );
            prop_assert!(space.elapsed_ns() >= last_clock, "time is monotonic");
            last_clock = space.elapsed_ns();
        }
    }

    #[test]
    fn mmap_regions_never_overlap(sizes in prop::collection::vec(1u64..64, 1..30)) {
        let mut space = AddressSpace::new(36);
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for pages in sizes {
            if let Ok(base) = space.mmap(pages * PAGE_SIZE, Prot::READ_WRITE) {
                let end = base + pages * PAGE_SIZE;
                for &(other_base, other_end) in &ranges {
                    prop_assert!(
                        end <= other_base || base >= other_end,
                        "[{base:#x},{end:#x}) overlaps [{other_base:#x},{other_end:#x})"
                    );
                }
                ranges.push((base, end));
            }
        }
    }

    #[test]
    fn mprotect_split_preserves_coverage(
        pages in 4u64..64,
        cut_first in 1u64..32,
        cut_count in 1u64..16,
    ) {
        let mut space = AddressSpace::new(36);
        let base = space.mmap(pages * PAGE_SIZE, Prot::NONE).expect("fits");
        let cut_first = cut_first % (pages - 1);
        let cut_count = cut_count.min(pages - cut_first);
        space
            .mprotect(base + cut_first * PAGE_SIZE, cut_count * PAGE_SIZE, Prot::READ_WRITE)
            .expect("in-range mprotect");
        // Every page is still mapped, with the right protection.
        for page in 0..pages {
            let addr = base + page * PAGE_SIZE;
            let prot = space.prot_at(addr).expect("page still mapped");
            let expected_writable = page >= cut_first && page < cut_first + cut_count;
            prop_assert_eq!(prot.write, expected_writable, "page {}", page);
        }
    }
}
