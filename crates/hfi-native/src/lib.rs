//! # hfi-native — sandboxing unmodified native binaries with HFI
//!
//! The paper's second track (§3.3, §6.4): HFI's *native* sandbox isolates
//! code without recompilation. Its two costs are exactly what this crate
//! measures:
//!
//! * [`syscalls`] — trapping system calls: HFI's microcode redirect (one
//!   decode cycle, then an in-process handler) vs. Seccomp-bpf's kernel
//!   filter, run as real programs on the cycle simulator (§6.4.1, ≈2%
//!   delta).
//! * [`nginx`] — switching protection domains: the NGINX + sandboxed
//!   OpenSSL server model comparing HFI's serialized enter/exit against
//!   MPK's `wrpkru` pair across file sizes (§6.4.2, Fig. 5).
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod nginx;
pub mod syscalls;

pub use nginx::{Protection, ServerModel, ThroughputPoint, FIG5_FILE_SIZES};
pub use syscalls::{
    benchmark_program, interposition_spec, run_benchmark, seccomp_overhead_vs_hfi, Interposition,
    InterpositionRun,
};
