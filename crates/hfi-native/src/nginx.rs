//! The NGINX + sandboxed-OpenSSL server model (§6.4.2, Fig. 5).
//!
//! The paper isolates OpenSSL's crypto functions and session keys inside
//! NGINX (following ERIM) and measures delivered throughput against file
//! size under: no protection, MPK (two `wrpkru` per crypto call), and
//! HFI's native sandbox (serialized `hfi_enter`/`hfi_exit` plus region
//! metadata loads). HFI's native sandbox adds **no execution overhead**
//! to the crypto itself — region checks run in parallel with address
//! translation — so all overhead comes from domain transitions, which
//! amortize as files grow but also multiply with record count.
//!
//! The model: each request performs protocol work, then encrypts the file
//! in TLS-record-sized (16 KiB) chunks; every OpenSSL call crosses the
//! protection boundary twice (in and out).

use hfi_core::CostModel;

/// The protection scheme applied to the crypto library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protection {
    /// Unprotected baseline.
    None,
    /// Intel MPK domains (ERIM-style), two `wrpkru` per boundary cross.
    Mpk,
    /// HFI native sandbox with serialized enter/exit (Spectre-safe).
    HfiNative,
}

impl std::fmt::Display for Protection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Protection::None => f.write_str("unprotected"),
            Protection::Mpk => f.write_str("mpk"),
            Protection::HfiNative => f.write_str("hfi-native"),
        }
    }
}

/// Parameters of the modelled server (calibrated in the doc comments).
#[derive(Debug, Clone, Copy)]
pub struct ServerModel {
    /// Architectural cost constants.
    pub costs: CostModel,
    /// TLS record size in bytes (OpenSSL's 16 KiB default).
    pub record_bytes: u64,
    /// Cycles of protocol work per request outside crypto (parse, route,
    /// headers, socket writes: NGINX serves a loopback keep-alive request
    /// in a handful of microseconds on one core).
    pub request_base_cycles: u64,
    /// OpenSSL calls per request that are not data records (handshake/MAC
    /// bookkeeping on a keep-alive connection).
    pub control_calls: u64,
    /// Crypto cycles per byte (AES-GCM with AES-NI, amortized with
    /// framing).
    pub crypto_cycles_per_byte: f64,
    /// Fixed cycles per OpenSSL call (framing, IV, MAC finalization).
    pub per_call_cycles: u64,
    /// Register save/clear hygiene both schemes pay per boundary-cross
    /// pair (ERIM-style call gates zero registers either way).
    pub boundary_hygiene_cycles: u64,
}

impl Default for ServerModel {
    fn default() -> Self {
        Self {
            costs: CostModel::default(),
            record_bytes: 16 << 10,
            request_base_cycles: 20_000,
            control_calls: 8,
            crypto_cycles_per_byte: 0.46,
            per_call_cycles: 900,
            boundary_hygiene_cycles: 70,
        }
    }
}

/// One point of the Fig. 5 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputPoint {
    /// Requested file size in bytes.
    pub file_bytes: u64,
    /// Protection scheme.
    pub protection: Protection,
    /// Cycles consumed per request.
    pub cycles_per_request: f64,
    /// Requests per second at 3.3 GHz.
    pub requests_per_second: f64,
}

impl ServerModel {
    /// Boundary-crossing cost (enter + exit) for one OpenSSL call.
    fn transition_cycles(&self, protection: Protection) -> u64 {
        match protection {
            Protection::None => 0,
            Protection::Mpk => self.boundary_hygiene_cycles + self.costs.mpk_transition_pair(),
            // Four region registers of metadata move from memory on each
            // entry — the reason Fig. 5 shows HFI slightly above MPK.
            Protection::HfiNative => {
                self.boundary_hygiene_cycles + self.costs.hfi_transition_pair(4, true)
            }
        }
    }

    /// Simulates one request for `file_bytes` under `protection`.
    pub fn request(&self, file_bytes: u64, protection: Protection) -> ThroughputPoint {
        let records = file_bytes.div_ceil(self.record_bytes).max(1);
        let calls = records + self.control_calls;
        let crypto = file_bytes as f64 * self.crypto_cycles_per_byte
            + calls as f64 * self.per_call_cycles as f64;
        let transitions = calls as f64 * self.transition_cycles(protection) as f64;
        let cycles = self.request_base_cycles as f64 + crypto + transitions;
        ThroughputPoint {
            file_bytes,
            protection,
            cycles_per_request: cycles,
            requests_per_second: 3.3e9 / cycles,
        }
    }

    /// The Fig. 5 sweep: throughput for each file size and scheme.
    pub fn sweep(&self, file_sizes: &[u64]) -> Vec<ThroughputPoint> {
        let mut points = Vec::new();
        for &size in file_sizes {
            for protection in [Protection::None, Protection::Mpk, Protection::HfiNative] {
                points.push(self.request(size, protection));
            }
        }
        points
    }

    /// Throughput overhead of `protection` vs. unprotected at one size.
    pub fn overhead(&self, file_bytes: u64, protection: Protection) -> f64 {
        let base = self
            .request(file_bytes, Protection::None)
            .requests_per_second;
        let protected = self.request(file_bytes, protection).requests_per_second;
        base / protected - 1.0
    }
}

/// The file sizes Fig. 5 sweeps (0 through 128 KiB).
pub const FIG5_FILE_SIZES: [u64; 9] = [
    0,
    1 << 10,
    2 << 10,
    4 << 10,
    8 << 10,
    16 << 10,
    32 << 10,
    64 << 10,
    128 << 10,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hfi_overhead_within_paper_range() {
        // Fig. 5: HFI 2.9%–6.1% across file sizes.
        let model = ServerModel::default();
        for size in FIG5_FILE_SIZES {
            let overhead = model.overhead(size, Protection::HfiNative);
            assert!(
                overhead > 0.025 && overhead < 0.07,
                "HFI overhead {:.1}% out of range at {size}B",
                overhead * 100.0
            );
        }
    }

    #[test]
    fn mpk_overhead_below_hfi_and_within_range() {
        // Fig. 5: MPK 1.9%–5.3%, always a bit below HFI.
        let model = ServerModel::default();
        for size in FIG5_FILE_SIZES {
            let mpk = model.overhead(size, Protection::Mpk);
            let hfi = model.overhead(size, Protection::HfiNative);
            assert!(mpk < hfi, "MPK must beat HFI at {size}B");
            assert!(
                mpk > 0.015 && mpk < 0.06,
                "MPK overhead {:.1}% at {size}B",
                mpk * 100.0
            );
        }
    }

    #[test]
    fn throughput_decreases_with_file_size() {
        let model = ServerModel::default();
        let small = model.request(0, Protection::None).requests_per_second;
        let large = model
            .request(128 << 10, Protection::None)
            .requests_per_second;
        assert!(small > large);
    }

    #[test]
    fn sweep_covers_all_points() {
        let model = ServerModel::default();
        let points = model.sweep(&FIG5_FILE_SIZES);
        assert_eq!(points.len(), FIG5_FILE_SIZES.len() * 3);
    }
}
