//! System-call interposition mechanisms and the §6.4.1 benchmark.
//!
//! HFI's native sandbox converts syscall instructions into jumps to the
//! exit handler in microcode (paper §4.4) — interposition at the price of
//! one decode cycle. The state of the art without hardware support is a
//! Seccomp-bpf filter, which charges every syscall a BPF evaluation in
//! the kernel. The paper's benchmark opens/reads/closes a file 100,000
//! times under each mechanism and reports Seccomp costing 2.1% more.
//!
//! Both variants run as real programs on the cycle simulator: the HFI
//! variant's syscalls bounce through an in-process exit handler (which
//! performs the real syscall outside the sandbox and `hfi_reenter`s);
//! the Seccomp variant's syscalls go straight to the OS model with a
//! per-call filter surcharge.

use hfi_core::region::ImplicitCodeRegion;
use hfi_core::{Region, SandboxConfig};
use hfi_sim::core::DefaultOs;
use hfi_sim::{Cond, Machine, ProgramBuilder, Reg, RunResult, Stop};
use hfi_verify::SandboxSpec;

/// How syscalls from sandboxed code are interposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interposition {
    /// No interposition (baseline).
    None,
    /// HFI native sandbox: microcode redirect to the in-process handler.
    Hfi,
    /// Seccomp-bpf: kernel-side filter evaluation on every call.
    Seccomp,
}

/// Result of one interposition benchmark run.
#[derive(Debug, Clone, PartialEq)]
pub struct InterpositionRun {
    /// The mechanism measured.
    pub mechanism: Interposition,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Syscall round trips performed (3 per iteration).
    pub syscalls: u64,
    /// The raw machine result.
    pub result: RunResult,
}

const CODE_BASE: u64 = 0x40_0000;

/// The safety contract the benchmark program must satisfy, checkable with
/// [`hfi_verify::verify_program`]. The HFI variant must install the code
/// region, enter the sandbox before its syscall loop, and interpose every
/// sandboxed syscall through the exit handler (which clobbers `r0`, the
/// saved resume pc in `r6`, and the HFI-provided `r14`). The other
/// mechanisms interpose in the kernel, so their programs carry no static
/// obligations beyond well-formed control flow.
pub fn interposition_spec(mechanism: Interposition) -> SandboxSpec {
    match mechanism {
        Interposition::None | Interposition::Seccomp => SandboxSpec::new("native-plain"),
        Interposition::Hfi => {
            let code = ImplicitCodeRegion::new(CODE_BASE, 0xFFFF, true).expect("aligned code");
            SandboxSpec::new("native-interposed")
                .slot(0, Region::Code(code))
                .require_enter()
                .interposed()
                .clobbers(&[0, 6, 14])
        }
    }
}

/// Builds the open/read/close loop. Under [`Interposition::Hfi`] the loop
/// body runs inside a native sandbox whose exit handler services the
/// syscall and re-enters.
pub fn benchmark_program(iterations: u64, mechanism: Interposition) -> hfi_sim::Program {
    let mut asm = ProgramBuilder::new(CODE_BASE);
    let iter = Reg(5);
    let sysno = Reg(0);

    match mechanism {
        Interposition::None | Interposition::Seccomp => {
            asm.movi(iter, 0);
            let top = asm.label_here("top");
            for call in [2i64, 0, 3] {
                // open / read / close
                asm.movi(sysno, call + 10); // OS model: any nonzero = generic call
                asm.syscall();
            }
            asm.alu_ri(hfi_sim::AluOp::Add, iter, iter, 1);
            asm.branch_i(Cond::LtU, iter, iterations as i64, top);
            asm.halt();
            asm.finish()
        }
        Interposition::Hfi => {
            // Two-pass build to learn the handler address.
            let build_once = |handler_pc: i64| {
                let mut asm = ProgramBuilder::new(CODE_BASE);
                let code =
                    ImplicitCodeRegion::new(CODE_BASE, 0xFFFF, true).expect("aligned code region");
                let handler = asm.label();
                let sandbox = asm.label();
                asm.hfi_set_region(0, Region::Code(code));
                asm.jump(sandbox);
                // --- Exit handler: runs with HFI disabled. It performs
                // the requested syscall for the sandbox, re-enters the
                // sandbox, and resumes at the interrupted PC (which HFI
                // hands the handler in r14 alongside the MSR cause).
                asm.place(handler);
                asm.mov(Reg(6), Reg(14)); // save resume pc across the call
                asm.syscall(); // the real kernel call (r0 holds the number)
                asm.hfi_reenter();
                asm.jump_ind(Reg(6));
                // --- Sandboxed code: enter once, loop syscalls inside.
                asm.place(sandbox);
                asm.movi(iter, 0);
                asm.hfi_enter(SandboxConfig::native(handler_pc as u64));
                let top = asm.label_here("top");
                for call in [2i64, 0, 3] {
                    asm.movi(sysno, call + 10);
                    asm.syscall(); // redirect -> handler -> reenter -> resume
                }
                asm.alu_ri(hfi_sim::AluOp::Add, iter, iter, 1);
                asm.branch_i(Cond::LtU, iter, iterations as i64, top);
                // The benchmark ends here; a real runtime would hfi_exit
                // to the handler and dispatch on the MSR cause. Halting
                // in place keeps the measured loop identical across
                // mechanisms.
                asm.halt();
                (asm.resolved(handler).expect("handler placed"), asm.finish())
            };
            let (h_idx, first) = build_once(CODE_BASE as i64);
            let handler_pc = first.pc_of(h_idx) as i64;
            let (_, second) = build_once(handler_pc);
            second
        }
    }
}

/// Runs the open/read/close benchmark (`iterations` iterations of 3
/// syscalls) under `mechanism`.
pub fn run_benchmark(iterations: u64, mechanism: Interposition) -> InterpositionRun {
    let program = benchmark_program(iterations, mechanism);
    let mut machine = Machine::new(program);
    if mechanism == Interposition::Seccomp {
        let costs = machine.costs;
        machine.set_os(Box::new(DefaultOs {
            filter_cycles: costs.seccomp_filter_cycles,
            serviced: 0,
        }));
    }
    let result = machine.run(5_000_000_000);
    assert_eq!(
        result.stop,
        Stop::Halted,
        "{mechanism:?} benchmark must halt"
    );
    InterpositionRun {
        mechanism,
        cycles: result.cycles,
        syscalls: result.stats.syscalls_to_os,
        result,
    }
}

/// Convenience: Seccomp overhead relative to HFI interposition (the
/// paper reports ≈2.1%).
pub fn seccomp_overhead_vs_hfi(iterations: u64) -> f64 {
    let hfi = run_benchmark(iterations, Interposition::Hfi);
    let seccomp = run_benchmark(iterations, Interposition::Seccomp);
    seccomp.cycles as f64 / hfi.cycles as f64 - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_programs_pass_static_verification() {
        use std::sync::Arc;
        for mechanism in [
            Interposition::None,
            Interposition::Seccomp,
            Interposition::Hfi,
        ] {
            let program = Arc::new(benchmark_program(20, mechanism));
            let spec = interposition_spec(mechanism);
            let result = hfi_verify::verify_program(&program, &spec);
            assert!(
                result.is_ok(),
                "{mechanism:?} benchmark failed verification: {:?}",
                result.err()
            );
        }
    }

    #[test]
    fn hfi_interposes_every_sandbox_syscall() {
        let run = run_benchmark(50, Interposition::Hfi);
        // Each iteration: 3 sandbox syscalls redirected, 3 serviced by
        // the handler outside the sandbox.
        assert_eq!(run.result.stats.syscalls_redirected, 150);
        assert_eq!(run.result.stats.syscalls_to_os, 150);
    }

    #[test]
    fn seccomp_costs_a_few_percent_over_hfi() {
        let overhead = seccomp_overhead_vs_hfi(200);
        assert!(
            overhead > 0.005 && overhead < 0.10,
            "expected ≈2% Seccomp overhead, got {:.2}%",
            overhead * 100.0
        );
    }

    #[test]
    fn baseline_is_cheapest() {
        let baseline = run_benchmark(100, Interposition::None);
        let hfi = run_benchmark(100, Interposition::Hfi);
        assert!(baseline.cycles < hfi.cycles);
    }
}
