//! hfi-serve: a sharded, multi-tenant sandbox-serving engine over the
//! HFI executor tiers.
//!
//! The FaaS density experiments in `hfi-faas` *model* the paper's
//! §6.3.2 claim — HFI sandboxes are cheap enough to tear down and
//! re-provision that a host can pack tens of thousands of them where a
//! guard-page runtime exhausts its address space at a few hundred.
//! This crate *measures* the serving side of that claim end to end:
//!
//! * [`pool`] — warm-instance pools keyed by tenant, with
//!   generation-stamped reuse, verify-before-admit, and address-space
//!   charging against the real [`hfi_wasm::runtime::SandboxRuntime`]
//!   (GuardPages pays the 8 GiB reservation per live instance, HFI
//!   pays only its heap);
//! * [`sched`] — a hand-rolled work-stealing scheduler (one worker per
//!   shard, FIFO for owners, LIFO stealing) multiplexing tenants over
//!   the executor tiers, stamping every completion with queueing,
//!   setup, and service nanoseconds;
//! * [`loadgen`] — a deterministic open-loop arrival generator
//!   (seeded Poisson and two-state MMPP over virtual time), so the
//!   offered-load sweeps in `serve_bench` are reproducible
//!   byte-for-byte from a seed.
//!
//! The `serve_bench` binary in `hfi-bench` drives all three and
//! commits `BENCH_serving.json`; the `serving-smoke` CI job gates its
//! p99 and throughput against the committed baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod loadgen;
pub mod pool;
pub mod sched;

pub use loadgen::{schedule, Arrival, ArrivalProcess};
pub use pool::{
    select_cheapest_scheme, AdmitPolicy, Lease, PoolError, PoolStats, TenantSource, TenantSpec,
    Tier, WarmInstance, WarmPools,
};
pub use sched::{Completion, Outcome, Request, Scheduler};

// The whole serving engine is shared across worker threads; keep the
// Send/Sync obligations visible at compile time.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<WarmPools>();
    const fn assert_send<T: Send>() {}
    assert_send::<Request>();
    assert_send::<Completion>();
};
