//! Deterministic open-loop load generation.
//!
//! Arrivals are drawn entirely in *virtual time* from a seeded RNG:
//! the schedule for a given `(seed, process, duration, tenants)` tuple
//! is a pure function, byte-identical across runs and machines. The
//! serving harness maps virtual nanoseconds onto host monotonic time
//! only at the edges — when pacing submission and when timestamping
//! completions — so no wall-clock randomness ever enters the logic.
//!
//! Open-loop means arrivals do not wait for completions: a request's
//! latency includes every nanosecond it queued behind a saturated
//! scheduler, which is what makes offered-load sweeps honest (a
//! closed-loop generator self-throttles and hides queueing collapse).

use hfi_util::Rng;

/// An arrival process over virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at a constant offered rate
    /// (requests/second): exponential inter-arrival gaps via inverse
    /// CDF.
    Poisson {
        /// Offered load in requests per second.
        rate_rps: f64,
    },
    /// A two-state Markov-modulated Poisson process: dwell in a base
    /// and a burst phase (exponentially distributed dwell times),
    /// emitting Poisson arrivals at the phase's rate. Models the bursty
    /// tails FaaS front ends actually see.
    Mmpp {
        /// Offered load of the quiet phase, requests per second.
        base_rps: f64,
        /// Offered load of the burst phase, requests per second.
        burst_rps: f64,
        /// Mean dwell time in either phase, virtual nanoseconds.
        mean_phase_ns: u64,
    },
}

/// One scheduled arrival: a tenant's request lands at `at_ns` of
/// virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Virtual arrival time, nanoseconds from the schedule epoch.
    pub at_ns: u64,
    /// Index into the serving run's tenant table.
    pub tenant: usize,
}

/// Draws an exponential variate with the given mean via inverse CDF.
/// `Rng::f64` is uniform on `[0, 1)`, so `1 - u` is in `(0, 1]` and the
/// logarithm is finite.
fn exponential(rng: &mut Rng, mean: f64) -> f64 {
    -(1.0 - rng.f64()).ln() * mean
}

/// Generates the full arrival schedule for `duration_ns` of virtual
/// time: each arrival gets a uniformly random tenant from
/// `[0, tenants)`. Arrivals are strictly ordered by construction
/// (inter-arrival gaps are at least 1 ns).
///
/// # Panics
///
/// Panics when `tenants` is zero or a rate is not positive.
pub fn schedule(
    seed: u64,
    process: ArrivalProcess,
    duration_ns: u64,
    tenants: usize,
) -> Vec<Arrival> {
    assert!(tenants > 0, "a schedule needs at least one tenant");
    let mut rng = Rng::new(seed);
    let mut arrivals = Vec::new();
    let mut now_ns = 0u64;
    match process {
        ArrivalProcess::Poisson { rate_rps } => {
            assert!(rate_rps > 0.0, "offered load must be positive");
            let mean_gap_ns = 1e9 / rate_rps;
            loop {
                now_ns += (exponential(&mut rng, mean_gap_ns) as u64).max(1);
                if now_ns >= duration_ns {
                    break;
                }
                arrivals.push(Arrival {
                    at_ns: now_ns,
                    tenant: rng.below(tenants as u64) as usize,
                });
            }
        }
        ArrivalProcess::Mmpp {
            base_rps,
            burst_rps,
            mean_phase_ns,
        } => {
            assert!(
                base_rps > 0.0 && burst_rps > 0.0,
                "offered loads must be positive"
            );
            assert!(mean_phase_ns > 0, "phase dwell must be positive");
            let mut burst = false;
            let mut phase_end_ns = (exponential(&mut rng, mean_phase_ns as f64) as u64).max(1);
            loop {
                let rate = if burst { burst_rps } else { base_rps };
                let gap = (exponential(&mut rng, 1e9 / rate) as u64).max(1);
                // Phase switches between arrivals: if the gap crosses
                // the phase boundary, jump to the boundary and redraw in
                // the new phase (memorylessness makes the redraw exact).
                if now_ns + gap >= phase_end_ns {
                    now_ns = phase_end_ns;
                    phase_end_ns =
                        now_ns + (exponential(&mut rng, mean_phase_ns as f64) as u64).max(1);
                    burst = !burst;
                    if now_ns >= duration_ns {
                        break;
                    }
                    continue;
                }
                now_ns += gap;
                if now_ns >= duration_ns {
                    break;
                }
                arrivals.push(Arrival {
                    at_ns: now_ns,
                    tenant: rng.below(tenants as u64) as usize,
                });
            }
        }
    }
    arrivals
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_and_ordered() {
        let p = ArrivalProcess::Poisson { rate_rps: 1000.0 };
        let a = schedule(0xFEED, p, 1_000_000_000, 7);
        let b = schedule(0xFEED, p, 1_000_000_000, 7);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].at_ns < w[1].at_ns));
        assert!(a.iter().all(|x| x.tenant < 7 && x.at_ns < 1_000_000_000));
        // ~1000 arrivals expected over one virtual second.
        assert!((700..1300).contains(&a.len()), "{} arrivals", a.len());
        assert_ne!(a, schedule(0xFEEE, p, 1_000_000_000, 7));
    }

    #[test]
    fn mmpp_runs_hotter_than_its_base_rate() {
        let mmpp = ArrivalProcess::Mmpp {
            base_rps: 200.0,
            burst_rps: 4000.0,
            mean_phase_ns: 50_000_000,
        };
        let arrivals = schedule(0xB00, mmpp, 2_000_000_000, 3);
        let poisson = schedule(
            0xB00,
            ArrivalProcess::Poisson { rate_rps: 200.0 },
            2_000_000_000,
            3,
        );
        assert!(
            arrivals.len() > poisson.len() * 3 / 2,
            "bursts should lift the aggregate rate: {} vs {}",
            arrivals.len(),
            poisson.len()
        );
        assert!(arrivals.windows(2).all(|w| w[0].at_ns < w[1].at_ns));
    }
}
