//! Warm-instance pools with generation-based reuse and verify-before-
//! admit, charged against a real [`SandboxRuntime`] address space.
//!
//! One pool entry per tenant holds ready-to-run executor instances. A
//! **warm hit** pops an instance whose program, decode plan, and fusion
//! overlay are already resolved and whose heap image is already loaded
//! — the request pays a queue pop. A **cold build** pays the tenant's
//! compile (memoized process-wide by the caller-supplied compile
//! function, so only the first tenant of a kernel × options pair pays
//! the real compiler), the verify-before-admit check, executor
//! construction, and the heap image. This is `hfi-faas::lifecycle`'s
//! cheap-teardown story *measured*: teardown of a reused instance is
//! [`hfi_sim::Functional::reset`] plus re-preparing the heap, not a
//! recompile.
//!
//! Address-space accounting is not re-modeled here: every live instance
//! holds a real sandbox in a per-scheme [`SandboxRuntime`], so a
//! GuardPages instance charges the full 8 GiB guard reservation and an
//! HFI instance charges only its heap — the §6.3.2 density limit
//! emerges from the same runtime `hfi-faas` measures. Crucially, that
//! runtime never returns a reservation to the allocator (`teardown`
//! discards pages, not address space — the paper's point about VA
//! exhaustion), so when a cold build cannot reserve address space the
//! pool *recycles*: it takes the least-recently-used idle instance of
//! the same scheme and repurposes its live sandbox slot for the new
//! tenant — fresh engine, fresh heap image, same reservation. At the
//! cap, a scheme serves its whole tenant set through a fixed set of
//! resident slots; the churn shows up as a depressed warm-hit rate.
//!
//! Every checkout stamps the instance's **generation** (reuse count).
//! Reuse safety — a tenant must never observe a prior tenant's memory,
//! register, or HFI region state — rests on `Functional::reset` and is
//! pinned by the `warm_pool_safety` property test: fresh-vs-reused
//! counters and final memory must be bit-identical.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use hfi_sim::{Executor, Functional, Machine, Program};
use hfi_wasm::compiler::{CompileOptions, CompiledKernel, Isolation};
use hfi_wasm::kernels::Kernel;
use hfi_wasm::runtime::{SandboxId, SandboxRuntime};
use hfi_wasm::TransitionScheme;

/// Picks the cheapest [`TransitionScheme`] the static verifier admits
/// for `kernel` under `base`, compiling through the caller's memoizing
/// entry point (so per-scheme probe compiles are shared with the
/// serving pools). Schemes are tried cheapest-first; the zero-cost
/// scheme only wins when its elision proof goes through, so tenants
/// that mutate guard state in-sandbox organically fall back to a taxed
/// scheme. Non-HFI (or unsandboxed) options are returned unchanged —
/// there is no transition to price.
pub fn select_cheapest_scheme(
    kernel: &Kernel,
    base: &CompileOptions,
    compile: fn(&Kernel, &CompileOptions) -> CompiledKernel,
) -> CompileOptions {
    if base.isolation != Isolation::Hfi || !base.sandboxed {
        return *base;
    }
    for scheme in TransitionScheme::ALL {
        let mut opts = *base;
        opts.scheme = scheme;
        if compile(kernel, &opts).verified == Some(true) {
            return opts;
        }
    }
    // Nothing proved: keep the base options and let the admission gate
    // decide (RequireVerified will refuse the tenant).
    *base
}

/// Which executor tier serves a tenant's requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// The cycle-accurate `Machine`.
    Cycle,
    /// The per-op reference functional interpreter.
    Functional,
    /// The block-threaded superinstruction tier.
    Fused,
}

impl Tier {
    /// Stable label for telemetry.
    pub fn as_str(self) -> &'static str {
        match self {
            Tier::Cycle => "cycle",
            Tier::Functional => "functional",
            Tier::Fused => "fused",
        }
    }
}

/// Admission policy for the verify-before-admit gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitPolicy {
    /// Only tenants whose program carries a positive verifier verdict
    /// (`verified == Some(true)`) are admitted.
    RequireVerified,
    /// Tenants proven safe are admitted, tenants *rejected* by the
    /// verifier (`Some(false)`) are refused, and tenants whose strategy
    /// publishes no statically checkable contract (`None`, e.g. guard
    /// pages) are exempt — their isolation story is the MMU, not a
    /// proof.
    VerifiedOrExempt,
}

impl AdmitPolicy {
    /// Applies the policy to a verifier verdict.
    pub fn admits(self, verified: Option<bool>) -> bool {
        match self {
            AdmitPolicy::RequireVerified => verified == Some(true),
            AdmitPolicy::VerifiedOrExempt => verified != Some(false),
        }
    }
}

/// Where a tenant's program comes from.
pub enum TenantSource {
    /// A benchmark kernel compiled on (first) admission via the
    /// caller-supplied compile function — pass
    /// `hfi_bench::compile_cached` so all tenants of one kernel ×
    /// options pair share a single `Arc<Program>` and its memoized
    /// plans.
    Kernel {
        /// The kernel to compile.
        kernel: Kernel,
        /// Compile options (isolation scheme, layout).
        opts: CompileOptions,
        /// The (memoizing) compiler entry point.
        compile: fn(&Kernel, &CompileOptions) -> CompiledKernel,
    },
    /// A pre-compiled program (e.g. a chaos-campaign cell) with its
    /// verifier verdict supplied by the caller.
    Program {
        /// The runnable program.
        program: Arc<Program>,
        /// Verifier verdict for the admission gate.
        verified: Option<bool>,
    },
}

/// One tenant: a named sandbox owner with a program source, an
/// isolation scheme (for address-space charging), a serving tier, and a
/// heap image.
pub struct TenantSpec {
    /// Display name (`kernel#replica` in the serving benchmark).
    pub name: String,
    /// Isolation scheme, decides address-space charging and teardown
    /// policy.
    pub isolation: Isolation,
    /// Executor tier serving this tenant.
    pub tier: Tier,
    /// Program source.
    pub source: TenantSource,
    /// Heap base address for loading `heap_init`.
    pub heap_base: u64,
    /// Initial heap contents as (address offset, bytes) pairs.
    pub heap_init: Vec<(u64, Vec<u8>)>,
    /// Expected architectural result (`r0` after halt), when known.
    pub expected: Option<u64>,
}

impl TenantSpec {
    /// A tenant serving `kernel` under `opts` on `tier`; `compile`
    /// should be a memoizing entry point (`hfi_bench::compile_cached`).
    pub fn from_kernel(
        name: String,
        kernel: Kernel,
        opts: CompileOptions,
        tier: Tier,
        compile: fn(&Kernel, &CompileOptions) -> CompiledKernel,
    ) -> Self {
        let heap_base = opts.heap_base;
        let heap_init = kernel
            .heap_init
            .iter()
            .map(|(off, bytes)| (*off as u64, bytes.clone()))
            .collect();
        let expected = Some(kernel.expected);
        TenantSpec {
            name,
            isolation: opts.isolation,
            tier,
            source: TenantSource::Kernel {
                kernel,
                opts,
                compile,
            },
            heap_base,
            heap_init,
            expected,
        }
    }

    /// A tenant serving `kernel` under the *cheapest verifier-proven*
    /// transition scheme (see [`select_cheapest_scheme`]): the
    /// per-tenant selection rule the serving benchmark's `--scheme auto`
    /// mode uses.
    pub fn from_kernel_cheapest_scheme(
        name: String,
        kernel: Kernel,
        base: CompileOptions,
        tier: Tier,
        compile: fn(&Kernel, &CompileOptions) -> CompiledKernel,
    ) -> Self {
        let opts = select_cheapest_scheme(&kernel, &base, compile);
        Self::from_kernel(name, kernel, opts, tier, compile)
    }

    /// The transition scheme this tenant's sandbox transitions use, when
    /// the tenant is kernel-sourced (pre-compiled program tenants carry
    /// no compile options to read it from).
    pub fn scheme(&self) -> Option<TransitionScheme> {
        match &self.source {
            TenantSource::Kernel { opts, .. } => Some(opts.scheme),
            TenantSource::Program { .. } => None,
        }
    }

    /// A tenant serving a pre-compiled program.
    #[allow(clippy::too_many_arguments)]
    pub fn from_program(
        name: String,
        program: Arc<Program>,
        verified: Option<bool>,
        isolation: Isolation,
        tier: Tier,
        heap_base: u64,
        heap_init: Vec<(u64, Vec<u8>)>,
        expected: Option<u64>,
    ) -> Self {
        TenantSpec {
            name,
            isolation,
            tier,
            source: TenantSource::Program { program, verified },
            heap_base,
            heap_init,
            expected,
        }
    }
}

/// The executor held by a warm instance.
enum Engine {
    Cycle(Box<Machine>),
    Func(Box<Functional>),
}

impl Engine {
    fn executor_mut(&mut self) -> &mut dyn Executor {
        match self {
            Engine::Cycle(m) => m.as_mut(),
            Engine::Func(f) => f.as_mut(),
        }
    }
}

/// A live, prepared sandbox instance owned by a pool (or leased out).
pub struct WarmInstance {
    engine: Engine,
    program: Arc<Program>,
    sandbox: SandboxId,
    isolation: Isolation,
    generation: u64,
}

impl WarmInstance {
    /// The executor, ready to run (heap image already prepared).
    pub fn executor_mut(&mut self) -> &mut dyn Executor {
        self.engine.executor_mut()
    }

    /// Direct access to the functional engine (tier `Functional` or
    /// `Fused`), for state inspection in tests.
    pub fn functional_mut(&mut self) -> Option<&mut Functional> {
        match &mut self.engine {
            Engine::Func(f) => Some(f.as_mut()),
            Engine::Cycle(_) => None,
        }
    }

    /// How many times this instance has been leased.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

/// A checked-out instance: run it, then hand it back with
/// [`WarmPools::release`] (or drop it via [`WarmPools::discard`]).
pub struct Lease {
    /// Tenant index this lease serves.
    pub tenant: usize,
    /// True when the checkout was a warm hit.
    pub warm: bool,
    /// The instance (leases expose the executor directly).
    pub instance: WarmInstance,
}

/// Why a checkout failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolError {
    /// The verify-before-admit gate refused the tenant.
    AdmissionDenied {
        /// The verifier verdict the policy rejected.
        verified: Option<bool>,
    },
    /// The scheme's address space is exhausted and no idle instance of
    /// that scheme was available to recycle (every slot is leased).
    AtCapacity,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::AdmissionDenied { verified } => {
                write!(f, "admission denied (verified: {verified:?})")
            }
            PoolError::AtCapacity => f.write_str("address space at capacity"),
        }
    }
}

impl std::error::Error for PoolError {}

/// Counters the pool accumulates across its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Checkouts satisfied by an idle warm instance of the same tenant.
    pub warm_hits: u64,
    /// Checkouts that built a new instance (fresh slot or recycled).
    pub cold_builds: u64,
    /// Cold builds that repurposed another tenant's idle slot because
    /// the scheme's address space was exhausted.
    pub recycled: u64,
    /// Tenants refused by the admission gate.
    pub admission_rejects: u64,
    /// High-water mark of live instances across all schemes.
    pub peak_resident: u64,
}

struct PoolsState {
    spaces: HashMap<Isolation, SandboxRuntime>,
    idle: Vec<Vec<WarmInstance>>,
    /// Approximate LRU over idle instances: tenant indices in release
    /// order; stale entries (empty idle lists) are skipped on recycle.
    lru: VecDeque<usize>,
    stats: PoolStats,
}

/// The warm-instance pools of one serving engine (shared across shard
/// workers behind one mutex; every critical section is queue surgery or
/// modeled sandbox accounting, never a kernel run).
pub struct WarmPools {
    tenants: Arc<Vec<TenantSpec>>,
    va_bits: u32,
    max_heap: u64,
    admit: AdmitPolicy,
    state: Mutex<PoolsState>,
}

impl WarmPools {
    /// Empty pools over `tenants`, charging each scheme's instances
    /// against a `va_bits`-bit address space with `max_heap`-byte heap
    /// reservations.
    pub fn new(
        tenants: Arc<Vec<TenantSpec>>,
        va_bits: u32,
        max_heap: u64,
        admit: AdmitPolicy,
    ) -> Self {
        let idle = tenants.iter().map(|_| Vec::new()).collect();
        WarmPools {
            tenants,
            va_bits,
            max_heap,
            admit,
            state: Mutex::new(PoolsState {
                spaces: HashMap::new(),
                idle,
                lru: VecDeque::new(),
                stats: PoolStats::default(),
            }),
        }
    }

    /// The tenant table the pools serve.
    pub fn tenants(&self) -> &Arc<Vec<TenantSpec>> {
        &self.tenants
    }

    /// Counters so far.
    pub fn stats(&self) -> PoolStats {
        self.state.lock().expect("pool unpoisoned").stats
    }

    /// Live instances (idle + leased) across all schemes.
    pub fn resident(&self) -> u64 {
        let state = self.state.lock().expect("pool unpoisoned");
        state
            .spaces
            .values()
            .map(|s| s.live_count() as u64)
            .sum::<u64>()
    }

    /// Resolves a tenant's program and verifier verdict (compiling via
    /// the tenant's memoizing compile function if needed).
    fn resolve(&self, spec: &TenantSpec) -> (Arc<Program>, Option<bool>) {
        match &spec.source {
            TenantSource::Kernel {
                kernel,
                opts,
                compile,
            } => {
                let compiled = compile(kernel, opts);
                (compiled.program, compiled.verified)
            }
            TenantSource::Program { program, verified } => (Arc::clone(program), *verified),
        }
    }

    /// Takes the least-recently-used idle instance of `isolation` so
    /// its live sandbox slot can be repurposed. Returns `None` when no
    /// instance of that scheme is idle. LRU entries for other schemes
    /// (or already-drained tenants) are rotated to the back, not lost.
    fn recycle_idle(state: &mut PoolsState, isolation: Isolation) -> Option<WarmInstance> {
        for _ in 0..state.lru.len() {
            let tenant = state.lru.pop_front()?;
            match state.idle[tenant].last() {
                Some(candidate) if candidate.isolation == isolation => {
                    return state.idle[tenant].pop();
                }
                Some(_) => state.lru.push_back(tenant),
                None => {} // stale entry: drop it
            }
        }
        None
    }

    /// Reserves a fresh sandbox for `isolation`, or — when the scheme's
    /// address space is exhausted (reservations are never returned to
    /// the allocator) — recycles an idle instance's slot.
    fn reserve(
        &self,
        state: &mut PoolsState,
        isolation: Isolation,
    ) -> Result<(SandboxId, bool), PoolError> {
        let va_bits = self.va_bits;
        let max_heap = self.max_heap;
        let space = state.spaces.entry(isolation).or_insert_with(|| {
            let mut runtime = SandboxRuntime::new(isolation, va_bits);
            runtime.set_max_heap(max_heap);
            runtime
        });
        match space.create_sandbox(16) {
            Ok(id) => {
                let resident: u64 = state
                    .spaces
                    .values()
                    .map(|s| s.live_count() as u64)
                    .sum::<u64>();
                state.stats.peak_resident = state.stats.peak_resident.max(resident);
                Ok((id, false))
            }
            Err(_) => match Self::recycle_idle(state, isolation) {
                Some(victim) => {
                    state.stats.recycled += 1;
                    Ok((victim.sandbox, true))
                }
                None => Err(PoolError::AtCapacity),
            },
        }
    }

    /// Checks out an instance for `tenant`: a warm pop when one is
    /// idle, otherwise admission + cold build.
    ///
    /// # Errors
    ///
    /// [`PoolError::AdmissionDenied`] when the verify-before-admit gate
    /// refuses the tenant, [`PoolError::AtCapacity`] when the scheme's
    /// address space is exhausted and nothing is idle to evict.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is out of range.
    pub fn checkout(&self, tenant: usize) -> Result<Lease, PoolError> {
        {
            let mut state = self.state.lock().expect("pool unpoisoned");
            if let Some(mut instance) = state.idle[tenant].pop() {
                state.stats.warm_hits += 1;
                instance.generation += 1;
                return Ok(Lease {
                    tenant,
                    warm: true,
                    instance,
                });
            }
        }
        // Cold path: compile/resolve and verify-admit outside the lock
        // (the compile function memoizes process-wide), then reserve
        // address space under the lock, then build the executor and
        // load the heap image outside it again.
        let spec = &self.tenants[tenant];
        let (program, verified) = self.resolve(spec);
        if !self.admit.admits(verified) {
            let mut state = self.state.lock().expect("pool unpoisoned");
            state.stats.admission_rejects += 1;
            return Err(PoolError::AdmissionDenied { verified });
        }
        let sandbox = {
            let mut state = self.state.lock().expect("pool unpoisoned");
            let (sandbox, _recycled) = self.reserve(&mut state, spec.isolation)?;
            state.stats.cold_builds += 1;
            sandbox
        };
        let mut instance = WarmInstance {
            engine: build_engine(spec.tier, &program),
            program,
            sandbox,
            isolation: spec.isolation,
            generation: 0,
        };
        prepare_heap(spec, &mut instance);
        Ok(Lease {
            tenant,
            warm: false,
            instance,
        })
    }

    /// Returns a leased instance to its pool: per-tenant state is reset
    /// (the measured cheap teardown) and the heap image re-prepared, so
    /// the next checkout is run-ready.
    pub fn release(&self, mut lease: Lease) {
        let spec = &self.tenants[lease.tenant];
        match &mut lease.instance.engine {
            Engine::Func(f) => f.reset(),
            // The cycle machine's microarchitectural state (caches,
            // predictors, ROB) has no reset seam; rebuild it from the
            // shared program — still no recompile, no re-decode.
            Engine::Cycle(m) => **m = Machine::new(Arc::clone(&lease.instance.program)),
        }
        prepare_heap(spec, &mut lease.instance);
        let mut state = self.state.lock().expect("pool unpoisoned");
        state.idle[lease.tenant].push(lease.instance);
        state.lru.push_back(lease.tenant);
    }

    /// Drops a leased instance entirely, releasing its address space
    /// under the scheme's teardown policy.
    pub fn discard(&self, lease: Lease) {
        let spec = &self.tenants[lease.tenant];
        let mut state = self.state.lock().expect("pool unpoisoned");
        if let Some(space) = state.spaces.get_mut(&spec.isolation) {
            let _ = space.teardown(lease.instance.sandbox);
        }
    }

    /// Pre-warms one instance for `tenant` (cold build + immediate
    /// release). Returns whether the build fit in the address space.
    ///
    /// # Errors
    ///
    /// Propagates [`WarmPools::checkout`] errors.
    pub fn provision(&self, tenant: usize) -> Result<(), PoolError> {
        let lease = self.checkout(tenant)?;
        self.release(lease);
        Ok(())
    }
}

fn build_engine(tier: Tier, program: &Arc<Program>) -> Engine {
    match tier {
        Tier::Cycle => Engine::Cycle(Box::new(Machine::new(Arc::clone(program)))),
        Tier::Functional => Engine::Func(Box::new(Functional::new(Arc::clone(program)))),
        Tier::Fused => Engine::Func(Box::new(Functional::new_fused(Arc::clone(program)))),
    }
}

fn prepare_heap(spec: &TenantSpec, instance: &mut WarmInstance) {
    for (off, bytes) in &spec.heap_init {
        instance
            .engine
            .executor_mut()
            .prepare(spec.heap_base + off, bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfi_sim::{ProgramBuilder, Reg, Stop};

    fn tiny_program(result: u64) -> Arc<Program> {
        let mut asm = ProgramBuilder::new(0x1000);
        asm.movi(Reg(0), result as i64);
        asm.halt();
        Arc::new(asm.finish())
    }

    fn tenant(name: &str, isolation: Isolation, verified: Option<bool>) -> TenantSpec {
        TenantSpec::from_program(
            name.to_string(),
            tiny_program(42),
            verified,
            isolation,
            Tier::Functional,
            0x1000_0000,
            Vec::new(),
            Some(42),
        )
    }

    fn pools(tenants: Vec<TenantSpec>, va_bits: u32, admit: AdmitPolicy) -> WarmPools {
        WarmPools::new(Arc::new(tenants), va_bits, 64 << 20, admit)
    }

    #[test]
    fn cheapest_scheme_selection_is_per_tenant_and_admissible() {
        fn compile_kernel(k: &Kernel, o: &CompileOptions) -> CompiledKernel {
            hfi_wasm::compile(&k.func, o)
        }
        // A pure compute kernel proves the elision and gets zero-cost
        // transitions; a growing kernel mutates guard state in-sandbox
        // and falls back to the cheapest taxed scheme. Both admit.
        let pure = hfi_wasm::sightglass_suite(6)
            .into_iter()
            .next()
            .expect("suite nonempty");
        let growing = hfi_wasm::spec_suite(4)
            .into_iter()
            .find(|k| {
                let opts = CompileOptions::hfi_with_scheme(hfi_wasm::TransitionScheme::ZeroCost);
                compile_kernel(k, &opts).verified == Some(false)
            })
            .expect("some SPEC-like kernel grows memory in-sandbox");
        let base = CompileOptions::new(Isolation::Hfi);
        let tenants = vec![
            TenantSpec::from_kernel_cheapest_scheme(
                "pure".into(),
                pure,
                base,
                Tier::Functional,
                compile_kernel,
            ),
            TenantSpec::from_kernel_cheapest_scheme(
                "growing".into(),
                growing,
                base,
                Tier::Functional,
                compile_kernel,
            ),
        ];
        assert_eq!(
            tenants[0].scheme(),
            Some(hfi_wasm::TransitionScheme::ZeroCost)
        );
        assert_eq!(
            tenants[1].scheme(),
            Some(hfi_wasm::TransitionScheme::HfiUnserialized)
        );
        let pools = pools(tenants, 42, AdmitPolicy::RequireVerified);
        for tenant in 0..2 {
            let lease = pools.checkout(tenant).expect("selected schemes admit");
            pools.release(lease);
        }
        assert_eq!(pools.stats().admission_rejects, 0);
    }

    #[test]
    fn warm_hit_reuses_the_instance_and_bumps_its_generation() {
        let pools = pools(
            vec![tenant("a", Isolation::Hfi, Some(true))],
            42,
            AdmitPolicy::RequireVerified,
        );
        let mut lease = pools.checkout(0).expect("cold build fits");
        assert!(!lease.warm);
        assert_eq!(lease.instance.generation(), 0);
        assert_eq!(lease.instance.executor_mut().run(1_000), Stop::Halted);
        assert_eq!(lease.instance.executor_mut().regs()[0], 42);
        pools.release(lease);

        let mut lease = pools.checkout(0).expect("warm pop");
        assert!(lease.warm);
        assert_eq!(lease.instance.generation(), 1);
        assert_eq!(lease.instance.executor_mut().run(1_000), Stop::Halted);
        assert_eq!(lease.instance.executor_mut().regs()[0], 42);
        pools.release(lease);

        let stats = pools.stats();
        assert_eq!(stats.cold_builds, 1);
        assert_eq!(stats.warm_hits, 1);
        assert_eq!(stats.recycled, 0);
        assert_eq!(pools.resident(), 1);
    }

    #[test]
    fn admission_policies_gate_on_the_verifier_verdict() {
        let pools = pools(
            vec![
                tenant("proven", Isolation::Hfi, Some(true)),
                tenant("rejected", Isolation::Hfi, Some(false)),
                tenant("exempt", Isolation::GuardPages, None),
            ],
            42,
            AdmitPolicy::RequireVerified,
        );
        assert!(pools.checkout(0).is_ok());
        assert_eq!(
            pools.checkout(1).err(),
            Some(PoolError::AdmissionDenied {
                verified: Some(false)
            })
        );
        assert_eq!(
            pools.checkout(2).err(),
            Some(PoolError::AdmissionDenied { verified: None }),
            "RequireVerified refuses contract-free strategies"
        );
        assert_eq!(pools.stats().admission_rejects, 2);

        let exempting = self::pools(
            vec![
                tenant("rejected", Isolation::Hfi, Some(false)),
                tenant("exempt", Isolation::GuardPages, None),
            ],
            42,
            AdmitPolicy::VerifiedOrExempt,
        );
        assert!(exempting.checkout(0).is_err(), "a rejection always gates");
        assert!(exempting.checkout(1).is_ok(), "guard pages are exempt");
    }

    #[test]
    fn exhausted_address_space_recycles_lru_idle_slots() {
        // 35-bit address space = 32 GiB: room for four 8 GiB guard
        // reservations, and reservations are never returned.
        let tenants: Vec<TenantSpec> = (0..6)
            .map(|i| tenant(&format!("t{i}"), Isolation::GuardPages, None))
            .collect();
        let pools = pools(tenants, 35, AdmitPolicy::VerifiedOrExempt);
        for i in 0..6 {
            pools.provision(i).expect("recycling absorbs the overflow");
        }
        let stats = pools.stats();
        let resident = pools.resident();
        assert!(
            resident <= 4,
            "32 GiB holds at most four guard reservations, got {resident}"
        );
        assert_eq!(stats.cold_builds, 6);
        assert_eq!(
            stats.recycled,
            6 - resident,
            "every over-capacity build recycled an idle slot"
        );
        assert_eq!(stats.peak_resident, resident);

        // The last-provisioned tenant is still warm; the first was
        // recycled away and needs a (recycling) cold build again.
        let lease = pools.checkout(5).expect("checkout");
        assert!(lease.warm);
        pools.release(lease);
        let lease = pools.checkout(0).expect("checkout");
        assert!(!lease.warm, "tenant 0's slot was recycled away");
        pools.release(lease);
    }

    #[test]
    fn all_slots_leased_is_at_capacity() {
        let tenants: Vec<TenantSpec> = (0..8)
            .map(|i| tenant(&format!("t{i}"), Isolation::GuardPages, None))
            .collect();
        // 35 bits = 32 GiB: at most four 8 GiB guard reservations, so
        // holding every lease must hit the capacity wall within eight
        // checkouts — recycling needs an *idle* instance.
        let pools = pools(tenants, 35, AdmitPolicy::VerifiedOrExempt);
        let mut leases = Vec::new();
        let mut blocked_tenant = None;
        for i in 0..8 {
            match pools.checkout(i) {
                Ok(lease) => leases.push(lease),
                Err(PoolError::AtCapacity) => {
                    blocked_tenant = Some(i);
                    break;
                }
                Err(e) => panic!("unexpected checkout error: {e}"),
            }
        }
        let blocked = blocked_tenant.expect("every slot leased must exhaust the space");
        // Releasing one instance makes its slot recyclable again.
        pools.release(leases.pop().expect("at least one lease"));
        let lease = pools.checkout(blocked).expect("recycles the freed slot");
        assert!(!lease.warm);
        assert!(pools.stats().recycled >= 1);
    }

    #[test]
    fn release_resets_tenant_state_for_the_next_checkout() {
        let mut spec = tenant("a", Isolation::Hfi, Some(true));
        spec.heap_init = vec![(0, vec![7, 7, 7])];
        let pools = pools(vec![spec], 42, AdmitPolicy::RequireVerified);
        let mut lease = pools.checkout(0).expect("cold");
        // Scribble over guest state mid-lease.
        let functional = lease.instance.functional_mut().expect("functional tier");
        functional.mem.write_bytes(0x1000_0000, &[9, 9, 9]);
        assert_eq!(functional.mem.read_bytes(0x1000_0000, 3), vec![9, 9, 9]);
        pools.release(lease);

        let mut lease = pools.checkout(0).expect("warm");
        let functional = lease.instance.functional_mut().expect("functional tier");
        assert_eq!(
            functional.mem.read_bytes(0x1000_0000, 3),
            vec![7, 7, 7],
            "reused instance must present the pristine heap image"
        );
        pools.release(lease);
    }
}
