//! A sharded, work-stealing serving scheduler over the warm pools.
//!
//! One worker thread per shard. `submit` round-robins requests across
//! shard queues; each worker drains its own shard FIFO (front) and,
//! when empty, steals from the *back* of sibling shards — FIFO for the
//! owner preserves arrival order per shard, LIFO stealing takes the
//! work least likely to be cache-warm on the victim. All of it is
//! hand-rolled on `std` primitives (`Mutex<VecDeque>`, atomics, mpsc),
//! keeping the workspace's `forbid(unsafe_code)` posture.
//!
//! Timestamps are nanoseconds since the scheduler's epoch, read from
//! the host monotonic clock only at the edges (request pickup,
//! checkout done, run done) — scheduling decisions never consume
//! wall-clock randomness, so a run's *logic* is as deterministic as
//! its inputs; only the measured latencies vary with the host.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hfi_sim::{ChaosHook, RunRecord, Stop};

use crate::pool::{PoolError, WarmPools};

/// One unit of work: run tenant `tenant`'s program once.
pub struct Request {
    /// Index into the pools' tenant table.
    pub tenant: usize,
    /// Virtual arrival time (ns since schedule epoch), echoed into the
    /// completion so queueing delay is `start_ns - arrival_ns`.
    pub arrival_ns: u64,
    /// Run budget, in the serving tier's native unit (instructions for
    /// the functional tiers, cycles for the cycle tier).
    pub limit: u64,
    /// Optional fault-injection hook, installed for this run only
    /// (functional tiers; the cycle tier has no chaos seam).
    pub chaos: Option<Box<dyn ChaosHook>>,
}

/// How a request ended.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// The run finished (any [`Stop`]); counters and `r0` attached.
    Done {
        /// Why the executor stopped.
        stop: Stop,
        /// Unified counter snapshot of the run (boxed — it is an order
        /// of magnitude larger than the other variants).
        record: Box<RunRecord>,
        /// Architectural result register.
        r0: u64,
    },
    /// The verify-before-admit gate refused the tenant.
    Rejected {
        /// The verifier verdict the admission policy rejected.
        verified: Option<bool>,
    },
    /// The scheme's address space stayed exhausted across the retry
    /// budget (every instance leased, nothing idle to evict).
    Overloaded,
}

/// One completed request with its full latency breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// Tenant index served.
    pub tenant: usize,
    /// Worker that ran the request.
    pub worker: usize,
    /// True when the request was stolen from another shard.
    pub stolen: bool,
    /// True when the checkout was a warm-pool hit.
    pub warm: bool,
    /// Reuse count of the instance that served the request.
    pub generation: u64,
    /// Virtual arrival time echoed from the request (ns).
    pub arrival_ns: u64,
    /// Host time the request was picked up (ns since scheduler epoch).
    pub start_ns: u64,
    /// Host time the run finished (ns since scheduler epoch).
    pub finish_ns: u64,
    /// Checkout cost: warm pop or cold compile+admit+build (ns).
    pub setup_ns: u64,
    /// Pure run time (ns).
    pub service_ns: u64,
    /// How the request ended.
    pub outcome: Outcome,
}

/// Retries (with a short sleep) before an `AtCapacity` checkout is
/// reported as [`Outcome::Overloaded`]; leases return quickly, so a
/// transiently exhausted pool usually clears within a few spins.
const CAPACITY_RETRIES: u32 = 32;
const CAPACITY_RETRY_SLEEP: Duration = Duration::from_micros(20);
const IDLE_SLEEP: Duration = Duration::from_micros(50);

struct Inner {
    shards: Vec<Mutex<std::collections::VecDeque<Request>>>,
    pools: Arc<WarmPools>,
    epoch: Instant,
    /// Requests submitted and not yet completed.
    pending: AtomicU64,
    /// Round-robin cursor for `submit`.
    cursor: AtomicU64,
    shutdown: AtomicBool,
}

impl Inner {
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

/// The serving scheduler: shard queues, worker threads, and a
/// completion stream.
pub struct Scheduler {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
    completions: Mutex<Receiver<Completion>>,
}

impl Scheduler {
    /// Spawns `workers` shard workers over `pools`.
    ///
    /// # Panics
    ///
    /// Panics when `workers` is zero.
    pub fn new(pools: Arc<WarmPools>, workers: usize) -> Self {
        assert!(workers > 0, "the scheduler needs at least one worker");
        let inner = Arc::new(Inner {
            shards: (0..workers)
                .map(|_| Mutex::new(std::collections::VecDeque::new()))
                .collect(),
            pools,
            epoch: Instant::now(),
            pending: AtomicU64::new(0),
            cursor: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        });
        let (tx, rx) = mpsc::channel();
        let handles = (0..workers)
            .map(|id| {
                let inner = Arc::clone(&inner);
                let tx: Sender<Completion> = tx.clone();
                std::thread::spawn(move || worker_loop(id, &inner, &tx))
            })
            .collect();
        Scheduler {
            inner,
            workers: handles,
            completions: Mutex::new(rx),
        }
    }

    /// Nanoseconds since the scheduler's epoch (host monotonic) — the
    /// clock completions are stamped with, exposed so the load harness
    /// can pace virtual arrivals against it.
    pub fn now_ns(&self) -> u64 {
        self.inner.now_ns()
    }

    /// The warm pools behind the shards.
    pub fn pools(&self) -> &Arc<WarmPools> {
        &self.inner.pools
    }

    /// Requests submitted and not yet completed.
    pub fn pending(&self) -> u64 {
        self.inner.pending.load(Ordering::Acquire)
    }

    /// Enqueues a request on the next shard (round-robin).
    pub fn submit(&self, request: Request) {
        let shard =
            (self.inner.cursor.fetch_add(1, Ordering::Relaxed) as usize) % self.inner.shards.len();
        self.inner.pending.fetch_add(1, Ordering::AcqRel);
        self.inner.shards[shard]
            .lock()
            .expect("shard unpoisoned")
            .push_back(request);
    }

    /// Non-blocking drain of completions accumulated so far.
    pub fn drain_completions(&self) -> Vec<Completion> {
        let rx = self.completions.lock().expect("completions unpoisoned");
        let mut out = Vec::new();
        while let Ok(c) = rx.try_recv() {
            out.push(c);
        }
        out
    }

    /// Waits for every submitted request to complete, stops the
    /// workers, and returns the remaining completions.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked.
    pub fn finish(self) -> Vec<Completion> {
        while self.inner.pending.load(Ordering::Acquire) > 0 {
            std::thread::sleep(IDLE_SLEEP);
        }
        self.inner.shutdown.store(true, Ordering::Release);
        for handle in self.workers {
            handle.join().expect("worker thread panicked");
        }
        let rx = self
            .completions
            .into_inner()
            .expect("completions unpoisoned");
        rx.try_iter().collect()
    }
}

/// Pops work for worker `id`: own shard front first (FIFO), then the
/// back of sibling shards (steal). Returns the request and whether it
/// was stolen.
fn pop_work(id: usize, inner: &Inner) -> Option<(Request, bool)> {
    if let Some(req) = inner.shards[id]
        .lock()
        .expect("shard unpoisoned")
        .pop_front()
    {
        return Some((req, false));
    }
    let n = inner.shards.len();
    for offset in 1..n {
        let victim = (id + offset) % n;
        if let Some(req) = inner.shards[victim]
            .lock()
            .expect("shard unpoisoned")
            .pop_back()
        {
            return Some((req, true));
        }
    }
    None
}

fn worker_loop(id: usize, inner: &Inner, tx: &Sender<Completion>) {
    loop {
        match pop_work(id, inner) {
            Some((request, stolen)) => {
                let completion = serve_one(id, stolen, request, inner);
                // The scheduler may already have dropped its receiver
                // (finish() joined with a full channel buffer); a send
                // failure only loses telemetry, never work.
                let _ = tx.send(completion);
                inner.pending.fetch_sub(1, Ordering::AcqRel);
            }
            None => {
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                std::thread::sleep(IDLE_SLEEP);
            }
        }
    }
}

/// Runs one request end to end: checkout (with capacity retries), run,
/// snapshot counters, release.
fn serve_one(worker: usize, stolen: bool, request: Request, inner: &Inner) -> Completion {
    let start_ns = inner.now_ns();
    let mut attempts = 0;
    let lease = loop {
        match inner.pools.checkout(request.tenant) {
            Ok(lease) => break Ok(lease),
            Err(PoolError::AdmissionDenied { verified }) => {
                break Err(Outcome::Rejected { verified })
            }
            Err(PoolError::AtCapacity) => {
                attempts += 1;
                if attempts > CAPACITY_RETRIES {
                    break Err(Outcome::Overloaded);
                }
                std::thread::sleep(CAPACITY_RETRY_SLEEP);
            }
        }
    };
    let mut lease = match lease {
        Ok(lease) => lease,
        Err(outcome) => {
            let finish_ns = inner.now_ns();
            return Completion {
                tenant: request.tenant,
                worker,
                stolen,
                warm: false,
                generation: 0,
                arrival_ns: request.arrival_ns,
                start_ns,
                finish_ns,
                setup_ns: finish_ns - start_ns,
                service_ns: 0,
                outcome,
            };
        }
    };
    let setup_done_ns = inner.now_ns();
    let warm = lease.warm;
    let generation = lease.instance.generation();
    if let Some(hook) = request.chaos {
        // Chaos hooks ride the functional tiers; the pool's release
        // reset detaches the hook, so it never leaks into the next run.
        if let Some(functional) = lease.instance.functional_mut() {
            functional.set_chaos(hook);
        }
    }
    let executor = lease.instance.executor_mut();
    let stop = executor.run(request.limit);
    let record = Box::new(executor.stats());
    let r0 = executor.regs()[0];
    let finish_ns = inner.now_ns();
    inner.pools.release(lease);
    Completion {
        tenant: request.tenant,
        worker,
        stolen,
        warm,
        generation,
        arrival_ns: request.arrival_ns,
        start_ns,
        finish_ns,
        setup_ns: setup_done_ns - start_ns,
        service_ns: finish_ns - setup_done_ns,
        outcome: Outcome::Done { stop, record, r0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{AdmitPolicy, TenantSpec, Tier, WarmPools};
    use hfi_sim::{Program, ProgramBuilder, Reg};
    use hfi_wasm::compiler::Isolation;

    fn tiny_program(result: u64) -> Arc<Program> {
        let mut asm = ProgramBuilder::new(0x1000);
        asm.movi(Reg(0), result as i64);
        asm.halt();
        Arc::new(asm.finish())
    }

    fn pools(tenants: usize) -> Arc<WarmPools> {
        let tenants: Vec<TenantSpec> = (0..tenants)
            .map(|i| {
                TenantSpec::from_program(
                    format!("t{i}"),
                    tiny_program(100 + i as u64),
                    Some(true),
                    Isolation::Hfi,
                    Tier::Functional,
                    0x1000_0000,
                    Vec::new(),
                    Some(100 + i as u64),
                )
            })
            .collect();
        Arc::new(WarmPools::new(
            Arc::new(tenants),
            42,
            64 << 20,
            AdmitPolicy::RequireVerified,
        ))
    }

    #[test]
    fn every_submitted_request_completes_correctly() {
        let pools = pools(4);
        let scheduler = Scheduler::new(Arc::clone(&pools), 3);
        let n = 60;
        for i in 0..n {
            scheduler.submit(Request {
                tenant: i % 4,
                arrival_ns: scheduler.now_ns(),
                limit: 1_000,
                chaos: None,
            });
        }
        let completions = scheduler.finish();
        assert_eq!(completions.len(), n);
        for completion in &completions {
            match &completion.outcome {
                Outcome::Done { stop, r0, .. } => {
                    assert_eq!(*stop, Stop::Halted);
                    assert_eq!(*r0, 100 + completion.tenant as u64);
                }
                other => panic!("unexpected outcome: {other:?}"),
            }
            assert!(completion.finish_ns >= completion.start_ns);
            assert!(completion.finish_ns >= completion.arrival_ns);
            assert_eq!(
                completion.finish_ns - completion.start_ns,
                completion.setup_ns + completion.service_ns
            );
            assert!(completion.worker < 3);
        }
        // Four tenants need at least one cold build each (two workers
        // racing on the same cold tenant may build a few extra); every
        // other request is a warm hit.
        let stats = pools.stats();
        assert!(stats.cold_builds >= 4);
        assert_eq!(stats.warm_hits + stats.cold_builds, n as u64);
        let warm = completions.iter().filter(|c| c.warm).count();
        assert_eq!(warm as u64, stats.warm_hits);
    }

    #[test]
    fn completions_report_growing_generations_per_tenant() {
        let pools = pools(1);
        let scheduler = Scheduler::new(pools, 1);
        for _ in 0..5 {
            scheduler.submit(Request {
                tenant: 0,
                arrival_ns: 0,
                limit: 1_000,
                chaos: None,
            });
        }
        let mut completions = scheduler.finish();
        completions.sort_by_key(|c| c.finish_ns);
        let generations: Vec<u64> = completions.iter().map(|c| c.generation).collect();
        assert_eq!(generations, vec![0, 1, 2, 3, 4]);
    }
}
