//! A small assembler: label-based program construction.
//!
//! [`ProgramBuilder`] lets workload generators and tests write simulated
//! assembly with forward references:
//!
//! ```
//! use hfi_sim::asm::ProgramBuilder;
//! use hfi_sim::isa::{AluOp, Cond, Reg};
//!
//! let mut asm = ProgramBuilder::new(0x40_0000);
//! let r0 = Reg(0);
//! let r1 = Reg(1);
//! asm.movi(r0, 0);
//! asm.movi(r1, 10);
//! let top = asm.label_here("loop");
//! asm.alu_ri(AluOp::Add, r0, r0, 3);
//! asm.alu_ri(AluOp::Sub, r1, r1, 1);
//! asm.branch_i(Cond::Ne, r1, 0, top);
//! asm.halt();
//! let program = asm.finish();
//! assert_eq!(program.len(), 6);
//! ```

use std::collections::HashMap;

use hfi_core::{Region, SandboxConfig, TransitionContract};

use crate::isa::{AluOp, Cond, HmovOperand, Inst, MemOperand, Program, Reg};

/// An opaque label handle returned by [`ProgramBuilder::label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Builds a [`Program`] instruction-by-instruction with labels.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    insts: Vec<Inst>,
    base: u64,
    /// label id -> resolved instruction index
    resolved: HashMap<usize, usize>,
    /// (instruction index, label id) pairs awaiting resolution
    fixups: Vec<(usize, usize)>,
    next_label: usize,
    names: HashMap<String, Label>,
    /// Springboard entry contract, if a transition scheme declared one.
    contract: Option<TransitionContract>,
    /// Indices of instructions marked as springboard ops.
    transition_ops: Vec<u32>,
}

impl ProgramBuilder {
    /// Starts a program whose code is linked at byte address `base`.
    pub fn new(base: u64) -> Self {
        Self {
            base,
            ..Self::default()
        }
    }

    /// Creates an unplaced label for forward references.
    pub fn label(&mut self) -> Label {
        let id = self.next_label;
        self.next_label += 1;
        Label(id)
    }

    /// Places `label` at the current position.
    pub fn place(&mut self, label: Label) {
        let prev = self.resolved.insert(label.0, self.insts.len());
        assert!(prev.is_none(), "label placed twice");
    }

    /// Creates a named label at the current position and returns it.
    pub fn label_here(&mut self, name: &str) -> Label {
        let label = self.label();
        self.place(label);
        self.names.insert(name.to_owned(), label);
        label
    }

    /// Index the next instruction will occupy.
    pub fn here(&self) -> usize {
        self.insts.len()
    }

    /// The instruction index a placed label resolved to, if placed.
    ///
    /// Useful for two-pass builds that need concrete byte PCs (e.g. to
    /// materialize a function pointer): build once with a placeholder of
    /// identical encoding length, read the layout, rebuild.
    pub fn resolved(&self, label: Label) -> Option<usize> {
        self.resolved.get(&label.0).copied()
    }

    /// Pushes a raw instruction.
    pub fn push(&mut self, inst: Inst) -> &mut Self {
        self.insts.push(inst);
        self
    }

    /// Marks the most recently pushed instruction as a springboard
    /// (transition) op: the plan lowering flags it so the fused tier
    /// folds it into the enter/exit `HfiSeq` superop and the chaos
    /// engine can target it.
    ///
    /// # Panics
    ///
    /// Panics if no instruction has been pushed yet.
    pub fn mark_last_transition(&mut self) -> &mut Self {
        assert!(!self.insts.is_empty(), "no instruction to mark");
        self.transition_ops.push(self.insts.len() as u32 - 1);
        self
    }

    /// Declares the springboard entry contract the finished program
    /// will carry (checked by executors at `hfi_enter`).
    pub fn set_contract(&mut self, contract: TransitionContract) -> &mut Self {
        self.contract = Some(contract);
        self
    }

    fn push_branch(&mut self, inst: Inst, label: Label) {
        self.fixups.push((self.insts.len(), label.0));
        self.insts.push(inst);
    }

    /// `dst = imm`.
    pub fn movi(&mut self, dst: Reg, imm: i64) -> &mut Self {
        self.push(Inst::MovI { dst, imm })
    }

    /// `dst = src`.
    pub fn mov(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.push(Inst::Mov { dst, src })
    }

    /// `dst = a op b`.
    pub fn alu(&mut self, op: AluOp, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.push(Inst::AluRR { op, dst, a, b })
    }

    /// `dst = a op imm`.
    pub fn alu_ri(&mut self, op: AluOp, dst: Reg, a: Reg, imm: i64) -> &mut Self {
        self.push(Inst::AluRI { op, dst, a, imm })
    }

    /// Load through a memory operand.
    pub fn load(&mut self, dst: Reg, mem: MemOperand, size: u8) -> &mut Self {
        self.push(Inst::Load { dst, mem, size })
    }

    /// Store through a memory operand.
    pub fn store(&mut self, src: Reg, mem: MemOperand, size: u8) -> &mut Self {
        self.push(Inst::Store { src, mem, size })
    }

    /// `hmov{region}` load.
    pub fn hmov_load(&mut self, region: u8, dst: Reg, mem: HmovOperand, size: u8) -> &mut Self {
        self.push(Inst::HmovLoad {
            region,
            dst,
            mem,
            size,
        })
    }

    /// `hmov{region}` store.
    pub fn hmov_store(&mut self, region: u8, src: Reg, mem: HmovOperand, size: u8) -> &mut Self {
        self.push(Inst::HmovStore {
            region,
            src,
            mem,
            size,
        })
    }

    /// Conditional branch to `label`.
    pub fn branch(&mut self, cond: Cond, a: Reg, b: Reg, label: Label) -> &mut Self {
        self.push_branch(
            Inst::Branch {
                cond,
                a,
                b,
                target: usize::MAX,
            },
            label,
        );
        self
    }

    /// Conditional branch (register vs. immediate) to `label`.
    pub fn branch_i(&mut self, cond: Cond, a: Reg, imm: i64, label: Label) -> &mut Self {
        self.push_branch(
            Inst::BranchI {
                cond,
                a,
                imm,
                target: usize::MAX,
            },
            label,
        );
        self
    }

    /// Unconditional jump to `label`.
    pub fn jump(&mut self, label: Label) -> &mut Self {
        self.push_branch(Inst::Jump { target: usize::MAX }, label);
        self
    }

    /// Indirect jump through a register holding a byte PC.
    pub fn jump_ind(&mut self, reg: Reg) -> &mut Self {
        self.push(Inst::JumpInd { reg })
    }

    /// Call the function at `label`.
    pub fn call(&mut self, label: Label) -> &mut Self {
        self.push_branch(Inst::Call { target: usize::MAX }, label);
        self
    }

    /// Return from the current function.
    pub fn ret(&mut self) -> &mut Self {
        self.push(Inst::Ret)
    }

    /// System call (number in `r0`).
    pub fn syscall(&mut self) -> &mut Self {
        self.push(Inst::Syscall)
    }

    /// Serializing `cpuid`.
    pub fn cpuid(&mut self) -> &mut Self {
        self.push(Inst::Cpuid)
    }

    /// Read the cycle counter.
    pub fn rdtsc(&mut self, dst: Reg) -> &mut Self {
        self.push(Inst::Rdtsc { dst })
    }

    /// Flush the cache line at the operand address.
    pub fn flush(&mut self, mem: MemOperand) -> &mut Self {
        self.push(Inst::Flush { mem })
    }

    /// Pipeline fence.
    pub fn fence(&mut self) -> &mut Self {
        self.push(Inst::Fence)
    }

    /// `hfi_enter`.
    pub fn hfi_enter(&mut self, config: SandboxConfig) -> &mut Self {
        self.push(Inst::HfiEnter { config })
    }

    /// `hfi_enter` with switch-on-exit: shadows the live register file
    /// and loads `regions` as the child's (paper §4.5).
    pub fn hfi_enter_child(
        &mut self,
        config: SandboxConfig,
        regions: [Option<Region>; hfi_core::NUM_REGIONS],
    ) -> &mut Self {
        self.push(Inst::HfiEnterChild {
            config,
            regions: Box::new(regions),
        })
    }

    /// `hfi_exit`.
    pub fn hfi_exit(&mut self) -> &mut Self {
        self.push(Inst::HfiExit)
    }

    /// `hfi_reenter`.
    pub fn hfi_reenter(&mut self) -> &mut Self {
        self.push(Inst::HfiReenter)
    }

    /// `hfi_set_region`.
    pub fn hfi_set_region(&mut self, slot: u8, region: Region) -> &mut Self {
        self.push(Inst::HfiSetRegion { slot, region })
    }

    /// No-op.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Inst::Nop)
    }

    /// Halt the machine.
    pub fn halt(&mut self) -> &mut Self {
        self.push(Inst::Halt)
    }

    /// Resolves all labels and lays out the program.
    ///
    /// # Panics
    ///
    /// Panics if a referenced label was never placed.
    pub fn finish(mut self) -> Program {
        for (inst_idx, label_id) in &self.fixups {
            let target = *self
                .resolved
                .get(label_id)
                .unwrap_or_else(|| panic!("unplaced label {label_id} used at {inst_idx}"));
            match &mut self.insts[*inst_idx] {
                Inst::Branch { target: t, .. }
                | Inst::BranchI { target: t, .. }
                | Inst::Jump { target: t }
                | Inst::Call { target: t } => *t = target,
                other => unreachable!("fixup on non-branch {other:?}"),
            }
        }
        Program::new(self.insts, self.base).with_transition_meta(self.contract, self.transition_ops)
    }

    /// [`finish`](Self::finish), wrapped in an `Arc` for sharing.
    ///
    /// The identity-keyed caches (`plan_of`, `emulate_arc`) key on the
    /// `Arc` allocation, so a program that will feed several executors
    /// should be finished into an `Arc` once, not cloned per executor.
    pub fn finish_arc(self) -> std::sync::Arc<Program> {
        std::sync::Arc::new(self.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finish_arc_shares_one_plan() {
        let mut asm = ProgramBuilder::new(0);
        asm.halt();
        let prog = asm.finish_arc();
        let a = crate::plan::plan_of(&prog);
        let b = crate::plan::plan_of(&prog);
        assert!(std::sync::Arc::ptr_eq(&a, &b), "one lowering per program");
    }

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut asm = ProgramBuilder::new(0);
        let end = asm.label();
        let top = asm.label_here("top");
        asm.branch_i(Cond::Eq, Reg(0), 0, end);
        asm.jump(top);
        asm.place(end);
        asm.halt();
        let prog = asm.finish();
        match prog.inst(0) {
            Inst::BranchI { target, .. } => assert_eq!(*target, 2),
            other => panic!("unexpected {other:?}"),
        }
        match prog.inst(1) {
            Inst::Jump { target } => assert_eq!(*target, 0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "unplaced label")]
    fn unplaced_label_panics() {
        let mut asm = ProgramBuilder::new(0);
        let nowhere = asm.label();
        asm.jump(nowhere);
        let _ = asm.finish();
    }

    #[test]
    #[should_panic(expected = "label placed twice")]
    fn double_placement_panics() {
        let mut asm = ProgramBuilder::new(0);
        let label = asm.label();
        asm.place(label);
        asm.place(label);
    }
}
