//! Set-associative caches, the cache hierarchy, and the dTLB.
//!
//! The data cache is the side channel of the Spectre experiments (Fig. 7):
//! speculative loads install lines, `clflush` evicts them, and `rdtsc`
//! around a probe load distinguishes hit from miss latency. HFI's security
//! argument (paper §4.1) is that a *faulting* access never reaches the
//! cache — the fill happens only after the bounds check passes — and the
//! pipeline model enforces exactly that by consulting HFI before calling
//! [`CacheHierarchy::data_access`].

/// One set-associative cache with true-LRU replacement.
///
/// Ways are stored set-major in one flat allocation; a set is the
/// `assoc`-long slice at `set_index * assoc`, so a lookup is pure index
/// arithmetic with no per-set indirection.
#[derive(Debug, Clone)]
pub struct Cache {
    lines: Box<[Line]>,
    assoc: usize,
    line_bits: u32,
    set_bits: u32,
    hits: u64,
    misses: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u64,
    /// Higher = more recently used.
    lru: u64,
    valid: bool,
}

impl Cache {
    /// Creates a cache of `size_bytes` with `assoc` ways and `line_bytes`
    /// lines (both powers of two).
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not a power-of-two decomposition.
    pub fn new(size_bytes: u64, assoc: usize, line_bytes: u64) -> Self {
        assert!(line_bytes.is_power_of_two() && size_bytes.is_power_of_two());
        let num_lines = size_bytes / line_bytes;
        let num_sets = num_lines / assoc as u64;
        assert!(num_sets.is_power_of_two() && num_sets >= 1);
        Self {
            lines: vec![
                Line {
                    tag: 0,
                    lru: 0,
                    valid: false
                };
                num_sets as usize * assoc
            ]
            .into_boxed_slice(),
            assoc,
            line_bits: line_bytes.trailing_zeros(),
            set_bits: num_sets.trailing_zeros(),
            hits: 0,
            misses: 0,
        }
    }

    fn index(&self, addr: u64) -> (usize, u64) {
        let line_addr = addr >> self.line_bits;
        let set = (line_addr & ((1 << self.set_bits) - 1)) as usize;
        let tag = line_addr >> self.set_bits;
        (set, tag)
    }

    /// Accesses `addr` at time `now`: returns `true` on hit. Misses
    /// install the line (allocate-on-miss), evicting the LRU way.
    pub fn access(&mut self, addr: u64, now: u64) -> bool {
        let (set_idx, tag) = self.index(addr);
        let base = set_idx * self.assoc;
        let set = &mut self.lines[base..base + self.assoc];
        for line in set.iter_mut() {
            if line.valid && line.tag == tag {
                line.lru = now;
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        let victim = set
            .iter()
            .enumerate()
            .min_by_key(|(_, line)| if line.valid { line.lru } else { 0 })
            .map(|(way, _)| way)
            .expect("assoc >= 1");
        set[victim] = Line {
            tag,
            lru: now,
            valid: true,
        };
        false
    }

    /// Probes without modifying state: would `addr` hit?
    pub fn probe(&self, addr: u64) -> bool {
        let (set_idx, tag) = self.index(addr);
        let base = set_idx * self.assoc;
        self.lines[base..base + self.assoc]
            .iter()
            .any(|line| line.valid && line.tag == tag)
    }

    /// Evicts the line containing `addr` (clflush).
    pub fn flush(&mut self, addr: u64) {
        let (set_idx, tag) = self.index(addr);
        let base = set_idx * self.assoc;
        for line in &mut self.lines[base..base + self.assoc] {
            if line.valid && line.tag == tag {
                line.valid = false;
            }
        }
    }

    /// Invalidates everything.
    pub fn flush_all(&mut self) {
        for line in self.lines.iter_mut() {
            line.valid = false;
        }
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// Latency parameters of the modelled hierarchy (cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLatencies {
    /// L1 hit (load-to-use).
    pub l1: u64,
    /// L2 hit.
    pub l2: u64,
    /// Main memory.
    pub memory: u64,
    /// dTLB miss (page-walk) penalty.
    pub tlb_miss: u64,
}

impl Default for CacheLatencies {
    fn default() -> Self {
        // Skylake-like: 4-cycle L1, 12-cycle L2, ~200-cycle DRAM.
        Self {
            l1: 4,
            l2: 12,
            memory: 200,
            tlb_miss: 30,
        }
    }
}

/// A two-level data/instruction hierarchy plus dTLB, matching the gem5
/// configuration of the paper's Table 2 (32 KiB 8-way L1s).
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    /// L1 instruction cache.
    pub l1i: Cache,
    /// L1 data cache.
    pub l1d: Cache,
    /// Unified L2.
    pub l2: Cache,
    /// Data TLB (fully-associative, modelled as a small cache of pages).
    pub dtlb: Cache,
    /// Latency parameters.
    pub latencies: CacheLatencies,
}

impl Default for CacheHierarchy {
    fn default() -> Self {
        Self::new()
    }
}

impl CacheHierarchy {
    /// The default Skylake-like geometry (Table 2 of the paper).
    pub fn new() -> Self {
        Self {
            l1i: Cache::new(32 << 10, 8, 64),
            l1d: Cache::new(32 << 10, 8, 64),
            l2: Cache::new(1 << 20, 16, 64),
            // 64-entry dTLB over 4 KiB pages, modelled as 64 sets x 1 way
            // over page granularity (fully assoc would be ideal; 4-way is
            // close enough for the experiments).
            dtlb: Cache::new(64 * 4096, 4, 4096),
            latencies: CacheLatencies::default(),
        }
    }

    /// A data access at `addr`: returns total latency in cycles and
    /// updates cache + TLB state. The dTLB lookup overlaps the L1 index
    /// lookup — and, with HFI, the region checks (paper Fig. 1) — so TLB
    /// hits add nothing.
    pub fn data_access(&mut self, addr: u64, now: u64) -> u64 {
        let tlb_pen = if self.dtlb.access(addr, now) {
            0
        } else {
            self.latencies.tlb_miss
        };
        let lat = if self.l1d.access(addr, now) {
            self.latencies.l1
        } else if self.l2.access(addr, now) {
            self.latencies.l2
        } else {
            self.latencies.memory
        };
        lat + tlb_pen
    }

    /// An instruction fetch at `pc`: returns latency in cycles.
    pub fn fetch_access(&mut self, pc: u64, now: u64) -> u64 {
        if self.l1i.access(pc, now) {
            0 // overlapped with the pipeline's fetch stage
        } else if self.l2.access(pc, now) {
            self.latencies.l2
        } else {
            self.latencies.memory
        }
    }

    /// Would a data access at `addr` hit in L1D? (No state change.)
    pub fn probe_l1d(&self, addr: u64) -> bool {
        self.l1d.probe(addr)
    }

    /// clflush: evicts `addr` from all data levels.
    pub fn flush_data(&mut self, addr: u64) {
        self.l1d.flush(addr);
        self.l2.flush(addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut cache = Cache::new(1024, 2, 64);
        assert!(!cache.access(0x1000, 1));
        assert!(cache.access(0x1000, 2));
        assert!(cache.access(0x103F, 3)); // same line
        assert!(!cache.access(0x1040, 4)); // next line
        assert_eq!(cache.stats(), (2, 2));
    }

    #[test]
    fn lru_evicts_oldest() {
        // 2-way, one set per 64-byte stride at set 0: three conflicting
        // lines force an eviction of the least recently used.
        let mut cache = Cache::new(128, 2, 64); // 1 set, 2 ways
        cache.access(0x0, 1);
        cache.access(0x40, 2);
        cache.access(0x0, 3); // refresh line 0
        cache.access(0x80, 4); // evicts 0x40
        assert!(cache.probe(0x0));
        assert!(!cache.probe(0x40));
        assert!(cache.probe(0x80));
    }

    #[test]
    fn flush_removes_line() {
        let mut cache = Cache::new(1024, 2, 64);
        cache.access(0x2000, 1);
        assert!(cache.probe(0x2000));
        cache.flush(0x2000);
        assert!(!cache.probe(0x2000));
    }

    #[test]
    fn probe_does_not_modify() {
        let mut cache = Cache::new(1024, 2, 64);
        cache.access(0x0, 1);
        let stats_before = cache.stats();
        let _ = cache.probe(0x12345);
        let _ = cache.probe(0x0);
        assert_eq!(cache.stats(), stats_before);
        assert!(cache.probe(0x0), "probe must not evict the resident line");
    }

    #[test]
    fn hierarchy_latency_ordering() {
        let mut hier = CacheHierarchy::new();
        let cold = hier.data_access(0x8000, 1);
        let warm = hier.data_access(0x8000, 2);
        assert!(cold > warm, "cold {cold} vs warm {warm}");
        assert_eq!(warm, hier.latencies.l1);
    }

    #[test]
    fn flush_data_forces_memory_latency() {
        let mut hier = CacheHierarchy::new();
        hier.data_access(0x8000, 1);
        hier.flush_data(0x8000);
        // TLB still warm; line must come from memory again.
        let lat = hier.data_access(0x8000, 2);
        assert_eq!(lat, hier.latencies.memory);
    }
}
