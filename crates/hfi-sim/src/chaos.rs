//! Runtime fault-injection hooks for the executors.
//!
//! The chaos engine (the `hfi-chaos` crate) perturbs live machine state
//! mid-execution to test HFI's fail-closed property (§3.3.2, §4.1): a
//! corrupted effective address, a flipped operand, a dropped guard
//! micro-op, or a bit flip in the region register file must either be
//! architecturally masked or end in a precise [`HfiFault`] trap — never
//! in an out-of-spec access retiring silently.
//!
//! This module defines only the *seam*: a [`ChaosHook`] trait the cycle
//! ([`Machine`](crate::core::Machine)) and functional
//! ([`Functional`](crate::functional::Functional)) executors consult at
//! each perturbable site, plus the [`ArchEvent`] stream of *retired*
//! (architectural) effects a shadow reference monitor can check against
//! a sandbox specification independently of the — possibly corrupted —
//! [`HfiContext`] region state. The engine and monitor themselves live
//! downstream in `hfi-chaos`, which depends on this crate.
//!
//! Executors hold an `Option<Box<dyn ChaosHook>>` that defaults to
//! `None`; every hook site is a single predictable `is_some()` branch,
//! so disabled chaos costs nothing measurable (the `bench_throughput`
//! gate enforces this).

use hfi_core::{Access, HfiContext, HfiFault};

/// An architectural (retired, non-speculative) event emitted by an
/// executor to [`ChaosHook::observe`].
///
/// Wrong-path micro-ops never generate events: the cycle machine emits
/// at commit, the functional machine has no speculation. `sandboxed` is
/// the HFI enable bit at retirement — control state no fault class
/// corrupts, so a monitor may trust it even while region *metadata* is
/// being corrupted underneath.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArchEvent {
    /// An instruction retired: the fetch of `len` bytes at `pc` became
    /// architectural.
    Retire {
        /// Byte PC of the retired instruction.
        pc: u64,
        /// Encoded length in bytes.
        len: u8,
        /// Whether HFI was enabled when it retired.
        sandboxed: bool,
    },
    /// A memory access retired (load data returned to the register file,
    /// or store data left the store queue for memory).
    Mem {
        /// Byte PC of the accessing instruction.
        pc: u64,
        /// First byte of the access.
        addr: u64,
        /// Access width in bytes.
        size: u8,
        /// Read or write.
        access: Access,
        /// `Some(region)` when the access went through `hmov{region}`.
        hmov: Option<u8>,
        /// Whether HFI was enabled when it retired.
        sandboxed: bool,
    },
    /// A fault was delivered: the pipeline squashed, the sandbox exited,
    /// and the exit-reason MSR recorded `fault`. Everything the faulting
    /// instruction would have done was suppressed.
    Fault {
        /// Byte PC of the faulting instruction.
        pc: u64,
        /// The delivered fault.
        fault: HfiFault,
    },
}

/// A runtime fault-injection hook, consulted by the executors at every
/// perturbable site.
///
/// Every method has a pass-through default, so an implementation
/// overrides only the sites its fault class perturbs. The `perturb_*`
/// methods run *before* the corresponding HFI check — a corrupted
/// address must still face the guard, which is the point. Sites are
/// visited deterministically for a fixed program and seed; the cycle
/// machine also consults hooks on speculative (later squashed) paths,
/// which is faithful — real bit flips do not wait for retirement.
///
/// `Send` is a supertrait so executors holding a boxed hook stay `Send`:
/// the serving scheduler (`hfi-serve`) migrates prepared executors
/// across shard workers, and a hook rides along inside them.
/// Implementations that share state with a campaign driver (the chaos
/// engine, the shadow monitor) must use thread-safe handles
/// (`Arc<Mutex<…>>`).
pub trait ChaosHook: Send {
    /// Perturbs a computed effective address (AGU output) at `pc`.
    fn perturb_ea(&mut self, _pc: u64, ea: u64) -> u64 {
        ea
    }

    /// Perturbs a result value about to be written back at `pc`.
    fn perturb_result(&mut self, _pc: u64, value: u64) -> u64 {
        value
    }

    /// Returns `true` to drop the guard micro-op of the memory access at
    /// `pc`: its bounds/permission check is skipped and the access
    /// proceeds unchecked.
    fn skip_guard(&mut self, _pc: u64) -> bool {
        false
    }

    /// Returns `true` to invert the direction predicted for the branch
    /// at `pc`, forcing a mis-speculated path to issue and run until the
    /// branch resolves (cycle machine only).
    fn flip_prediction(&mut self, _pc: u64) -> bool {
        false
    }

    /// Between two instructions, optionally corrupts the live HFI
    /// register state (e.g. via
    /// [`HfiContext::inject_region_bitflip`]). Returns `true` if state
    /// was changed so the cycle machine can propagate the corruption to
    /// its speculative-generation history.
    fn corrupt_context(&mut self, _hfi: &mut HfiContext) -> bool {
        false
    }

    /// Returns `true` to clobber the branch predictors (PHT and BTB) at
    /// an instruction boundary (cycle machine only). Purely
    /// microarchitectural: architectural results must not change.
    fn clobber_predictors(&mut self) -> bool {
        false
    }

    /// Returns `true` to corrupt the springboard (transition) op at
    /// `pc`: its result is replaced with [`transition_junk`], modelling
    /// a register-zeroing or stack-switch op whose write never landed.
    /// Consulted only at micro-ops carrying the
    /// [`MicroOp::TRANSITION`](crate::plan::MicroOp::TRANSITION) flag
    /// with a register destination.
    fn corrupt_transition(&mut self, _pc: u64) -> bool {
        false
    }

    /// Returns `true` to disable the `hfi_enter` entry assertion (the
    /// springboard contract re-check) at `pc`. Only the weakened
    /// campaign engine does this — it is what lets a corrupted
    /// transition escape instead of trapping fail-closed.
    fn skip_transition_check(&mut self, _pc: u64) -> bool {
        false
    }

    /// Observes a retired architectural event (for shadow monitors and
    /// site counters).
    fn observe(&mut self, _event: &ArchEvent) {}
}

/// The deterministic junk value a corrupted transition op leaves in its
/// destination register: recognizably host-pointer-like, outside every
/// sandbox window (below the heap base, above the code region), and
/// dependent on the site so distinct corruptions stay distinguishable.
pub fn transition_junk(pc: u64) -> u64 {
    0x0BAD_0000 ^ (pc & 0xFFFF)
}
