//! The out-of-order core model — this repository's gem5 substitute.
//!
//! A ROB-based speculative pipeline with the structure of the paper's
//! baseline (Table 2): wide fetch/decode, register renaming, out-of-order
//! issue, L1/L2 caches, a dTLB, PHT/BTB prediction, and squash-on-
//! mispredict. Three properties matter for reproducing the paper and are
//! modelled faithfully:
//!
//! 1. **Speculative loads touch the data cache.** A load executes as soon
//!    as its operands are ready, even under an unresolved branch; its cache
//!    fill survives the squash. This is the Spectre channel of Fig. 7.
//! 2. **HFI checks cost zero latency and gate the cache.** Implicit-region
//!    and `hmov` checks happen "in parallel with the dTLB lookup" (Fig. 1):
//!    they add no cycles, and a *failing* check prevents the cache access
//!    entirely — speculatively or not — which is HFI's Spectre defence.
//! 3. **Code-region checks happen at decode.** An out-of-bounds fetch
//!    decodes to a faulting NOP; the bad instruction never enters the
//!    pipeline, even speculatively (paper §4.1).
//!
//! Serialization (`cpuid`, `is-serialized` enter/exit, in-sandbox region
//! updates) drains the ROB at decode and charges the §3.4 pipeline cost.

use std::collections::VecDeque;
use std::sync::Arc;

use hfi_core::{
    Access, CostModel, ExitDisposition, ExitReason, HfiContext, HfiFault, SyscallDisposition,
    SyscallKind,
};

use crate::cache::CacheHierarchy;
use crate::chaos::{ArchEvent, ChaosHook};
use crate::isa::{AluOp, Inst, Program, Reg};
use crate::mem::SparseMemory;
use crate::plan::{plan_of, DecodedProgram, MicroOp, OpClass, SerializeClass, NO_REG, NO_TARGET};
use crate::predictor::{BranchTargetBuffer, PatternHistoryTable};

/// Structural parameters of the modelled core (paper Table 2).
#[derive(Debug, Clone, Copy)]
pub struct CoreConfig {
    /// Micro-ops decoded (and dispatched) per cycle.
    pub decode_width: usize,
    /// Micro-ops committed per cycle.
    pub commit_width: usize,
    /// Reorder buffer entries.
    pub rob_size: usize,
    /// Loads+stores issued per cycle.
    pub mem_ports: usize,
    /// Simple-ALU operations issued per cycle.
    pub alu_ports: usize,
    /// Front-end redirect penalty after a mispredict, in cycles.
    pub redirect_penalty: u64,
    /// Cycles charged for OS signal delivery (HFI faults reach the runtime
    /// as signals; §3.3.2).
    pub signal_delivery: u64,
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self {
            decode_width: 5,
            commit_width: 8,
            rob_size: 224,
            mem_ports: 2,
            alu_ports: 4,
            redirect_penalty: 10,
            signal_delivery: 3000,
        }
    }
}

/// Why the machine stopped.
#[derive(Debug, Clone, PartialEq)]
pub enum Stop {
    /// A `Halt` instruction committed.
    Halted,
    /// An unhandled fault (no signal handler installed).
    Fault(HfiFault),
    /// The cycle budget ran out.
    CycleLimit,
    /// The OS model requested exit (syscall 0 / `exit`).
    Exited {
        /// The value in `r1` at exit (exit code by convention).
        code: u64,
    },
}

/// Counters collected during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Committed instructions.
    pub committed: u64,
    /// Squashed (wrong-path) instructions.
    pub squashed: u64,
    /// Committed branches (conditional and indirect).
    pub branches: u64,
    /// Conditional-branch mispredictions.
    pub mispredicts: u64,
    /// Cycles the front end could not decode because the ROB was full.
    pub rob_stall_cycles: u64,
    /// HFI checks performed (fetch, implicit-data, and `hmov` checks
    /// evaluated while a sandbox was active).
    pub hfi_checks: u64,
    /// Pipeline drains for serialization.
    pub serializations: u64,
    /// Loads that executed speculatively and were later squashed — the
    /// population that can leak through the cache.
    pub squashed_loads_executed: u64,
    /// Faults delivered (HFI or hardware).
    pub faults: u64,
    /// Syscalls redirected by HFI's native-sandbox interposition.
    pub syscalls_redirected: u64,
    /// Syscalls that reached the OS model.
    pub syscalls_to_os: u64,
}

/// The result of [`Machine::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Why the run stopped.
    pub stop: Stop,
    /// Counters.
    pub stats: CoreStats,
    /// Final architectural register values.
    pub regs: [u64; 16],
    /// Final exit-reason MSR contents.
    pub exit_reason: Option<ExitReason>,
}

impl RunResult {
    /// Instructions-per-cycle of the run.
    pub fn ipc(&self) -> f64 {
        self.stats.committed as f64 / self.cycles.max(1) as f64
    }
}

/// Outcome of one modelled OS syscall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyscallOutcome {
    /// Return value (written to `r0`).
    pub ret: u64,
    /// Extra cycles beyond the kernel round-trip base.
    pub extra_cycles: u64,
    /// Terminate the machine.
    pub exit: bool,
}

/// The OS model invoked for syscalls that are *not* interposed by HFI.
///
/// `Send` is a supertrait so executors holding a boxed model stay
/// `Send` — the serving scheduler (`hfi-serve`) migrates prepared
/// executors across shard workers.
pub trait OsModel: Send {
    /// Handles syscall `number` with access to registers and memory.
    fn syscall(
        &mut self,
        number: u64,
        regs: &mut [u64; 16],
        mem: &mut SparseMemory,
    ) -> SyscallOutcome;
}

/// The default OS: syscall 0 exits (code in `r1`); a per-syscall filter
/// cost can model Seccomp-bpf (§6.4.1); everything else returns 0.
#[derive(Debug, Default, Clone)]
pub struct DefaultOs {
    /// Extra cycles charged per syscall (e.g. a Seccomp-bpf filter).
    pub filter_cycles: u64,
    /// Number of syscalls serviced.
    pub serviced: u64,
}

impl OsModel for DefaultOs {
    fn syscall(
        &mut self,
        number: u64,
        regs: &mut [u64; 16],
        _mem: &mut SparseMemory,
    ) -> SyscallOutcome {
        self.serviced += 1;
        if number == 0 {
            return SyscallOutcome {
                ret: 0,
                extra_cycles: 0,
                exit: true,
            };
        }
        // Model open/read/close-style calls: VFS walk + page-cache read
        // is on the order of a microsecond (~3300 cycles at 3.3 GHz)
        // beyond the bare kernel entry/exit.
        let _ = regs;
        SyscallOutcome {
            ret: 0,
            extra_cycles: self.filter_cycles + 3300,
            exit: false,
        }
    }
}

/// Operand-source tags for the compact [`Src`] slot.
const SRC_NONE: u8 = 0;
const SRC_READY: u8 = 1;
const SRC_WAIT: u8 = 2;

/// One renamed operand slot, 16 bytes flat. `payload` is the value when
/// `tag == SRC_READY` or the producer's sequence number when
/// `tag == SRC_WAIT`; if that producer has already committed, the
/// architectural register `reg` holds its value (the producer was the
/// youngest writer at decode, so no later writer can have committed
/// before this consumer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Src {
    payload: u64,
    reg: u8,
    tag: u8,
}

impl Src {
    const NONE: Src = Src {
        payload: 0,
        reg: 0,
        tag: SRC_NONE,
    };

    #[inline(always)]
    fn ready(value: u64) -> Src {
        Src {
            payload: value,
            reg: 0,
            tag: SRC_READY,
        }
    }

    #[inline(always)]
    fn wait(seq: u64, reg: u8) -> Src {
        Src {
            payload: seq,
            reg,
            tag: SRC_WAIT,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum EntryState {
    Waiting,
    /// In flight; the wakeup time lives in `Machine::in_flight`, not here.
    Executing,
    Done,
}

/// Sentinel for `RobEntry::hfi_gen_before`: entry does not mutate HFI
/// state.
const NO_GEN: u32 = u32::MAX;

/// `issue_queue` wake sentinel: no memoized blocking producer — the
/// entry must be fully re-evaluated at its next scan visit.
const NO_WAKE: u64 = u64::MAX;

/// A reorder-buffer entry: *dynamic* state only. Every static fact
/// (operand shape, opcode class, latency class, branch target…) lives in
/// the shared [`DecodedProgram`] and is reached through `inst_idx` — the
/// entry carries what this *dynamic instance* learned: renamed operands,
/// the resolved address, the speculative value, the prediction made for
/// it, and the HFI generation it decoded under.
///
/// The entry's sequence number is implicit: seqs are consecutive in the
/// ring, so `seq = Machine::head_seq + ring_index`.
#[derive(Debug, Clone)]
struct RobEntry {
    value: u64,
    srcs: [Src; 3],
    /// For loads/stores: resolved effective address (`mem_size > 0`).
    /// For a stalled `hmov` load it doubles as the memoized checked EA
    /// (`EF_EA_KNOWN`): the check reads only the entry's own generation
    /// snapshot, so its result cannot change between retries.
    mem_addr: u64,
    /// For stores: the value to write at commit (`EF_HAS_STORE_VALUE`).
    /// For loads: the seq of the older store this load's dependence memo
    /// waits on (`EF_DEP_ADDR` / `EF_DEP_COMMIT`) — loads never forward
    /// data out of this field, so the reuse cannot be observed.
    store_value: u64,
    /// Fault detected at decode or execute, delivered at commit.
    fault: Option<HfiFault>,
    inst_idx: u32,
    /// Branch prediction made at decode (predicted next inst index);
    /// `NO_TARGET` when the entry is not a predicted branch.
    predicted_next: u32,
    /// HFI-state generation current when this entry decoded: memory
    /// operations are checked against the state *their* program-order
    /// position sees, so a younger `hfi_exit` cannot lift checks from an
    /// older in-flight load (and a wrong-path exit still exposes the
    /// younger wrong-path loads that follow it — the §3.4 hazard).
    hfi_gen: u32,
    /// For HFI-state-mutating entries: the generation before the change
    /// (`NO_GEN` otherwise). The squash undo is `hfi_history[gen_before]`
    /// — the generation journal doubles as the speculation-undo record,
    /// so no per-entry context snapshot is taken.
    hfi_gen_before: u32,
    /// Destination register, [`NO_REG`] when none.
    dst: u8,
    /// Memory access size in bytes; 0 while the address is unresolved.
    mem_size: u8,
    state: EntryState,
    flags: u8,
}

/// `RobEntry::flags` bits.
const EF_LOAD: u8 = 1 << 0;
const EF_STORE: u8 = 1 << 1;
/// The load already performed its (speculative) cache access.
const EF_CACHE_ACCESSED: u8 = 1 << 2;
const EF_HAS_STORE_VALUE: u8 = 1 << 3;
/// `mem_addr` holds this hmov load's already-checked effective address,
/// so retries skip `hmov_check_access` (pure per generation snapshot).
const EF_EA_KNOWN: u8 = 1 << 4;
/// Load stalled on a store (`store_value`) whose address is unknown:
/// the dependence scan is skipped until that store's `mem_size` is set.
/// Sound because older stores only *resolve* over time (a squash that
/// removes the store removes this younger load too), so the scan's
/// verdict cannot change before the memoized store's does.
const EF_DEP_ADDR: u8 = 1 << 5;
/// Load stalled on a partially overlapping store (`store_value`): every
/// store between it and the load already had a known, non-overlapping
/// address, so the scan's verdict is fixed until that store commits.
const EF_DEP_COMMIT: u8 = 1 << 6;

impl RobEntry {
    fn blank(inst_idx: usize) -> Self {
        RobEntry {
            value: 0,
            srcs: [Src::NONE; 3],
            mem_addr: 0,
            store_value: 0,
            fault: None,
            inst_idx: inst_idx as u32,
            predicted_next: NO_TARGET,
            hfi_gen: 0,
            hfi_gen_before: NO_GEN,
            dst: NO_REG,
            mem_size: 0,
            state: EntryState::Waiting,
            flags: 0,
        }
    }

    #[inline(always)]
    fn has(&self, flag: u8) -> bool {
        self.flags & flag != 0
    }
}

/// The complete simulated machine: program, memory, caches, predictors,
/// HFI state, and the out-of-order pipeline.
pub struct Machine {
    program: Arc<Program>,
    /// The shared static plan: pre-decoded micro-ops and block table.
    plan: Arc<DecodedProgram>,
    /// Data memory.
    pub mem: SparseMemory,
    /// Cache hierarchy and dTLB.
    pub caches: CacheHierarchy,
    /// HFI register state.
    pub hfi: HfiContext,
    /// Cost parameters.
    pub costs: CostModel,
    config: CoreConfig,
    pht: PatternHistoryTable,
    btb: BranchTargetBuffer,
    os: Box<dyn OsModel>,
    /// Runtime fault-injection hook (see [`crate::chaos`]); `None` in
    /// normal operation, where every hook site is one predictable branch.
    chaos: Option<Box<dyn ChaosHook>>,
    /// Byte PC of the runtime's signal handler for HFI faults, if any.
    pub signal_handler: Option<u64>,

    // Pipeline state.
    regs: [u64; 16],
    /// Speculative-HFI-state history, indexed by generation; in-flight
    /// memory operations consult the generation at their decode, and a
    /// squash restores the oldest squashed entry's `hfi_gen_before`.
    hfi_history: Vec<HfiContext>,
    hfi_gen: usize,
    /// The reorder buffer as a ring: pushed at the back at decode, popped
    /// at the front at commit, truncated from the back on squash. Entry
    /// sequence numbers are consecutive and implicit:
    /// `seq = head_seq + ring_index`.
    rob: VecDeque<RobEntry>,
    /// Sequence number of the ROB head (equal to `next_seq` when empty).
    head_seq: u64,
    /// `(seq, wake)` of `Waiting` entries in age order — the issue stage
    /// scans only these, compacting in place, instead of walking the
    /// whole ROB every cycle. `wake` is the seq of the operand producer
    /// the entry was last seen blocked on ([`NO_WAKE`] when it must be
    /// fully re-evaluated): while that producer is in flight and not
    /// `Done` the retry is a single state check, which is exact — the
    /// full evaluation would reach `wait_value` on the same producer and
    /// requeue without any architectural effect.
    issue_queue: Vec<(u64, u64)>,
    /// `(seq, done_at)` of `Executing` entries — the finish stage wakes
    /// only these.
    in_flight: Vec<(u64, u64)>,
    /// Rename table: sequence number of the youngest in-flight producer
    /// of each architectural register (O(1) operand lookup; rebuilt on
    /// the rare squash).
    reg_writer: [Option<u64>; 16],
    /// Sequence numbers of in-flight stores, oldest first — the
    /// load/store dependence scan walks only these instead of the whole
    /// ROB.
    store_seqs: VecDeque<u64>,
    next_seq: u64,
    cycle: u64,
    fetch_index: usize,
    fetch_stall_until: u64,
    /// Decode-time (speculative-path) call stack of return inst indices.
    call_stack: Vec<usize>,
    /// Delta journal of decode-time call-stack mutations, oldest first:
    /// a squash replays the inverse deltas newest-first instead of
    /// restoring a full-stack snapshot.
    call_journal: VecDeque<(u64, CallDelta)>,
    halted: Option<Stop>,
    stats: CoreStats,
    mem_ops_this_cycle: usize,
    alu_ops_this_cycle: usize,
}

/// One reversible decode-time call-stack mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CallDelta {
    /// A `Call` pushed a return index (undo: pop it).
    Pushed,
    /// A `Ret` popped this return index (undo: push it back).
    Popped(usize),
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("cycle", &self.cycle)
            .field("fetch_index", &self.fetch_index)
            .field("rob_len", &self.rob.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Machine {
    /// Creates a machine executing `program` from its first instruction.
    ///
    /// Accepts a [`Program`] by value or an [`Arc<Program>`]; harnesses
    /// that run one compiled kernel on many machines share the `Arc`
    /// instead of cloning instruction vectors per cell.
    pub fn new(program: impl Into<Arc<Program>>) -> Self {
        Self::with_config(program, CoreConfig::default())
    }

    /// Creates a machine with explicit structural parameters.
    pub fn with_config(program: impl Into<Arc<Program>>, config: CoreConfig) -> Self {
        let program: Arc<Program> = program.into();
        let plan = plan_of(&program);
        Self {
            program,
            plan,
            mem: SparseMemory::new(),
            caches: CacheHierarchy::new(),
            hfi: HfiContext::new(),
            costs: CostModel::default(),
            config,
            pht: PatternHistoryTable::new(4096),
            btb: BranchTargetBuffer::new(512),
            os: Box::new(DefaultOs::default()),
            chaos: None,
            signal_handler: None,
            regs: [0; 16],
            hfi_history: vec![HfiContext::new()],
            hfi_gen: 0,
            rob: VecDeque::new(),
            head_seq: 0,
            issue_queue: Vec::new(),
            in_flight: Vec::new(),
            reg_writer: [None; 16],
            store_seqs: VecDeque::new(),
            next_seq: 0,
            cycle: 0,
            fetch_index: 0,
            fetch_stall_until: 0,
            call_stack: Vec::new(),
            call_journal: VecDeque::new(),
            halted: None,
            stats: CoreStats::default(),
            mem_ops_this_cycle: 0,
            alu_ops_this_cycle: 0,
        }
    }

    /// Replaces the OS model.
    pub fn set_os(&mut self, os: Box<dyn OsModel>) {
        self.os = os;
    }

    /// Installs a runtime fault-injection hook (see [`crate::chaos`]).
    pub fn set_chaos(&mut self, hook: Box<dyn ChaosHook>) {
        self.chaos = Some(hook);
    }

    /// Removes and returns the installed chaos hook, if any, so callers
    /// can inspect the engine/monitor state after a run.
    pub fn take_chaos(&mut self) -> Option<Box<dyn ChaosHook>> {
        self.chaos.take()
    }

    /// Sets an architectural register (before running).
    pub fn set_reg(&mut self, reg: Reg, value: u64) {
        self.regs[reg.0 as usize] = value;
    }

    /// Reads an architectural register.
    pub fn reg(&self, reg: Reg) -> u64 {
        self.regs[reg.0 as usize]
    }

    /// Current cycle count.
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Counters so far.
    pub fn core_stats(&self) -> CoreStats {
        self.stats
    }

    /// Snapshot of the architectural register file.
    pub fn regs(&self) -> [u64; 16] {
        self.regs
    }

    /// The program under execution.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The pre-decoded plan the pipeline runs from.
    pub fn plan(&self) -> &Arc<DecodedProgram> {
        &self.plan
    }

    fn read_operand(&self, reg: u8) -> Src {
        // Youngest in-flight producer wins — the rename table tracks it.
        match self.reg_writer[reg as usize] {
            Some(seq) => {
                debug_assert!(seq >= self.head_seq, "rename table in sync");
                let entry = &self.rob[(seq - self.head_seq) as usize];
                match entry.state {
                    EntryState::Done => Src::ready(entry.value),
                    _ => Src::wait(seq, reg),
                }
            }
            None => Src::ready(self.regs[reg as usize]),
        }
    }

    /// The value of a `SRC_WAIT` operand: the producer's speculative
    /// value once done, the architectural register if it already
    /// committed, `None` while still in flight.
    #[inline]
    fn wait_value(&self, seq: u64, reg: u8) -> Option<u64> {
        if seq < self.head_seq {
            // Producer already committed: its value is architectural.
            return Some(self.regs[reg as usize]);
        }
        let entry = &self.rob[(seq - self.head_seq) as usize];
        match entry.state {
            EntryState::Done => Some(entry.value),
            _ => None,
        }
    }

    /// Rebuilds the rename table from the surviving ROB entries (squash
    /// path only — pushes and commits maintain it incrementally).
    fn rebuild_reg_writer(&mut self) {
        self.reg_writer = [None; 16];
        for (i, entry) in self.rob.iter().enumerate() {
            if entry.dst != NO_REG {
                self.reg_writer[entry.dst as usize] = Some(self.head_seq + i as u64);
            }
        }
    }

    // ------------------------------------------------------------------
    // Front end: fetch + decode + rename + dispatch.
    // ------------------------------------------------------------------

    fn frontend(&mut self) {
        if self.cycle < self.fetch_stall_until {
            return;
        }
        if self.rob.len() >= self.config.rob_size {
            self.stats.rob_stall_cycles += 1;
            return;
        }
        // Fetch reads the shared pre-decoded plan: every static fact is a
        // flat-array load, no `Inst` match and no clone (the `Arc` bump is
        // once per fetch group).
        let plan = Arc::clone(&self.plan);
        for _ in 0..self.config.decode_width {
            if self.rob.len() >= self.config.rob_size {
                break;
            }
            if self.fetch_index >= plan.len() {
                break;
            }
            let inst_idx = self.fetch_index;
            let pc = plan.pc(inst_idx);
            let uop = plan.op(inst_idx);

            // I-cache access for this fetch group; a miss stalls the
            // front end.
            let fetch_lat = self.caches.fetch_access(pc, self.cycle);
            if fetch_lat > 0 {
                self.fetch_stall_until = self.cycle + fetch_lat;
                return;
            }

            // HFI code-region check, in parallel with decode (§4.1). On
            // failure the micro-op becomes a faulting NOP.
            if self.hfi.enabled() {
                self.stats.hfi_checks += 1;
            }
            if let Err(fault) = self.hfi.check_fetch(pc, uop.len as u64) {
                let mut entry = RobEntry::blank(inst_idx);
                entry.state = EntryState::Executing;
                entry.fault = Some(fault);
                let seq = self.push_entry(entry);
                self.in_flight.push((seq, self.cycle + 1));
                // Fetch cannot meaningfully continue past an OOB PC; stall
                // until the fault commits and redirects.
                self.fetch_index = plan.len();
                return;
            }

            // Serializing instructions drain the ROB before decoding.
            if self.decode_serializes(uop) {
                if !self.rob.is_empty() {
                    return; // retry next cycle until drained
                }
                self.stats.serializations += 1;
                self.fetch_stall_until = self.cycle + self.serialize_cost(uop);
            }

            if !self.decode_one(inst_idx, pc, uop) {
                return;
            }
            if uop.class == OpClass::Syscall || self.fetch_index != inst_idx + 1 {
                // Control flow redirected fetch (or entered the kernel);
                // end the fetch group.
                return;
            }
        }
    }

    /// Whether decoding this micro-op drains the pipeline. The class is
    /// static (precomputed in the plan); only the sandbox-dependent
    /// classes consult live HFI state.
    fn decode_serializes(&self, uop: &MicroOp) -> bool {
        match uop.serialize {
            SerializeClass::No => false,
            SerializeClass::Always => true,
            // Region updates serialize only inside a (hybrid) sandbox
            // (§4.3).
            SerializeClass::IfEnabled => self.hfi.enabled(),
            // Exit of a serialized sandbox serializes; switch-on-exit does
            // not (§4.5).
            SerializeClass::ExitDynamic => {
                self.hfi.enabled()
                    && self.hfi.config().serialize
                    && !self.hfi.config().switch_on_exit
            }
        }
    }

    fn serialize_cost(&self, uop: &MicroOp) -> u64 {
        match uop.class {
            OpClass::Fence => 2,
            OpClass::Syscall => 4, // drain only; kernel cost charged at handling
            _ => self.costs.serialize_cycles,
        }
    }

    /// Decodes one pre-decoded micro-op into the ROB. Everything static
    /// was resolved at plan-build time; this stage contributes only the
    /// *dynamic* work — renamed operand reads, branch prediction, call
    /// stack, and speculative HFI-state mutation. Returns false if the
    /// front end must stop (e.g. waiting on syscall handling).
    fn decode_one(&mut self, inst_idx: usize, pc: u64, uop: &MicroOp) -> bool {
        if uop.class == OpClass::Syscall {
            // ROB is drained (decode_serializes). Handle immediately
            // with architectural state.
            return self.handle_syscall(inst_idx);
        }

        let mut entry = RobEntry::blank(inst_idx);
        entry.dst = uop.dst;
        entry.flags = uop.flags & (MicroOp::IS_LOAD | MicroOp::IS_STORE);
        debug_assert_eq!(MicroOp::IS_LOAD, EF_LOAD);
        debug_assert_eq!(MicroOp::IS_STORE, EF_STORE);
        // Rename: the plan names the registers each slot reads; unset
        // slots stay SRC_NONE.
        for (k, reg) in uop.srcs.iter().enumerate() {
            if *reg != NO_REG {
                entry.srcs[k] = self.read_operand(*reg);
            }
        }
        let mut next = inst_idx + 1;

        match uop.class {
            OpClass::Branch | OpClass::BranchI => {
                let mut taken = self.pht.predict(pc);
                if let Some(hook) = self.chaos.as_deref_mut() {
                    // Forced misprediction: the wrong path issues and
                    // runs until the branch resolves at execute.
                    taken ^= hook.flip_prediction(pc);
                }
                next = if taken {
                    uop.target as usize
                } else {
                    inst_idx + 1
                };
                entry.predicted_next = next as u32;
            }
            OpClass::Jump => {
                next = uop.target as usize;
            }
            OpClass::JumpInd => {
                // Predict through the BTB; a miss predicts fall-through
                // (and will redirect at execute).
                next = self
                    .btb
                    .predict(pc)
                    .and_then(|t| self.program.index_of_pc(t))
                    .unwrap_or(inst_idx + 1);
                entry.predicted_next = next as u32;
            }
            OpClass::Call => {
                self.call_journal
                    .push_back((self.next_seq, CallDelta::Pushed));
                self.call_stack.push(inst_idx + 1);
                next = uop.target as usize;
            }
            OpClass::Ret => {
                // The decode-time call stack is exact along the fetched
                // path, so returns never mispredict in this model.
                match self.call_stack.pop() {
                    Some(ret_idx) => {
                        self.call_journal
                            .push_back((self.next_seq, CallDelta::Popped(ret_idx)));
                        next = ret_idx;
                    }
                    None => next = self.program.len(),
                }
            }
            OpClass::HfiEnter => {
                entry.hfi_gen_before = self.hfi_gen as u32;
                let Inst::HfiEnter { config } = self.program.inst(inst_idx) else {
                    unreachable!("plan class matches the backing instruction")
                };
                match self.hfi.enter(*config) {
                    Ok(_) => {}
                    Err(fault) => entry.fault = Some(fault),
                }
            }
            OpClass::HfiEnterChild => {
                entry.hfi_gen_before = self.hfi_gen as u32;
                let Inst::HfiEnterChild { config, regions } = self.program.inst(inst_idx) else {
                    unreachable!("plan class matches the backing instruction")
                };
                match self.hfi.enter_child(*config, **regions) {
                    Ok(_) => {}
                    Err(fault) => entry.fault = Some(fault),
                }
                // Loading the child register file costs a few cycles of
                // microcode (charged as front-end stall).
                self.fetch_stall_until =
                    self.cycle.max(self.fetch_stall_until) + self.costs.set_region_cycles;
            }
            OpClass::HfiExit => {
                entry.hfi_gen_before = self.hfi_gen as u32;
                match self.hfi.exit() {
                    Ok((disposition, _)) => match disposition {
                        ExitDisposition::FallThrough | ExitDisposition::SwitchedToParent => {}
                        ExitDisposition::JumpToHandler(handler) => {
                            next = self
                                .program
                                .index_of_pc(handler)
                                .unwrap_or(self.program.len());
                        }
                    },
                    Err(fault) => entry.fault = Some(fault),
                }
            }
            OpClass::HfiReenter => {
                entry.hfi_gen_before = self.hfi_gen as u32;
                if let Err(fault) = self.hfi.reenter() {
                    entry.fault = Some(fault);
                }
            }
            OpClass::HfiSetRegion => {
                entry.hfi_gen_before = self.hfi_gen as u32;
                let Inst::HfiSetRegion { slot, region } = self.program.inst(inst_idx) else {
                    unreachable!("plan class matches the backing instruction")
                };
                if let Err(fault) = self.hfi.set_region(*slot as usize, *region) {
                    entry.fault = Some(fault);
                }
                self.fetch_stall_until =
                    self.cycle.max(self.fetch_stall_until) + self.costs.set_region_cycles;
            }
            OpClass::HfiClearRegion => {
                entry.hfi_gen_before = self.hfi_gen as u32;
                if let Err(fault) = self.hfi.clear_region(uop.region as usize) {
                    entry.fault = Some(fault);
                }
            }
            OpClass::HfiClearAllRegions => {
                entry.hfi_gen_before = self.hfi_gen as u32;
                if let Err(fault) = self.hfi.clear_all_regions() {
                    entry.fault = Some(fault);
                }
            }
            // Straight-line classes: rename above was all they needed.
            _ => {}
        }

        if entry.hfi_gen_before != NO_GEN {
            self.bump_hfi_gen();
        }
        let seq = self.push_entry(entry);
        self.issue_queue.push((seq, NO_WAKE));
        self.fetch_index = next;
        true
    }

    /// Records the current HFI state as a new speculative generation.
    fn bump_hfi_gen(&mut self) {
        self.hfi_gen += 1;
        self.hfi_history.truncate(self.hfi_gen);
        self.hfi_history.push(self.hfi.clone());
    }

    /// Appends `entry` to the ROB, claiming the next sequence number and
    /// registering it with the rename table and store list. Returns the
    /// assigned seq.
    fn push_entry(&mut self, mut entry: RobEntry) -> u64 {
        let seq = self.next_seq;
        entry.hfi_gen = if entry.hfi_gen_before == NO_GEN {
            self.hfi_gen as u32
        } else {
            (self.hfi_gen as u32).min(entry.hfi_gen_before)
        };
        self.next_seq += 1;
        if self.rob.is_empty() {
            self.head_seq = seq;
        }
        if entry.dst != NO_REG {
            self.reg_writer[entry.dst as usize] = Some(seq);
        }
        if entry.has(EF_STORE) {
            self.store_seqs.push_back(seq);
        }
        self.rob.push_back(entry);
        seq
    }

    /// Handles a syscall with the ROB drained: consults HFI's microcode
    /// interposition check (§4.4), then either jumps to the exit handler
    /// or calls the OS model.
    fn handle_syscall(&mut self, inst_idx: usize) -> bool {
        let number = self.regs[0];
        // The native-mode decode check costs one extra cycle (§4.4).
        self.fetch_stall_until =
            self.cycle.max(self.fetch_stall_until) + self.costs.syscall_check_cycles;
        let disposition = self.hfi.syscall(number, SyscallKind::Syscall);
        self.bump_hfi_gen();
        match disposition {
            SyscallDisposition::Redirect(handler) => {
                self.stats.syscalls_redirected += 1;
                self.stats.committed += 1;
                // HFI gives the exit handler the interrupted PC (alongside
                // the MSR cause); modelled as an ABI register, r14.
                if inst_idx + 1 < self.program.len() {
                    self.regs[14] = self.program.pc_of(inst_idx + 1);
                }
                self.fetch_index = self
                    .program
                    .index_of_pc(handler)
                    .unwrap_or(self.program.len());
            }
            SyscallDisposition::Allow => {
                self.stats.syscalls_to_os += 1;
                self.stats.committed += 1;
                let outcome = self.os.syscall(number, &mut self.regs, &mut self.mem);
                self.fetch_stall_until = self.cycle.max(self.fetch_stall_until)
                    + self.costs.syscall_roundtrip_cycles
                    + outcome.extra_cycles;
                self.regs[0] = outcome.ret;
                if outcome.exit {
                    self.halted = Some(Stop::Exited { code: self.regs[1] });
                    return false;
                }
                self.fetch_index = inst_idx + 1;
            }
            SyscallDisposition::Fault => {
                self.deliver_fault_now(HfiFault::PrivilegedInstruction);
                return false;
            }
        }
        true
    }

    // ------------------------------------------------------------------
    // Execute.
    // ------------------------------------------------------------------

    fn execute(&mut self) {
        self.mem_ops_this_cycle = 0;
        self.alu_ops_this_cycle = 0;

        // Finish in-flight work: only the Executing entries are visited,
        // not the whole ROB. (Wakeup order is irrelevant — marking Done
        // has no other side effect.)
        if !self.in_flight.is_empty() {
            let cycle = self.cycle;
            let head_seq = self.head_seq;
            let rob = &mut self.rob;
            self.in_flight.retain(|&(seq, done_at)| {
                if done_at <= cycle {
                    rob[(seq - head_seq) as usize].state = EntryState::Done;
                    false
                } else {
                    true
                }
            });
        }

        // Issue ready entries (oldest first), respecting port limits. The
        // scan walks only the Waiting entries — `issue_queue` holds their
        // seqs in age order and is compacted in place — and every static
        // fact comes from the pre-decoded plan: no `Inst` match, no
        // allocation, no clone.
        let plan = Arc::clone(&self.plan);
        let mut redirect: Option<(usize, usize)> = None; // (rob index, correct next)
        let mut queue = std::mem::take(&mut self.issue_queue);
        let mut keep = 0usize; // entries [0..keep) stay queued
        let mut qi = 0usize;
        while qi < queue.len() {
            // When both port classes are exhausted nothing further can
            // issue this cycle (the remaining scan would be pure skips).
            if self.mem_ops_this_cycle >= self.config.mem_ports
                && self.alu_ops_this_cycle >= self.config.alu_ports
            {
                break;
            }
            let (seq, wake) = queue[qi];
            qi += 1;
            // Wake shortcut: still blocked on the memoized producer. The
            // full evaluation below would reach `wait_value` on this very
            // producer and requeue without side effects, so a one-check
            // skip is exact. (Port gating and operand memoization on the
            // skipped path mutate nothing observable.)
            if wake != NO_WAKE
                && wake >= self.head_seq
                && self.rob[(wake - self.head_seq) as usize].state != EntryState::Done
            {
                queue[keep] = (seq, wake);
                keep += 1;
                continue;
            }
            let i = (seq - self.head_seq) as usize;
            let inst_idx = self.rob[i].inst_idx as usize;
            let uop = plan.op(inst_idx);
            // Port gate. `GATE_MEM` is exactly `Inst::is_mem()`: `clflush`
            // addresses memory but competes for an ALU slot (and still
            // counts as a memory op below), faithfully to the seed.
            if uop.has(MicroOp::GATE_MEM) {
                if self.mem_ops_this_cycle >= self.config.mem_ports {
                    queue[keep] = (seq, NO_WAKE);
                    keep += 1;
                    continue;
                }
            } else if self.alu_ops_this_cycle >= self.config.alu_ports {
                queue[keep] = (seq, NO_WAKE);
                keep += 1;
                continue;
            }
            // Operand readiness; resolved waits are memoized in place so
            // later cycles skip the producer lookup. (Safe: the producer
            // is older than this consumer, so between its completion and
            // this issue no same-register commit can intervene.)
            let mut vals = [0u64; 3];
            let mut blocker = NO_WAKE;
            for (k, val) in vals.iter_mut().enumerate() {
                let src = self.rob[i].srcs[k];
                match src.tag {
                    SRC_NONE => {}
                    SRC_READY => *val = src.payload,
                    _ => match self.wait_value(src.payload, src.reg) {
                        Some(value) => {
                            *val = value;
                            self.rob[i].srcs[k] = Src::ready(value);
                        }
                        None => {
                            blocker = src.payload;
                            break;
                        }
                    },
                }
            }
            if blocker != NO_WAKE {
                queue[keep] = (seq, blocker);
                keep += 1;
                continue;
            }
            let v = |k: usize| vals[k];

            match uop.class {
                OpClass::AluRR => {
                    self.alu_ops_this_cycle += 1;
                    let value = alu_eval(uop.alu, v(0), v(1));
                    self.finish(i, value, uop.alu.latency());
                }
                OpClass::AluRI => {
                    self.alu_ops_this_cycle += 1;
                    let value = alu_eval(uop.alu, v(0), uop.imm as u64);
                    self.finish(i, value, uop.alu.latency());
                }
                OpClass::MovI => {
                    self.alu_ops_this_cycle += 1;
                    self.finish(i, uop.imm as u64, 1);
                }
                OpClass::Mov => {
                    self.alu_ops_this_cycle += 1;
                    let value = v(0);
                    self.finish(i, value, 1);
                }
                OpClass::Rdtsc => {
                    self.alu_ops_this_cycle += 1;
                    let now = self.cycle;
                    self.finish(i, now, 1);
                }
                OpClass::Nop | OpClass::Halt | OpClass::Cpuid | OpClass::Fence => {
                    self.alu_ops_this_cycle += 1;
                    self.finish(i, 0, 1);
                }
                OpClass::Jump | OpClass::Call | OpClass::Ret => {
                    self.alu_ops_this_cycle += 1;
                    self.finish(i, 0, 1);
                }
                OpClass::HfiEnter
                | OpClass::HfiEnterChild
                | OpClass::HfiExit
                | OpClass::HfiReenter
                | OpClass::HfiSetRegion
                | OpClass::HfiClearRegion
                | OpClass::HfiClearAllRegions => {
                    self.alu_ops_this_cycle += 1;
                    self.finish(i, 0, self.costs.enter_exit_base_cycles);
                }
                OpClass::Branch | OpClass::BranchI => {
                    self.alu_ops_this_cycle += 1;
                    let rhs = if uop.class == OpClass::Branch {
                        v(1)
                    } else {
                        uop.imm as u64
                    };
                    let taken = uop.cond.eval(v(0), rhs);
                    let actual = if taken {
                        uop.target as usize
                    } else {
                        inst_idx + 1
                    };
                    self.pht.update(plan.pc(inst_idx), taken);
                    if self.rob[i].predicted_next != actual as u32 {
                        redirect = Some((i, actual));
                    }
                    self.finish(i, 0, 1);
                    if redirect.is_some() {
                        break;
                    }
                }
                OpClass::JumpInd => {
                    self.alu_ops_this_cycle += 1;
                    let target_pc = v(0);
                    self.btb.update(plan.pc(inst_idx), target_pc);
                    match self.program.index_of_pc(target_pc) {
                        Some(actual) => {
                            if self.rob[i].predicted_next != actual as u32 {
                                redirect = Some((i, actual));
                            }
                        }
                        None => {
                            // Jump into unmapped/unaligned code: the
                            // fetch faults — as an HFI code-bounds
                            // violation when a sandbox is active, or a
                            // plain hardware fault otherwise.
                            let hfi = &self.hfi_history[self.rob[i].hfi_gen as usize];
                            self.rob[i].fault = Some(match hfi.check_fetch(target_pc, 1) {
                                Err(fault) => fault,
                                Ok(()) => HfiFault::Hardware { addr: target_pc },
                            });
                        }
                    }
                    self.finish(i, 0, 1);
                    if redirect.is_some() {
                        break;
                    }
                }
                OpClass::Flush => {
                    self.mem_ops_this_cycle += 1;
                    let addr = effective_address(v(0), v(1), uop.scale, uop.imm);
                    self.caches.flush_data(addr);
                    self.finish(i, 0, 3);
                }
                OpClass::Load => {
                    let mut addr = effective_address(v(0), v(1), uop.scale, uop.imm);
                    if let Some(hook) = self.chaos.as_deref_mut() {
                        addr = hook.perturb_ea(plan.pc(inst_idx), addr);
                    }
                    self.exec_load(i, addr, uop.size, false);
                }
                OpClass::Store => {
                    self.mem_ops_this_cycle += 1;
                    let mut addr = effective_address(v(0), v(1), uop.scale, uop.imm);
                    let mut skip = false;
                    if let Some(hook) = self.chaos.as_deref_mut() {
                        // The flipped address still faces the guard; skip
                        // models dropping the guard micro-op itself.
                        addr = hook.perturb_ea(plan.pc(inst_idx), addr);
                        skip = hook.skip_guard(plan.pc(inst_idx));
                    }
                    // Implicit-region check, parallel with the dtb: zero
                    // latency; a failure blocks the (commit-time) access.
                    if self.hfi_history[self.rob[i].hfi_gen as usize].enabled() {
                        self.stats.hfi_checks += 1;
                    }
                    let hfi = &self.hfi_history[self.rob[i].hfi_gen as usize];
                    if !skip {
                        if let Err(fault) = hfi.check_data(addr, uop.size as u64, Access::Write) {
                            self.rob[i].fault = Some(fault);
                        }
                    }
                    self.rob[i].mem_addr = addr;
                    self.rob[i].mem_size = uop.size;
                    self.rob[i].store_value = v(2);
                    self.rob[i].flags |= EF_HAS_STORE_VALUE;
                    self.finish(i, 0, 1);
                }
                OpClass::HmovLoad => {
                    // One check per dispatch attempt, exactly as the
                    // hardware would issue it — a store-dependence stall
                    // retries the check next cycle, so the counter ticks
                    // again even though the memoized outcome is reused.
                    self.stats.hfi_checks += 1;
                    if self.rob[i].has(EF_EA_KNOWN) {
                        let ea = self.rob[i].mem_addr;
                        self.exec_load(i, ea, uop.size, true);
                    } else {
                        let mut index = v(1) as i64;
                        let mut skip = false;
                        if let Some(hook) = self.chaos.as_deref_mut() {
                            // The flip lands upstream of the §4.2 guard.
                            index = hook.perturb_ea(plan.pc(inst_idx), index as u64) as i64;
                            skip = hook.skip_guard(plan.pc(inst_idx));
                        }
                        match self.hfi_history[self.rob[i].hfi_gen as usize].hmov_check_access(
                            uop.region,
                            index,
                            uop.scale as u64,
                            uop.imm,
                            uop.size as u64,
                            Access::Read,
                        ) {
                            Ok(ea) => {
                                self.rob[i].mem_addr = ea;
                                self.rob[i].flags |= EF_EA_KNOWN;
                                self.exec_load(i, ea, uop.size, true);
                            }
                            Err(fault) => {
                                // A dropped guard micro-op: the raw AGU
                                // address proceeds unchecked (fault
                                // injection only).
                                let unchecked = if skip {
                                    self.hfi_history[self.rob[i].hfi_gen as usize]
                                        .hmov_unchecked_ea(
                                            uop.region,
                                            index,
                                            uop.scale as u64,
                                            uop.imm,
                                        )
                                } else {
                                    None
                                };
                                match unchecked {
                                    Some(ea) => {
                                        self.rob[i].mem_addr = ea;
                                        self.rob[i].flags |= EF_EA_KNOWN;
                                        self.exec_load(i, ea, uop.size, true);
                                    }
                                    None => {
                                        // Failed hmov: no cache access at all.
                                        self.mem_ops_this_cycle += 1;
                                        self.rob[i].fault = Some(fault);
                                        self.finish(i, 0, 1);
                                    }
                                }
                            }
                        }
                    }
                }
                OpClass::HmovStore => {
                    self.mem_ops_this_cycle += 1;
                    self.stats.hfi_checks += 1;
                    let mut index = v(1) as i64;
                    let mut skip = false;
                    if let Some(hook) = self.chaos.as_deref_mut() {
                        index = hook.perturb_ea(plan.pc(inst_idx), index as u64) as i64;
                        skip = hook.skip_guard(plan.pc(inst_idx));
                    }
                    let resolved = match self.hfi_history[self.rob[i].hfi_gen as usize]
                        .hmov_check_access(
                            uop.region,
                            index,
                            uop.scale as u64,
                            uop.imm,
                            uop.size as u64,
                            Access::Write,
                        ) {
                        Ok(ea) => Ok(ea),
                        Err(fault) => match self.hfi_history[self.rob[i].hfi_gen as usize]
                            .hmov_unchecked_ea(uop.region, index, uop.scale as u64, uop.imm)
                        {
                            Some(ea) if skip => Ok(ea),
                            _ => Err(fault),
                        },
                    };
                    match resolved {
                        Ok(ea) => {
                            self.rob[i].mem_addr = ea;
                            self.rob[i].mem_size = uop.size;
                            self.rob[i].store_value = v(2);
                            self.rob[i].flags |= EF_HAS_STORE_VALUE;
                            self.finish(i, 0, 1);
                        }
                        Err(fault) => {
                            self.rob[i].fault = Some(fault);
                            self.finish(i, 0, 1);
                        }
                    }
                }
                OpClass::Syscall => unreachable!("syscalls handled at decode"),
            }
            // A load can return from `exec_load` without issuing (store
            // dependence: unknown address or partial overlap): it stays
            // Waiting and must remain queued for the next cycle. No wake
            // memo here — the retry must re-enter the dispatch arm (hmov
            // loads count a check per attempt); the entry-level
            // `EF_DEP_*` memo makes that retry cheap instead.
            if self.rob[i].state == EntryState::Waiting {
                queue[keep] = (seq, NO_WAKE);
                keep += 1;
            }
        }
        // Entries not yet visited (early break) stay queued, in order.
        queue.copy_within(qi.., keep);
        queue.truncate(keep + (queue.len() - qi));
        self.issue_queue = queue;

        if let Some((rob_idx, correct_next)) = redirect {
            self.stats.mispredicts += 1;
            self.squash_after(rob_idx);
            self.fetch_index = correct_next;
            // The refill penalty may not cancel a longer pending stall
            // (e.g. a kernel round trip).
            self.fetch_stall_until = self
                .fetch_stall_until
                .max(self.cycle + self.config.redirect_penalty);
        }
    }

    /// Executes a load: HFI check first (zero latency, parallel with the
    /// dtb); only a *passing* check reaches the cache — speculative or not.
    fn exec_load(&mut self, i: usize, addr: u64, size: u8, is_hmov: bool) {
        // Memoized verdict from an earlier stalled scan: while the
        // recorded store is still blocking, the full scan below would
        // reach the same store and stall again (older stores only
        // resolve; none are inserted), so skip it. The memo re-arms on
        // every fresh stall, and dies with the entry on squash.
        if self.rob[i].flags & (EF_DEP_ADDR | EF_DEP_COMMIT) != 0 {
            let dep = self.rob[i].store_value;
            let still_blocked = if dep < self.head_seq {
                false // blocking store committed: rescan
            } else if self.rob[i].has(EF_DEP_ADDR) {
                // Blocked on an unknown store address; rescan once the
                // store dispatches (its `mem_size` becomes nonzero).
                self.rob[(dep - self.head_seq) as usize].mem_size == 0
            } else {
                // Partial overlap: fixed until the store commits.
                true
            };
            if still_blocked {
                return;
            }
            self.rob[i].flags &= !(EF_DEP_ADDR | EF_DEP_COMMIT);
        }
        // Older-store dependence, scanned youngest-first so the most
        // recent matching store wins: wait for unknown addresses; forward
        // on exact overlap; wait for commit on partial overlap. Only the
        // in-flight stores are walked, not the whole ROB.
        let load_seq = self.head_seq + i as u64;
        for &store_seq in self.store_seqs.iter().rev() {
            if store_seq >= load_seq {
                continue;
            }
            let j = (store_seq - self.head_seq) as usize;
            let ssize = self.rob[j].mem_size;
            if ssize == 0 {
                // Address unknown: stall, and remember which store to
                // watch so retries skip the scan.
                self.rob[i].store_value = store_seq;
                self.rob[i].flags |= EF_DEP_ADDR;
                return;
            }
            let saddr = self.rob[j].mem_addr;
            let overlap = saddr < addr + size as u64 && addr < saddr + ssize as u64;
            if overlap {
                if saddr == addr && ssize == size && self.rob[j].has(EF_HAS_STORE_VALUE) {
                    // Store-to-load forwarding.
                    self.mem_ops_this_cycle += 1;
                    let masked = mask_to_size(self.rob[j].store_value, size);
                    self.rob[i].flags &= !EF_CACHE_ACCESSED;
                    self.finish(i, masked, self.caches.latencies.l1);
                    return;
                }
                // Partial overlap: wait for the store to drain.
                self.rob[i].store_value = store_seq;
                self.rob[i].flags |= EF_DEP_COMMIT;
                return;
            }
        }
        self.mem_ops_this_cycle += 1;
        if !is_hmov {
            if self.hfi_history[self.rob[i].hfi_gen as usize].enabled() {
                self.stats.hfi_checks += 1;
            }
            let mut skip = false;
            if let Some(hook) = self.chaos.as_deref_mut() {
                skip = hook.skip_guard(self.plan.pc(self.rob[i].inst_idx as usize));
            }
            let hfi = &self.hfi_history[self.rob[i].hfi_gen as usize];
            if !skip {
                if let Err(fault) = hfi.check_data(addr, size as u64, Access::Read) {
                    // The bounds check fails before the physical address
                    // resolves: the cache is not touched (paper §4.1). The
                    // load completes as a faulting NOP.
                    self.rob[i].fault = Some(fault);
                    self.finish(i, 0, 1);
                    return;
                }
            }
        }
        // Cache access happens here, at execute — speculatively. This is
        // the Spectre transmission channel.
        let latency = self.caches.data_access(addr, self.cycle);
        self.rob[i].flags |= EF_CACHE_ACCESSED;
        let value = mask_to_size(self.mem.read(addr, size), size);
        self.rob[i].mem_addr = addr;
        self.rob[i].mem_size = size;
        self.finish(i, value, latency);
    }

    fn finish(&mut self, i: usize, value: u64, latency: u64) {
        let mut value = value;
        if self.chaos.is_some() {
            let inst_idx = self.rob[i].inst_idx as usize;
            let pc = self.plan.pc(inst_idx);
            let transition = self.plan.op(inst_idx).has(MicroOp::TRANSITION);
            let dst = self.rob[i].dst;
            if let Some(hook) = self.chaos.as_deref_mut() {
                // Result-bus corruption: the flipped value is what writeback
                // and every dependent operand will observe.
                value = hook.perturb_result(pc, value);
                // Springboard corruption: a zeroing or stack-switch op whose
                // write never landed leaves host-pointer-like junk instead.
                if transition && dst != NO_REG && hook.corrupt_transition(pc) {
                    value = crate::chaos::transition_junk(pc);
                }
            }
        }
        self.rob[i].value = value;
        self.rob[i].state = EntryState::Executing;
        self.in_flight
            .push((self.head_seq + i as u64, self.cycle + latency.max(1)));
    }

    fn squash_after(&mut self, rob_idx: usize) {
        let squash_seq = self.head_seq + rob_idx as u64;
        // Restore HFI state (and its generation) from the oldest squashed
        // HFI op: its pre-op generation entry in the history is exactly
        // the context state just before the first wrong-path mutation.
        for entry in self.rob.range(rob_idx + 1..) {
            if entry.hfi_gen_before != NO_GEN {
                let gen = entry.hfi_gen_before as usize;
                self.hfi = self.hfi_history[gen].clone();
                self.hfi_gen = gen;
                self.hfi_history.truncate(gen + 1);
                break;
            }
        }
        // Unwind the decode-time call stack by replaying the wrong-path
        // deltas in reverse (youngest first).
        while let Some(&(seq, delta)) = self.call_journal.back() {
            if seq <= squash_seq {
                break;
            }
            self.call_journal.pop_back();
            match delta {
                CallDelta::Pushed => {
                    self.call_stack.pop();
                }
                CallDelta::Popped(ret_idx) => self.call_stack.push(ret_idx),
            }
        }
        let squashed = self.rob.len() - (rob_idx + 1);
        self.stats.squashed += squashed as u64;
        self.stats.squashed_loads_executed += self
            .rob
            .range(rob_idx + 1..)
            .filter(|e| e.has(EF_LOAD) && e.has(EF_CACHE_ACCESSED))
            .count() as u64;
        self.rob.truncate(rob_idx + 1);
        // Reuse the squashed sequence numbers: every reference above
        // `squash_seq` (journal, store list, rename table, scheduling
        // lists, operand waits) is pruned with the tail, and the
        // `seq -> ring index` arithmetic needs the live window to stay
        // consecutive.
        self.next_seq = squash_seq + 1;
        while self.store_seqs.back().is_some_and(|&s| s > squash_seq) {
            self.store_seqs.pop_back();
        }
        self.issue_queue.retain(|&(s, _)| s <= squash_seq);
        self.in_flight.retain(|&(s, _)| s <= squash_seq);
        self.rebuild_reg_writer();
    }

    // ------------------------------------------------------------------
    // Commit.
    // ------------------------------------------------------------------

    fn commit(&mut self) {
        let plan = Arc::clone(&self.plan);
        for _ in 0..self.config.commit_width {
            let Some(entry) = self.rob.front() else {
                return;
            };
            if !matches!(entry.state, EntryState::Done) {
                return;
            }
            let entry = self.rob.pop_front().expect("front just checked");
            let seq = self.head_seq;
            self.head_seq += 1;
            // A committed entry retires its rename-table claim (unless a
            // younger in-flight producer has already superseded it) and
            // drains its journal entries: deltas at or below a committed
            // seq can never be squashed.
            if entry.dst != NO_REG && self.reg_writer[entry.dst as usize] == Some(seq) {
                self.reg_writer[entry.dst as usize] = None;
            }
            if entry.has(EF_STORE) {
                debug_assert_eq!(self.store_seqs.front(), Some(&seq));
                self.store_seqs.pop_front();
            }
            while self
                .call_journal
                .front()
                .is_some_and(|&(journal_seq, _)| journal_seq <= seq)
            {
                self.call_journal.pop_front();
            }
            // Springboard entry assertion: at commit of `hfi_enter` the
            // architectural register file must satisfy the program's
            // declared transition contract. Checked before any decode-time
            // enter fault, matching the functional executor, which asserts
            // the contract before calling `enter` at all.
            if plan.op(entry.inst_idx as usize).class == OpClass::HfiEnter {
                if let Some(contract) = self.program.contract() {
                    let pc = plan.pc(entry.inst_idx as usize);
                    let mut skip = false;
                    if let Some(hook) = self.chaos.as_deref_mut() {
                        skip = hook.skip_transition_check(pc);
                    }
                    if !skip {
                        if let Some(reg) = contract.first_violation(&self.regs) {
                            let fault = HfiFault::TransitionContract { reg };
                            if let Some(hook) = self.chaos.as_deref_mut() {
                                hook.observe(&ArchEvent::Fault { pc, fault });
                            }
                            // The speculative decode-time enter must not
                            // become architectural: rewind to the pre-enter
                            // context so the fault is delivered outside the
                            // sandbox, exactly as the functional executor
                            // delivers it.
                            if entry.hfi_gen_before != NO_GEN {
                                let gen = entry.hfi_gen_before as usize;
                                self.hfi = self.hfi_history[gen].clone();
                                self.hfi_gen = gen;
                                self.hfi_history.truncate(gen + 1);
                            }
                            self.deliver_fault_now(fault);
                            return;
                        }
                    }
                }
            }
            if let Some(fault) = entry.fault {
                if let Some(hook) = self.chaos.as_deref_mut() {
                    hook.observe(&ArchEvent::Fault {
                        pc: plan.pc(entry.inst_idx as usize),
                        fault,
                    });
                }
                self.deliver_fault_now(fault);
                return;
            }
            self.stats.committed += 1;
            let uop = plan.op(entry.inst_idx as usize);
            if uop.has(MicroOp::BRANCH_STAT) {
                self.stats.branches += 1;
            }
            if entry.dst != NO_REG {
                self.regs[entry.dst as usize] = entry.value;
            }
            if entry.has(EF_STORE) && entry.mem_size > 0 && entry.has(EF_HAS_STORE_VALUE) {
                self.mem
                    .write(entry.mem_addr, entry.store_value, entry.mem_size);
                // Stores update the cache at commit (never
                // speculatively).
                let now = self.cycle;
                self.caches.data_access(entry.mem_addr, now);
            }
            if self.chaos.is_some() {
                // The entry's architectural HFI state is the generation it
                // decoded under (everything older has already committed),
                // not the speculative decode-tip `self.hfi`.
                let sandboxed = self.hfi_history[entry.hfi_gen as usize].enabled();
                let pc = plan.pc(entry.inst_idx as usize);
                if let Some(hook) = self.chaos.as_deref_mut() {
                    hook.observe(&ArchEvent::Retire {
                        pc,
                        len: uop.len,
                        sandboxed,
                    });
                    if entry.has(EF_LOAD) && entry.mem_size > 0 {
                        hook.observe(&ArchEvent::Mem {
                            pc,
                            addr: entry.mem_addr,
                            size: entry.mem_size,
                            access: Access::Read,
                            hmov: (uop.class == OpClass::HmovLoad).then_some(uop.region),
                            sandboxed,
                        });
                    }
                    if entry.has(EF_STORE) && entry.mem_size > 0 && entry.has(EF_HAS_STORE_VALUE) {
                        hook.observe(&ArchEvent::Mem {
                            pc,
                            addr: entry.mem_addr,
                            size: entry.mem_size,
                            access: Access::Write,
                            hmov: (uop.class == OpClass::HmovStore).then_some(uop.region),
                            sandboxed,
                        });
                    }
                }
                // Between-instruction perturbations: a region-register bit
                // flip must propagate into the speculative-generation
                // history (in-flight entries keep their pre-flip state,
                // matching hardware where already-issued checks used the
                // old comparator inputs); a predictor clobber is purely
                // microarchitectural.
                let mut corrupted = false;
                let mut clobber = false;
                if let Some(hook) = self.chaos.as_deref_mut() {
                    corrupted = hook.corrupt_context(&mut self.hfi);
                    clobber = hook.clobber_predictors();
                }
                if corrupted {
                    self.bump_hfi_gen();
                }
                if clobber {
                    self.pht = PatternHistoryTable::new(4096);
                    self.btb = BranchTargetBuffer::new(512);
                }
            }
            if uop.class == OpClass::Halt {
                self.halted = Some(Stop::Halted);
                return;
            }
        }
    }

    /// Delivers a fault architecturally: squash everything younger, let
    /// HFI disable the sandbox and record the MSR, then redirect to the
    /// exit handler or the OS signal handler.
    fn deliver_fault_now(&mut self, fault: HfiFault) {
        self.stats.faults += 1;
        self.stats.squashed += self.rob.len() as u64;
        self.rob.clear();
        self.head_seq = self.next_seq;
        self.issue_queue.clear();
        self.in_flight.clear();
        self.reg_writer = [None; 16];
        self.store_seqs.clear();
        self.call_journal.clear();
        let disposition = self.hfi.deliver_fault(fault);
        self.bump_hfi_gen();
        let target = match disposition {
            ExitDisposition::JumpToHandler(handler) => {
                // Native-sandbox faults reach the handler via the OS
                // signal path (SIGSEGV → runtime handler), which is slow.
                self.fetch_stall_until = self.cycle + self.config.signal_delivery;
                self.program.index_of_pc(handler)
            }
            ExitDisposition::FallThrough | ExitDisposition::SwitchedToParent => {
                self.fetch_stall_until = self.cycle + self.config.signal_delivery;
                self.signal_handler
                    .and_then(|h| self.program.index_of_pc(h))
            }
        };
        match target {
            Some(index) => self.fetch_index = index,
            None => self.halted = Some(Stop::Fault(fault)),
        }
    }

    // ------------------------------------------------------------------
    // Top level.
    // ------------------------------------------------------------------

    /// Runs until halt, unhandled fault, or `max_cycles`.
    pub fn run(&mut self, max_cycles: u64) -> RunResult {
        while self.halted.is_none() && self.cycle < max_cycles {
            // Stall fast-forward: with the ROB empty and the front end
            // stalled (kernel round trip, signal delivery, serialization
            // drain), every intervening cycle is architecturally empty —
            // commit and execute see no entries and the frontend's stall
            // check returns before any side effect. Jump to the wakeup.
            if self.rob.is_empty() && self.cycle < self.fetch_stall_until {
                self.cycle = self.fetch_stall_until.min(max_cycles);
                continue;
            }
            self.commit();
            if self.halted.is_some() {
                break;
            }
            self.execute();
            self.frontend();
            self.cycle += 1;

            // Deadlock safety: nothing in flight and nothing to fetch.
            if self.rob.is_empty()
                && self.fetch_index >= self.program.len()
                && self.cycle >= self.fetch_stall_until
            {
                break;
            }
        }
        let stop = self.halted.clone().unwrap_or(Stop::CycleLimit);
        RunResult {
            cycles: self.cycle,
            stop,
            stats: self.stats,
            regs: self.regs,
            exit_reason: self.hfi.exit_reason(),
        }
    }
}

fn mask_to_size(value: u64, size: u8) -> u64 {
    match size {
        1 => value & 0xFF,
        2 => value & 0xFFFF,
        4 => value & 0xFFFF_FFFF,
        _ => value,
    }
}

/// The plan's effective-address template: `base + index * scale + disp`.
/// Unset operand slots contribute zero (their `vals` entry is never
/// written), which reproduces `MemOperand`'s optional-base/index
/// semantics for every addressing mode.
fn effective_address(base: u64, index: u64, scale: u8, disp: i64) -> u64 {
    base.wrapping_add(index.wrapping_mul(scale as u64))
        .wrapping_add(disp as u64)
}

fn alu_eval(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => a.checked_div(b).unwrap_or(0),
        AluOp::Rem => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => a << (b & 63),
        AluOp::Shr => a >> (b & 63),
        AluOp::Sar => ((a as i64) >> (b & 63)) as u64,
        AluOp::SltU => (a < b) as u64,
        AluOp::Slt => ((a as i64) < (b as i64)) as u64,
        AluOp::Seq => (a == b) as u64,
        AluOp::Rotl => a.rotate_left((b & 63) as u32),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::ProgramBuilder;
    use crate::isa::{Cond, MemOperand};
    use hfi_core::region::{ExplicitDataRegion, ImplicitCodeRegion, ImplicitDataRegion};
    use hfi_core::{Region, SandboxConfig};

    const CODE_BASE: u64 = 0x40_0000;

    fn run_program(asm: ProgramBuilder) -> RunResult {
        let mut machine = Machine::new(asm.finish());
        machine.run(1_000_000)
    }

    #[test]
    fn arithmetic_loop() {
        let mut asm = ProgramBuilder::new(CODE_BASE);
        let (r0, r1) = (Reg(0), Reg(1));
        asm.movi(r0, 0);
        asm.movi(r1, 100);
        let top = asm.label_here("top");
        asm.alu_ri(AluOp::Add, r0, r0, 7);
        asm.alu_ri(AluOp::Sub, r1, r1, 1);
        asm.branch_i(Cond::Ne, r1, 0, top);
        asm.halt();
        let result = run_program(asm);
        assert_eq!(result.stop, Stop::Halted);
        assert_eq!(result.regs[0], 700);
    }

    #[test]
    fn loads_and_stores_roundtrip() {
        let mut asm = ProgramBuilder::new(CODE_BASE);
        let (r0, r1) = (Reg(0), Reg(1));
        asm.movi(r0, 0xABCD);
        asm.movi(r1, 0x1_0000);
        asm.store(r0, MemOperand::base_disp(r1, 0x10), 8);
        asm.load(Reg(2), MemOperand::base_disp(r1, 0x10), 8);
        asm.halt();
        let result = run_program(asm);
        assert_eq!(result.regs[2], 0xABCD);
    }

    #[test]
    fn store_load_forwarding_partial_sizes() {
        let mut asm = ProgramBuilder::new(CODE_BASE);
        asm.movi(Reg(0), 0x1122_3344);
        asm.movi(Reg(1), 0x2_0000);
        asm.store(Reg(0), MemOperand::base_disp(Reg(1), 0), 4);
        asm.load(Reg(2), MemOperand::base_disp(Reg(1), 0), 1);
        asm.halt();
        let result = run_program(asm);
        assert_eq!(result.regs[2], 0x44);
    }

    #[test]
    fn call_and_ret() {
        let mut asm = ProgramBuilder::new(CODE_BASE);
        let func = asm.label();
        let done = asm.label();
        asm.movi(Reg(0), 5);
        asm.call(func);
        asm.jump(done);
        asm.place(func);
        asm.alu_ri(AluOp::Mul, Reg(0), Reg(0), 3);
        asm.ret();
        asm.place(done);
        asm.halt();
        let result = run_program(asm);
        assert_eq!(result.regs[0], 15);
    }

    #[test]
    fn mispredicted_branch_still_computes_correctly() {
        // Alternating branch defeats the 2-bit counter; results must be
        // exact regardless.
        let mut asm = ProgramBuilder::new(CODE_BASE);
        let (r0, r1, r2) = (Reg(0), Reg(1), Reg(2));
        asm.movi(r0, 0); // accumulator
        asm.movi(r1, 50); // trip count
        asm.movi(r2, 0); // parity
        let top = asm.label_here("top");
        let skip = asm.label();
        asm.branch_i(Cond::Ne, r2, 0, skip);
        asm.alu_ri(AluOp::Add, r0, r0, 10);
        asm.place(skip);
        asm.alu_ri(AluOp::Xor, r2, r2, 1);
        asm.alu_ri(AluOp::Sub, r1, r1, 1);
        asm.branch_i(Cond::Ne, r1, 0, top);
        asm.halt();
        let result = run_program(asm);
        // 25 even iterations add 10 each.
        assert_eq!(result.regs[0], 250);
        assert!(result.stats.mispredicts > 0);
    }

    #[test]
    fn rdtsc_monotonic_and_fence() {
        let mut asm = ProgramBuilder::new(CODE_BASE);
        asm.rdtsc(Reg(0));
        asm.fence();
        asm.movi(Reg(2), 0x3_0000);
        asm.load(Reg(3), MemOperand::base_disp(Reg(2), 0), 8);
        asm.fence();
        asm.rdtsc(Reg(1));
        asm.halt();
        let result = run_program(asm);
        assert!(result.regs[1] > result.regs[0]);
    }

    #[test]
    fn hfi_oob_load_faults_and_halts() {
        let mut asm = ProgramBuilder::new(CODE_BASE);
        let code = ImplicitCodeRegion::new(CODE_BASE, 0xFFFF, true).unwrap();
        let data = ImplicitDataRegion::new(0x10_0000, 0xFFFF, true, true).unwrap();
        asm.hfi_set_region(0, Region::Code(code));
        asm.hfi_set_region(2, Region::Data(data));
        asm.hfi_enter(SandboxConfig::hybrid());
        asm.movi(Reg(0), 0x20_0000); // outside the data region
        asm.load(Reg(1), MemOperand::base_disp(Reg(0), 0), 8);
        asm.halt();
        let result = run_program(asm);
        match result.stop {
            Stop::Fault(HfiFault::DataBounds { addr, .. }) => assert_eq!(addr, 0x20_0000),
            other => panic!("expected data-bounds fault, got {other:?}"),
        }
    }

    #[test]
    fn hfi_in_bounds_load_succeeds() {
        let mut asm = ProgramBuilder::new(CODE_BASE);
        let code = ImplicitCodeRegion::new(CODE_BASE, 0xFFFF, true).unwrap();
        let data = ImplicitDataRegion::new(0x10_0000, 0xFFFF, true, true).unwrap();
        asm.hfi_set_region(0, Region::Code(code));
        asm.hfi_set_region(2, Region::Data(data));
        asm.hfi_enter(SandboxConfig::hybrid());
        asm.movi(Reg(0), 0x10_0100);
        asm.movi(Reg(2), 99);
        asm.store(Reg(2), MemOperand::base_disp(Reg(0), 0), 8);
        asm.load(Reg(1), MemOperand::base_disp(Reg(0), 0), 8);
        asm.hfi_exit();
        asm.halt();
        let result = run_program(asm);
        assert_eq!(result.stop, Stop::Halted);
        assert_eq!(result.regs[1], 99);
    }

    #[test]
    fn hmov_executes_relative_to_region() {
        let mut asm = ProgramBuilder::new(CODE_BASE);
        let code = ImplicitCodeRegion::new(CODE_BASE, 0xFFFF, true).unwrap();
        let heap = ExplicitDataRegion::large(0x100_0000, 1 << 16, true, true).unwrap();
        asm.hfi_set_region(0, Region::Code(code));
        asm.hfi_set_region(6, Region::Explicit(heap));
        asm.hfi_enter(SandboxConfig::hybrid());
        asm.movi(Reg(0), 1234);
        asm.hmov_store(0, Reg(0), crate::isa::HmovOperand::disp(0x40), 8);
        asm.hmov_load(0, Reg(1), crate::isa::HmovOperand::disp(0x40), 8);
        asm.hfi_exit();
        asm.halt();
        let mut machine = Machine::new(asm.finish());
        let result = machine.run(100_000);
        assert_eq!(result.stop, Stop::Halted);
        assert_eq!(result.regs[1], 1234);
        // The value must physically live at region base + 0x40.
        assert_eq!(machine.mem.read(0x100_0040, 8), 1234);
    }

    #[test]
    fn hmov_oob_faults() {
        let mut asm = ProgramBuilder::new(CODE_BASE);
        let code = ImplicitCodeRegion::new(CODE_BASE, 0xFFFF, true).unwrap();
        let heap = ExplicitDataRegion::large(0x100_0000, 1 << 16, true, true).unwrap();
        asm.hfi_set_region(0, Region::Code(code));
        asm.hfi_set_region(6, Region::Explicit(heap));
        asm.hfi_enter(SandboxConfig::hybrid());
        asm.hmov_load(0, Reg(1), crate::isa::HmovOperand::disp(1 << 16), 8);
        asm.halt();
        let result = run_program(asm);
        assert!(matches!(result.stop, Stop::Fault(HfiFault::Hmov { .. })));
    }

    #[test]
    fn code_region_blocks_oob_fetch() {
        // Jump to code past the code region bound: decode turns it into a
        // faulting NOP.
        let mut asm = ProgramBuilder::new(CODE_BASE);
        // A tiny code region covering only the first few instructions.
        let code = ImplicitCodeRegion::new(CODE_BASE, 0xF, true).unwrap();
        asm.hfi_set_region(0, Region::Code(code)); // 6 bytes
        asm.hfi_enter(SandboxConfig::hybrid()); // 4 bytes -> next pc 0x40000A
        for _ in 0..12 {
            asm.nop(); // crosses past CODE_BASE + 0xF after 6 nops
        }
        asm.halt();
        let result = run_program(asm);
        assert!(
            matches!(result.stop, Stop::Fault(HfiFault::CodeBounds { .. })),
            "got {:?}",
            result.stop
        );
    }

    #[test]
    fn serialized_enter_drains_pipeline() {
        let code = ImplicitCodeRegion::new(CODE_BASE, 0xFFFF, true).unwrap();
        let mut base_asm = ProgramBuilder::new(CODE_BASE);
        base_asm.hfi_set_region(0, Region::Code(code));
        base_asm.hfi_enter(SandboxConfig::hybrid());
        for _ in 0..50 {
            base_asm.nop();
        }
        base_asm.hfi_exit();
        base_asm.halt();
        let unserialized = run_program(base_asm).cycles;

        let mut ser_asm = ProgramBuilder::new(CODE_BASE);
        ser_asm.hfi_set_region(0, Region::Code(code));
        ser_asm.hfi_enter(SandboxConfig::hybrid().serialized());
        for _ in 0..50 {
            ser_asm.nop();
        }
        ser_asm.hfi_exit();
        ser_asm.halt();
        let result = run_program(ser_asm);
        let serialized = result.cycles;
        let costs = CostModel::default();
        // Both edges serialized; the drains partially overlap with cold
        // i-cache miss stalls, so require at least one full drain cost.
        assert_eq!(result.stats.serializations, 2);
        assert!(
            serialized >= unserialized + costs.serialize_cycles,
            "serialized {serialized} vs unserialized {unserialized}"
        );
    }

    #[test]
    fn native_syscall_redirects_to_handler() {
        let mut asm = ProgramBuilder::new(CODE_BASE);
        let handler = asm.label();
        let sandbox = asm.label();
        let code = ImplicitCodeRegion::new(CODE_BASE, 0xFFFF, true).unwrap();
        asm.hfi_set_region(0, Region::Code(code));
        // We need the handler's byte pc; build in two passes: place the
        // sandbox code after the enter, handler at a known label.
        asm.jump(sandbox);
        asm.place(handler);
        asm.movi(Reg(5), 777); // proof the handler ran
        asm.halt();
        asm.place(sandbox);
        // Patch: enter native sandbox with the handler's pc. We cheat by
        // computing the pc after finish(); instead, use a fixed layout:
        // rebuild with known addresses.
        let prog = asm.finish();
        let handler_pc = prog.pc_of(2); // jump=1 inst at idx1? verify below
                                        // Rebuild properly now that we know the layout.
        let mut asm2 = ProgramBuilder::new(CODE_BASE);
        let handler2 = asm2.label();
        let sandbox2 = asm2.label();
        asm2.hfi_set_region(0, Region::Code(code)); // idx 0
        asm2.jump(sandbox2); // idx 1
        asm2.place(handler2);
        asm2.movi(Reg(5), 777); // idx 2
        asm2.halt(); // idx 3
        asm2.place(sandbox2);
        asm2.hfi_enter(SandboxConfig::native(handler_pc)); // idx 4
        asm2.movi(Reg(0), 42); // syscall number
        asm2.syscall();
        asm2.halt();
        let prog2 = asm2.finish();
        assert_eq!(prog2.pc_of(2), handler_pc);
        let mut machine = Machine::new(prog2);
        let result = machine.run(100_000);
        assert_eq!(result.stop, Stop::Halted);
        assert_eq!(result.regs[5], 777);
        assert_eq!(result.stats.syscalls_redirected, 1);
        assert_eq!(
            result.exit_reason,
            Some(ExitReason::Syscall {
                number: 42,
                kind: SyscallKind::Syscall
            })
        );
    }

    #[test]
    fn hybrid_syscall_reaches_os() {
        let mut asm = ProgramBuilder::new(CODE_BASE);
        let code = ImplicitCodeRegion::new(CODE_BASE, 0xFFFF, true).unwrap();
        asm.hfi_set_region(0, Region::Code(code));
        asm.hfi_enter(SandboxConfig::hybrid());
        asm.movi(Reg(0), 7);
        asm.syscall();
        asm.hfi_exit();
        asm.halt();
        let result = run_program(asm);
        assert_eq!(result.stop, Stop::Halted);
        assert_eq!(result.stats.syscalls_to_os, 1);
    }

    #[test]
    fn exit_syscall_stops_machine() {
        let mut asm = ProgramBuilder::new(CODE_BASE);
        asm.movi(Reg(1), 3); // exit code
        asm.movi(Reg(0), 0); // syscall 0 = exit
        asm.syscall();
        asm.halt();
        let result = run_program(asm);
        assert_eq!(result.stop, Stop::Exited { code: 3 });
    }

    #[test]
    fn speculative_load_fills_cache_after_squash() {
        // Branch depends on a slow (cold) load; the wrong-path load warms
        // a probe line that survives the squash — the Spectre channel.
        let probe_addr: i64 = 0x8_0000;
        let mut asm = ProgramBuilder::new(CODE_BASE);
        let skip = asm.label();
        asm.movi(Reg(1), 0x6_0000);
        asm.flush(MemOperand::base_disp(Reg(1), 0)); // make the condition load slow
                                                     // Train the branch taken? Here the PHT inits weakly-taken, so the
                                                     // first prediction is taken; condition resolves to not-taken.
        asm.load(Reg(2), MemOperand::base_disp(Reg(1), 0), 8); // slow, value 0
        asm.branch_i(Cond::Eq, Reg(2), 0, skip); // actually taken... invert:
                                                 // wrong-path body below executes only speculatively if predicted
                                                 // not-taken; to keep it simple we instead make the *taken* target
                                                 // skip, and put the leak on the fall-through (wrong) path when the
                                                 // branch is actually taken but predicted not-taken is impossible
                                                 // with weak-taken init. So: flip with a pre-training loop is
                                                 // overkill for a unit test — directly verify both outcomes below.
        asm.movi(Reg(3), probe_addr);
        asm.load(Reg(4), MemOperand::base_disp(Reg(3), 0), 8); // wrong path
        asm.place(skip);
        asm.halt();
        let mut machine = Machine::new(asm.finish());
        let result = machine.run(100_000);
        assert_eq!(result.stop, Stop::Halted);
        // If any wrong-path load executed, its line must still be warm.
        if result.stats.squashed_loads_executed > 0 {
            assert!(machine.caches.probe_l1d(probe_addr as u64));
        }
    }

    #[test]
    fn rob_fills_and_drains_without_deadlock() {
        let mut asm = ProgramBuilder::new(CODE_BASE);
        asm.movi(Reg(1), 0x9_0000);
        for i in 0..600 {
            asm.load(Reg(2), MemOperand::base_disp(Reg(1), (i % 7) * 64), 8);
        }
        asm.halt();
        let result = run_program(asm);
        assert_eq!(result.stop, Stop::Halted);
        assert_eq!(result.stats.committed, 602);
    }
}
