//! The out-of-order core model — this repository's gem5 substitute.
//!
//! A ROB-based speculative pipeline with the structure of the paper's
//! baseline (Table 2): wide fetch/decode, register renaming, out-of-order
//! issue, L1/L2 caches, a dTLB, PHT/BTB prediction, and squash-on-
//! mispredict. Three properties matter for reproducing the paper and are
//! modelled faithfully:
//!
//! 1. **Speculative loads touch the data cache.** A load executes as soon
//!    as its operands are ready, even under an unresolved branch; its cache
//!    fill survives the squash. This is the Spectre channel of Fig. 7.
//! 2. **HFI checks cost zero latency and gate the cache.** Implicit-region
//!    and `hmov` checks happen "in parallel with the dTLB lookup" (Fig. 1):
//!    they add no cycles, and a *failing* check prevents the cache access
//!    entirely — speculatively or not — which is HFI's Spectre defence.
//! 3. **Code-region checks happen at decode.** An out-of-bounds fetch
//!    decodes to a faulting NOP; the bad instruction never enters the
//!    pipeline, even speculatively (paper §4.1).
//!
//! Serialization (`cpuid`, `is-serialized` enter/exit, in-sandbox region
//! updates) drains the ROB at decode and charges the §3.4 pipeline cost.

use std::collections::VecDeque;
use std::sync::Arc;

use hfi_core::{
    Access, CostModel, ExitDisposition, ExitReason, HfiContext, HfiFault, SyscallDisposition,
    SyscallKind,
};

use crate::cache::CacheHierarchy;
use crate::isa::{AluOp, Inst, MemOperand, Program, Reg};
use crate::mem::SparseMemory;
use crate::predictor::{BranchTargetBuffer, PatternHistoryTable};

/// Structural parameters of the modelled core (paper Table 2).
#[derive(Debug, Clone, Copy)]
pub struct CoreConfig {
    /// Micro-ops decoded (and dispatched) per cycle.
    pub decode_width: usize,
    /// Micro-ops committed per cycle.
    pub commit_width: usize,
    /// Reorder buffer entries.
    pub rob_size: usize,
    /// Loads+stores issued per cycle.
    pub mem_ports: usize,
    /// Simple-ALU operations issued per cycle.
    pub alu_ports: usize,
    /// Front-end redirect penalty after a mispredict, in cycles.
    pub redirect_penalty: u64,
    /// Cycles charged for OS signal delivery (HFI faults reach the runtime
    /// as signals; §3.3.2).
    pub signal_delivery: u64,
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self {
            decode_width: 5,
            commit_width: 8,
            rob_size: 224,
            mem_ports: 2,
            alu_ports: 4,
            redirect_penalty: 10,
            signal_delivery: 3000,
        }
    }
}

/// Why the machine stopped.
#[derive(Debug, Clone, PartialEq)]
pub enum Stop {
    /// A `Halt` instruction committed.
    Halted,
    /// An unhandled fault (no signal handler installed).
    Fault(HfiFault),
    /// The cycle budget ran out.
    CycleLimit,
    /// The OS model requested exit (syscall 0 / `exit`).
    Exited {
        /// The value in `r1` at exit (exit code by convention).
        code: u64,
    },
}

/// Counters collected during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Committed instructions.
    pub committed: u64,
    /// Squashed (wrong-path) instructions.
    pub squashed: u64,
    /// Committed branches (conditional and indirect).
    pub branches: u64,
    /// Conditional-branch mispredictions.
    pub mispredicts: u64,
    /// Cycles the front end could not decode because the ROB was full.
    pub rob_stall_cycles: u64,
    /// HFI checks performed (fetch, implicit-data, and `hmov` checks
    /// evaluated while a sandbox was active).
    pub hfi_checks: u64,
    /// Pipeline drains for serialization.
    pub serializations: u64,
    /// Loads that executed speculatively and were later squashed — the
    /// population that can leak through the cache.
    pub squashed_loads_executed: u64,
    /// Faults delivered (HFI or hardware).
    pub faults: u64,
    /// Syscalls redirected by HFI's native-sandbox interposition.
    pub syscalls_redirected: u64,
    /// Syscalls that reached the OS model.
    pub syscalls_to_os: u64,
}

/// The result of [`Machine::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Why the run stopped.
    pub stop: Stop,
    /// Counters.
    pub stats: CoreStats,
    /// Final architectural register values.
    pub regs: [u64; 16],
    /// Final exit-reason MSR contents.
    pub exit_reason: Option<ExitReason>,
}

impl RunResult {
    /// Instructions-per-cycle of the run.
    pub fn ipc(&self) -> f64 {
        self.stats.committed as f64 / self.cycles.max(1) as f64
    }
}

/// Outcome of one modelled OS syscall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyscallOutcome {
    /// Return value (written to `r0`).
    pub ret: u64,
    /// Extra cycles beyond the kernel round-trip base.
    pub extra_cycles: u64,
    /// Terminate the machine.
    pub exit: bool,
}

/// The OS model invoked for syscalls that are *not* interposed by HFI.
pub trait OsModel {
    /// Handles syscall `number` with access to registers and memory.
    fn syscall(
        &mut self,
        number: u64,
        regs: &mut [u64; 16],
        mem: &mut SparseMemory,
    ) -> SyscallOutcome;
}

/// The default OS: syscall 0 exits (code in `r1`); a per-syscall filter
/// cost can model Seccomp-bpf (§6.4.1); everything else returns 0.
#[derive(Debug, Default, Clone)]
pub struct DefaultOs {
    /// Extra cycles charged per syscall (e.g. a Seccomp-bpf filter).
    pub filter_cycles: u64,
    /// Number of syscalls serviced.
    pub serviced: u64,
}

impl OsModel for DefaultOs {
    fn syscall(
        &mut self,
        number: u64,
        regs: &mut [u64; 16],
        _mem: &mut SparseMemory,
    ) -> SyscallOutcome {
        self.serviced += 1;
        if number == 0 {
            return SyscallOutcome {
                ret: 0,
                extra_cycles: 0,
                exit: true,
            };
        }
        // Model open/read/close-style calls: VFS walk + page-cache read
        // is on the order of a microsecond (~3300 cycles at 3.3 GHz)
        // beyond the bare kernel entry/exit.
        let _ = regs;
        SyscallOutcome {
            ret: 0,
            extra_cycles: self.filter_cycles + 3300,
            exit: false,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Operand {
    Ready(u64),
    /// Wait on an in-flight producer; if it has already committed, the
    /// architectural register holds its value (the producer was the
    /// youngest writer at decode, so no later writer can have committed
    /// before this consumer).
    Wait {
        seq: u64,
        reg: Reg,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryState {
    Waiting,
    Executing { done_at: u64 },
    Done,
}

#[derive(Debug, Clone)]
struct RobEntry {
    seq: u64,
    inst_idx: usize,
    pc: u64,
    state: EntryState,
    dst: Option<Reg>,
    value: u64,
    srcs: [Option<Operand>; 3],
    /// For loads/stores: resolved effective address & size.
    mem_addr: Option<(u64, u8)>,
    is_store: bool,
    is_load: bool,
    store_value: Option<u64>,
    /// Branch prediction made at decode (predicted next inst index).
    predicted_next: Option<usize>,
    /// Fault detected at decode or execute, delivered at commit.
    fault: Option<HfiFault>,
    /// HFI-state generation current when this entry decoded: memory
    /// operations are checked against the state *their* program-order
    /// position sees, so a younger `hfi_exit` cannot lift checks from an
    /// older in-flight load (and a wrong-path exit still exposes the
    /// younger wrong-path loads that follow it — the §3.4 hazard).
    hfi_gen: usize,
    /// For HFI-state-mutating entries: the generation before the change.
    /// The squash undo is `hfi_history[gen_before]` — the generation
    /// journal doubles as the speculation-undo record, so no per-entry
    /// context snapshot is taken.
    hfi_gen_before: Option<usize>,
    /// The load already performed its (speculative) cache access.
    cache_accessed: bool,
}

/// The complete simulated machine: program, memory, caches, predictors,
/// HFI state, and the out-of-order pipeline.
pub struct Machine {
    program: Arc<Program>,
    /// Data memory.
    pub mem: SparseMemory,
    /// Cache hierarchy and dTLB.
    pub caches: CacheHierarchy,
    /// HFI register state.
    pub hfi: HfiContext,
    /// Cost parameters.
    pub costs: CostModel,
    config: CoreConfig,
    pht: PatternHistoryTable,
    btb: BranchTargetBuffer,
    os: Box<dyn OsModel>,
    /// Byte PC of the runtime's signal handler for HFI faults, if any.
    pub signal_handler: Option<u64>,

    // Pipeline state.
    regs: [u64; 16],
    /// Speculative-HFI-state history, indexed by generation; in-flight
    /// memory operations consult the generation at their decode, and a
    /// squash restores the oldest squashed entry's `hfi_gen_before`.
    hfi_history: Vec<HfiContext>,
    hfi_gen: usize,
    /// The reorder buffer as a ring: pushed at the back at decode, popped
    /// at the front at commit, truncated from the back on squash. Entry
    /// sequence numbers are consecutive, so `seq -> index` is plain
    /// arithmetic off the head (`seq_index`).
    rob: VecDeque<RobEntry>,
    /// Rename table: sequence number of the youngest in-flight producer
    /// of each architectural register (O(1) operand lookup; rebuilt on
    /// the rare squash).
    reg_writer: [Option<u64>; 16],
    /// Sequence numbers of in-flight stores, oldest first — the
    /// load/store dependence scan walks only these instead of the whole
    /// ROB.
    store_seqs: VecDeque<u64>,
    next_seq: u64,
    cycle: u64,
    fetch_index: usize,
    fetch_stall_until: u64,
    /// Decode-time (speculative-path) call stack of return inst indices.
    call_stack: Vec<usize>,
    /// Delta journal of decode-time call-stack mutations, oldest first:
    /// a squash replays the inverse deltas newest-first instead of
    /// restoring a full-stack snapshot.
    call_journal: VecDeque<(u64, CallDelta)>,
    halted: Option<Stop>,
    stats: CoreStats,
    mem_ops_this_cycle: usize,
    alu_ops_this_cycle: usize,
}

/// One reversible decode-time call-stack mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CallDelta {
    /// A `Call` pushed a return index (undo: pop it).
    Pushed,
    /// A `Ret` popped this return index (undo: push it back).
    Popped(usize),
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("cycle", &self.cycle)
            .field("fetch_index", &self.fetch_index)
            .field("rob_len", &self.rob.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Machine {
    /// Creates a machine executing `program` from its first instruction.
    ///
    /// Accepts a [`Program`] by value or an [`Arc<Program>`]; harnesses
    /// that run one compiled kernel on many machines share the `Arc`
    /// instead of cloning instruction vectors per cell.
    pub fn new(program: impl Into<Arc<Program>>) -> Self {
        Self::with_config(program, CoreConfig::default())
    }

    /// Creates a machine with explicit structural parameters.
    pub fn with_config(program: impl Into<Arc<Program>>, config: CoreConfig) -> Self {
        Self {
            program: program.into(),
            mem: SparseMemory::new(),
            caches: CacheHierarchy::new(),
            hfi: HfiContext::new(),
            costs: CostModel::default(),
            config,
            pht: PatternHistoryTable::new(4096),
            btb: BranchTargetBuffer::new(512),
            os: Box::new(DefaultOs::default()),
            signal_handler: None,
            regs: [0; 16],
            hfi_history: vec![HfiContext::new()],
            hfi_gen: 0,
            rob: VecDeque::new(),
            reg_writer: [None; 16],
            store_seqs: VecDeque::new(),
            next_seq: 0,
            cycle: 0,
            fetch_index: 0,
            fetch_stall_until: 0,
            call_stack: Vec::new(),
            call_journal: VecDeque::new(),
            halted: None,
            stats: CoreStats::default(),
            mem_ops_this_cycle: 0,
            alu_ops_this_cycle: 0,
        }
    }

    /// Replaces the OS model.
    pub fn set_os(&mut self, os: Box<dyn OsModel>) {
        self.os = os;
    }

    /// Sets an architectural register (before running).
    pub fn set_reg(&mut self, reg: Reg, value: u64) {
        self.regs[reg.0 as usize] = value;
    }

    /// Reads an architectural register.
    pub fn reg(&self, reg: Reg) -> u64 {
        self.regs[reg.0 as usize]
    }

    /// Current cycle count.
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Counters so far.
    pub fn core_stats(&self) -> CoreStats {
        self.stats
    }

    /// Snapshot of the architectural register file.
    pub fn regs(&self) -> [u64; 16] {
        self.regs
    }

    /// The program under execution.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// ROB index of the in-flight entry with sequence number `seq`, or
    /// `None` if it already committed. Sequence numbers are consecutive
    /// in the ring, so this is index arithmetic off the head.
    #[inline]
    fn seq_index(&self, seq: u64) -> Option<usize> {
        let head = self.rob.front()?.seq;
        if seq < head {
            return None;
        }
        let idx = (seq - head) as usize;
        debug_assert!(idx < self.rob.len() && self.rob[idx].seq == seq);
        Some(idx)
    }

    fn rob_entry(&self, seq: u64) -> Option<&RobEntry> {
        self.seq_index(seq).map(|i| &self.rob[i])
    }

    fn read_operand(&self, reg: Reg) -> Operand {
        // Youngest in-flight producer wins — the rename table tracks it.
        match self.reg_writer[reg.0 as usize] {
            Some(seq) => {
                let entry = self.rob_entry(seq).expect("rename table in sync");
                match entry.state {
                    EntryState::Done => Operand::Ready(entry.value),
                    _ => Operand::Wait { seq, reg },
                }
            }
            None => Operand::Ready(self.regs[reg.0 as usize]),
        }
    }

    #[inline]
    fn operand_value(&self, op: Operand) -> Option<u64> {
        match op {
            Operand::Ready(v) => Some(v),
            Operand::Wait { seq, reg } => match self.rob_entry(seq) {
                Some(e) if matches!(e.state, EntryState::Done) => Some(e.value),
                Some(_) => None,
                // Producer already committed: its value is architectural.
                None => Some(self.regs[reg.0 as usize]),
            },
        }
    }

    /// Rebuilds the rename table from the surviving ROB entries (squash
    /// path only — pushes and commits maintain it incrementally).
    fn rebuild_reg_writer(&mut self) {
        self.reg_writer = [None; 16];
        for entry in &self.rob {
            if let Some(dst) = entry.dst {
                self.reg_writer[dst.0 as usize] = Some(entry.seq);
            }
        }
    }

    // ------------------------------------------------------------------
    // Front end: fetch + decode + rename + dispatch.
    // ------------------------------------------------------------------

    fn frontend(&mut self) {
        if self.cycle < self.fetch_stall_until {
            return;
        }
        if self.rob.len() >= self.config.rob_size {
            self.stats.rob_stall_cycles += 1;
            return;
        }
        // Borrow the instruction stream through a shared handle so decode
        // never clones an `Inst` (the `Arc` bump is once per fetch group).
        let program = Arc::clone(&self.program);
        for _ in 0..self.config.decode_width {
            if self.rob.len() >= self.config.rob_size {
                break;
            }
            if self.fetch_index >= program.len() {
                break;
            }
            let inst_idx = self.fetch_index;
            let pc = program.pc_of(inst_idx);
            let inst = program.inst(inst_idx);
            let len = inst.encoded_len();

            // I-cache access for this fetch group; a miss stalls the
            // front end.
            let fetch_lat = self.caches.fetch_access(pc, self.cycle);
            if fetch_lat > 0 {
                self.fetch_stall_until = self.cycle + fetch_lat;
                return;
            }

            // HFI code-region check, in parallel with decode (§4.1). On
            // failure the micro-op becomes a faulting NOP.
            if self.hfi.enabled() {
                self.stats.hfi_checks += 1;
            }
            if let Err(fault) = self.hfi.check_fetch(pc, len) {
                self.push_entry(RobEntry {
                    seq: 0,
                    inst_idx,
                    pc,
                    state: EntryState::Executing {
                        done_at: self.cycle + 1,
                    },
                    dst: None,
                    value: 0,
                    srcs: [None, None, None],
                    mem_addr: None,
                    is_store: false,
                    is_load: false,
                    store_value: None,
                    predicted_next: None,
                    fault: Some(fault),
                    hfi_gen: 0,
                    hfi_gen_before: None,
                    cache_accessed: false,
                });
                // Fetch cannot meaningfully continue past an OOB PC; stall
                // until the fault commits and redirects.
                self.fetch_index = program.len();
                return;
            }

            // Serializing instructions drain the ROB before decoding.
            if self.decode_serializes(inst) {
                if !self.rob.is_empty() {
                    return; // retry next cycle until drained
                }
                self.stats.serializations += 1;
                self.fetch_stall_until = self.cycle + self.serialize_cost(inst);
            }

            if !self.decode_one(inst_idx, pc, inst) {
                return;
            }
            if matches!(inst, Inst::Syscall) || self.fetch_index != inst_idx + 1 {
                // Control flow redirected fetch (or entered the kernel);
                // end the fetch group.
                return;
            }
        }
    }

    fn decode_serializes(&self, inst: &Inst) -> bool {
        match inst {
            Inst::Cpuid | Inst::Fence | Inst::Syscall => true,
            Inst::HfiEnter { config } | Inst::HfiEnterChild { config, .. } => config.serialize,
            Inst::HfiReenter => false,
            // Exit of a serialized sandbox serializes; switch-on-exit does
            // not (§4.5).
            Inst::HfiExit => {
                self.hfi.enabled()
                    && self.hfi.config().serialize
                    && !self.hfi.config().switch_on_exit
            }
            // Region updates serialize only inside a (hybrid) sandbox
            // (§4.3).
            Inst::HfiSetRegion { .. } | Inst::HfiClearRegion { .. } | Inst::HfiClearAllRegions => {
                self.hfi.enabled()
            }
            _ => false,
        }
    }

    fn serialize_cost(&self, inst: &Inst) -> u64 {
        match inst {
            Inst::Fence => 2,
            Inst::Syscall => 4, // drain only; kernel cost charged at handling
            _ => self.costs.serialize_cycles,
        }
    }

    /// Decodes one instruction into the ROB. Returns false if the front
    /// end must stop (e.g. waiting on syscall handling).
    fn decode_one(&mut self, inst_idx: usize, pc: u64, inst: &Inst) -> bool {
        let mut entry = RobEntry {
            seq: 0,
            inst_idx,
            pc,
            state: EntryState::Waiting,
            dst: None,
            value: 0,
            srcs: [None, None, None],
            mem_addr: None,
            is_store: false,
            is_load: false,
            store_value: None,
            predicted_next: None,
            fault: None,
            hfi_gen: 0,
            hfi_gen_before: None,
            cache_accessed: false,
        };
        let mut next = inst_idx + 1;

        match inst {
            Inst::AluRR { dst, a, b, .. } => {
                entry.dst = Some(*dst);
                entry.srcs[0] = Some(self.read_operand(*a));
                entry.srcs[1] = Some(self.read_operand(*b));
            }
            Inst::AluRI { dst, a, .. } => {
                entry.dst = Some(*dst);
                entry.srcs[0] = Some(self.read_operand(*a));
            }
            Inst::MovI { dst, .. } | Inst::Rdtsc { dst } => {
                entry.dst = Some(*dst);
            }
            Inst::Mov { dst, src } => {
                entry.dst = Some(*dst);
                entry.srcs[0] = Some(self.read_operand(*src));
            }
            Inst::Load { dst, mem, .. } => {
                entry.dst = Some(*dst);
                entry.is_load = true;
                self.capture_mem_operand(&mut entry, mem);
            }
            Inst::Store { src, mem, .. } => {
                entry.is_store = true;
                entry.srcs[2] = Some(self.read_operand(*src));
                self.capture_mem_operand(&mut entry, mem);
            }
            Inst::HmovLoad { dst, mem, .. } => {
                entry.dst = Some(*dst);
                entry.is_load = true;
                if let Some(index) = mem.index {
                    entry.srcs[1] = Some(self.read_operand(index));
                }
            }
            Inst::HmovStore { src, mem, .. } => {
                entry.is_store = true;
                entry.srcs[2] = Some(self.read_operand(*src));
                if let Some(index) = mem.index {
                    entry.srcs[1] = Some(self.read_operand(index));
                }
            }
            Inst::Flush { mem } => {
                self.capture_mem_operand(&mut entry, mem);
            }
            Inst::Branch { a, b, target, .. } => {
                entry.srcs[0] = Some(self.read_operand(*a));
                entry.srcs[1] = Some(self.read_operand(*b));
                let taken = self.pht.predict(pc);
                next = if taken { *target } else { inst_idx + 1 };
                entry.predicted_next = Some(next);
            }
            Inst::BranchI { a, target, .. } => {
                entry.srcs[0] = Some(self.read_operand(*a));
                let taken = self.pht.predict(pc);
                next = if taken { *target } else { inst_idx + 1 };
                entry.predicted_next = Some(next);
            }
            Inst::Jump { target } => {
                next = *target;
            }
            Inst::JumpInd { reg } => {
                entry.srcs[0] = Some(self.read_operand(*reg));
                // Predict through the BTB; a miss predicts fall-through
                // (and will redirect at execute).
                next = self
                    .btb
                    .predict(pc)
                    .and_then(|t| self.program.index_of_pc(t))
                    .unwrap_or(inst_idx + 1);
                entry.predicted_next = Some(next);
            }
            Inst::Call { target } => {
                self.call_journal
                    .push_back((self.next_seq, CallDelta::Pushed));
                self.call_stack.push(inst_idx + 1);
                next = *target;
            }
            Inst::Ret => {
                // The decode-time call stack is exact along the fetched
                // path, so returns never mispredict in this model.
                match self.call_stack.pop() {
                    Some(ret_idx) => {
                        self.call_journal
                            .push_back((self.next_seq, CallDelta::Popped(ret_idx)));
                        next = ret_idx;
                    }
                    None => next = self.program.len(),
                }
            }
            Inst::Syscall => {
                // ROB is drained (decode_serializes). Handle immediately
                // with architectural state.
                return self.handle_syscall(inst_idx, pc);
            }
            Inst::HfiEnter { config } => {
                entry.hfi_gen_before = Some(self.hfi_gen);
                match self.hfi.enter(*config) {
                    Ok(_) => {}
                    Err(fault) => entry.fault = Some(fault),
                }
            }
            Inst::HfiEnterChild { config, regions } => {
                entry.hfi_gen_before = Some(self.hfi_gen);
                match self.hfi.enter_child(*config, **regions) {
                    Ok(_) => {}
                    Err(fault) => entry.fault = Some(fault),
                }
                // Loading the child register file costs a few cycles of
                // microcode (charged as front-end stall).
                self.fetch_stall_until =
                    self.cycle.max(self.fetch_stall_until) + self.costs.set_region_cycles;
            }
            Inst::HfiExit => {
                entry.hfi_gen_before = Some(self.hfi_gen);
                match self.hfi.exit() {
                    Ok((disposition, _)) => match disposition {
                        ExitDisposition::FallThrough | ExitDisposition::SwitchedToParent => {}
                        ExitDisposition::JumpToHandler(handler) => {
                            next = self
                                .program
                                .index_of_pc(handler)
                                .unwrap_or(self.program.len());
                        }
                    },
                    Err(fault) => entry.fault = Some(fault),
                }
            }
            Inst::HfiReenter => {
                entry.hfi_gen_before = Some(self.hfi_gen);
                if let Err(fault) = self.hfi.reenter() {
                    entry.fault = Some(fault);
                }
            }
            Inst::HfiSetRegion { slot, region } => {
                entry.hfi_gen_before = Some(self.hfi_gen);
                if let Err(fault) = self.hfi.set_region(*slot as usize, *region) {
                    entry.fault = Some(fault);
                }
                self.fetch_stall_until =
                    self.cycle.max(self.fetch_stall_until) + self.costs.set_region_cycles;
            }
            Inst::HfiClearRegion { slot } => {
                entry.hfi_gen_before = Some(self.hfi_gen);
                if let Err(fault) = self.hfi.clear_region(*slot as usize) {
                    entry.fault = Some(fault);
                }
            }
            Inst::HfiClearAllRegions => {
                entry.hfi_gen_before = Some(self.hfi_gen);
                if let Err(fault) = self.hfi.clear_all_regions() {
                    entry.fault = Some(fault);
                }
            }
            Inst::Cpuid | Inst::Fence | Inst::Nop | Inst::Halt => {}
        }

        if entry.hfi_gen_before.is_some() {
            self.bump_hfi_gen();
        }
        self.push_entry(entry);
        self.fetch_index = next;
        true
    }

    /// Records the current HFI state as a new speculative generation.
    fn bump_hfi_gen(&mut self) {
        self.hfi_gen += 1;
        self.hfi_history.truncate(self.hfi_gen);
        self.hfi_history.push(self.hfi.clone());
    }

    fn capture_mem_operand(&self, entry: &mut RobEntry, mem: &MemOperand) {
        if let Some(base) = mem.base {
            entry.srcs[0] = Some(self.read_operand(base));
        }
        if let Some(index) = mem.index {
            entry.srcs[1] = Some(self.read_operand(index));
        }
    }

    fn push_entry(&mut self, mut entry: RobEntry) {
        entry.seq = self.next_seq;
        entry.hfi_gen = self
            .hfi_gen
            .min(entry.hfi_gen_before.unwrap_or(self.hfi_gen));
        self.next_seq += 1;
        if let Some(dst) = entry.dst {
            self.reg_writer[dst.0 as usize] = Some(entry.seq);
        }
        if entry.is_store {
            self.store_seqs.push_back(entry.seq);
        }
        self.rob.push_back(entry);
    }

    /// Handles a syscall with the ROB drained: consults HFI's microcode
    /// interposition check (§4.4), then either jumps to the exit handler
    /// or calls the OS model.
    fn handle_syscall(&mut self, inst_idx: usize, _pc: u64) -> bool {
        let number = self.regs[0];
        // The native-mode decode check costs one extra cycle (§4.4).
        self.fetch_stall_until =
            self.cycle.max(self.fetch_stall_until) + self.costs.syscall_check_cycles;
        let disposition = self.hfi.syscall(number, SyscallKind::Syscall);
        self.bump_hfi_gen();
        match disposition {
            SyscallDisposition::Redirect(handler) => {
                self.stats.syscalls_redirected += 1;
                self.stats.committed += 1;
                // HFI gives the exit handler the interrupted PC (alongside
                // the MSR cause); modelled as an ABI register, r14.
                if inst_idx + 1 < self.program.len() {
                    self.regs[14] = self.program.pc_of(inst_idx + 1);
                }
                self.fetch_index = self
                    .program
                    .index_of_pc(handler)
                    .unwrap_or(self.program.len());
            }
            SyscallDisposition::Allow => {
                self.stats.syscalls_to_os += 1;
                self.stats.committed += 1;
                let outcome = self.os.syscall(number, &mut self.regs, &mut self.mem);
                self.fetch_stall_until = self.cycle.max(self.fetch_stall_until)
                    + self.costs.syscall_roundtrip_cycles
                    + outcome.extra_cycles;
                self.regs[0] = outcome.ret;
                if outcome.exit {
                    self.halted = Some(Stop::Exited { code: self.regs[1] });
                    return false;
                }
                self.fetch_index = inst_idx + 1;
            }
            SyscallDisposition::Fault => {
                self.deliver_fault_now(HfiFault::PrivilegedInstruction);
                return false;
            }
        }
        true
    }

    // ------------------------------------------------------------------
    // Execute.
    // ------------------------------------------------------------------

    fn execute(&mut self) {
        self.mem_ops_this_cycle = 0;
        self.alu_ops_this_cycle = 0;

        // Finish in-flight work.
        for i in 0..self.rob.len() {
            if let EntryState::Executing { done_at } = self.rob[i].state {
                if done_at <= self.cycle {
                    self.rob[i].state = EntryState::Done;
                }
            }
        }

        // Issue ready entries (oldest first), respecting port limits.
        // Instructions are borrowed from the shared program — the issue
        // scan allocates nothing and clones nothing.
        let program = Arc::clone(&self.program);
        let mut redirect: Option<(usize, usize)> = None; // (rob index, correct next)
        for i in 0..self.rob.len() {
            if !matches!(self.rob[i].state, EntryState::Waiting) {
                continue;
            }
            let inst = program.inst(self.rob[i].inst_idx);
            if inst.is_mem() {
                if self.mem_ops_this_cycle >= self.config.mem_ports {
                    continue;
                }
            } else if self.alu_ops_this_cycle >= self.config.alu_ports {
                continue;
            }
            // Operand readiness.
            let mut vals = [0u64; 3];
            let mut ready = true;
            for (k, src) in self.rob[i].srcs.iter().enumerate() {
                if let Some(op) = src {
                    match self.operand_value(*op) {
                        Some(v) => vals[k] = v,
                        None => {
                            ready = false;
                            break;
                        }
                    }
                }
            }
            if !ready {
                continue;
            }
            let v = |k: usize| vals[k];

            match inst {
                Inst::AluRR { op, .. } => {
                    self.alu_ops_this_cycle += 1;
                    let value = alu_eval(*op, v(0), v(1));
                    self.finish(i, value, op.latency());
                }
                Inst::AluRI { op, imm, .. } => {
                    self.alu_ops_this_cycle += 1;
                    let value = alu_eval(*op, v(0), *imm as u64);
                    self.finish(i, value, op.latency());
                }
                Inst::MovI { imm, .. } => {
                    self.alu_ops_this_cycle += 1;
                    self.finish(i, *imm as u64, 1);
                }
                Inst::Mov { .. } => {
                    self.alu_ops_this_cycle += 1;
                    let value = v(0);
                    self.finish(i, value, 1);
                }
                Inst::Rdtsc { .. } => {
                    self.alu_ops_this_cycle += 1;
                    let now = self.cycle;
                    self.finish(i, now, 1);
                }
                Inst::Nop | Inst::Halt | Inst::Cpuid | Inst::Fence => {
                    self.alu_ops_this_cycle += 1;
                    self.finish(i, 0, 1);
                }
                Inst::Jump { .. } | Inst::Call { .. } | Inst::Ret => {
                    self.alu_ops_this_cycle += 1;
                    self.finish(i, 0, 1);
                }
                Inst::HfiEnter { .. }
                | Inst::HfiEnterChild { .. }
                | Inst::HfiExit
                | Inst::HfiReenter
                | Inst::HfiSetRegion { .. }
                | Inst::HfiClearRegion { .. }
                | Inst::HfiClearAllRegions => {
                    self.alu_ops_this_cycle += 1;
                    self.finish(i, 0, self.costs.enter_exit_base_cycles);
                }
                Inst::Branch { cond, target, .. } => {
                    self.alu_ops_this_cycle += 1;
                    let taken = cond.eval(v(0), v(1));
                    let actual = if taken {
                        *target
                    } else {
                        self.rob[i].inst_idx + 1
                    };
                    let pc = self.rob[i].pc;
                    self.pht.update(pc, taken);
                    if self.rob[i].predicted_next != Some(actual) {
                        redirect = Some((i, actual));
                    }
                    self.finish(i, 0, 1);
                    if redirect.is_some() {
                        break;
                    }
                }
                Inst::BranchI {
                    cond, imm, target, ..
                } => {
                    self.alu_ops_this_cycle += 1;
                    let taken = cond.eval(v(0), *imm as u64);
                    let actual = if taken {
                        *target
                    } else {
                        self.rob[i].inst_idx + 1
                    };
                    let pc = self.rob[i].pc;
                    self.pht.update(pc, taken);
                    if self.rob[i].predicted_next != Some(actual) {
                        redirect = Some((i, actual));
                    }
                    self.finish(i, 0, 1);
                    if redirect.is_some() {
                        break;
                    }
                }
                Inst::JumpInd { .. } => {
                    self.alu_ops_this_cycle += 1;
                    let target_pc = v(0);
                    let pc = self.rob[i].pc;
                    self.btb.update(pc, target_pc);
                    match self.program.index_of_pc(target_pc) {
                        Some(actual) => {
                            if self.rob[i].predicted_next != Some(actual) {
                                redirect = Some((i, actual));
                            }
                        }
                        None => {
                            // Jump into unmapped/unaligned code: the
                            // fetch faults — as an HFI code-bounds
                            // violation when a sandbox is active, or a
                            // plain hardware fault otherwise.
                            let hfi = &self.hfi_history[self.rob[i].hfi_gen];
                            self.rob[i].fault = Some(match hfi.check_fetch(target_pc, 1) {
                                Err(fault) => fault,
                                Ok(()) => HfiFault::Hardware { addr: target_pc },
                            });
                        }
                    }
                    self.finish(i, 0, 1);
                    if redirect.is_some() {
                        break;
                    }
                }
                Inst::Flush { mem } => {
                    self.mem_ops_this_cycle += 1;
                    let addr = effective_address(mem, v(0), v(1));
                    self.caches.flush_data(addr);
                    self.finish(i, 0, 3);
                }
                Inst::Load { mem, size, .. } => {
                    let addr = effective_address(mem, v(0), v(1));
                    self.exec_load(i, addr, *size, None);
                }
                Inst::Store { mem, size, .. } => {
                    self.mem_ops_this_cycle += 1;
                    let addr = effective_address(mem, v(0), v(1));
                    // Implicit-region check, parallel with the dtb: zero
                    // latency; a failure blocks the (commit-time) access.
                    if self.hfi_history[self.rob[i].hfi_gen].enabled() {
                        self.stats.hfi_checks += 1;
                    }
                    let hfi = &self.hfi_history[self.rob[i].hfi_gen];
                    if let Err(fault) = hfi.check_data(addr, *size as u64, Access::Write) {
                        self.rob[i].fault = Some(fault);
                    }
                    self.rob[i].mem_addr = Some((addr, *size));
                    self.rob[i].store_value = Some(v(2));
                    self.finish(i, 0, 1);
                }
                Inst::HmovLoad {
                    region, mem, size, ..
                } => {
                    self.stats.hfi_checks += 1;
                    match self.hfi_history[self.rob[i].hfi_gen].hmov_check_access(
                        *region,
                        v(1) as i64,
                        mem.scale as u64,
                        mem.disp,
                        *size as u64,
                        Access::Read,
                    ) {
                        Ok(ea) => self.exec_load(i, ea, *size, Some(*region)),
                        Err(fault) => {
                            // Failed hmov: no cache access at all.
                            self.mem_ops_this_cycle += 1;
                            self.rob[i].fault = Some(fault);
                            self.finish(i, 0, 1);
                        }
                    }
                }
                Inst::HmovStore {
                    region, mem, size, ..
                } => {
                    self.mem_ops_this_cycle += 1;
                    self.stats.hfi_checks += 1;
                    match self.hfi_history[self.rob[i].hfi_gen].hmov_check_access(
                        *region,
                        v(1) as i64,
                        mem.scale as u64,
                        mem.disp,
                        *size as u64,
                        Access::Write,
                    ) {
                        Ok(ea) => {
                            self.rob[i].mem_addr = Some((ea, *size));
                            self.rob[i].store_value = Some(v(2));
                            self.finish(i, 0, 1);
                        }
                        Err(fault) => {
                            self.rob[i].fault = Some(fault);
                            self.finish(i, 0, 1);
                        }
                    }
                }
                Inst::Syscall => unreachable!("syscalls handled at decode"),
            }
        }

        if let Some((rob_idx, correct_next)) = redirect {
            self.stats.mispredicts += 1;
            self.squash_after(rob_idx);
            self.fetch_index = correct_next;
            // The refill penalty may not cancel a longer pending stall
            // (e.g. a kernel round trip).
            self.fetch_stall_until = self
                .fetch_stall_until
                .max(self.cycle + self.config.redirect_penalty);
        }
    }

    /// Executes a load: HFI check first (zero latency, parallel with the
    /// dtb); only a *passing* check reaches the cache — speculative or not.
    fn exec_load(&mut self, i: usize, addr: u64, size: u8, hmov_region: Option<u8>) {
        // Older-store dependence, scanned youngest-first so the most
        // recent matching store wins: wait for unknown addresses; forward
        // on exact overlap; wait for commit on partial overlap. Only the
        // in-flight stores are walked, not the whole ROB.
        let load_seq = self.rob[i].seq;
        let head_seq = self.rob.front().expect("load entry in rob").seq;
        for &store_seq in self.store_seqs.iter().rev() {
            if store_seq >= load_seq {
                continue;
            }
            let j = (store_seq - head_seq) as usize;
            match self.rob[j].mem_addr {
                None => return, // address unknown: stall
                Some((saddr, ssize)) => {
                    let overlap = saddr < addr + size as u64 && addr < saddr + ssize as u64;
                    if overlap {
                        if saddr == addr && ssize == size {
                            // Store-to-load forwarding.
                            if let Some(value) = self.rob[j].store_value {
                                self.mem_ops_this_cycle += 1;
                                let masked = mask_to_size(value, size);
                                self.rob[i].cache_accessed = false;
                                self.finish(i, masked, self.caches.latencies.l1);
                                return;
                            }
                        }
                        return; // partial overlap: wait for the store to drain
                    }
                }
            }
        }
        self.mem_ops_this_cycle += 1;
        if hmov_region.is_none() {
            if self.hfi_history[self.rob[i].hfi_gen].enabled() {
                self.stats.hfi_checks += 1;
            }
            let hfi = &self.hfi_history[self.rob[i].hfi_gen];
            if let Err(fault) = hfi.check_data(addr, size as u64, Access::Read) {
                // The bounds check fails before the physical address
                // resolves: the cache is not touched (paper §4.1). The
                // load completes as a faulting NOP.
                self.rob[i].fault = Some(fault);
                self.finish(i, 0, 1);
                return;
            }
        }
        // Cache access happens here, at execute — speculatively. This is
        // the Spectre transmission channel.
        let latency = self.caches.data_access(addr, self.cycle);
        self.rob[i].cache_accessed = true;
        let value = mask_to_size(self.mem.read(addr, size), size);
        self.rob[i].mem_addr = Some((addr, size));
        self.finish(i, value, latency);
    }

    fn finish(&mut self, i: usize, value: u64, latency: u64) {
        self.rob[i].value = value;
        self.rob[i].state = EntryState::Executing {
            done_at: self.cycle + latency.max(1),
        };
    }

    fn squash_after(&mut self, rob_idx: usize) {
        let squash_seq = self.rob[rob_idx].seq;
        // Restore HFI state (and its generation) from the oldest squashed
        // HFI op: its pre-op generation entry in the history is exactly
        // the context state just before the first wrong-path mutation.
        for entry in self.rob.range(rob_idx + 1..) {
            if let Some(gen) = entry.hfi_gen_before {
                self.hfi = self.hfi_history[gen].clone();
                self.hfi_gen = gen;
                self.hfi_history.truncate(gen + 1);
                break;
            }
        }
        // Unwind the decode-time call stack by replaying the wrong-path
        // deltas in reverse (youngest first).
        while let Some(&(seq, delta)) = self.call_journal.back() {
            if seq <= squash_seq {
                break;
            }
            self.call_journal.pop_back();
            match delta {
                CallDelta::Pushed => {
                    self.call_stack.pop();
                }
                CallDelta::Popped(ret_idx) => self.call_stack.push(ret_idx),
            }
        }
        let squashed = self.rob.len() - (rob_idx + 1);
        self.stats.squashed += squashed as u64;
        self.stats.squashed_loads_executed += self
            .rob
            .range(rob_idx + 1..)
            .filter(|e| e.is_load && e.cache_accessed)
            .count() as u64;
        self.rob.truncate(rob_idx + 1);
        // Reuse the squashed sequence numbers: every reference above
        // `squash_seq` (journal, store list, rename table, operand waits)
        // is pruned with the tail, and `seq -> ring index` arithmetic
        // needs the live window to stay consecutive.
        self.next_seq = squash_seq + 1;
        while self.store_seqs.back().is_some_and(|&s| s > squash_seq) {
            self.store_seqs.pop_back();
        }
        self.rebuild_reg_writer();
    }

    // ------------------------------------------------------------------
    // Commit.
    // ------------------------------------------------------------------

    fn commit(&mut self) {
        for _ in 0..self.config.commit_width {
            let Some(entry) = self.rob.front() else {
                return;
            };
            if !matches!(entry.state, EntryState::Done) {
                return;
            }
            let entry = self.rob.pop_front().expect("front just checked");
            // A committed entry retires its rename-table claim (unless a
            // younger in-flight producer has already superseded it) and
            // drains its journal entries: deltas at or below a committed
            // seq can never be squashed.
            if let Some(dst) = entry.dst {
                if self.reg_writer[dst.0 as usize] == Some(entry.seq) {
                    self.reg_writer[dst.0 as usize] = None;
                }
            }
            if entry.is_store {
                debug_assert_eq!(self.store_seqs.front(), Some(&entry.seq));
                self.store_seqs.pop_front();
            }
            while self
                .call_journal
                .front()
                .is_some_and(|&(seq, _)| seq <= entry.seq)
            {
                self.call_journal.pop_front();
            }
            if let Some(fault) = entry.fault {
                self.deliver_fault_now(fault);
                return;
            }
            self.stats.committed += 1;
            if matches!(
                self.program.inst(entry.inst_idx),
                Inst::Branch { .. } | Inst::BranchI { .. } | Inst::JumpInd { .. }
            ) {
                self.stats.branches += 1;
            }
            if let Some(dst) = entry.dst {
                self.regs[dst.0 as usize] = entry.value;
            }
            if entry.is_store {
                if let (Some((addr, size)), Some(value)) = (entry.mem_addr, entry.store_value) {
                    self.mem.write(addr, value, size);
                    // Stores update the cache at commit (never
                    // speculatively).
                    let now = self.cycle;
                    self.caches.data_access(addr, now);
                }
            }
            if matches!(self.program.inst(entry.inst_idx), Inst::Halt) {
                self.halted = Some(Stop::Halted);
                return;
            }
        }
    }

    /// Delivers a fault architecturally: squash everything younger, let
    /// HFI disable the sandbox and record the MSR, then redirect to the
    /// exit handler or the OS signal handler.
    fn deliver_fault_now(&mut self, fault: HfiFault) {
        self.stats.faults += 1;
        self.stats.squashed += self.rob.len() as u64;
        self.rob.clear();
        self.reg_writer = [None; 16];
        self.store_seqs.clear();
        self.call_journal.clear();
        let disposition = self.hfi.deliver_fault(fault);
        self.bump_hfi_gen();
        let target = match disposition {
            ExitDisposition::JumpToHandler(handler) => {
                // Native-sandbox faults reach the handler via the OS
                // signal path (SIGSEGV → runtime handler), which is slow.
                self.fetch_stall_until = self.cycle + self.config.signal_delivery;
                self.program.index_of_pc(handler)
            }
            ExitDisposition::FallThrough | ExitDisposition::SwitchedToParent => {
                self.fetch_stall_until = self.cycle + self.config.signal_delivery;
                self.signal_handler
                    .and_then(|h| self.program.index_of_pc(h))
            }
        };
        match target {
            Some(index) => self.fetch_index = index,
            None => self.halted = Some(Stop::Fault(fault)),
        }
    }

    // ------------------------------------------------------------------
    // Top level.
    // ------------------------------------------------------------------

    /// Runs until halt, unhandled fault, or `max_cycles`.
    pub fn run(&mut self, max_cycles: u64) -> RunResult {
        while self.halted.is_none() && self.cycle < max_cycles {
            // Stall fast-forward: with the ROB empty and the front end
            // stalled (kernel round trip, signal delivery, serialization
            // drain), every intervening cycle is architecturally empty —
            // commit and execute see no entries and the frontend's stall
            // check returns before any side effect. Jump to the wakeup.
            if self.rob.is_empty() && self.cycle < self.fetch_stall_until {
                self.cycle = self.fetch_stall_until.min(max_cycles);
                continue;
            }
            self.commit();
            if self.halted.is_some() {
                break;
            }
            self.execute();
            self.frontend();
            self.cycle += 1;

            // Deadlock safety: nothing in flight and nothing to fetch.
            if self.rob.is_empty()
                && self.fetch_index >= self.program.len()
                && self.cycle >= self.fetch_stall_until
            {
                break;
            }
        }
        let stop = self.halted.clone().unwrap_or(Stop::CycleLimit);
        RunResult {
            cycles: self.cycle,
            stop,
            stats: self.stats,
            regs: self.regs,
            exit_reason: self.hfi.exit_reason(),
        }
    }
}

fn mask_to_size(value: u64, size: u8) -> u64 {
    match size {
        1 => value & 0xFF,
        2 => value & 0xFFFF,
        4 => value & 0xFFFF_FFFF,
        _ => value,
    }
}

fn effective_address(mem: &MemOperand, base: u64, index: u64) -> u64 {
    let base = if mem.base.is_some() { base } else { 0 };
    let index = if mem.index.is_some() { index } else { 0 };
    base.wrapping_add(index.wrapping_mul(mem.scale as u64))
        .wrapping_add(mem.disp as u64)
}

fn alu_eval(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => a.checked_div(b).unwrap_or(0),
        AluOp::Rem => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => a << (b & 63),
        AluOp::Shr => a >> (b & 63),
        AluOp::Sar => ((a as i64) >> (b & 63)) as u64,
        AluOp::SltU => (a < b) as u64,
        AluOp::Slt => ((a as i64) < (b as i64)) as u64,
        AluOp::Seq => (a == b) as u64,
        AluOp::Rotl => a.rotate_left((b & 63) as u32),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::ProgramBuilder;
    use crate::isa::Cond;
    use hfi_core::region::{ExplicitDataRegion, ImplicitCodeRegion, ImplicitDataRegion};
    use hfi_core::{Region, SandboxConfig};

    const CODE_BASE: u64 = 0x40_0000;

    fn run_program(asm: ProgramBuilder) -> RunResult {
        let mut machine = Machine::new(asm.finish());
        machine.run(1_000_000)
    }

    #[test]
    fn arithmetic_loop() {
        let mut asm = ProgramBuilder::new(CODE_BASE);
        let (r0, r1) = (Reg(0), Reg(1));
        asm.movi(r0, 0);
        asm.movi(r1, 100);
        let top = asm.label_here("top");
        asm.alu_ri(AluOp::Add, r0, r0, 7);
        asm.alu_ri(AluOp::Sub, r1, r1, 1);
        asm.branch_i(Cond::Ne, r1, 0, top);
        asm.halt();
        let result = run_program(asm);
        assert_eq!(result.stop, Stop::Halted);
        assert_eq!(result.regs[0], 700);
    }

    #[test]
    fn loads_and_stores_roundtrip() {
        let mut asm = ProgramBuilder::new(CODE_BASE);
        let (r0, r1) = (Reg(0), Reg(1));
        asm.movi(r0, 0xABCD);
        asm.movi(r1, 0x1_0000);
        asm.store(r0, MemOperand::base_disp(r1, 0x10), 8);
        asm.load(Reg(2), MemOperand::base_disp(r1, 0x10), 8);
        asm.halt();
        let result = run_program(asm);
        assert_eq!(result.regs[2], 0xABCD);
    }

    #[test]
    fn store_load_forwarding_partial_sizes() {
        let mut asm = ProgramBuilder::new(CODE_BASE);
        asm.movi(Reg(0), 0x1122_3344);
        asm.movi(Reg(1), 0x2_0000);
        asm.store(Reg(0), MemOperand::base_disp(Reg(1), 0), 4);
        asm.load(Reg(2), MemOperand::base_disp(Reg(1), 0), 1);
        asm.halt();
        let result = run_program(asm);
        assert_eq!(result.regs[2], 0x44);
    }

    #[test]
    fn call_and_ret() {
        let mut asm = ProgramBuilder::new(CODE_BASE);
        let func = asm.label();
        let done = asm.label();
        asm.movi(Reg(0), 5);
        asm.call(func);
        asm.jump(done);
        asm.place(func);
        asm.alu_ri(AluOp::Mul, Reg(0), Reg(0), 3);
        asm.ret();
        asm.place(done);
        asm.halt();
        let result = run_program(asm);
        assert_eq!(result.regs[0], 15);
    }

    #[test]
    fn mispredicted_branch_still_computes_correctly() {
        // Alternating branch defeats the 2-bit counter; results must be
        // exact regardless.
        let mut asm = ProgramBuilder::new(CODE_BASE);
        let (r0, r1, r2) = (Reg(0), Reg(1), Reg(2));
        asm.movi(r0, 0); // accumulator
        asm.movi(r1, 50); // trip count
        asm.movi(r2, 0); // parity
        let top = asm.label_here("top");
        let skip = asm.label();
        asm.branch_i(Cond::Ne, r2, 0, skip);
        asm.alu_ri(AluOp::Add, r0, r0, 10);
        asm.place(skip);
        asm.alu_ri(AluOp::Xor, r2, r2, 1);
        asm.alu_ri(AluOp::Sub, r1, r1, 1);
        asm.branch_i(Cond::Ne, r1, 0, top);
        asm.halt();
        let result = run_program(asm);
        // 25 even iterations add 10 each.
        assert_eq!(result.regs[0], 250);
        assert!(result.stats.mispredicts > 0);
    }

    #[test]
    fn rdtsc_monotonic_and_fence() {
        let mut asm = ProgramBuilder::new(CODE_BASE);
        asm.rdtsc(Reg(0));
        asm.fence();
        asm.movi(Reg(2), 0x3_0000);
        asm.load(Reg(3), MemOperand::base_disp(Reg(2), 0), 8);
        asm.fence();
        asm.rdtsc(Reg(1));
        asm.halt();
        let result = run_program(asm);
        assert!(result.regs[1] > result.regs[0]);
    }

    #[test]
    fn hfi_oob_load_faults_and_halts() {
        let mut asm = ProgramBuilder::new(CODE_BASE);
        let code = ImplicitCodeRegion::new(CODE_BASE, 0xFFFF, true).unwrap();
        let data = ImplicitDataRegion::new(0x10_0000, 0xFFFF, true, true).unwrap();
        asm.hfi_set_region(0, Region::Code(code));
        asm.hfi_set_region(2, Region::Data(data));
        asm.hfi_enter(SandboxConfig::hybrid());
        asm.movi(Reg(0), 0x20_0000); // outside the data region
        asm.load(Reg(1), MemOperand::base_disp(Reg(0), 0), 8);
        asm.halt();
        let result = run_program(asm);
        match result.stop {
            Stop::Fault(HfiFault::DataBounds { addr, .. }) => assert_eq!(addr, 0x20_0000),
            other => panic!("expected data-bounds fault, got {other:?}"),
        }
    }

    #[test]
    fn hfi_in_bounds_load_succeeds() {
        let mut asm = ProgramBuilder::new(CODE_BASE);
        let code = ImplicitCodeRegion::new(CODE_BASE, 0xFFFF, true).unwrap();
        let data = ImplicitDataRegion::new(0x10_0000, 0xFFFF, true, true).unwrap();
        asm.hfi_set_region(0, Region::Code(code));
        asm.hfi_set_region(2, Region::Data(data));
        asm.hfi_enter(SandboxConfig::hybrid());
        asm.movi(Reg(0), 0x10_0100);
        asm.movi(Reg(2), 99);
        asm.store(Reg(2), MemOperand::base_disp(Reg(0), 0), 8);
        asm.load(Reg(1), MemOperand::base_disp(Reg(0), 0), 8);
        asm.hfi_exit();
        asm.halt();
        let result = run_program(asm);
        assert_eq!(result.stop, Stop::Halted);
        assert_eq!(result.regs[1], 99);
    }

    #[test]
    fn hmov_executes_relative_to_region() {
        let mut asm = ProgramBuilder::new(CODE_BASE);
        let code = ImplicitCodeRegion::new(CODE_BASE, 0xFFFF, true).unwrap();
        let heap = ExplicitDataRegion::large(0x100_0000, 1 << 16, true, true).unwrap();
        asm.hfi_set_region(0, Region::Code(code));
        asm.hfi_set_region(6, Region::Explicit(heap));
        asm.hfi_enter(SandboxConfig::hybrid());
        asm.movi(Reg(0), 1234);
        asm.hmov_store(0, Reg(0), crate::isa::HmovOperand::disp(0x40), 8);
        asm.hmov_load(0, Reg(1), crate::isa::HmovOperand::disp(0x40), 8);
        asm.hfi_exit();
        asm.halt();
        let mut machine = Machine::new(asm.finish());
        let result = machine.run(100_000);
        assert_eq!(result.stop, Stop::Halted);
        assert_eq!(result.regs[1], 1234);
        // The value must physically live at region base + 0x40.
        assert_eq!(machine.mem.read(0x100_0040, 8), 1234);
    }

    #[test]
    fn hmov_oob_faults() {
        let mut asm = ProgramBuilder::new(CODE_BASE);
        let code = ImplicitCodeRegion::new(CODE_BASE, 0xFFFF, true).unwrap();
        let heap = ExplicitDataRegion::large(0x100_0000, 1 << 16, true, true).unwrap();
        asm.hfi_set_region(0, Region::Code(code));
        asm.hfi_set_region(6, Region::Explicit(heap));
        asm.hfi_enter(SandboxConfig::hybrid());
        asm.hmov_load(0, Reg(1), crate::isa::HmovOperand::disp(1 << 16), 8);
        asm.halt();
        let result = run_program(asm);
        assert!(matches!(result.stop, Stop::Fault(HfiFault::Hmov { .. })));
    }

    #[test]
    fn code_region_blocks_oob_fetch() {
        // Jump to code past the code region bound: decode turns it into a
        // faulting NOP.
        let mut asm = ProgramBuilder::new(CODE_BASE);
        // A tiny code region covering only the first few instructions.
        let code = ImplicitCodeRegion::new(CODE_BASE, 0xF, true).unwrap();
        asm.hfi_set_region(0, Region::Code(code)); // 6 bytes
        asm.hfi_enter(SandboxConfig::hybrid()); // 4 bytes -> next pc 0x40000A
        for _ in 0..12 {
            asm.nop(); // crosses past CODE_BASE + 0xF after 6 nops
        }
        asm.halt();
        let result = run_program(asm);
        assert!(
            matches!(result.stop, Stop::Fault(HfiFault::CodeBounds { .. })),
            "got {:?}",
            result.stop
        );
    }

    #[test]
    fn serialized_enter_drains_pipeline() {
        let code = ImplicitCodeRegion::new(CODE_BASE, 0xFFFF, true).unwrap();
        let mut base_asm = ProgramBuilder::new(CODE_BASE);
        base_asm.hfi_set_region(0, Region::Code(code));
        base_asm.hfi_enter(SandboxConfig::hybrid());
        for _ in 0..50 {
            base_asm.nop();
        }
        base_asm.hfi_exit();
        base_asm.halt();
        let unserialized = run_program(base_asm).cycles;

        let mut ser_asm = ProgramBuilder::new(CODE_BASE);
        ser_asm.hfi_set_region(0, Region::Code(code));
        ser_asm.hfi_enter(SandboxConfig::hybrid().serialized());
        for _ in 0..50 {
            ser_asm.nop();
        }
        ser_asm.hfi_exit();
        ser_asm.halt();
        let result = run_program(ser_asm);
        let serialized = result.cycles;
        let costs = CostModel::default();
        // Both edges serialized; the drains partially overlap with cold
        // i-cache miss stalls, so require at least one full drain cost.
        assert_eq!(result.stats.serializations, 2);
        assert!(
            serialized >= unserialized + costs.serialize_cycles,
            "serialized {serialized} vs unserialized {unserialized}"
        );
    }

    #[test]
    fn native_syscall_redirects_to_handler() {
        let mut asm = ProgramBuilder::new(CODE_BASE);
        let handler = asm.label();
        let sandbox = asm.label();
        let code = ImplicitCodeRegion::new(CODE_BASE, 0xFFFF, true).unwrap();
        asm.hfi_set_region(0, Region::Code(code));
        // We need the handler's byte pc; build in two passes: place the
        // sandbox code after the enter, handler at a known label.
        asm.jump(sandbox);
        asm.place(handler);
        asm.movi(Reg(5), 777); // proof the handler ran
        asm.halt();
        asm.place(sandbox);
        // Patch: enter native sandbox with the handler's pc. We cheat by
        // computing the pc after finish(); instead, use a fixed layout:
        // rebuild with known addresses.
        let prog = asm.finish();
        let handler_pc = prog.pc_of(2); // jump=1 inst at idx1? verify below
                                        // Rebuild properly now that we know the layout.
        let mut asm2 = ProgramBuilder::new(CODE_BASE);
        let handler2 = asm2.label();
        let sandbox2 = asm2.label();
        asm2.hfi_set_region(0, Region::Code(code)); // idx 0
        asm2.jump(sandbox2); // idx 1
        asm2.place(handler2);
        asm2.movi(Reg(5), 777); // idx 2
        asm2.halt(); // idx 3
        asm2.place(sandbox2);
        asm2.hfi_enter(SandboxConfig::native(handler_pc)); // idx 4
        asm2.movi(Reg(0), 42); // syscall number
        asm2.syscall();
        asm2.halt();
        let prog2 = asm2.finish();
        assert_eq!(prog2.pc_of(2), handler_pc);
        let mut machine = Machine::new(prog2);
        let result = machine.run(100_000);
        assert_eq!(result.stop, Stop::Halted);
        assert_eq!(result.regs[5], 777);
        assert_eq!(result.stats.syscalls_redirected, 1);
        assert_eq!(
            result.exit_reason,
            Some(ExitReason::Syscall {
                number: 42,
                kind: SyscallKind::Syscall
            })
        );
    }

    #[test]
    fn hybrid_syscall_reaches_os() {
        let mut asm = ProgramBuilder::new(CODE_BASE);
        let code = ImplicitCodeRegion::new(CODE_BASE, 0xFFFF, true).unwrap();
        asm.hfi_set_region(0, Region::Code(code));
        asm.hfi_enter(SandboxConfig::hybrid());
        asm.movi(Reg(0), 7);
        asm.syscall();
        asm.hfi_exit();
        asm.halt();
        let result = run_program(asm);
        assert_eq!(result.stop, Stop::Halted);
        assert_eq!(result.stats.syscalls_to_os, 1);
    }

    #[test]
    fn exit_syscall_stops_machine() {
        let mut asm = ProgramBuilder::new(CODE_BASE);
        asm.movi(Reg(1), 3); // exit code
        asm.movi(Reg(0), 0); // syscall 0 = exit
        asm.syscall();
        asm.halt();
        let result = run_program(asm);
        assert_eq!(result.stop, Stop::Exited { code: 3 });
    }

    #[test]
    fn speculative_load_fills_cache_after_squash() {
        // Branch depends on a slow (cold) load; the wrong-path load warms
        // a probe line that survives the squash — the Spectre channel.
        let probe_addr: i64 = 0x8_0000;
        let mut asm = ProgramBuilder::new(CODE_BASE);
        let skip = asm.label();
        asm.movi(Reg(1), 0x6_0000);
        asm.flush(MemOperand::base_disp(Reg(1), 0)); // make the condition load slow
                                                     // Train the branch taken? Here the PHT inits weakly-taken, so the
                                                     // first prediction is taken; condition resolves to not-taken.
        asm.load(Reg(2), MemOperand::base_disp(Reg(1), 0), 8); // slow, value 0
        asm.branch_i(Cond::Eq, Reg(2), 0, skip); // actually taken... invert:
                                                 // wrong-path body below executes only speculatively if predicted
                                                 // not-taken; to keep it simple we instead make the *taken* target
                                                 // skip, and put the leak on the fall-through (wrong) path when the
                                                 // branch is actually taken but predicted not-taken is impossible
                                                 // with weak-taken init. So: flip with a pre-training loop is
                                                 // overkill for a unit test — directly verify both outcomes below.
        asm.movi(Reg(3), probe_addr);
        asm.load(Reg(4), MemOperand::base_disp(Reg(3), 0), 8); // wrong path
        asm.place(skip);
        asm.halt();
        let mut machine = Machine::new(asm.finish());
        let result = machine.run(100_000);
        assert_eq!(result.stop, Stop::Halted);
        // If any wrong-path load executed, its line must still be warm.
        if result.stats.squashed_loads_executed > 0 {
            assert!(machine.caches.probe_l1d(probe_addr as u64));
        }
    }

    #[test]
    fn rob_fills_and_drains_without_deadlock() {
        let mut asm = ProgramBuilder::new(CODE_BASE);
        asm.movi(Reg(1), 0x9_0000);
        for i in 0..600 {
            asm.load(Reg(2), MemOperand::base_disp(Reg(1), (i % 7) * 64), 8);
        }
        asm.halt();
        let result = run_program(asm);
        assert_eq!(result.stop, Stop::Halted);
        assert_eq!(result.stats.committed, 602);
    }
}
