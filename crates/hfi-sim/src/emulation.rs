//! The compiler-based HFI *emulation* of paper §5.2 / Appendix A.2.
//!
//! The paper's second evaluation vehicle replaces HFI instructions with
//! available x86 instructions of matching cost, so large workloads can run
//! at native speed on real hardware:
//!
//! * `hmov` → a regular `mov` with a **constant** (register-free) base —
//!   "the largest page-aligned address the x86 `mov` instruction can refer
//!   to via its constant field", capturing both the reserved-input operand
//!   shape and the register-pressure benefit;
//! * `hfi_enter`/`hfi_exit` → `cpuid`, a serializing instruction, plus the
//!   handler check an exit performs;
//! * `hfi_set_region` → moves of the region metadata into registers.
//!
//! [`emulate`] applies the same transformation to a simulated program; the
//! Fig. 2 harness runs both the true-HFI and emulated variants on the cycle
//! simulator and compares, mirroring the paper's gem5 cross-validation.

use std::sync::{Arc, Mutex, OnceLock};

use hfi_core::NUM_REGIONS;

use crate::isa::{AluOp, Inst, MemOperand, Program, Reg};

/// The fixed base address emulated `hmov` accesses use (the paper uses
/// `0x7ffff000`, one page below 2 GiB).
pub const EMULATION_BASE: u64 = 0x7fff_f000;

/// Transforms a program with HFI instructions into its emulated
/// counterpart (no HFI instructions; approximately equal cost).
///
/// Branch targets are instruction indices and every HFI instruction maps
/// to *at least one* replacement, with padding `Nop`s inserted so that
/// instruction indices are preserved exactly — multi-instruction
/// expansions are modelled by cost-equivalent single instructions instead,
/// which keeps control flow intact without a relocation pass.
pub fn emulate(program: &Program) -> Program {
    let insts = program
        .iter()
        .map(|inst| match inst {
            Inst::HmovLoad { dst, mem, size, .. } => Inst::Load {
                dst: *dst,
                mem: MemOperand {
                    base: None,
                    index: mem.index,
                    scale: mem.scale,
                    disp: mem.disp + EMULATION_BASE as i64,
                },
                size: *size,
            },
            Inst::HmovStore { src, mem, size, .. } => Inst::Store {
                src: *src,
                mem: MemOperand {
                    base: None,
                    index: mem.index,
                    scale: mem.scale,
                    disp: mem.disp + EMULATION_BASE as i64,
                },
                size: *size,
            },
            // Serialization cost of enter/exit ≈ cpuid (Appendix A.2).
            Inst::HfiEnter { config } | Inst::HfiEnterChild { config, .. } => {
                if config.serialize {
                    Inst::Cpuid
                } else {
                    Inst::Nop
                }
            }
            Inst::HfiExit | Inst::HfiReenter => Inst::Cpuid,
            // Region metadata moves: modelled as a mov-class ALU op of
            // matching cost. The op must be *value-preserving* (`or r15,
            // r15, 0`): HFI builds reserve no registers — that is the
            // paper's register-pressure point — so r15 can hold a live
            // allocator value, and a clobbering `mov r15, imm` here would
            // change the architectural result (it did, on SPEC-like
            // kernels whose `memory.grow` lowers to `hfi_set_region`).
            Inst::HfiSetRegion { .. } | Inst::HfiClearRegion { .. } | Inst::HfiClearAllRegions => {
                Inst::AluRI {
                    op: AluOp::Or,
                    dst: Reg(15),
                    a: Reg(15),
                    imm: 0,
                }
            }
            other => other.clone(),
        })
        .collect();
    program.with_insts(insts)
}

/// Memoized emulated programs, keyed by source-`Arc` identity (same
/// scheme as `plan_of`: a `Weak` witness detects address reuse after the
/// original program dies, and dead entries are purged on every lookup).
static EMULATE_MEMO: OnceLock<Mutex<crate::plan::MemoEntries<Program>>> = OnceLock::new();

/// The shared emulated counterpart of `program`, transforming it on
/// first sight.
///
/// Harnesses construct the emulation vehicle once per grid cell from one
/// shared `Arc<Program>`; memoizing by `Arc` identity means the A.2
/// transform runs once per kernel × isolation, and — because the result
/// is itself a stable `Arc` — every emulated machine also shares one
/// pre-decoded plan (`plan_of` is keyed the same way).
pub fn emulate_arc(program: &Arc<Program>) -> Arc<Program> {
    let memo = EMULATE_MEMO.get_or_init(|| Mutex::new(Vec::new()));
    let key = Arc::as_ptr(program) as usize;
    let mut entries = memo.lock().expect("emulate memo unpoisoned");
    entries.retain(|(_, witness, _)| witness.strong_count() > 0);
    for (entry_key, witness, emulated) in entries.iter() {
        if *entry_key == key {
            if let Some(alive) = witness.upgrade() {
                if Arc::ptr_eq(&alive, program) {
                    return Arc::clone(emulated);
                }
            }
        }
    }
    let emulated = Arc::new(emulate(program));
    entries.retain(|(entry_key, _, _)| *entry_key != key);
    entries.push((key, Arc::downgrade(program), Arc::clone(&emulated)));
    emulated
}

/// True if a program still contains HFI instructions (i.e. has not been
/// emulated).
pub fn uses_hfi(program: &Program) -> bool {
    program.iter().any(|inst| {
        matches!(
            inst,
            Inst::HmovLoad { .. }
                | Inst::HmovStore { .. }
                | Inst::HfiEnter { .. }
                | Inst::HfiEnterChild { .. }
                | Inst::HfiExit
                | Inst::HfiReenter
                | Inst::HfiSetRegion { .. }
                | Inst::HfiClearRegion { .. }
                | Inst::HfiClearAllRegions
        )
    })
}

/// Copies the *data* an emulated program expects: since emulated `hmov`
/// addresses are `EMULATION_BASE + offset` rather than `region_base +
/// offset`, heap contents must be mirrored at the emulation base.
///
/// Returns the (src, dst) ranges so callers can mirror with their own
/// memory type. `region_slots` lists the explicit-region bases/bounds in
/// use, exactly as the real program's `hfi_set_region` calls configure
/// them.
pub fn emulation_mirror_ranges(region_slots: &[(u64, u64)]) -> Vec<(u64, u64, u64)> {
    // (src_base, dst_base, len)
    region_slots
        .iter()
        .map(|&(base, bound)| (base, EMULATION_BASE, bound))
        .collect()
}

/// Sanity constant: slot count exposed for harnesses that mirror all
/// explicit regions.
pub const ALL_SLOTS: usize = NUM_REGIONS;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::HmovOperand;

    #[test]
    fn emulated_program_has_no_hfi() {
        let prog = Program::new(
            vec![
                Inst::HfiEnter {
                    config: hfi_core::SandboxConfig::hybrid().serialized(),
                },
                Inst::HmovLoad {
                    region: 0,
                    dst: Reg(1),
                    mem: HmovOperand::disp(0x10),
                    size: 8,
                },
                Inst::HfiExit,
                Inst::Halt,
            ],
            0x1000,
        );
        assert!(uses_hfi(&prog));
        let emulated = emulate(&prog);
        assert!(!uses_hfi(&emulated));
        assert_eq!(emulated.len(), prog.len());
    }

    #[test]
    fn emulated_hmov_uses_constant_base() {
        let prog = Program::new(
            vec![Inst::HmovLoad {
                region: 2,
                dst: Reg(3),
                mem: HmovOperand::indexed(Reg(4), 8, 0x20),
                size: 4,
            }],
            0,
        );
        let emulated = emulate(&prog);
        match emulated.inst(0) {
            Inst::Load { mem, .. } => {
                assert_eq!(mem.base, None);
                assert_eq!(mem.index, Some(Reg(4)));
                assert_eq!(mem.disp, 0x20 + EMULATION_BASE as i64);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn emulate_arc_shares_and_survives_reuse() {
        let prog = Arc::new(Program::new(vec![Inst::HfiExit, Inst::Halt], 0x2000));
        let first = emulate_arc(&prog);
        let second = emulate_arc(&prog);
        assert!(Arc::ptr_eq(&first, &second), "same source, one transform");
        assert!(!uses_hfi(&first));
        // A different program (even if the old allocation's address were
        // reused) gets its own transform: the Weak witness disambiguates.
        let other = Arc::new(Program::new(vec![Inst::Halt], 0x2000));
        let third = emulate_arc(&other);
        assert!(!Arc::ptr_eq(&first, &third));
    }

    #[test]
    fn serialized_enter_becomes_cpuid() {
        let serialized = Program::new(
            vec![Inst::HfiEnter {
                config: hfi_core::SandboxConfig::hybrid().serialized(),
            }],
            0,
        );
        assert!(matches!(emulate(&serialized).inst(0), Inst::Cpuid));
        let unserialized = Program::new(
            vec![Inst::HfiEnter {
                config: hfi_core::SandboxConfig::hybrid(),
            }],
            0,
        );
        assert!(matches!(emulate(&unserialized).inst(0), Inst::Nop));
    }
}
