//! The compiler-based HFI *emulation* of paper §5.2 / Appendix A.2.
//!
//! The paper's second evaluation vehicle replaces HFI instructions with
//! available x86 instructions of matching cost, so large workloads can run
//! at native speed on real hardware:
//!
//! * `hmov` → a regular `mov` with a **constant** (register-free) base —
//!   "the largest page-aligned address the x86 `mov` instruction can refer
//!   to via its constant field", capturing both the reserved-input operand
//!   shape and the register-pressure benefit;
//! * `hfi_enter`/`hfi_exit` → `cpuid`, a serializing instruction, plus the
//!   handler check an exit performs;
//! * `hfi_set_region` → moves of the region metadata into registers.
//!
//! [`emulate`] applies the same transformation to a simulated program; the
//! Fig. 2 harness runs both the true-HFI and emulated variants on the cycle
//! simulator and compares, mirroring the paper's gem5 cross-validation.

use std::sync::{Arc, Mutex, OnceLock};

use hfi_core::NUM_REGIONS;

use crate::isa::{AluOp, Inst, MemOperand, Program, Reg};

/// The fixed base address emulated `hmov` accesses use (the paper uses
/// `0x7ffff000`, one page below 2 GiB).
pub const EMULATION_BASE: u64 = 0x7fff_f000;

/// Transforms a program with HFI instructions into its emulated
/// counterpart (no HFI instructions; approximately equal cost).
///
/// Branch targets are instruction indices and every HFI instruction maps
/// to *at least one* replacement, with padding `Nop`s inserted so that
/// instruction indices are preserved exactly — multi-instruction
/// expansions are modelled by cost-equivalent single instructions instead,
/// which keeps control flow intact without a relocation pass.
pub fn emulate(program: &Program) -> Program {
    let insts = program
        .iter()
        .map(|inst| match inst {
            Inst::HmovLoad { dst, mem, size, .. } => Inst::Load {
                dst: *dst,
                mem: MemOperand {
                    base: None,
                    index: mem.index,
                    scale: mem.scale,
                    disp: mem.disp + EMULATION_BASE as i64,
                },
                size: *size,
            },
            Inst::HmovStore { src, mem, size, .. } => Inst::Store {
                src: *src,
                mem: MemOperand {
                    base: None,
                    index: mem.index,
                    scale: mem.scale,
                    disp: mem.disp + EMULATION_BASE as i64,
                },
                size: *size,
            },
            // Serialization cost of enter/exit ≈ cpuid (Appendix A.2).
            Inst::HfiEnter { config } | Inst::HfiEnterChild { config, .. } => {
                if config.serialize {
                    Inst::Cpuid
                } else {
                    Inst::Nop
                }
            }
            Inst::HfiExit | Inst::HfiReenter => Inst::Cpuid,
            // Region metadata moves: modelled as a mov-class ALU op of
            // matching cost. The op must be *value-preserving* (`or r15,
            // r15, 0`): HFI builds reserve no registers — that is the
            // paper's register-pressure point — so r15 can hold a live
            // allocator value, and a clobbering `mov r15, imm` here would
            // change the architectural result (it did, on SPEC-like
            // kernels whose `memory.grow` lowers to `hfi_set_region`).
            Inst::HfiSetRegion { .. } | Inst::HfiClearRegion { .. } | Inst::HfiClearAllRegions => {
                Inst::AluRI {
                    op: AluOp::Or,
                    dst: Reg(15),
                    a: Reg(15),
                    imm: 0,
                }
            }
            other => other.clone(),
        })
        .collect();
    program.with_insts(insts)
}

/// Memoized emulated programs, keyed by source-`Arc` identity (same
/// scheme as `plan_of`: a `Weak` witness detects address reuse after the
/// original program dies, and dead entries are purged on every lookup).
static EMULATE_MEMO: OnceLock<Mutex<crate::plan::MemoEntries<Program>>> = OnceLock::new();

/// The shared emulated counterpart of `program`, transforming it on
/// first sight.
///
/// Harnesses construct the emulation vehicle once per grid cell from one
/// shared `Arc<Program>`; memoizing by `Arc` identity means the A.2
/// transform runs once per kernel × isolation, and — because the result
/// is itself a stable `Arc` — every emulated machine also shares one
/// pre-decoded plan (`plan_of` is keyed the same way).
pub fn emulate_arc(program: &Arc<Program>) -> Arc<Program> {
    let memo = EMULATE_MEMO.get_or_init(|| Mutex::new(Vec::new()));
    let key = Arc::as_ptr(program) as usize;
    let mut entries = memo.lock().expect("emulate memo unpoisoned");
    entries.retain(|(_, witness, _)| witness.strong_count() > 0);
    for (entry_key, witness, emulated) in entries.iter() {
        if *entry_key == key {
            if let Some(alive) = witness.upgrade() {
                if Arc::ptr_eq(&alive, program) {
                    return Arc::clone(emulated);
                }
            }
        }
    }
    let emulated = Arc::new(emulate(program));
    entries.retain(|(entry_key, _, _)| *entry_key != key);
    entries.push((key, Arc::downgrade(program), Arc::clone(&emulated)));
    emulated
}

/// Options for the *guarded* emulation variant ([`emulate_guarded`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuardedOptions {
    /// Scratch register the guard sequences may clobber. Must be dead in
    /// the source program (the hfi-wasm compiler's `SCRATCH_MEM` is free
    /// under HFI isolation, which never materializes addresses in it).
    pub scratch: Reg,
    /// Power-of-two bound every emulated `hmov` offset is masked into:
    /// the size of the mirrored window at [`EMULATION_BASE`].
    pub bound: u64,
}

/// A guarded-emulation result: the transformed program plus the index
/// relocation map (guard sequences change instruction counts, unlike the
/// index-preserving [`emulate`]).
#[derive(Debug, Clone)]
pub struct GuardedEmulation {
    /// The transformed program (no HFI instructions, every former `hmov`
    /// offset masked into `[0, bound)` before use).
    pub program: Program,
    /// `index_map[i]` is the new index of source instruction `i`; the
    /// extra final entry maps one-past-the-end (for labels at the end).
    pub index_map: Vec<usize>,
}

/// Why a program cannot be emulated with guards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardedEmulationError {
    /// The bound is not a power of two, so a single AND cannot enforce it.
    BoundNotPowerOfTwo {
        /// The offending bound.
        bound: u64,
    },
    /// The program reads or writes the designated scratch register, so
    /// inserting guard sequences would corrupt it.
    ScratchLive {
        /// Index of the first instruction touching the scratch register.
        index: usize,
    },
    /// Indirect jumps cannot be relocated statically.
    IndirectJump {
        /// Index of the offending instruction.
        index: usize,
    },
}

impl std::fmt::Display for GuardedEmulationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GuardedEmulationError::BoundNotPowerOfTwo { bound } => {
                write!(f, "guard bound {bound:#x} is not a power of two")
            }
            GuardedEmulationError::ScratchLive { index } => {
                write!(f, "scratch register is live at instruction {index}")
            }
            GuardedEmulationError::IndirectJump { index } => {
                write!(
                    f,
                    "indirect jump at instruction {index} cannot be relocated"
                )
            }
        }
    }
}

impl std::error::Error for GuardedEmulationError {}

fn touches(inst: &Inst, reg: Reg) -> bool {
    let mem_uses = |mem: &MemOperand| mem.base == Some(reg) || mem.index == Some(reg);
    match inst {
        Inst::AluRR { dst, a, b, .. } => *dst == reg || *a == reg || *b == reg,
        Inst::AluRI { dst, a, .. } => *dst == reg || *a == reg,
        Inst::MovI { dst, .. } | Inst::Rdtsc { dst } => *dst == reg,
        Inst::Mov { dst, src } => *dst == reg || *src == reg,
        Inst::Load { dst, mem, .. } => *dst == reg || mem_uses(mem),
        Inst::Store { src, mem, .. } => *src == reg || mem_uses(mem),
        Inst::HmovLoad { dst, mem, .. } => *dst == reg || mem.index == Some(reg),
        Inst::HmovStore { src, mem, .. } => *src == reg || mem.index == Some(reg),
        Inst::Flush { mem } => mem_uses(mem),
        Inst::Branch { a, b, .. } => *a == reg || *b == reg,
        Inst::BranchI { a, .. } => *a == reg,
        Inst::JumpInd { reg: r } => *r == reg,
        _ => false,
    }
}

/// Emits the guarded replacement of one `hmov` operand: computes the
/// region-relative offset into `scratch`, masks it into `[0, bound)`, and
/// returns the memory operand of the final access.
fn guard_sequence(
    mem: &crate::isa::HmovOperand,
    opts: &GuardedOptions,
    out: &mut Vec<Inst>,
) -> MemOperand {
    let mask = (opts.bound - 1) as i64;
    match mem.index {
        Some(index) => {
            if mem.scale > 1 {
                out.push(Inst::AluRI {
                    op: AluOp::Shl,
                    dst: opts.scratch,
                    a: index,
                    imm: mem.scale.trailing_zeros() as i64,
                });
                if mem.disp != 0 {
                    out.push(Inst::AluRI {
                        op: AluOp::Add,
                        dst: opts.scratch,
                        a: opts.scratch,
                        imm: mem.disp,
                    });
                }
            } else {
                // scale == 1: one add moves, offsets, and copies at once.
                out.push(Inst::AluRI {
                    op: AluOp::Add,
                    dst: opts.scratch,
                    a: index,
                    imm: mem.disp,
                });
            }
            out.push(Inst::AluRI {
                op: AluOp::And,
                dst: opts.scratch,
                a: opts.scratch,
                imm: mask,
            });
            MemOperand {
                base: Some(opts.scratch),
                index: None,
                scale: 1,
                disp: EMULATION_BASE as i64,
            }
        }
        // Constant offsets need no runtime guard: mask statically. An
        // out-of-bounds constant wraps into the window instead of
        // trapping — acceptable for the emulation vehicle, whose job is
        // cost fidelity, not fault fidelity.
        None => MemOperand::absolute(EMULATION_BASE as i64 + (mem.disp & mask)),
    }
}

/// The *guarded* A.2 emulation: like [`emulate`], but every former `hmov`
/// with a dynamic index gets an explicit mask-and guard confining its
/// offset to `[0, bound)` before the constant-base access — the SFI-style
/// sequence the `hfi-verify` static checker can prove safe without any
/// knowledge of the hardware check.
///
/// Unlike [`emulate`] this changes instruction counts, so direct branch /
/// jump / call targets are relocated through the returned index map.
/// The default [`emulate`] transform is deliberately untouched: its
/// 1:1 output is pinned byte-identically by the golden-counter tests.
///
/// # Errors
///
/// Fails if `bound` is not a power of two, if the scratch register is
/// live anywhere in the program, or if the program contains indirect
/// jumps (their byte-PC targets cannot be relocated statically).
pub fn emulate_guarded(
    program: &Program,
    opts: &GuardedOptions,
) -> Result<GuardedEmulation, GuardedEmulationError> {
    if !opts.bound.is_power_of_two() {
        return Err(GuardedEmulationError::BoundNotPowerOfTwo { bound: opts.bound });
    }
    for (index, inst) in program.iter().enumerate() {
        if touches(inst, opts.scratch) {
            return Err(GuardedEmulationError::ScratchLive { index });
        }
        if matches!(inst, Inst::JumpInd { .. }) {
            return Err(GuardedEmulationError::IndirectJump { index });
        }
    }

    let mut out: Vec<Inst> = Vec::with_capacity(program.len());
    let mut index_map = Vec::with_capacity(program.len() + 1);
    for inst in program.iter() {
        index_map.push(out.len());
        match inst {
            Inst::HmovLoad { dst, mem, size, .. } => {
                let mem = guard_sequence(mem, opts, &mut out);
                out.push(Inst::Load {
                    dst: *dst,
                    mem,
                    size: *size,
                });
            }
            Inst::HmovStore { src, mem, size, .. } => {
                let mem = guard_sequence(mem, opts, &mut out);
                out.push(Inst::Store {
                    src: *src,
                    mem,
                    size: *size,
                });
            }
            Inst::HfiEnter { config } | Inst::HfiEnterChild { config, .. } => {
                out.push(if config.serialize {
                    Inst::Cpuid
                } else {
                    Inst::Nop
                });
            }
            Inst::HfiExit | Inst::HfiReenter => out.push(Inst::Cpuid),
            Inst::HfiSetRegion { .. } | Inst::HfiClearRegion { .. } | Inst::HfiClearAllRegions => {
                out.push(Inst::AluRI {
                    op: AluOp::Or,
                    dst: Reg(15),
                    a: Reg(15),
                    imm: 0,
                });
            }
            other => out.push(other.clone()),
        }
    }
    index_map.push(out.len());

    // Relocate direct control flow through the index map.
    for inst in &mut out {
        match inst {
            Inst::Branch { target, .. }
            | Inst::BranchI { target, .. }
            | Inst::Jump { target }
            | Inst::Call { target } => *target = index_map[*target],
            _ => {}
        }
    }
    Ok(GuardedEmulation {
        program: program.with_insts(out),
        index_map,
    })
}

/// True if a program still contains HFI instructions (i.e. has not been
/// emulated).
pub fn uses_hfi(program: &Program) -> bool {
    program.iter().any(|inst| {
        matches!(
            inst,
            Inst::HmovLoad { .. }
                | Inst::HmovStore { .. }
                | Inst::HfiEnter { .. }
                | Inst::HfiEnterChild { .. }
                | Inst::HfiExit
                | Inst::HfiReenter
                | Inst::HfiSetRegion { .. }
                | Inst::HfiClearRegion { .. }
                | Inst::HfiClearAllRegions
        )
    })
}

/// Copies the *data* an emulated program expects: since emulated `hmov`
/// addresses are `EMULATION_BASE + offset` rather than `region_base +
/// offset`, heap contents must be mirrored at the emulation base.
///
/// Returns the (src, dst) ranges so callers can mirror with their own
/// memory type. `region_slots` lists the explicit-region bases/bounds in
/// use, exactly as the real program's `hfi_set_region` calls configure
/// them.
pub fn emulation_mirror_ranges(region_slots: &[(u64, u64)]) -> Vec<(u64, u64, u64)> {
    // (src_base, dst_base, len)
    region_slots
        .iter()
        .map(|&(base, bound)| (base, EMULATION_BASE, bound))
        .collect()
}

/// Sanity constant: slot count exposed for harnesses that mirror all
/// explicit regions.
pub const ALL_SLOTS: usize = NUM_REGIONS;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::HmovOperand;

    #[test]
    fn emulated_program_has_no_hfi() {
        let prog = Program::new(
            vec![
                Inst::HfiEnter {
                    config: hfi_core::SandboxConfig::hybrid().serialized(),
                },
                Inst::HmovLoad {
                    region: 0,
                    dst: Reg(1),
                    mem: HmovOperand::disp(0x10),
                    size: 8,
                },
                Inst::HfiExit,
                Inst::Halt,
            ],
            0x1000,
        );
        assert!(uses_hfi(&prog));
        let emulated = emulate(&prog);
        assert!(!uses_hfi(&emulated));
        assert_eq!(emulated.len(), prog.len());
    }

    #[test]
    fn emulated_hmov_uses_constant_base() {
        let prog = Program::new(
            vec![Inst::HmovLoad {
                region: 2,
                dst: Reg(3),
                mem: HmovOperand::indexed(Reg(4), 8, 0x20),
                size: 4,
            }],
            0,
        );
        let emulated = emulate(&prog);
        match emulated.inst(0) {
            Inst::Load { mem, .. } => {
                assert_eq!(mem.base, None);
                assert_eq!(mem.index, Some(Reg(4)));
                assert_eq!(mem.disp, 0x20 + EMULATION_BASE as i64);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn emulate_arc_shares_and_survives_reuse() {
        let prog = Arc::new(Program::new(vec![Inst::HfiExit, Inst::Halt], 0x2000));
        let first = emulate_arc(&prog);
        let second = emulate_arc(&prog);
        assert!(Arc::ptr_eq(&first, &second), "same source, one transform");
        assert!(!uses_hfi(&first));
        // A different program (even if the old allocation's address were
        // reused) gets its own transform: the Weak witness disambiguates.
        let other = Arc::new(Program::new(vec![Inst::Halt], 0x2000));
        let third = emulate_arc(&other);
        assert!(!Arc::ptr_eq(&first, &third));
    }

    #[test]
    fn guarded_emulation_masks_and_relocates() {
        use crate::isa::Cond;
        let prog = Program::new(
            vec![
                Inst::HfiEnter {
                    config: hfi_core::SandboxConfig::hybrid().serialized(),
                }, // 0
                Inst::HmovLoad {
                    region: 0,
                    dst: Reg(1),
                    mem: HmovOperand::indexed(Reg(2), 8, 0x40),
                    size: 8,
                }, // 1 -> expands to shl/add/and/load
                Inst::BranchI {
                    cond: Cond::Ne,
                    a: Reg(1),
                    imm: 0,
                    target: 4,
                }, // 2
                Inst::HfiExit, // 3
                Inst::Halt,    // 4
            ],
            0x1000,
        );
        let opts = GuardedOptions {
            scratch: Reg(14),
            bound: 1 << 20,
        };
        let guarded = emulate_guarded(&prog, &opts).expect("guardable");
        assert!(!uses_hfi(&guarded.program));
        assert_eq!(guarded.index_map, vec![0, 1, 5, 6, 7, 8]);
        // The expansion: shl scratch, r2, 3; add scratch, scratch, 0x40;
        // and scratch, scratch, bound-1; load r1, [scratch + EMULATION_BASE].
        match guarded.program.inst(3) {
            Inst::AluRI { op, dst, imm, .. } => {
                assert_eq!(*op, AluOp::And);
                assert_eq!(*dst, Reg(14));
                assert_eq!(*imm, (1 << 20) - 1);
            }
            other => panic!("expected the mask, got {other:?}"),
        }
        match guarded.program.inst(4) {
            Inst::Load { mem, .. } => {
                assert_eq!(mem.base, Some(Reg(14)));
                assert_eq!(mem.disp, EMULATION_BASE as i64);
            }
            other => panic!("expected the load, got {other:?}"),
        }
        // The branch target moved with the expansion.
        match guarded.program.inst(5) {
            Inst::BranchI { target, .. } => assert_eq!(*target, 7),
            other => panic!("expected the branch, got {other:?}"),
        }
    }

    #[test]
    fn guarded_emulation_matches_plain_emulation_results() {
        use crate::core::Machine;
        // An architectural equivalence check: for in-bounds accesses the
        // guarded variant computes the same result as the plain A.2
        // emulation (the mask is a no-op on legal offsets).
        let heap = hfi_core::ExplicitDataRegion::large(0x1000_0000, 1 << 20, true, true).unwrap();
        let mut asm = crate::asm::ProgramBuilder::new(0x40_0000);
        asm.hfi_set_region(6, hfi_core::Region::Explicit(heap));
        asm.hfi_enter(hfi_core::SandboxConfig::hybrid());
        asm.movi(Reg(2), 8);
        asm.hmov_load(0, Reg(1), HmovOperand::indexed(Reg(2), 8, 0), 8);
        asm.hmov_store(0, Reg(1), HmovOperand::disp(0x100), 8);
        asm.hmov_load(0, Reg(3), HmovOperand::disp(0x100), 8);
        asm.hfi_exit();
        asm.halt();
        let prog = asm.finish();

        let run = |program: Program| {
            let mut machine = Machine::new(program);
            machine
                .mem
                .write_bytes(EMULATION_BASE + 0x40, &0xDEAD_BEEFu64.to_le_bytes());
            let result = machine.run(100_000);
            assert_eq!(result.stop, crate::core::Stop::Halted);
            machine.regs()
        };
        let plain = run(emulate(&prog));
        let opts = GuardedOptions {
            scratch: Reg(14),
            bound: 1 << 20,
        };
        let guarded = run(emulate_guarded(&prog, &opts).unwrap().program);
        assert_eq!(plain[1], 0xDEAD_BEEF);
        assert_eq!(plain[1], guarded[1]);
        assert_eq!(plain[3], guarded[3]);
    }

    #[test]
    fn guarded_emulation_rejects_bad_inputs() {
        let opts = GuardedOptions {
            scratch: Reg(14),
            bound: 1 << 20,
        };
        let indirect = Program::new(vec![Inst::JumpInd { reg: Reg(3) }], 0);
        assert_eq!(
            emulate_guarded(&indirect, &opts).unwrap_err(),
            GuardedEmulationError::IndirectJump { index: 0 }
        );
        let uses_scratch = Program::new(
            vec![Inst::MovI {
                dst: Reg(14),
                imm: 1,
            }],
            0,
        );
        assert_eq!(
            emulate_guarded(&uses_scratch, &opts).unwrap_err(),
            GuardedEmulationError::ScratchLive { index: 0 }
        );
        let fine = Program::new(vec![Inst::Halt], 0);
        assert_eq!(
            emulate_guarded(
                &fine,
                &GuardedOptions {
                    scratch: Reg(14),
                    bound: 3,
                }
            )
            .unwrap_err(),
            GuardedEmulationError::BoundNotPowerOfTwo { bound: 3 }
        );
    }

    #[test]
    fn serialized_enter_becomes_cpuid() {
        let serialized = Program::new(
            vec![Inst::HfiEnter {
                config: hfi_core::SandboxConfig::hybrid().serialized(),
            }],
            0,
        );
        assert!(matches!(emulate(&serialized).inst(0), Inst::Cpuid));
        let unserialized = Program::new(
            vec![Inst::HfiEnter {
                config: hfi_core::SandboxConfig::hybrid(),
            }],
            0,
        );
        assert!(matches!(emulate(&unserialized).inst(0), Inst::Nop));
    }
}
