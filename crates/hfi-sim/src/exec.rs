//! The unified execution interface.
//!
//! Every paper experiment is a (kernel × isolation × executor) grid, and
//! the repository has three execution vehicles: the cycle-accurate
//! [`Machine`], the calibrated [`Functional`] interpreter, and the
//! Appendix A.2 *emulation* (the program transform of [`crate::emulation`]
//! run on the cycle core). [`Executor`] gives all three one interface —
//! `prepare` guest memory, `run`, read back a [`RunRecord`] — so harnesses
//! can fan a grid across executors without per-vehicle plumbing, and so
//! cross-validation (Fig. 2: functional vs. cycle, emulated vs. true HFI)
//! is a one-line swap.
//!
//! [`RunRecord`] is the machine-readable result: cycles, committed
//! instructions, and the full pipeline observability surface (ROB stalls,
//! squashes, cache and dTLB hit/miss counts, predictor accuracy, HFI
//! check/fault counts). It serializes itself to a JSON object so
//! harnesses can emit JSON-lines trajectories without a serde dependency.

use std::sync::Arc;

use crate::core::{CoreStats, Machine, Stop};
use crate::emulation::{emulate, emulate_arc, EMULATION_BASE};
use crate::functional::{Functional, FunctionalStats};
use crate::isa::Program;

/// Which execution vehicle produced a [`RunRecord`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecutorKind {
    /// The cycle-level out-of-order [`Machine`].
    Cycle,
    /// The calibrated [`Functional`] interpreter.
    Functional,
    /// The [`Functional`] interpreter block-threading the fused
    /// superinstruction plan (bit-identical results, faster dispatch).
    Fused,
    /// The Appendix A.2 emulation transform on the cycle [`Machine`].
    Emulated,
}

impl ExecutorKind {
    /// Stable lowercase name used in JSON records and table headers.
    pub fn as_str(self) -> &'static str {
        match self {
            ExecutorKind::Cycle => "cycle",
            ExecutorKind::Functional => "functional",
            ExecutorKind::Fused => "fused",
            ExecutorKind::Emulated => "emulated",
        }
    }
}

impl std::fmt::Display for ExecutorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The unified, machine-readable result of one executor run.
///
/// Counters an executor cannot observe are zero (the functional model has
/// no caches, no ROB, and never mispredicts); `predictor_accuracy` is 1.0
/// when no branches ran.
///
/// The two host-side throughput fields (`sim_mips`, `host_ns_per_cycle`)
/// describe how fast the *simulator* ran, not the simulated machine; they
/// are excluded from `PartialEq` so records of identical simulations
/// compare equal across hosts and runs.
#[derive(Debug, Clone, Copy)]
pub struct RunRecord {
    /// Which vehicle ran.
    pub executor: ExecutorKind,
    /// Cycles (exact for the cycle core, modelled f64 for functional).
    pub cycles: f64,
    /// Committed (retired) instructions.
    pub committed: u64,
    /// Squashed wrong-path instructions.
    pub squashed: u64,
    /// Committed branches (conditional + indirect).
    pub branches: u64,
    /// Branch mispredictions.
    pub mispredicts: u64,
    /// 1 − mispredicts/branches.
    pub predictor_accuracy: f64,
    /// Cycles the front end stalled on a full ROB.
    pub rob_stall_cycles: u64,
    /// Pipeline serializations (drains).
    pub serializations: u64,
    /// L1 instruction-cache hits.
    pub l1i_hits: u64,
    /// L1 instruction-cache misses.
    pub l1i_misses: u64,
    /// L1 data-cache hits.
    pub l1d_hits: u64,
    /// L1 data-cache misses.
    pub l1d_misses: u64,
    /// Unified L2 hits.
    pub l2_hits: u64,
    /// Unified L2 misses.
    pub l2_misses: u64,
    /// dTLB hits.
    pub dtlb_hits: u64,
    /// dTLB misses.
    pub dtlb_misses: u64,
    /// HFI checks evaluated (fetch + implicit-data + `hmov`).
    pub hfi_checks: u64,
    /// Faults delivered.
    pub hfi_faults: u64,
    /// Syscalls redirected by HFI interposition.
    pub syscalls_redirected: u64,
    /// Syscalls serviced by the OS model.
    pub syscalls_to_os: u64,
    /// Host-side simulator throughput: committed simulated instructions
    /// per host microsecond (0.0 when the run was not timed).
    pub sim_mips: f64,
    /// Host nanoseconds spent per simulated cycle (0.0 when untimed).
    pub host_ns_per_cycle: f64,
    /// True when the program this run executed passed the `hfi-verify`
    /// static sandbox-safety check (set by harnesses; executors
    /// themselves report `false`). Like the host-timing fields this is
    /// provenance, not an architectural counter, so it is excluded from
    /// `PartialEq`.
    pub verified: bool,
}

impl PartialEq for RunRecord {
    /// Architectural equality: every counter except the host-side
    /// throughput fields, which vary run to run by construction.
    fn eq(&self, other: &Self) -> bool {
        self.executor == other.executor
            && self.cycles == other.cycles
            && self.committed == other.committed
            && self.squashed == other.squashed
            && self.branches == other.branches
            && self.mispredicts == other.mispredicts
            && self.predictor_accuracy == other.predictor_accuracy
            && self.rob_stall_cycles == other.rob_stall_cycles
            && self.serializations == other.serializations
            && self.l1i_hits == other.l1i_hits
            && self.l1i_misses == other.l1i_misses
            && self.l1d_hits == other.l1d_hits
            && self.l1d_misses == other.l1d_misses
            && self.l2_hits == other.l2_hits
            && self.l2_misses == other.l2_misses
            && self.dtlb_hits == other.dtlb_hits
            && self.dtlb_misses == other.dtlb_misses
            && self.hfi_checks == other.hfi_checks
            && self.hfi_faults == other.hfi_faults
            && self.syscalls_redirected == other.syscalls_redirected
            && self.syscalls_to_os == other.syscalls_to_os
    }
}

impl RunRecord {
    /// Fills the host-side throughput fields from the wall-clock time of
    /// the run (`host_ns` nanoseconds for the whole simulation).
    pub fn with_host_timing(mut self, host_ns: u64) -> Self {
        let host_ns = host_ns.max(1);
        self.sim_mips = self.committed as f64 / (host_ns as f64 / 1e9) / 1e6;
        self.host_ns_per_cycle = host_ns as f64 / self.cycles.max(1.0);
        self
    }

    /// The record's fields as `"key":value` JSON pairs, without enclosing
    /// braces — callers splice in their own context fields (figure,
    /// kernel, isolation) ahead of them.
    pub fn json_fields(&self) -> String {
        format!(
            "\"executor\":\"{}\",\"cycles\":{},\"committed\":{},\"squashed\":{},\
             \"branches\":{},\"mispredicts\":{},\"predictor_accuracy\":{:.6},\
             \"rob_stall_cycles\":{},\"serializations\":{},\
             \"l1i_hits\":{},\"l1i_misses\":{},\"l1d_hits\":{},\"l1d_misses\":{},\
             \"l2_hits\":{},\"l2_misses\":{},\"dtlb_hits\":{},\"dtlb_misses\":{},\
             \"hfi_checks\":{},\"hfi_faults\":{},\
             \"syscalls_redirected\":{},\"syscalls_to_os\":{},\
             \"sim_mips\":{:.3},\"host_ns_per_cycle\":{:.3},\"verified\":{}",
            self.executor.as_str(),
            self.cycles,
            self.committed,
            self.squashed,
            self.branches,
            self.mispredicts,
            self.predictor_accuracy,
            self.rob_stall_cycles,
            self.serializations,
            self.l1i_hits,
            self.l1i_misses,
            self.l1d_hits,
            self.l1d_misses,
            self.l2_hits,
            self.l2_misses,
            self.dtlb_hits,
            self.dtlb_misses,
            self.hfi_checks,
            self.hfi_faults,
            self.syscalls_redirected,
            self.syscalls_to_os,
            self.sim_mips,
            self.host_ns_per_cycle,
            self.verified,
        )
    }

    /// The record as one standalone JSON object.
    pub fn to_json(&self) -> String {
        format!("{{{}}}", self.json_fields())
    }
}

fn accuracy(branches: u64, mispredicts: u64) -> f64 {
    if branches == 0 {
        1.0
    } else {
        1.0 - mispredicts as f64 / branches as f64
    }
}

/// One execution vehicle behind a uniform prepare/run/stats interface.
///
/// `run`'s `limit` is in the executor's native unit — cycles for the
/// cycle-level vehicles, instructions for the functional interpreter —
/// matching the inherent `run` methods. Harnesses pass a budget large
/// enough for either interpretation.
pub trait Executor {
    /// Which vehicle this is.
    fn kind(&self) -> ExecutorKind;

    /// Writes kernel input bytes into guest memory before running.
    /// Emulated executors also mirror the bytes at the emulation base.
    fn prepare(&mut self, addr: u64, bytes: &[u8]);

    /// Runs to completion (or the budget) and reports why it stopped.
    fn run(&mut self, limit: u64) -> Stop;

    /// The unified counter snapshot.
    fn stats(&self) -> RunRecord;

    /// The architectural register file.
    fn regs(&self) -> [u64; 16];
}

fn machine_record(machine: &Machine, kind: ExecutorKind) -> RunRecord {
    let stats: CoreStats = machine.core_stats();
    let (l1i_hits, l1i_misses) = machine.caches.l1i.stats();
    let (l1d_hits, l1d_misses) = machine.caches.l1d.stats();
    let (l2_hits, l2_misses) = machine.caches.l2.stats();
    let (dtlb_hits, dtlb_misses) = machine.caches.dtlb.stats();
    RunRecord {
        executor: kind,
        cycles: machine.cycles() as f64,
        committed: stats.committed,
        squashed: stats.squashed,
        branches: stats.branches,
        mispredicts: stats.mispredicts,
        predictor_accuracy: accuracy(stats.branches, stats.mispredicts),
        rob_stall_cycles: stats.rob_stall_cycles,
        serializations: stats.serializations,
        l1i_hits,
        l1i_misses,
        l1d_hits,
        l1d_misses,
        l2_hits,
        l2_misses,
        dtlb_hits,
        dtlb_misses,
        hfi_checks: stats.hfi_checks,
        hfi_faults: stats.faults,
        syscalls_redirected: stats.syscalls_redirected,
        syscalls_to_os: stats.syscalls_to_os,
        sim_mips: 0.0,
        host_ns_per_cycle: 0.0,
        verified: false,
    }
}

impl Executor for Machine {
    fn kind(&self) -> ExecutorKind {
        ExecutorKind::Cycle
    }

    fn prepare(&mut self, addr: u64, bytes: &[u8]) {
        self.mem.write_bytes(addr, bytes);
    }

    fn run(&mut self, limit: u64) -> Stop {
        Machine::run(self, limit).stop
    }

    fn stats(&self) -> RunRecord {
        machine_record(self, ExecutorKind::Cycle)
    }

    fn regs(&self) -> [u64; 16] {
        Machine::regs(self)
    }
}

impl Executor for Functional {
    fn kind(&self) -> ExecutorKind {
        if self.is_fused() {
            ExecutorKind::Fused
        } else {
            ExecutorKind::Functional
        }
    }

    fn prepare(&mut self, addr: u64, bytes: &[u8]) {
        self.mem.write_bytes(addr, bytes);
    }

    fn run(&mut self, limit: u64) -> Stop {
        Functional::run(self, limit).stop
    }

    fn stats(&self) -> RunRecord {
        let stats: FunctionalStats = self.functional_stats();
        RunRecord {
            executor: Executor::kind(self),
            cycles: self.cycles(),
            committed: stats.retired,
            squashed: 0,
            branches: stats.branches,
            mispredicts: 0,
            predictor_accuracy: 1.0,
            rob_stall_cycles: 0,
            serializations: stats.serializations,
            l1i_hits: 0,
            l1i_misses: 0,
            l1d_hits: 0,
            l1d_misses: 0,
            l2_hits: 0,
            l2_misses: 0,
            dtlb_hits: 0,
            dtlb_misses: 0,
            hfi_checks: stats.hfi_checks,
            hfi_faults: stats.faults,
            syscalls_redirected: stats.syscalls_redirected,
            syscalls_to_os: stats.syscalls_to_os,
            sim_mips: 0.0,
            host_ns_per_cycle: 0.0,
            verified: false,
        }
    }

    fn regs(&self) -> [u64; 16] {
        Functional::regs(self)
    }
}

/// The Appendix A.2 emulation vehicle: the [`emulate`] transform applied
/// to a program, run on the cycle-level [`Machine`].
///
/// Emulated `hmov` accesses read `EMULATION_BASE + offset` instead of
/// `region_base + offset`, so [`Executor::prepare`] mirrors heap bytes at
/// both addresses (the mirror keeps non-hmov accesses through real heap
/// pointers working too).
pub struct Emulated {
    machine: Machine,
    heap_base: u64,
}

impl Emulated {
    /// Transforms `program` (see [`emulate`]) and wraps a fresh machine
    /// around it. `heap_base` is the guest heap base the original program
    /// was compiled against; `prepare` writes are mirrored from there to
    /// [`EMULATION_BASE`].
    pub fn new(program: &Program, heap_base: u64) -> Self {
        Self {
            machine: Machine::new(emulate(program)),
            heap_base,
        }
    }

    /// The wrapped cycle machine (for OS models, cost tweaks, probes).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Creates the emulated counterpart of an existing shared program.
    ///
    /// The A.2 transform (and, transitively, the pre-decoded plan of its
    /// result) is memoized by `Arc` identity — see
    /// [`emulate_arc`](crate::emulation::emulate_arc) — so repeated grid
    /// cells over one shared program pay for one transform and one
    /// lowering.
    pub fn from_arc(program: &Arc<Program>, heap_base: u64) -> Self {
        Self {
            machine: Machine::new(emulate_arc(program)),
            heap_base,
        }
    }
}

impl std::fmt::Debug for Emulated {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Emulated")
            .field("heap_base", &self.heap_base)
            .field("machine", &self.machine)
            .finish()
    }
}

impl Executor for Emulated {
    fn kind(&self) -> ExecutorKind {
        ExecutorKind::Emulated
    }

    fn prepare(&mut self, addr: u64, bytes: &[u8]) {
        self.machine.mem.write_bytes(addr, bytes);
        if addr >= self.heap_base {
            let mirrored = EMULATION_BASE + (addr - self.heap_base);
            self.machine.mem.write_bytes(mirrored, bytes);
        }
    }

    fn run(&mut self, limit: u64) -> Stop {
        Machine::run(&mut self.machine, limit).stop
    }

    fn stats(&self) -> RunRecord {
        machine_record(&self.machine, ExecutorKind::Emulated)
    }

    fn regs(&self) -> [u64; 16] {
        self.machine.regs()
    }
}

/// Compile-time witnesses that every executor is `Send`: the serving
/// scheduler (`hfi-serve`) hands prepared executors to shard workers
/// and lets idle workers steal them, so losing `Send` on any tier (for
/// example by boxing a non-`Send` `OsModel` or `ChaosHook`) must fail
/// the build here rather than at the distant spawn site.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Machine>();
    assert_send::<Functional>();
    assert_send::<Emulated>();
    assert_send::<Box<dyn Executor + Send>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::ProgramBuilder;
    use crate::isa::{AluOp, Reg};

    fn square_program() -> Program {
        let mut asm = ProgramBuilder::new(0x1000);
        asm.movi(Reg(0), 12);
        asm.alu(AluOp::Mul, Reg(0), Reg(0), Reg(0));
        asm.halt();
        asm.finish()
    }

    #[test]
    fn trait_runs_all_executors() {
        let program = Arc::new(square_program());
        // Every comparison executor shares the one program allocation;
        // only the emulation transform materializes a new instruction
        // stream (by necessity — it rewrites the program).
        let mut executors: Vec<Box<dyn Executor>> = vec![
            Box::new(Machine::new(Arc::clone(&program))),
            Box::new(Functional::new(Arc::clone(&program))),
            Box::new(Emulated::from_arc(&program, 0x1000_0000)),
        ];
        for exec in &mut executors {
            let stop = exec.run(1_000_000);
            assert_eq!(stop, Stop::Halted, "{}", exec.kind());
            assert_eq!(exec.regs()[0], 144, "{}", exec.kind());
            let record = exec.stats();
            assert_eq!(record.executor, exec.kind());
            assert!(record.cycles > 0.0);
            assert!(record.committed >= 3);
        }
    }

    #[test]
    fn cycle_record_has_pipeline_counters() {
        let mut machine = Machine::new(square_program());
        let _ = Machine::run(&mut machine, 1_000_000);
        let record = Executor::stats(&machine);
        // The 3 instructions were fetched through L1I (cold misses).
        assert!(record.l1i_hits + record.l1i_misses > 0);
        assert!(record.predictor_accuracy >= 0.0 && record.predictor_accuracy <= 1.0);
    }

    #[test]
    fn json_record_is_wellformed() {
        let mut machine = Machine::new(square_program());
        let _ = Machine::run(&mut machine, 1_000_000);
        let json = Executor::stats(&machine).to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"executor\":\"cycle\""));
        assert!(json.contains("\"l1d_hits\":"));
        assert!(json.contains("\"hfi_checks\":"));
        // Balanced quotes, no stray newlines (JSON-lines safety).
        assert_eq!(json.matches('"').count() % 2, 0);
        assert!(!json.contains('\n'));
    }

    #[test]
    fn emulated_prepare_mirrors_heap() {
        let heap_base = 0x1000_0000;
        let mut emulated = Emulated::new(&square_program(), heap_base);
        emulated.prepare(heap_base + 0x40, &[1, 2, 3, 4]);
        assert_eq!(
            emulated.machine_mut().mem.read(heap_base + 0x40, 4),
            0x04030201
        );
        assert_eq!(
            emulated.machine_mut().mem.read(EMULATION_BASE + 0x40, 4),
            0x04030201
        );
    }
}
