//! The fast functional executor.
//!
//! The cycle-level [`Machine`](crate::core::Machine) is (like gem5) several
//! orders of magnitude slower than native execution, so — exactly as the
//! paper does (§5.2) — long-running workloads use a faster model: this
//! executor interprets the same [`Program`] architecturally and charges a
//! per-instruction-class cost calibrated against the cycle simulator
//! (Fig. 2 is the calibration experiment). HFI semantics are enforced
//! identically — all checks consult the same [`HfiContext`] — only the
//! timing model is simplified.

use std::sync::Arc;

use hfi_core::{
    Access, CostModel, ExitDisposition, HfiContext, HfiFault, SyscallDisposition, SyscallKind,
};

use crate::chaos::{ArchEvent, ChaosHook};
use crate::core::{DefaultOs, OsModel, Stop, SyscallOutcome};
use crate::isa::{AluOp, Inst, Program, Reg};
use crate::mem::SparseMemory;
use crate::plan::{fused_plan_of, plan_of, DecodedProgram, MicroOp, OpClass, SuperOpKind, NO_REG};

/// Per-class cycle costs for the functional timing model, calibrated so
/// that functional cycle counts track the cycle simulator on the
/// Sightglass kernels (see the Fig. 2 harness).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FunctionalCosts {
    /// Simple ALU / move, amortized over superscalar issue.
    pub alu: f64,
    /// Multiply.
    pub mul: f64,
    /// Divide.
    pub div: f64,
    /// Load or store (average over cache behaviour).
    pub mem: f64,
    /// Conditional branch (average including mispredictions).
    pub branch: f64,
    /// Call/return pair contribution per instruction.
    pub control: f64,
}

impl Default for FunctionalCosts {
    fn default() -> Self {
        // Roughly 1/IPC contributions on the modelled 8-wide core.
        Self {
            alu: 0.35,
            mul: 1.0,
            div: 20.0,
            mem: 0.9,
            branch: 0.7,
            control: 1.0,
        }
    }
}

/// Execution statistics of a functional run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FunctionalStats {
    /// Instructions retired.
    pub retired: u64,
    /// Memory operations retired.
    pub mem_ops: u64,
    /// Branches retired.
    pub branches: u64,
    /// Serializations performed.
    pub serializations: u64,
    /// HFI checks performed (fetch, implicit-data, and `hmov` checks
    /// evaluated while a sandbox was active).
    pub hfi_checks: u64,
    /// Faults delivered.
    pub faults: u64,
    /// Syscalls redirected by HFI.
    pub syscalls_redirected: u64,
    /// Syscalls serviced by the OS model.
    pub syscalls_to_os: u64,
}

/// Result of a functional run.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionalResult {
    /// Modelled cycles (float accumulation of per-class costs).
    pub cycles: f64,
    /// Why execution stopped.
    pub stop: Stop,
    /// Counters.
    pub stats: FunctionalStats,
    /// Final registers.
    pub regs: [u64; 16],
}

/// Where control goes after executing one micro-op or superinstruction:
/// on to another instruction index, or out of the run entirely.
enum StepExit {
    /// Continue at this instruction index (usually `pc + 1`; a branch
    /// target or fault-handler index otherwise).
    Next(usize),
    /// Execution is over (halt, exit, unhandled fault, bad handler).
    Stop(Stop),
}

/// The functional executor.
pub struct Functional {
    program: Arc<Program>,
    /// Data memory.
    pub mem: SparseMemory,
    /// HFI register state (identical semantics to the cycle model).
    pub hfi: HfiContext,
    /// Architectural cost constants (serialization etc.).
    pub costs: CostModel,
    /// Per-class timing weights.
    pub weights: FunctionalCosts,
    /// Signal handler byte PC for fault delivery.
    pub signal_handler: Option<u64>,
    os: Box<dyn OsModel>,
    chaos: Option<Box<dyn ChaosHook>>,
    regs: [u64; 16],
    call_stack: Vec<usize>,
    cycles: f64,
    stats: FunctionalStats,
    /// Which tier [`Functional::run`] drives: `false` is the per-op
    /// reference loop, `true` the block-threaded superinstruction engine
    /// over [`fused_plan_of`]. Both produce bit-identical results.
    fused: bool,
}

impl std::fmt::Debug for Functional {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Functional")
            .field("cycles", &self.cycles)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Functional {
    /// Creates a functional machine for `program`.
    ///
    /// Accepts a [`Program`] by value or an [`Arc<Program>`] (see
    /// [`Machine::new`](crate::core::Machine::new)).
    pub fn new(program: impl Into<Arc<Program>>) -> Self {
        Self {
            program: program.into(),
            mem: SparseMemory::new(),
            hfi: HfiContext::new(),
            costs: CostModel::default(),
            weights: FunctionalCosts::default(),
            signal_handler: None,
            os: Box::new(DefaultOs::default()),
            chaos: None,
            regs: [0; 16],
            call_stack: Vec::new(),
            cycles: 0.0,
            stats: FunctionalStats::default(),
            fused: false,
        }
    }

    /// Creates a functional machine that runs the fused superinstruction
    /// tier (block-threaded dispatch over [`fused_plan_of`]).
    pub fn new_fused(program: impl Into<Arc<Program>>) -> Self {
        let mut functional = Self::new(program);
        functional.fused = true;
        functional
    }

    /// Selects the executor tier: `true` drives the fused
    /// superinstruction engine, `false` the per-op reference loop.
    pub fn set_fused(&mut self, fused: bool) {
        self.fused = fused;
    }

    /// Resets all per-tenant state, keeping the program, its shared
    /// plan, and the tier selection: memory, HFI region context,
    /// registers, call stack, cycles, counters, the signal handler, the
    /// OS model, and any installed chaos hook all return to their
    /// just-constructed values. This is the warm-pool teardown
    /// primitive: a reused instance behaves bit-identically to a
    /// freshly constructed one (`tests/warm_pool_safety.rs`), while the
    /// expensive artifacts — the `Arc<Program>` and its memoized
    /// decode/fusion plans — survive the reset.
    pub fn reset(&mut self) {
        self.mem = SparseMemory::new();
        self.hfi = HfiContext::new();
        self.costs = CostModel::default();
        self.weights = FunctionalCosts::default();
        self.signal_handler = None;
        self.os = Box::new(DefaultOs::default());
        self.chaos = None;
        self.regs = [0; 16];
        self.call_stack.clear();
        self.cycles = 0.0;
        self.stats = FunctionalStats::default();
    }

    /// True when [`Functional::run`] drives the fused tier.
    pub fn is_fused(&self) -> bool {
        self.fused
    }

    /// Replaces the OS model.
    pub fn set_os(&mut self, os: Box<dyn OsModel>) {
        self.os = os;
    }

    /// Installs a runtime fault-injection hook (see [`crate::chaos`]).
    /// With no hook installed every site is a single predictable branch.
    pub fn set_chaos(&mut self, hook: Box<dyn ChaosHook>) {
        self.chaos = Some(hook);
    }

    /// Removes and returns the installed chaos hook, if any, so callers
    /// can inspect the engine/monitor state after a run.
    pub fn take_chaos(&mut self) -> Option<Box<dyn ChaosHook>> {
        self.chaos.take()
    }

    /// Sets a register before running.
    pub fn set_reg(&mut self, reg: Reg, value: u64) {
        self.regs[reg.0 as usize] = value;
    }

    /// Reads a register.
    pub fn reg(&self, reg: Reg) -> u64 {
        self.regs[reg.0 as usize]
    }

    /// Snapshot of the architectural register file.
    pub fn regs(&self) -> [u64; 16] {
        self.regs
    }

    /// Modelled cycles so far.
    pub fn cycles(&self) -> f64 {
        self.cycles
    }

    /// Counters so far.
    pub fn functional_stats(&self) -> FunctionalStats {
        self.stats
    }

    /// Value of a pre-resolved operand slot; unset slots ([`NO_REG`])
    /// read as zero, reproducing `MemOperand`'s optional base/index.
    #[inline(always)]
    fn slot(&self, r: u8) -> u64 {
        if r == NO_REG {
            0
        } else {
            self.regs[r as usize]
        }
    }

    /// Effective address from the plan's EA template:
    /// `base + index * scale + disp` over the micro-op's operand slots.
    #[inline(always)]
    fn ea_of(&self, uop: &MicroOp) -> u64 {
        self.slot(uop.srcs[0])
            .wrapping_add(self.slot(uop.srcs[1]).wrapping_mul(uop.scale as u64))
            .wrapping_add(uop.imm as u64)
    }

    /// Forwards a retired architectural event to the chaos hook, if one
    /// is installed. Callers gate on `self.chaos.is_some()` so the event
    /// is only constructed when someone is listening.
    #[inline]
    fn chaos_observe(&mut self, event: ArchEvent) {
        if let Some(hook) = self.chaos.as_deref_mut() {
            hook.observe(&event);
        }
    }

    fn fault(&mut self, fault: HfiFault, pc_out: &mut usize) -> Option<Stop> {
        if self.chaos.is_some() {
            let pc = if *pc_out < self.program.len() {
                self.program.pc_of(*pc_out)
            } else {
                0
            };
            self.chaos_observe(ArchEvent::Fault { pc, fault });
        }
        self.stats.faults += 1;
        self.cycles += self.costs.serialize_cycles as f64; // trap overhead floor
        let disposition = self.hfi.deliver_fault(fault);
        let handler = match disposition {
            ExitDisposition::JumpToHandler(h) => Some(h),
            _ => self.signal_handler,
        };
        // Signal delivery is expensive (§3.3.2: OS delivers SIGSEGV).
        self.cycles += 3000.0;
        match handler.and_then(|h| self.program.index_of_pc(h)) {
            Some(idx) => {
                *pc_out = idx;
                None
            }
            None => Some(Stop::Fault(fault)),
        }
    }

    /// Delivers a fault raised at instruction index `at` and converts the
    /// outcome into a [`StepExit`]: redirect to the handler's index, or
    /// stop with the fault.
    fn fault_exit(&mut self, fault: HfiFault, at: usize) -> StepExit {
        let mut pc = at;
        match self.fault(fault, &mut pc) {
            Some(stop) => StepExit::Stop(stop),
            None => StepExit::Next(pc),
        }
    }

    /// Runs up to `max_insts` instructions on the selected tier.
    ///
    /// The reference tier is direct-threaded over the shared pre-decoded
    /// plan ([`plan_of`]): each step indexes a flat [`MicroOp`] and
    /// dispatches on its dense class byte — no `Inst` match and no
    /// operand `Option` walking — while the architectural semantics, the
    /// cost model, and every counter are identical to interpreting the
    /// `Inst` stream. Only the payload classes (`hfi_enter`,
    /// `hfi_enter_child`, `hfi_set_region`) reach back into the program
    /// for their full operands, off the hot path.
    ///
    /// The fused tier ([`Functional::set_fused`]) instead block-threads
    /// over the superinstruction plan ([`fused_plan_of`]); results are
    /// bit-identical (cycles, counters, registers, stop reason) — see
    /// `tests/predecode_differential.rs`.
    /// Statically large, dynamically short programs (see
    /// [`FUSED_FALLBACK_MAX_OPS`](crate::FUSED_FALLBACK_MAX_OPS)) run
    /// the reference loop even on the fused tier: block dispatch cannot
    /// amortize over their low per-block reuse. [`ExecutorKind::Fused`]
    /// reporting and all counters are unaffected — both loops are
    /// bit-identical.
    pub fn run(&mut self, max_insts: u64) -> FunctionalResult {
        if self.fused && !crate::plan::fused_fallback(&self.program) {
            self.run_fused(max_insts)
        } else {
            self.run_unfused(max_insts)
        }
    }

    /// The per-op reference loop (the golden functional semantics).
    fn run_unfused(&mut self, max_insts: u64) -> FunctionalResult {
        let mut pc = 0usize;
        let mut stop = Stop::CycleLimit;
        let mut budget = max_insts;
        let plan = plan_of(&self.program);
        let program = Arc::clone(&self.program);
        while budget > 0 {
            budget -= 1;
            if pc >= plan.len() {
                stop = Stop::Halted;
                break;
            }
            match self.step(pc, &plan, &program) {
                StepExit::Next(next) => pc = next,
                StepExit::Stop(s) => {
                    stop = s;
                    break;
                }
            }
        }
        self.result_with(stop)
    }

    /// Executes exactly one micro-op at instruction index `pc` with full
    /// reference semantics — fetch check, counters, chaos observation and
    /// injection, cost accumulation, fault delivery — and reports where
    /// control goes next. Every driver funnels through this routine:
    /// `run_unfused` per-op, and `run_fused` for observed runs, mid-block
    /// entries, and `Step`/`HfiSeq` superops — so the architectural
    /// semantics live in exactly one place.
    fn step(&mut self, pc: usize, plan: &DecodedProgram, program: &Arc<Program>) -> StepExit {
        {
            let byte_pc = plan.pc(pc);
            let uop = plan.op(pc);
            if self.hfi.enabled() {
                self.stats.hfi_checks += 1;
            }
            if let Err(fault) = self.hfi.check_fetch(byte_pc, uop.len as u64) {
                return self.fault_exit(fault, pc);
            }
            self.stats.retired += 1;
            if self.chaos.is_some() {
                let sandboxed = self.hfi.enabled();
                self.chaos_observe(ArchEvent::Retire {
                    pc: byte_pc,
                    len: uop.len,
                    sandboxed,
                });
            }
            let mut next = pc + 1;
            match uop.class {
                OpClass::AluRR => {
                    self.cycles += self.weight_of(uop.alu);
                    self.regs[uop.dst as usize] =
                        alu(uop.alu, self.slot(uop.srcs[0]), self.slot(uop.srcs[1]));
                }
                OpClass::AluRI => {
                    self.cycles += self.weight_of(uop.alu);
                    self.regs[uop.dst as usize] =
                        alu(uop.alu, self.slot(uop.srcs[0]), uop.imm as u64);
                }
                OpClass::MovI => {
                    self.cycles += self.weights.alu;
                    self.regs[uop.dst as usize] = uop.imm as u64;
                }
                OpClass::Mov => {
                    self.cycles += self.weights.alu;
                    self.regs[uop.dst as usize] = self.slot(uop.srcs[0]);
                }
                OpClass::Rdtsc => {
                    self.cycles += self.weights.alu;
                    self.regs[uop.dst as usize] = self.cycles as u64;
                }
                OpClass::Load => {
                    self.cycles += self.weights.mem;
                    self.stats.mem_ops += 1;
                    if self.hfi.enabled() {
                        self.stats.hfi_checks += 1;
                    }
                    let mut addr = self.ea_of(uop);
                    let mut skip = false;
                    if let Some(hook) = self.chaos.as_deref_mut() {
                        addr = hook.perturb_ea(byte_pc, addr);
                        skip = hook.skip_guard(byte_pc);
                    }
                    if !skip {
                        if let Err(f) = self.hfi.check_data(addr, uop.size as u64, Access::Read) {
                            return self.fault_exit(f, pc);
                        }
                    }
                    self.regs[uop.dst as usize] = self.mem.read(addr, uop.size);
                    if self.chaos.is_some() {
                        let sandboxed = self.hfi.enabled();
                        self.chaos_observe(ArchEvent::Mem {
                            pc: byte_pc,
                            addr,
                            size: uop.size,
                            access: Access::Read,
                            hmov: None,
                            sandboxed,
                        });
                    }
                }
                OpClass::Store => {
                    self.cycles += self.weights.mem;
                    self.stats.mem_ops += 1;
                    if self.hfi.enabled() {
                        self.stats.hfi_checks += 1;
                    }
                    let mut addr = self.ea_of(uop);
                    let mut skip = false;
                    if let Some(hook) = self.chaos.as_deref_mut() {
                        addr = hook.perturb_ea(byte_pc, addr);
                        skip = hook.skip_guard(byte_pc);
                    }
                    if !skip {
                        if let Err(f) = self.hfi.check_data(addr, uop.size as u64, Access::Write) {
                            return self.fault_exit(f, pc);
                        }
                    }
                    self.mem.write(addr, self.slot(uop.srcs[2]), uop.size);
                    if self.chaos.is_some() {
                        let sandboxed = self.hfi.enabled();
                        self.chaos_observe(ArchEvent::Mem {
                            pc: byte_pc,
                            addr,
                            size: uop.size,
                            access: Access::Write,
                            hmov: None,
                            sandboxed,
                        });
                    }
                }
                OpClass::HmovLoad => {
                    self.cycles += self.weights.mem;
                    self.stats.mem_ops += 1;
                    self.stats.hfi_checks += 1;
                    let mut index = self.slot(uop.srcs[1]) as i64;
                    let mut skip = false;
                    if let Some(hook) = self.chaos.as_deref_mut() {
                        // The flip lands in the address datapath upstream
                        // of the §4.2 guard, which must still face it.
                        index = hook.perturb_ea(byte_pc, index as u64) as i64;
                        skip = hook.skip_guard(byte_pc);
                    }
                    let resolved = match self.hfi.hmov_check_access(
                        uop.region,
                        index,
                        uop.scale as u64,
                        uop.imm,
                        uop.size as u64,
                        Access::Read,
                    ) {
                        Ok(ea) => Ok(ea),
                        // A dropped guard micro-op: the raw AGU address
                        // proceeds unchecked (fault injection only).
                        Err(f) => match self.hfi.hmov_unchecked_ea(
                            uop.region,
                            index,
                            uop.scale as u64,
                            uop.imm,
                        ) {
                            Some(ea) if skip => Ok(ea),
                            _ => Err(f),
                        },
                    };
                    match resolved {
                        Ok(ea) => {
                            self.regs[uop.dst as usize] = self.mem.read(ea, uop.size);
                            if self.chaos.is_some() {
                                let sandboxed = self.hfi.enabled();
                                self.chaos_observe(ArchEvent::Mem {
                                    pc: byte_pc,
                                    addr: ea,
                                    size: uop.size,
                                    access: Access::Read,
                                    hmov: Some(uop.region),
                                    sandboxed,
                                });
                            }
                        }
                        Err(f) => return self.fault_exit(f, pc),
                    }
                }
                OpClass::HmovStore => {
                    self.cycles += self.weights.mem;
                    self.stats.mem_ops += 1;
                    self.stats.hfi_checks += 1;
                    let mut index = self.slot(uop.srcs[1]) as i64;
                    let mut skip = false;
                    if let Some(hook) = self.chaos.as_deref_mut() {
                        index = hook.perturb_ea(byte_pc, index as u64) as i64;
                        skip = hook.skip_guard(byte_pc);
                    }
                    let resolved = match self.hfi.hmov_check_access(
                        uop.region,
                        index,
                        uop.scale as u64,
                        uop.imm,
                        uop.size as u64,
                        Access::Write,
                    ) {
                        Ok(ea) => Ok(ea),
                        Err(f) => match self.hfi.hmov_unchecked_ea(
                            uop.region,
                            index,
                            uop.scale as u64,
                            uop.imm,
                        ) {
                            Some(ea) if skip => Ok(ea),
                            _ => Err(f),
                        },
                    };
                    match resolved {
                        Ok(ea) => {
                            self.mem.write(ea, self.slot(uop.srcs[2]), uop.size);
                            if self.chaos.is_some() {
                                let sandboxed = self.hfi.enabled();
                                self.chaos_observe(ArchEvent::Mem {
                                    pc: byte_pc,
                                    addr: ea,
                                    size: uop.size,
                                    access: Access::Write,
                                    hmov: Some(uop.region),
                                    sandboxed,
                                });
                            }
                        }
                        Err(f) => return self.fault_exit(f, pc),
                    }
                }
                OpClass::Branch => {
                    self.cycles += self.weights.branch;
                    self.stats.branches += 1;
                    if uop
                        .cond
                        .eval(self.slot(uop.srcs[0]), self.slot(uop.srcs[1]))
                    {
                        next = uop.target as usize;
                    }
                }
                OpClass::BranchI => {
                    self.cycles += self.weights.branch;
                    self.stats.branches += 1;
                    if uop.cond.eval(self.slot(uop.srcs[0]), uop.imm as u64) {
                        next = uop.target as usize;
                    }
                }
                OpClass::Jump => {
                    self.cycles += self.weights.control;
                    next = uop.target as usize;
                }
                OpClass::JumpInd => {
                    self.cycles += self.weights.control;
                    self.stats.branches += 1;
                    let target_pc = self.slot(uop.srcs[0]);
                    next = match self.program.index_of_pc(target_pc) {
                        Some(idx) => idx,
                        None => {
                            let fault = match self.hfi.check_fetch(target_pc, 1) {
                                Err(fault) => fault,
                                Ok(()) => HfiFault::Hardware { addr: target_pc },
                            };
                            return self.fault_exit(fault, pc);
                        }
                    };
                }
                OpClass::Call => {
                    self.cycles += self.weights.control;
                    self.call_stack.push(pc + 1);
                    next = uop.target as usize;
                }
                OpClass::Ret => {
                    self.cycles += self.weights.control;
                    next = match self.call_stack.pop() {
                        Some(idx) => idx,
                        None => return StepExit::Stop(Stop::Halted),
                    };
                }
                OpClass::Syscall => {
                    let number = self.regs[0];
                    self.cycles += self.costs.syscall_check_cycles as f64;
                    match self.hfi.syscall(number, SyscallKind::Syscall) {
                        SyscallDisposition::Redirect(handler) => {
                            self.stats.syscalls_redirected += 1;
                            if pc + 1 < self.program.len() {
                                self.regs[14] = self.program.pc_of(pc + 1);
                            }
                            next = match self.program.index_of_pc(handler) {
                                Some(idx) => idx,
                                None => {
                                    return StepExit::Stop(Stop::Fault(HfiFault::Hardware {
                                        addr: handler,
                                    }));
                                }
                            };
                        }
                        SyscallDisposition::Allow => {
                            self.stats.syscalls_to_os += 1;
                            let outcome: SyscallOutcome =
                                self.os.syscall(number, &mut self.regs, &mut self.mem);
                            self.cycles += self.costs.syscall_roundtrip_cycles as f64
                                + outcome.extra_cycles as f64;
                            self.regs[0] = outcome.ret;
                            if outcome.exit {
                                return StepExit::Stop(Stop::Exited { code: self.regs[1] });
                            }
                        }
                        SyscallDisposition::Fault => {
                            return self.fault_exit(HfiFault::PrivilegedInstruction, pc);
                        }
                    }
                }
                OpClass::Cpuid => {
                    self.stats.serializations += 1;
                    self.cycles += self.costs.serialize_cycles as f64;
                }
                OpClass::Fence => {
                    self.cycles += 2.0;
                }
                OpClass::Flush => {
                    self.cycles += 3.0;
                }
                OpClass::HfiEnter => {
                    let Inst::HfiEnter { config } = program.inst(pc) else {
                        unreachable!("plan class HfiEnter lowered from HfiEnter");
                    };
                    // Entry assertion: re-validate the springboard's
                    // contract against the architectural register file
                    // before the sandbox starts (free — the compares
                    // overlap the enter microcode). This is the
                    // fail-closed backstop for transition corruption.
                    if let Some(contract) = program.contract() {
                        let mut skip = false;
                        if let Some(hook) = self.chaos.as_deref_mut() {
                            skip = hook.skip_transition_check(byte_pc);
                        }
                        if !skip {
                            if let Some(reg) = contract.first_violation(&self.regs) {
                                return self.fault_exit(HfiFault::TransitionContract { reg }, pc);
                            }
                        }
                    }
                    self.cycles += self.costs.enter_exit_base_cycles as f64;
                    match self.hfi.enter(*config) {
                        Ok(effect) => {
                            if effect == hfi_core::SerializationEffect::Serialize {
                                self.stats.serializations += 1;
                                self.cycles += self.costs.serialize_cycles as f64;
                            }
                        }
                        Err(f) => return self.fault_exit(f, pc),
                    }
                }
                OpClass::HfiEnterChild => {
                    let Inst::HfiEnterChild { config, regions } = program.inst(pc) else {
                        unreachable!("plan class HfiEnterChild lowered from HfiEnterChild");
                    };
                    self.cycles +=
                        (self.costs.enter_exit_base_cycles + self.costs.set_region_cycles) as f64;
                    match self.hfi.enter_child(*config, **regions) {
                        Ok(effect) => {
                            if effect == hfi_core::SerializationEffect::Serialize {
                                self.stats.serializations += 1;
                                self.cycles += self.costs.serialize_cycles as f64;
                            }
                        }
                        Err(f) => return self.fault_exit(f, pc),
                    }
                }
                OpClass::HfiExit => {
                    self.cycles += self.costs.enter_exit_base_cycles as f64;
                    match self.hfi.exit() {
                        Ok((disposition, effect)) => {
                            if effect == hfi_core::SerializationEffect::Serialize {
                                self.stats.serializations += 1;
                                self.cycles += self.costs.serialize_cycles as f64;
                            }
                            if let ExitDisposition::JumpToHandler(handler) = disposition {
                                next = match self.program.index_of_pc(handler) {
                                    Some(idx) => idx,
                                    None => {
                                        return StepExit::Stop(Stop::Fault(HfiFault::Hardware {
                                            addr: handler,
                                        }));
                                    }
                                };
                            }
                        }
                        Err(f) => return self.fault_exit(f, pc),
                    }
                }
                OpClass::HfiReenter => {
                    self.cycles += self.costs.enter_exit_base_cycles as f64;
                    if let Err(f) = self.hfi.reenter() {
                        return self.fault_exit(f, pc);
                    }
                }
                OpClass::HfiSetRegion => {
                    let Inst::HfiSetRegion { slot, region } = program.inst(pc) else {
                        unreachable!("plan class HfiSetRegion lowered from HfiSetRegion");
                    };
                    self.cycles += self.costs.set_region_cycles as f64;
                    match self.hfi.set_region(*slot as usize, *region) {
                        Ok(effect) => {
                            if effect == hfi_core::SerializationEffect::Serialize {
                                self.stats.serializations += 1;
                                self.cycles += self.costs.serialize_cycles as f64;
                            }
                        }
                        Err(f) => return self.fault_exit(f, pc),
                    }
                }
                OpClass::HfiClearRegion => {
                    self.cycles += 1.0;
                    if let Err(f) = self.hfi.clear_region(uop.region as usize) {
                        return self.fault_exit(f, pc);
                    }
                }
                OpClass::HfiClearAllRegions => {
                    self.cycles += 1.0;
                    if let Err(f) = self.hfi.clear_all_regions() {
                        return self.fault_exit(f, pc);
                    }
                }
                OpClass::Nop => {
                    self.cycles += self.weights.alu;
                }
                OpClass::Halt => return StepExit::Stop(Stop::Halted),
            }
            if self.chaos.is_some() {
                if uop.dst != NO_REG {
                    let value = self.regs[uop.dst as usize];
                    if let Some(hook) = self.chaos.as_deref_mut() {
                        self.regs[uop.dst as usize] = hook.perturb_result(byte_pc, value);
                    }
                    // Transition corruption: a springboard op whose
                    // result never lands — the register keeps junk in
                    // place of the zeroed/switched value. The entry
                    // assertion at `hfi_enter` must catch it.
                    if uop.has(MicroOp::TRANSITION) {
                        if let Some(hook) = self.chaos.as_deref_mut() {
                            if hook.corrupt_transition(byte_pc) {
                                self.regs[uop.dst as usize] =
                                    crate::chaos::transition_junk(byte_pc);
                            }
                        }
                    }
                }
                // "Between instructions": the retired op's architectural
                // effects are visible, the next fetch has not happened.
                if let Some(hook) = self.chaos.as_deref_mut() {
                    hook.corrupt_context(&mut self.hfi);
                }
            }
            StepExit::Next(next)
        }
    }

    /// The block-threaded engine over the fused superinstruction plan.
    ///
    /// Dispatches one [`SuperOp`] at a time instead of one micro-op at a
    /// time: straight-line runs of same-category ops execute in tight
    /// specialized loops (`sop_alu_run`, `sop_guarded_run`, …) that skip
    /// per-op class dispatch. Three situations fall back to the reference
    /// [`Functional::step`] routine so semantics stay bit-identical:
    ///
    /// * a chaos hook is attached (`corrupt_context` may rewrite the HFI
    ///   context between *any* two ops, so every op must be observed);
    /// * control enters a block mid-way (fault-handler redirects and
    ///   indirect jumps can land inside a superop);
    /// * the superop kind is `HfiSeq` or `Step` (cold / payload classes).
    fn run_fused(&mut self, max_insts: u64) -> FunctionalResult {
        let fused = fused_plan_of(&self.program);
        let plan = Arc::clone(fused.base());
        let program = Arc::clone(&self.program);
        let observed = self.chaos.is_some();
        let mut pc = 0usize;
        let mut stop = Stop::CycleLimit;
        let mut budget = max_insts;
        'outer: while budget > 0 {
            if pc >= plan.len() {
                stop = Stop::Halted;
                break;
            }
            let b = plan.block_of(pc);
            let bb = plan.blocks()[b];
            if observed || pc != bb.start as usize {
                // Reference path: per-op, fully observed.
                budget -= 1;
                match self.step(pc, &plan, &program) {
                    StepExit::Next(next) => pc = next,
                    StepExit::Stop(s) => {
                        stop = s;
                        break;
                    }
                }
                continue;
            }
            // Fast path: thread the block's superops in order.
            let fb = fused.block(b);
            let mut s = fb.sop_start;
            while s < fb.sop_end {
                if budget == 0 {
                    continue 'outer;
                }
                let sop = *fused.sop(s as usize);
                let start = sop.start as usize;
                let end = sop.end();
                let exit = match sop.kind {
                    SuperOpKind::AluRun => self.sop_alu_run(start, end, &mut budget, &plan),
                    SuperOpKind::CmpBranch => self.sop_cmp_branch(start, &mut budget, &plan),
                    SuperOpKind::GuardedAccess => {
                        self.sop_guarded_run(start, end, &mut budget, &plan)
                    }
                    SuperOpKind::HmovChain => self.sop_hmov_run(start, end, &mut budget, &plan),
                    SuperOpKind::HfiSeq | SuperOpKind::Step => {
                        self.sop_step_run(start, end, &mut budget, &plan, &program)
                    }
                };
                match exit {
                    StepExit::Next(next) if next == end => {
                        pc = next;
                        s += 1;
                    }
                    StepExit::Next(next) => {
                        // Divergence: taken branch, fault-handler redirect,
                        // or budget exhaustion mid-superop. Re-enter the
                        // outer dispatch from wherever control landed.
                        pc = next;
                        continue 'outer;
                    }
                    StepExit::Stop(s) => {
                        stop = s;
                        break 'outer;
                    }
                }
            }
        }
        self.result_with(stop)
    }

    fn result_with(&self, stop: Stop) -> FunctionalResult {
        FunctionalResult {
            cycles: self.cycles,
            stop,
            stats: self.stats,
            regs: self.regs,
        }
    }

    /// Fetch-side HFI check for one instruction index, mirroring the head
    /// of [`Functional::step`]. Only called when a check can actually
    /// happen; when HFI is disabled `check_fetch` is a no-op with no
    /// counter side effects, so the call is skipped entirely.
    #[inline]
    fn fetch_gate(&mut self, idx: usize, plan: &DecodedProgram) -> Result<(), StepExit> {
        if self.hfi.enabled() {
            self.stats.hfi_checks += 1;
            if let Err(fault) = self.hfi.check_fetch(plan.pc(idx), plan.op(idx).len as u64) {
                return Err(self.fault_exit(fault, idx));
            }
        }
        Ok(())
    }

    /// Executes one `Simple`-category op (ALU / moves / rdtsc / nop)
    /// without the full class dispatch. Must stay cost- and
    /// counter-identical to the matching arms in [`Functional::step`].
    #[inline]
    fn exec_simple(&mut self, uop: &MicroOp) {
        match uop.class {
            OpClass::AluRR => {
                self.cycles += self.weight_of(uop.alu);
                let a = self.slot(uop.srcs[0]);
                let b = self.slot(uop.srcs[1]);
                self.regs[uop.dst as usize] = alu(uop.alu, a, b);
            }
            OpClass::AluRI => {
                self.cycles += self.weight_of(uop.alu);
                let a = self.slot(uop.srcs[0]);
                self.regs[uop.dst as usize] = alu(uop.alu, a, uop.imm as u64);
            }
            OpClass::MovI => {
                self.cycles += self.weights.alu;
                self.regs[uop.dst as usize] = uop.imm as u64;
            }
            OpClass::Mov => {
                self.cycles += self.weights.alu;
                self.regs[uop.dst as usize] = self.slot(uop.srcs[0]);
            }
            OpClass::Rdtsc => {
                self.cycles += self.weights.alu;
                self.regs[uop.dst as usize] = self.cycles as u64;
            }
            _ => {
                // `Nop` is the only other Simple class.
                self.cycles += self.weights.alu;
            }
        }
    }

    /// `AluRun` superop: a straight run of Simple ops.
    fn sop_alu_run(
        &mut self,
        start: usize,
        end: usize,
        budget: &mut u64,
        plan: &DecodedProgram,
    ) -> StepExit {
        // Straight-line fast path: with HFI disabled there is no fetch
        // gate (a disabled `check_fetch` is a no-op with no counter side
        // effects) and Simple ops cannot fault or redirect, so the whole
        // run retires unconditionally. Batching the budget decrement and
        // retired bump is exact: the reference loop's per-op `budget -= 1`
        // totals the same subtraction, and budget is unobservable except
        // through where execution stops — which this path never changes
        // (it only enters when the budget covers the full run). Per-op
        // cycle accumulation order is preserved inside `exec_simple`.
        let count = (end - start) as u64;
        if *budget >= count && !self.hfi.enabled() {
            *budget -= count;
            self.stats.retired += count;
            for uop in &plan.ops()[start..end] {
                let uop = *uop;
                self.exec_simple(&uop);
            }
            return StepExit::Next(end);
        }
        for idx in start..end {
            if *budget == 0 {
                return StepExit::Next(idx);
            }
            *budget -= 1;
            if let Err(exit) = self.fetch_gate(idx, plan) {
                return exit;
            }
            self.stats.retired += 1;
            let uop = *plan.op(idx);
            self.exec_simple(&uop);
        }
        StepExit::Next(end)
    }

    /// `CmpBranch` superop: one Simple op (the compare) immediately
    /// followed by the block-terminating conditional branch.
    fn sop_cmp_branch(
        &mut self,
        start: usize,
        budget: &mut u64,
        plan: &DecodedProgram,
    ) -> StepExit {
        *budget -= 1;
        if let Err(exit) = self.fetch_gate(start, plan) {
            return exit;
        }
        self.stats.retired += 1;
        let cmp = *plan.op(start);
        self.exec_simple(&cmp);
        if *budget == 0 {
            return StepExit::Next(start + 1);
        }
        *budget -= 1;
        let br_idx = start + 1;
        if let Err(exit) = self.fetch_gate(br_idx, plan) {
            return exit;
        }
        self.stats.retired += 1;
        let br = *plan.op(br_idx);
        self.cycles += self.weights.branch;
        self.stats.branches += 1;
        let lhs = self.slot(br.srcs[0]);
        let rhs = if br.class == OpClass::BranchI {
            br.imm as u64
        } else {
            self.slot(br.srcs[1])
        };
        StepExit::Next(if br.cond.eval(lhs, rhs) {
            br.target as usize
        } else {
            br_idx + 1
        })
    }

    /// `GuardedAccess` superop: a run of implicitly-checked loads/stores.
    fn sop_guarded_run(
        &mut self,
        start: usize,
        end: usize,
        budget: &mut u64,
        plan: &DecodedProgram,
    ) -> StepExit {
        for idx in start..end {
            if *budget == 0 {
                return StepExit::Next(idx);
            }
            *budget -= 1;
            if let Err(exit) = self.fetch_gate(idx, plan) {
                return exit;
            }
            self.stats.retired += 1;
            let uop = *plan.op(idx);
            self.cycles += self.weights.mem;
            self.stats.mem_ops += 1;
            if self.hfi.enabled() {
                self.stats.hfi_checks += 1;
            }
            let addr = self.ea_of(&uop);
            if uop.has(MicroOp::IS_STORE) {
                if let Err(f) = self.hfi.check_data(addr, uop.size as u64, Access::Write) {
                    return self.fault_exit(f, idx);
                }
                self.mem.write(addr, self.slot(uop.srcs[2]), uop.size);
            } else {
                if let Err(f) = self.hfi.check_data(addr, uop.size as u64, Access::Read) {
                    return self.fault_exit(f, idx);
                }
                self.regs[uop.dst as usize] = self.mem.read(addr, uop.size);
            }
        }
        StepExit::Next(end)
    }

    /// `HmovChain` superop: a run of explicitly-checked hmov accesses.
    ///
    /// The `hmov_unchecked_ea` fallback in the reference path is only
    /// reachable when a chaos hook forces `skip_guard` — and chaos runs
    /// never reach the fast handlers — so it is omitted here.
    fn sop_hmov_run(
        &mut self,
        start: usize,
        end: usize,
        budget: &mut u64,
        plan: &DecodedProgram,
    ) -> StepExit {
        for idx in start..end {
            if *budget == 0 {
                return StepExit::Next(idx);
            }
            *budget -= 1;
            if let Err(exit) = self.fetch_gate(idx, plan) {
                return exit;
            }
            self.stats.retired += 1;
            let uop = *plan.op(idx);
            self.cycles += self.weights.mem;
            self.stats.mem_ops += 1;
            self.stats.hfi_checks += 1;
            let index = self.slot(uop.srcs[1]) as i64;
            let access = if uop.has(MicroOp::IS_STORE) {
                Access::Write
            } else {
                Access::Read
            };
            match self.hfi.hmov_check_access(
                uop.region,
                index,
                uop.scale as u64,
                uop.imm,
                uop.size as u64,
                access,
            ) {
                Ok(ea) => {
                    if access == Access::Write {
                        self.mem.write(ea, self.slot(uop.srcs[2]), uop.size);
                    } else {
                        self.regs[uop.dst as usize] = self.mem.read(ea, uop.size);
                    }
                }
                Err(f) => return self.fault_exit(f, idx),
            }
        }
        StepExit::Next(end)
    }

    /// `HfiSeq` / `Step` superop: drive the reference [`Functional::step`]
    /// routine op by op. A step that redirects control (branch, fault
    /// handler) exits the run early and the caller re-dispatches.
    fn sop_step_run(
        &mut self,
        start: usize,
        end: usize,
        budget: &mut u64,
        plan: &DecodedProgram,
        program: &Arc<Program>,
    ) -> StepExit {
        let mut pc = start;
        while pc < end {
            if *budget == 0 {
                return StepExit::Next(pc);
            }
            *budget -= 1;
            match self.step(pc, plan, program) {
                StepExit::Next(next) if next == pc + 1 => pc = next,
                other => return other,
            }
        }
        StepExit::Next(end)
    }

    fn weight_of(&self, op: AluOp) -> f64 {
        match op {
            AluOp::Mul => self.weights.mul,
            AluOp::Div | AluOp::Rem => self.weights.div,
            _ => self.weights.alu,
        }
    }
}

fn alu(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => a.checked_div(b).unwrap_or(0),
        AluOp::Rem => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => a << (b & 63),
        AluOp::Shr => a >> (b & 63),
        AluOp::Sar => ((a as i64) >> (b & 63)) as u64,
        AluOp::SltU => (a < b) as u64,
        AluOp::Slt => ((a as i64) < (b as i64)) as u64,
        AluOp::Seq => (a == b) as u64,
        AluOp::Rotl => a.rotate_left((b & 63) as u32),
    }
}

/// Helper used by differential tests: evaluates an ALU op architecturally.
pub fn alu_reference(op: AluOp, a: u64, b: u64) -> u64 {
    alu(op, a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::ProgramBuilder;
    use hfi_core::region::{ExplicitDataRegion, ImplicitCodeRegion};
    use hfi_core::{Region, SandboxConfig};

    #[test]
    fn functional_matches_simple_arithmetic() {
        let mut asm = ProgramBuilder::new(0x1000);
        asm.movi(Reg(0), 6);
        asm.movi(Reg(1), 7);
        asm.alu(AluOp::Mul, Reg(2), Reg(0), Reg(1));
        asm.halt();
        let mut f = Functional::new(asm.finish());
        let result = f.run(1000);
        assert_eq!(result.stop, Stop::Halted);
        assert_eq!(result.regs[2], 42);
        assert!(result.cycles > 0.0);
    }

    #[test]
    fn functional_enforces_hmov_bounds() {
        let mut asm = ProgramBuilder::new(0x40_0000);
        let code = ImplicitCodeRegion::new(0x40_0000, 0xFFFF, true).unwrap();
        let heap = ExplicitDataRegion::large(0x100_0000, 1 << 16, true, true).unwrap();
        asm.hfi_set_region(0, Region::Code(code));
        asm.hfi_set_region(6, Region::Explicit(heap));
        asm.hfi_enter(SandboxConfig::hybrid());
        asm.hmov_load(0, Reg(1), crate::isa::HmovOperand::disp(1 << 20), 8);
        asm.halt();
        let mut f = Functional::new(asm.finish());
        let result = f.run(1000);
        assert!(matches!(result.stop, Stop::Fault(HfiFault::Hmov { .. })));
    }

    #[test]
    fn serialized_transitions_cost_more() {
        let build = |serialize: bool| {
            let mut asm = ProgramBuilder::new(0x1000);
            let code = ImplicitCodeRegion::new(0x1000, 0xFFF, true).unwrap();
            asm.hfi_set_region(0, Region::Code(code));
            let config = if serialize {
                SandboxConfig::hybrid().serialized()
            } else {
                SandboxConfig::hybrid()
            };
            for _ in 0..10 {
                asm.hfi_enter(config);
                asm.hfi_exit();
            }
            asm.halt();
            asm.finish()
        };
        let mut fast = Functional::new(build(false));
        let mut slow = Functional::new(build(true));
        let fast_cycles = fast.run(10_000).cycles;
        let slow_cycles = slow.run(10_000).cycles;
        assert!(slow_cycles > fast_cycles + 10.0 * 2.0 * 30.0);
    }
}
