//! The simulated instruction set.
//!
//! A micro-op-level ISA with x86-style addressing (`base + index*scale +
//! disp`), the HFI extension instructions of Appendix A.1, and the handful
//! of x86 system instructions the paper's methodology needs (`cpuid` for
//! serialization in the emulation, `rdtsc` for the Spectre probe,
//! `clflush` for the cache side channel, `syscall` for interposition).
//!
//! Every instruction carries a modelled *encoding length* in bytes; the
//! i-cache and the implicit code regions operate on byte PCs, which is what
//! makes the paper's 445.gobmk observation (longer `hmov` encodings
//! pressuring the i-cache, §6.1) reproducible.

use hfi_core::{Region, SandboxConfig, TransitionContract};

/// One of 16 general-purpose registers, `r0`–`r15`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

impl Reg {
    /// All architectural registers.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..16).map(Reg)
    }
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Integer ALU operations (64-bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication (higher latency).
    Mul,
    /// Unsigned division; divide-by-zero yields 0 (the modelled machine
    /// does not fault on it).
    Div,
    /// Unsigned remainder; modulo-by-zero yields the dividend.
    Rem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical left shift (masked to 63).
    Shl,
    /// Logical right shift (masked to 63).
    Shr,
    /// Arithmetic right shift (masked to 63).
    Sar,
    /// Set-if-less-than, unsigned (result 0/1).
    SltU,
    /// Set-if-less-than, signed (result 0/1).
    Slt,
    /// Set-if-equal (result 0/1).
    Seq,
    /// Rotate left (masked to 63).
    Rotl,
}

impl AluOp {
    /// Execution latency in cycles (Skylake-like).
    pub fn latency(self) -> u64 {
        match self {
            AluOp::Mul => 3,
            AluOp::Div | AluOp::Rem => 20,
            _ => 1,
        }
    }
}

/// Branch conditions comparing two operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    LtU,
    /// Unsigned greater-or-equal.
    GeU,
}

impl Cond {
    /// Evaluates the condition on two 64-bit values.
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => (a as i64) < (b as i64),
            Cond::Ge => (a as i64) >= (b as i64),
            Cond::LtU => a < b,
            Cond::GeU => a >= b,
        }
    }
}

/// An x86-style memory operand: `[base + index*scale + disp]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemOperand {
    /// Base register, or `None` for absolute addressing (the emulated
    /// `hmov` of Appendix A.2 uses a constant base with no register).
    pub base: Option<Reg>,
    /// Optional scaled index register.
    pub index: Option<Reg>,
    /// Scale factor for the index (1, 2, 4, or 8).
    pub scale: u8,
    /// Constant displacement.
    pub disp: i64,
}

impl MemOperand {
    /// `[base + disp]`.
    pub fn base_disp(base: Reg, disp: i64) -> Self {
        Self {
            base: Some(base),
            index: None,
            scale: 1,
            disp,
        }
    }

    /// `[base + index*scale + disp]`.
    pub fn full(base: Reg, index: Reg, scale: u8, disp: i64) -> Self {
        Self {
            base: Some(base),
            index: Some(index),
            scale,
            disp,
        }
    }

    /// `[abs_disp]` — absolute, register-free addressing.
    pub fn absolute(disp: i64) -> Self {
        Self {
            base: None,
            index: None,
            scale: 1,
            disp,
        }
    }
}

/// The operand pattern of an `hmov`: the base is architecturally *ignored*
/// and replaced with the region base (paper §3.2), so only index/scale/disp
/// appear.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HmovOperand {
    /// Optional scaled index register.
    pub index: Option<Reg>,
    /// Scale factor (1, 2, 4, or 8).
    pub scale: u8,
    /// Constant displacement; negative values trap at execution.
    pub disp: i64,
}

impl HmovOperand {
    /// `[region_base + disp]`.
    pub fn disp(disp: i64) -> Self {
        Self {
            index: None,
            scale: 1,
            disp,
        }
    }

    /// `[region_base + index*scale + disp]`.
    pub fn indexed(index: Reg, scale: u8, disp: i64) -> Self {
        Self {
            index: Some(index),
            scale,
            disp,
        }
    }
}

/// One simulated instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// `dst = a op b`.
    AluRR {
        /// Operation.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// First source.
        a: Reg,
        /// Second source.
        b: Reg,
    },
    /// `dst = a op imm`.
    AluRI {
        /// Operation.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// Source register.
        a: Reg,
        /// Immediate operand.
        imm: i64,
    },
    /// `dst = imm`.
    MovI {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        imm: i64,
    },
    /// `dst = src`.
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// Load `size` bytes (zero-extended) from a memory operand.
    Load {
        /// Destination register.
        dst: Reg,
        /// Address operand.
        mem: MemOperand,
        /// Access size in bytes (1, 2, 4, 8).
        size: u8,
    },
    /// Store the low `size` bytes of `src` to a memory operand.
    Store {
        /// Source register.
        src: Reg,
        /// Address operand.
        mem: MemOperand,
        /// Access size in bytes (1, 2, 4, 8).
        size: u8,
    },
    /// `hmov{region}` load: explicit-region-relative load (paper §4.2).
    HmovLoad {
        /// Explicit region index 0–3.
        region: u8,
        /// Destination register.
        dst: Reg,
        /// Region-relative operand.
        mem: HmovOperand,
        /// Access size in bytes.
        size: u8,
    },
    /// `hmov{region}` store.
    HmovStore {
        /// Explicit region index 0–3.
        region: u8,
        /// Source register.
        src: Reg,
        /// Region-relative operand.
        mem: HmovOperand,
        /// Access size in bytes.
        size: u8,
    },
    /// Conditional branch on two registers.
    Branch {
        /// Condition.
        cond: Cond,
        /// First operand.
        a: Reg,
        /// Second operand.
        b: Reg,
        /// Target instruction index.
        target: usize,
    },
    /// Conditional branch comparing a register with an immediate.
    BranchI {
        /// Condition.
        cond: Cond,
        /// Register operand.
        a: Reg,
        /// Immediate operand.
        imm: i64,
        /// Target instruction index.
        target: usize,
    },
    /// Unconditional jump.
    Jump {
        /// Target instruction index.
        target: usize,
    },
    /// Indirect jump through a register holding a *byte* PC.
    JumpInd {
        /// Register holding the target byte address.
        reg: Reg,
    },
    /// Direct call (pushes return PC on the simulated RAS/stack register
    /// discipline is software's concern; the core models only the RAS).
    Call {
        /// Target instruction index.
        target: usize,
    },
    /// Return to the address saved by the matching `Call`.
    Ret,
    /// System call; the number lives in `r0` by convention.
    Syscall,
    /// Serializing identification instruction (used by the HFI emulation
    /// of Appendix A.2 to model enter/exit serialization).
    Cpuid,
    /// Read the cycle counter into `dst`.
    Rdtsc {
        /// Destination register.
        dst: Reg,
    },
    /// Flush the cache line containing the operand address (clflush).
    Flush {
        /// Address operand.
        mem: MemOperand,
    },
    /// Drain the pipeline (lfence-like; used around timing probes).
    Fence,
    /// `hfi_enter` with an inline configuration.
    HfiEnter {
        /// Sandbox parameters (the `sandbox_t` of Appendix A.1).
        config: SandboxConfig,
    },
    /// `hfi_enter` with switch-on-exit: shadows the live register file and
    /// loads the child's region file.
    HfiEnterChild {
        /// Sandbox parameters.
        config: SandboxConfig,
        /// The child's region registers (slot-indexed).
        regions: Box<[Option<Region>; hfi_core::NUM_REGIONS]>,
    },
    /// `hfi_exit`.
    HfiExit,
    /// `hfi_reenter`: re-enters the most recently exited sandbox.
    HfiReenter,
    /// `hfi_set_region slot, <inline metadata>`.
    HfiSetRegion {
        /// Region register slot (0–9).
        slot: u8,
        /// Metadata to install.
        region: Region,
    },
    /// `hfi_clear_region slot`.
    HfiClearRegion {
        /// Region register slot (0–9).
        slot: u8,
    },
    /// `hfi_clear_all_regions`.
    HfiClearAllRegions,
    /// No operation.
    Nop,
    /// Stop the machine.
    Halt,
}

impl Inst {
    /// Modelled encoding length in bytes.
    ///
    /// `hmov` uses a *prefix* on the x86 `mov` encoding (paper §5.2), so it
    /// is one byte longer than the equivalent `mov` — the source of the
    /// i-cache pressure seen on 445.gobmk (§6.1).
    pub fn encoded_len(&self) -> u64 {
        match self {
            Inst::AluRR { .. } | Inst::Mov { .. } => 3,
            Inst::AluRI { imm, .. } => {
                if *imm >= i32::MIN as i64 && *imm <= i32::MAX as i64 {
                    4
                } else {
                    8
                }
            }
            Inst::MovI { imm, .. } => {
                if *imm >= i32::MIN as i64 && *imm <= i32::MAX as i64 {
                    5
                } else {
                    10
                }
            }
            Inst::Load { .. } | Inst::Store { .. } => 4,
            Inst::HmovLoad { .. } | Inst::HmovStore { .. } => 5,
            Inst::Branch { .. } | Inst::BranchI { .. } => 4,
            Inst::Jump { .. } | Inst::Call { .. } => 5,
            Inst::JumpInd { .. } => 3,
            Inst::Ret | Inst::Nop | Inst::Halt => 1,
            Inst::Syscall | Inst::Cpuid | Inst::Rdtsc { .. } => 2,
            Inst::Flush { .. } => 4,
            Inst::Fence => 3,
            Inst::HfiEnter { .. } | Inst::HfiEnterChild { .. } => 4,
            Inst::HfiExit | Inst::HfiReenter => 3,
            Inst::HfiSetRegion { .. } => 6,
            Inst::HfiClearRegion { .. } => 4,
            Inst::HfiClearAllRegions => 3,
        }
    }

    /// True for instructions that end a fetch group (control flow).
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Inst::Branch { .. }
                | Inst::BranchI { .. }
                | Inst::Jump { .. }
                | Inst::JumpInd { .. }
                | Inst::Call { .. }
                | Inst::Ret
        )
    }

    /// True for instructions that access data memory.
    pub fn is_mem(&self) -> bool {
        matches!(
            self,
            Inst::Load { .. } | Inst::Store { .. } | Inst::HmovLoad { .. } | Inst::HmovStore { .. }
        )
    }
}

/// An assembled program: instructions plus their byte-PC layout.
#[derive(Debug, Clone, Default)]
pub struct Program {
    insts: Vec<Inst>,
    /// Byte PC of each instruction.
    pcs: Vec<u64>,
    /// Total code size in bytes.
    code_len: u64,
    /// Base byte address the code is "linked" at.
    base: u64,
    /// The springboard entry contract, when the program was emitted
    /// under a zeroing/stack-switching transition scheme. Executors
    /// re-validate it when `hfi_enter` retires.
    contract: Option<TransitionContract>,
    /// Instruction indices of the springboard's own ops (zeroing
    /// moves, the stack switch, fences, the entry canary). The plan
    /// lowering flags these so the fusion pass folds the whole
    /// enter/exit sequence into one `HfiSeq` superop and the chaos
    /// engine can target them.
    transition_ops: Vec<u32>,
}

impl Program {
    /// Lays out `insts` starting at byte address `base`.
    pub fn new(insts: Vec<Inst>, base: u64) -> Self {
        let mut pcs = Vec::with_capacity(insts.len());
        let mut pc = base;
        for inst in &insts {
            pcs.push(pc);
            pc += inst.encoded_len();
        }
        Self {
            insts,
            pcs,
            code_len: pc - base,
            base,
            contract: None,
            transition_ops: Vec::new(),
        }
    }

    /// Attaches springboard metadata: the entry contract and the
    /// instruction indices of the springboard's own ops.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn with_transition_meta(
        mut self,
        contract: Option<TransitionContract>,
        transition_ops: Vec<u32>,
    ) -> Self {
        assert!(
            transition_ops
                .iter()
                .all(|&i| (i as usize) < self.insts.len()),
            "transition op index out of range"
        );
        self.contract = contract;
        self.transition_ops = transition_ops;
        self
    }

    /// The springboard entry contract, if one was declared.
    pub fn contract(&self) -> Option<&TransitionContract> {
        self.contract.as_ref()
    }

    /// Instruction indices of the springboard's own ops.
    pub fn transition_ops(&self) -> &[u32] {
        &self.transition_ops
    }

    /// The instruction at `index`.
    pub fn inst(&self, index: usize) -> &Inst {
        &self.insts[index]
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Byte PC of instruction `index`.
    pub fn pc_of(&self, index: usize) -> u64 {
        self.pcs[index]
    }

    /// Maps a byte PC back to an instruction index (exact match only).
    pub fn index_of_pc(&self, pc: u64) -> Option<usize> {
        self.pcs.binary_search(&pc).ok()
    }

    /// Base byte address of the code.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Code footprint in bytes — what the i-cache sees.
    pub fn code_len(&self) -> u64 {
        self.code_len
    }

    /// Iterates over instructions.
    pub fn iter(&self) -> impl Iterator<Item = &Inst> {
        self.insts.iter()
    }

    /// The full instruction slice — bulk consumers (the plan lowering,
    /// the emulation transform, differential tests) index it directly
    /// instead of going through per-element [`Program::inst`] calls.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Replaces the instruction list, preserving base (relayouts PCs)
    /// and the transition metadata — the A.2 emulation transform and
    /// the mutation engine both substitute instructions 1:1, so the
    /// declared contract and springboard indices keep describing the
    /// same sites (which is exactly what lets the verifier catch a
    /// mutant that drops a zeroing op while the contract still stands).
    pub fn with_insts(&self, insts: Vec<Inst>) -> Program {
        let mut p = Program::new(insts, self.base);
        p.contract = self.contract;
        p.transition_ops = self.transition_ops.clone();
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hmov_is_longer_than_mov() {
        let mov = Inst::Load {
            dst: Reg(0),
            mem: MemOperand::base_disp(Reg(1), 0),
            size: 8,
        };
        let hmov = Inst::HmovLoad {
            region: 0,
            dst: Reg(0),
            mem: HmovOperand::disp(0),
            size: 8,
        };
        assert_eq!(hmov.encoded_len(), mov.encoded_len() + 1);
    }

    #[test]
    fn program_layout_is_cumulative() {
        let prog = Program::new(
            vec![
                Inst::Nop, // 1 byte at 0x1000
                Inst::MovI {
                    dst: Reg(0),
                    imm: 1,
                }, // 5 bytes at 0x1001
                Inst::Halt, // 1 byte at 0x1006
            ],
            0x1000,
        );
        assert_eq!(prog.pc_of(0), 0x1000);
        assert_eq!(prog.pc_of(1), 0x1001);
        assert_eq!(prog.pc_of(2), 0x1006);
        assert_eq!(prog.code_len(), 7);
        assert_eq!(prog.index_of_pc(0x1001), Some(1));
        assert_eq!(prog.index_of_pc(0x1002), None);
    }

    #[test]
    fn cond_eval() {
        assert!(Cond::Lt.eval(u64::MAX, 0)); // -1 < 0 signed
        assert!(!Cond::LtU.eval(u64::MAX, 0));
        assert!(Cond::GeU.eval(u64::MAX, 0));
        assert!(Cond::Eq.eval(7, 7));
        assert!(Cond::Ne.eval(7, 8));
        assert!(Cond::Ge.eval(0, -1i64 as u64));
    }

    #[test]
    fn large_immediates_encode_longer() {
        assert_eq!(
            Inst::MovI {
                dst: Reg(0),
                imm: 1
            }
            .encoded_len(),
            5
        );
        assert_eq!(
            Inst::MovI {
                dst: Reg(0),
                imm: 1 << 40
            }
            .encoded_len(),
            10
        );
    }
}
