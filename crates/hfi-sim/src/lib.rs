//! # hfi-sim — cycle-level CPU simulation for HFI (the gem5 substitute)
//!
//! The paper evaluates HFI with two vehicles (§5.2): a gem5 Skylake-like
//! out-of-order simulation, and a compiler-based emulation validated
//! against it. This crate rebuilds both:
//!
//! * [`core::Machine`] — a ROB-based speculative out-of-order core with
//!   branch prediction, L1/L2 caches and a dTLB, plus the HFI datapath of
//!   the paper's Fig. 1: implicit-region and `hmov` checks in parallel
//!   with the dTLB lookup (zero latency, and a failing check blocks the
//!   cache fill — the Spectre defence), code-region checks at decode
//!   (faulting NOPs), serialization drains, and syscall microcode
//!   redirection.
//! * [`functional::Functional`] — a fast architectural interpreter with a
//!   calibrated cost model for long-running workloads.
//! * [`emulation::emulate`] — the Appendix A.2 program transform
//!   (`hmov`→constant-base `mov`, enter/exit→`cpuid`), so the Fig. 2
//!   cross-validation can be reproduced: run both variants on the cycle
//!   core and compare.
//!
//! Programs are written against a micro-op-level ISA ([`isa`]) through a
//! label-based assembler ([`asm::ProgramBuilder`]).
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod cache;
pub mod chaos;
pub mod core;
pub mod emulation;
pub mod exec;
pub mod functional;
pub mod isa;
pub mod mem;
pub mod plan;
pub mod predictor;

pub use crate::core::{CoreConfig, CoreStats, Machine, OsModel, RunResult, Stop, SyscallOutcome};
pub use asm::{Label, ProgramBuilder};
pub use cache::{Cache, CacheHierarchy, CacheLatencies};
pub use chaos::{ArchEvent, ChaosHook};
pub use emulation::{
    emulate, emulate_arc, emulate_guarded, uses_hfi, GuardedEmulation, GuardedEmulationError,
    GuardedOptions, EMULATION_BASE,
};
pub use exec::{Emulated, Executor, ExecutorKind, RunRecord};
pub use functional::{Functional, FunctionalCosts, FunctionalResult, FunctionalStats};
pub use isa::{AluOp, Cond, HmovOperand, Inst, MemOperand, Program, Reg};
pub use mem::SparseMemory;
pub use plan::{
    fused_fallback, fused_plan_of, plan_of, BasicBlock, DecodedProgram, EaTemplate, FusedBlock,
    FusedProgram, MicroOp, OpClass, PlanVariant, SerializeClass, SuperOp, SuperOpKind,
    FUSED_FALLBACK_MAX_OPS,
};
