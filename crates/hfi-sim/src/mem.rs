//! Sparse data memory for the simulator.

use std::collections::HashMap;

const PAGE_BITS: u32 = 12;
const PAGE_SIZE: u64 = 1 << PAGE_BITS;

/// A sparse 64-bit byte-addressable memory.
///
/// Pages materialize (zero-filled) on first write; reads of untouched
/// memory return zero, like anonymous mmap.
#[derive(Debug, Default, Clone)]
pub struct SparseMemory {
    pages: HashMap<u64, Box<[u8]>>,
}

impl SparseMemory {
    /// An empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    fn page(&self, addr: u64) -> Option<&[u8]> {
        self.pages.get(&(addr >> PAGE_BITS)).map(|p| &p[..])
    }

    fn page_mut(&mut self, addr: u64) -> &mut Box<[u8]> {
        self.pages
            .entry(addr >> PAGE_BITS)
            .or_insert_with(|| vec![0u8; PAGE_SIZE as usize].into_boxed_slice())
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.page(addr) {
            Some(page) => page[(addr & (PAGE_SIZE - 1)) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let page = self.page_mut(addr);
        page[(addr & (PAGE_SIZE - 1)) as usize] = value;
    }

    /// Reads `size` bytes (1–8) little-endian, zero-extended to u64.
    pub fn read(&self, addr: u64, size: u8) -> u64 {
        debug_assert!(matches!(size, 1 | 2 | 4 | 8));
        let mut value = 0u64;
        for i in 0..size as u64 {
            value |= (self.read_u8(addr.wrapping_add(i)) as u64) << (8 * i);
        }
        value
    }

    /// Writes the low `size` bytes (1–8) of `value` little-endian.
    pub fn write(&mut self, addr: u64, value: u64, size: u8) {
        debug_assert!(matches!(size, 1 | 2 | 4 | 8));
        for i in 0..size as u64 {
            self.write_u8(addr.wrapping_add(i), (value >> (8 * i)) as u8);
        }
    }

    /// Bulk-initializes memory from a byte slice.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr + i as u64, b);
        }
    }

    /// Reads `len` bytes into a vector.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        (0..len as u64).map(|i| self.read_u8(addr + i)).collect()
    }

    /// Number of materialized 4 KiB pages.
    pub fn touched_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_memory_reads_zero() {
        let mem = SparseMemory::new();
        assert_eq!(mem.read(0xDEAD_BEEF, 8), 0);
    }

    #[test]
    fn little_endian_roundtrip() {
        let mut mem = SparseMemory::new();
        mem.write(0x1000, 0x1122_3344_5566_7788, 8);
        assert_eq!(mem.read(0x1000, 8), 0x1122_3344_5566_7788);
        assert_eq!(mem.read(0x1000, 4), 0x5566_7788);
        assert_eq!(mem.read(0x1000, 1), 0x88);
        assert_eq!(mem.read_u8(0x1007), 0x11);
    }

    #[test]
    fn cross_page_access() {
        let mut mem = SparseMemory::new();
        mem.write(PAGE_SIZE - 4, 0xAABB_CCDD_EEFF_0011, 8);
        assert_eq!(mem.read(PAGE_SIZE - 4, 8), 0xAABB_CCDD_EEFF_0011);
        assert_eq!(mem.touched_pages(), 2);
    }

    #[test]
    fn bulk_bytes() {
        let mut mem = SparseMemory::new();
        mem.write_bytes(0x2000, b"hello");
        assert_eq!(mem.read_bytes(0x2000, 5), b"hello");
    }
}
