//! Sparse data memory for the simulator.

use std::cell::Cell;
use std::collections::HashMap;

const PAGE_BITS: u32 = 12;
const PAGE_SIZE: u64 = 1 << PAGE_BITS;

/// A sparse 64-bit byte-addressable memory.
///
/// Pages materialize (zero-filled) on first write; reads of untouched
/// memory return zero, like anonymous mmap.
///
/// The page table maps page number to a slot in flat page storage, with
/// a one-entry translation cache in front: workload accesses are heavily
/// page-local, so most reads and writes skip the `HashMap` entirely, and
/// a non-page-crossing access touches its page once instead of once per
/// byte.
#[derive(Debug, Default, Clone)]
pub struct SparseMemory {
    page_table: HashMap<u64, u32>,
    storage: Vec<Box<[u8]>>,
    /// Most recently resolved (page number, storage slot). Slots are
    /// stable (pages are never freed), so the entry never goes stale.
    last: Cell<Option<(u64, u32)>>,
}

impl SparseMemory {
    /// An empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn slot_of(&self, page_no: u64) -> Option<u32> {
        if let Some((cached_no, slot)) = self.last.get() {
            if cached_no == page_no {
                return Some(slot);
            }
        }
        let slot = *self.page_table.get(&page_no)?;
        self.last.set(Some((page_no, slot)));
        Some(slot)
    }

    #[inline]
    fn slot_mut(&mut self, page_no: u64) -> u32 {
        if let Some((cached_no, slot)) = self.last.get() {
            if cached_no == page_no {
                return slot;
            }
        }
        let slot = match self.page_table.get(&page_no) {
            Some(&slot) => slot,
            None => {
                let slot = self.storage.len() as u32;
                self.storage
                    .push(vec![0u8; PAGE_SIZE as usize].into_boxed_slice());
                self.page_table.insert(page_no, slot);
                slot
            }
        };
        self.last.set(Some((page_no, slot)));
        slot
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.slot_of(addr >> PAGE_BITS) {
            Some(slot) => self.storage[slot as usize][(addr & (PAGE_SIZE - 1)) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let slot = self.slot_mut(addr >> PAGE_BITS);
        self.storage[slot as usize][(addr & (PAGE_SIZE - 1)) as usize] = value;
    }

    /// Reads `size` bytes (1–8) little-endian, zero-extended to u64.
    pub fn read(&self, addr: u64, size: u8) -> u64 {
        debug_assert!(matches!(size, 1 | 2 | 4 | 8));
        let offset = (addr & (PAGE_SIZE - 1)) as usize;
        if offset + size as usize <= PAGE_SIZE as usize {
            let Some(slot) = self.slot_of(addr >> PAGE_BITS) else {
                return 0;
            };
            let page = &self.storage[slot as usize];
            let mut buf = [0u8; 8];
            buf[..size as usize].copy_from_slice(&page[offset..offset + size as usize]);
            return u64::from_le_bytes(buf);
        }
        let mut value = 0u64;
        for i in 0..size as u64 {
            value |= (self.read_u8(addr.wrapping_add(i)) as u64) << (8 * i);
        }
        value
    }

    /// Writes the low `size` bytes (1–8) of `value` little-endian.
    pub fn write(&mut self, addr: u64, value: u64, size: u8) {
        debug_assert!(matches!(size, 1 | 2 | 4 | 8));
        let offset = (addr & (PAGE_SIZE - 1)) as usize;
        if offset + size as usize <= PAGE_SIZE as usize {
            let slot = self.slot_mut(addr >> PAGE_BITS);
            let page = &mut self.storage[slot as usize];
            page[offset..offset + size as usize]
                .copy_from_slice(&value.to_le_bytes()[..size as usize]);
            return;
        }
        for i in 0..size as u64 {
            self.write_u8(addr.wrapping_add(i), (value >> (8 * i)) as u8);
        }
    }

    /// Bulk-initializes memory from a byte slice.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr + i as u64, b);
        }
    }

    /// Reads `len` bytes into a vector.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        (0..len as u64).map(|i| self.read_u8(addr + i)).collect()
    }

    /// Number of materialized 4 KiB pages.
    pub fn touched_pages(&self) -> usize {
        self.page_table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_memory_reads_zero() {
        let mem = SparseMemory::new();
        assert_eq!(mem.read(0xDEAD_BEEF, 8), 0);
    }

    #[test]
    fn little_endian_roundtrip() {
        let mut mem = SparseMemory::new();
        mem.write(0x1000, 0x1122_3344_5566_7788, 8);
        assert_eq!(mem.read(0x1000, 8), 0x1122_3344_5566_7788);
        assert_eq!(mem.read(0x1000, 4), 0x5566_7788);
        assert_eq!(mem.read(0x1000, 1), 0x88);
        assert_eq!(mem.read_u8(0x1007), 0x11);
    }

    #[test]
    fn cross_page_access() {
        let mut mem = SparseMemory::new();
        mem.write(PAGE_SIZE - 4, 0xAABB_CCDD_EEFF_0011, 8);
        assert_eq!(mem.read(PAGE_SIZE - 4, 8), 0xAABB_CCDD_EEFF_0011);
        assert_eq!(mem.touched_pages(), 2);
    }

    #[test]
    fn bulk_bytes() {
        let mut mem = SparseMemory::new();
        mem.write_bytes(0x2000, b"hello");
        assert_eq!(mem.read_bytes(0x2000, 5), b"hello");
    }
}
