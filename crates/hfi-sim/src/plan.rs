//! Pre-decoded micro-op programs: the simulator front end's static plan.
//!
//! A SPEC-like cell executes the same few hundred static instructions
//! millions of times, yet the hot loops used to re-derive every static
//! fact — operand shape, mem-op class, branch kind, serialization class,
//! encoded length — through a 28-arm `match` on [`Inst`] per *dynamic*
//! instruction. [`DecodedProgram`] lowers an [`Arc<Program>`] **once**
//! into a flat array of [`MicroOp`]s (dense `u8` opcode class,
//! pre-resolved operand slots, effective-address template, load/store and
//! branch flags, encoded length, static [`SerializeClass`], static branch
//! target) plus a [`BasicBlock`] table, and [`plan_of`] memoizes the
//! lowering per program allocation so every executor — cycle, functional,
//! emulated — and every parallel grid cell shares one plan.
//!
//! The plan is *purely static*: it holds facts derivable from the
//! instruction encoding alone. Everything dynamic — register values, HFI
//! context generations, predictions, cache state — stays in the pipeline
//! structures, which is why predecoding cannot change an architectural
//! counter (see `tests/golden_counters.rs` for the proof, and DESIGN.md
//! "Front end: predecode and block plans" for the argument).
//!
//! Rare, payload-carrying instructions (`hfi_enter`'s inline
//! `SandboxConfig`, `hfi_set_region`'s metadata) are not flattened into
//! the 24-byte micro-op; their executors fetch the full [`Inst`] from the
//! backing program via [`MicroOp::PAYLOAD`] — a cold path by construction
//! (sandbox transitions, not inner loops).

use std::sync::{Arc, Mutex, OnceLock, Weak};

use crate::isa::{AluOp, Cond, Inst, Program};

/// Register sentinel: "this operand slot is unused".
pub const NO_REG: u8 = 0xFF;
/// Target sentinel: "no static successor of this kind".
pub const NO_TARGET: u32 = u32::MAX;

/// Dense opcode class of a [`MicroOp`] — one discriminant per [`Inst`]
/// shape, with every payload already spilled into the flat fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum OpClass {
    /// `dst = a op b`.
    AluRR,
    /// `dst = a op imm`.
    AluRI,
    /// `dst = imm`.
    MovI,
    /// `dst = src`.
    Mov,
    /// `dst = cycle counter`.
    Rdtsc,
    /// Plain load through a [`crate::isa::MemOperand`].
    Load,
    /// Plain store.
    Store,
    /// Explicit-region `hmov` load.
    HmovLoad,
    /// Explicit-region `hmov` store.
    HmovStore,
    /// Cache-line flush.
    Flush,
    /// Conditional branch on two registers.
    Branch,
    /// Conditional branch against an immediate.
    BranchI,
    /// Unconditional direct jump.
    Jump,
    /// Indirect jump through a register byte-PC.
    JumpInd,
    /// Direct call.
    Call,
    /// Return.
    Ret,
    /// System call.
    Syscall,
    /// Serializing `cpuid`.
    Cpuid,
    /// Pipeline fence.
    Fence,
    /// `hfi_enter` (config payload in the backing program).
    HfiEnter,
    /// `hfi_enter` with switch-on-exit (payload in the backing program).
    HfiEnterChild,
    /// `hfi_exit`.
    HfiExit,
    /// `hfi_reenter`.
    HfiReenter,
    /// `hfi_set_region` (metadata payload in the backing program).
    HfiSetRegion,
    /// `hfi_clear_region` (slot inline).
    HfiClearRegion,
    /// `hfi_clear_all_regions`.
    HfiClearAllRegions,
    /// No-op.
    Nop,
    /// Stop.
    Halt,
}

/// Static serialization class of an instruction (paper §3.4 / §4.3):
/// whether decoding it drains the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum SerializeClass {
    /// Never serializes.
    No,
    /// Always serializes (`cpuid`, `fence`, `syscall`, and `hfi_enter`
    /// of an is-serialized sandbox — the config is immediate, so the
    /// decision is static).
    Always,
    /// Serializes only while a sandbox is active (in-sandbox region
    /// updates, §4.3).
    IfEnabled,
    /// `hfi_exit`: serializes only when exiting a serialized,
    /// non-switch-on-exit sandbox — depends on the live context (§4.5).
    ExitDynamic,
}

/// One pre-decoded micro-op: every static fact of one [`Inst`], flat.
///
/// Operand slots follow the pipeline's fixed convention so the issue
/// stage can index blindly:
///
/// * slot 0 — first ALU/branch source, `mov` source, memory *base*,
///   indirect-jump register;
/// * slot 1 — second ALU/branch source, memory *index* (`hmov` uses only
///   this slot: its base is architecturally replaced by the region base);
/// * slot 2 — store data source.
///
/// The effective-address template is `v0 + v1 * scale + disp` with unset
/// slots contributing zero, which reproduces `MemOperand` semantics for
/// every addressing mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroOp {
    /// Immediate operand (ALU/mov/branch) or address displacement.
    pub imm: i64,
    /// Static control-flow target as an instruction index
    /// ([`NO_TARGET`] for fall-through-only and indirect flow).
    pub target: u32,
    /// Opcode class.
    pub class: OpClass,
    /// ALU operation (meaningful for `AluRR`/`AluRI` only).
    pub alu: AluOp,
    /// Branch condition (meaningful for `Branch`/`BranchI` only).
    pub cond: Cond,
    /// Destination register, [`NO_REG`] when none.
    pub dst: u8,
    /// Source registers by slot, [`NO_REG`] when unused.
    pub srcs: [u8; 3],
    /// Address scale factor (1 when unused).
    pub scale: u8,
    /// Memory access size in bytes (0 when not a memory op).
    pub size: u8,
    /// `hmov` region index, or `hfi_clear_region` slot.
    pub region: u8,
    /// Encoded length in bytes (pre-computed [`Inst::encoded_len`]).
    pub len: u8,
    /// Static serialization class.
    pub serialize: SerializeClass,
    /// Static property bits (`IS_LOAD` …).
    pub flags: u8,
}

/// The effective-address recipe of one memory micro-op, unpacked from the
/// flat operand slots into named fields: `EA = base + index*scale + disp`,
/// with absent registers contributing zero.
///
/// For `hmov` ops `base` is always `None` — the base is architecturally
/// replaced by the region base (paper §3.2) and the recipe describes the
/// *region-relative offset* instead. Static tools (the `hfi-verify`
/// checker) consume this instead of re-deriving the slot convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EaTemplate {
    /// Base register, `None` for absolute or region-relative addressing.
    pub base: Option<u8>,
    /// Scaled index register, if any.
    pub index: Option<u8>,
    /// Index scale factor (1 when no index).
    pub scale: u8,
    /// Constant displacement.
    pub disp: i64,
    /// Access size in bytes.
    pub size: u8,
    /// True for stores, false for loads.
    pub is_store: bool,
    /// True for `hmov` ops: the address is relative to an explicit
    /// region's base, not to address zero.
    pub region_relative: bool,
}

impl MicroOp {
    /// Reads data memory.
    pub const IS_LOAD: u8 = 1 << 0;
    /// Writes data memory.
    pub const IS_STORE: u8 = 1 << 1;
    /// Competes for a memory issue port (exactly [`Inst::is_mem`]; note
    /// `clflush` addresses memory but gates on an ALU port, faithfully to
    /// the pre-plan pipeline).
    pub const GATE_MEM: u8 = 1 << 2;
    /// Mutates speculative HFI state at decode (opens an undo
    /// generation).
    pub const HFI_MUTATE: u8 = 1 << 3;
    /// Counts as a branch in the committed-branch statistics
    /// (conditional and indirect branches).
    pub const BRANCH_STAT: u8 = 1 << 4;
    /// Ends a fetch group (exactly [`Inst::is_control`]).
    pub const CONTROL: u8 = 1 << 5;
    /// Carries a payload too large to flatten; executors fetch the full
    /// [`Inst`] from the backing program (cold path).
    pub const PAYLOAD: u8 = 1 << 6;
    /// Part of a springboard (transition prologue/epilogue): a zeroing
    /// move, the stack switch, a serializing fence, or the entry
    /// canary. Set from [`Program::transition_ops`] at plan build (the
    /// per-[`Inst`] lowering cannot see program metadata). Transition
    /// ops fuse into the enter/exit `HfiSeq` superop and are the sites
    /// the transition-skip chaos class targets.
    pub const TRANSITION: u8 = 1 << 7;

    /// True if `flag` (one of the associated constants) is set.
    #[inline(always)]
    pub fn has(&self, flag: u8) -> bool {
        self.flags & flag != 0
    }

    /// The effective-address template of a load/store micro-op, or `None`
    /// for non-memory ops (including `clflush`, which addresses memory but
    /// is neither a data load nor a store).
    pub fn ea_template(&self) -> Option<EaTemplate> {
        if !self.has(Self::IS_LOAD | Self::IS_STORE) {
            return None;
        }
        let region_relative = matches!(self.class, OpClass::HmovLoad | OpClass::HmovStore);
        let slot = |r: u8| (r != NO_REG).then_some(r);
        Some(EaTemplate {
            base: slot(self.srcs[0]),
            index: slot(self.srcs[1]),
            scale: self.scale,
            disp: self.imm,
            size: self.size,
            is_store: self.has(Self::IS_STORE),
            region_relative,
        })
    }
}

/// One basic block of the plan: a maximal straight-line run of
/// micro-ops entered only at `start` and left only after `end - 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BasicBlock {
    /// First instruction index of the block.
    pub start: u32,
    /// One past the last instruction index.
    pub end: u32,
    /// Successor when the terminator falls through (the not-taken edge,
    /// or the post-return continuation of a `call`); [`NO_TARGET`] when
    /// the block cannot fall through.
    pub fall_through: u32,
    /// Static taken-edge successor (branch/jump/call target);
    /// [`NO_TARGET`] for indirect or return terminators.
    pub taken: u32,
}

/// A program lowered to its static execution plan: flat micro-ops, byte
/// PCs, and the basic-block table. Built once per program allocation and
/// shared (`Arc`) by every executor; see [`plan_of`].
#[derive(Debug)]
pub struct DecodedProgram {
    program: Arc<Program>,
    ops: Vec<MicroOp>,
    pcs: Vec<u64>,
    blocks: Vec<BasicBlock>,
    block_of: Vec<u32>,
}

impl DecodedProgram {
    /// Lowers `program` into its static plan.
    ///
    /// # Panics
    ///
    /// Panics if the program has ≥ `u32::MAX` instructions (plans index
    /// with `u32`).
    pub fn build(program: Arc<Program>) -> Self {
        assert!(
            program.len() < u32::MAX as usize,
            "program too large for a u32-indexed plan"
        );
        let mut ops: Vec<MicroOp> = program.iter().map(lower).collect();
        // Springboard metadata lives on the program, not the encoding:
        // flag the marked ops so fusion and the executors see them.
        for &idx in program.transition_ops() {
            ops[idx as usize].flags |= MicroOp::TRANSITION;
        }
        let pcs: Vec<u64> = (0..program.len()).map(|i| program.pc_of(i)).collect();
        let (blocks, block_of) = build_blocks(&ops);
        Self {
            program,
            ops,
            pcs,
            blocks,
            block_of,
        }
    }

    /// The backing program (payload fetches, byte-PC reverse lookups).
    #[inline(always)]
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// The micro-op at `index`.
    #[inline(always)]
    pub fn op(&self, index: usize) -> &MicroOp {
        &self.ops[index]
    }

    /// All micro-ops, in instruction order.
    #[inline(always)]
    pub fn ops(&self) -> &[MicroOp] {
        &self.ops
    }

    /// Byte PC of instruction `index`.
    #[inline(always)]
    pub fn pc(&self, index: usize) -> u64 {
        self.pcs[index]
    }

    /// Number of instructions.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The basic-block table, in program order.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// Index (into [`DecodedProgram::blocks`]) of the block containing
    /// instruction `index`.
    pub fn block_of(&self, index: usize) -> usize {
        self.block_of[index] as usize
    }
}

/// Lowers one instruction to its micro-op. Pure: consults nothing but
/// the encoding.
fn lower(inst: &Inst) -> MicroOp {
    let mut op = MicroOp {
        imm: 0,
        target: NO_TARGET,
        class: OpClass::Nop,
        alu: AluOp::Add,
        cond: Cond::Eq,
        dst: NO_REG,
        srcs: [NO_REG; 3],
        scale: 1,
        size: 0,
        region: 0,
        len: inst.encoded_len() as u8,
        serialize: SerializeClass::No,
        flags: 0,
    };
    match inst {
        Inst::AluRR { op: alu, dst, a, b } => {
            op.class = OpClass::AluRR;
            op.alu = *alu;
            op.dst = dst.0;
            op.srcs[0] = a.0;
            op.srcs[1] = b.0;
        }
        Inst::AluRI {
            op: alu,
            dst,
            a,
            imm,
        } => {
            op.class = OpClass::AluRI;
            op.alu = *alu;
            op.dst = dst.0;
            op.srcs[0] = a.0;
            op.imm = *imm;
        }
        Inst::MovI { dst, imm } => {
            op.class = OpClass::MovI;
            op.dst = dst.0;
            op.imm = *imm;
        }
        Inst::Mov { dst, src } => {
            op.class = OpClass::Mov;
            op.dst = dst.0;
            op.srcs[0] = src.0;
        }
        Inst::Rdtsc { dst } => {
            op.class = OpClass::Rdtsc;
            op.dst = dst.0;
        }
        Inst::Load { dst, mem, size } => {
            op.class = OpClass::Load;
            op.dst = dst.0;
            op.srcs[0] = mem.base.map_or(NO_REG, |r| r.0);
            op.srcs[1] = mem.index.map_or(NO_REG, |r| r.0);
            op.scale = mem.scale;
            op.imm = mem.disp;
            op.size = *size;
            op.flags |= MicroOp::IS_LOAD | MicroOp::GATE_MEM;
        }
        Inst::Store { src, mem, size } => {
            op.class = OpClass::Store;
            op.srcs[0] = mem.base.map_or(NO_REG, |r| r.0);
            op.srcs[1] = mem.index.map_or(NO_REG, |r| r.0);
            op.srcs[2] = src.0;
            op.scale = mem.scale;
            op.imm = mem.disp;
            op.size = *size;
            op.flags |= MicroOp::IS_STORE | MicroOp::GATE_MEM;
        }
        Inst::HmovLoad {
            region,
            dst,
            mem,
            size,
        } => {
            op.class = OpClass::HmovLoad;
            op.dst = dst.0;
            op.srcs[1] = mem.index.map_or(NO_REG, |r| r.0);
            op.scale = mem.scale;
            op.imm = mem.disp;
            op.size = *size;
            op.region = *region;
            op.flags |= MicroOp::IS_LOAD | MicroOp::GATE_MEM;
        }
        Inst::HmovStore {
            region,
            src,
            mem,
            size,
        } => {
            op.class = OpClass::HmovStore;
            op.srcs[1] = mem.index.map_or(NO_REG, |r| r.0);
            op.srcs[2] = src.0;
            op.scale = mem.scale;
            op.imm = mem.disp;
            op.size = *size;
            op.region = *region;
            op.flags |= MicroOp::IS_STORE | MicroOp::GATE_MEM;
        }
        Inst::Flush { mem } => {
            op.class = OpClass::Flush;
            op.srcs[0] = mem.base.map_or(NO_REG, |r| r.0);
            op.srcs[1] = mem.index.map_or(NO_REG, |r| r.0);
            op.scale = mem.scale;
            op.imm = mem.disp;
        }
        Inst::Branch { cond, a, b, target } => {
            op.class = OpClass::Branch;
            op.cond = *cond;
            op.srcs[0] = a.0;
            op.srcs[1] = b.0;
            op.target = *target as u32;
            op.flags |= MicroOp::BRANCH_STAT | MicroOp::CONTROL;
        }
        Inst::BranchI {
            cond,
            a,
            imm,
            target,
        } => {
            op.class = OpClass::BranchI;
            op.cond = *cond;
            op.srcs[0] = a.0;
            op.imm = *imm;
            op.target = *target as u32;
            op.flags |= MicroOp::BRANCH_STAT | MicroOp::CONTROL;
        }
        Inst::Jump { target } => {
            op.class = OpClass::Jump;
            op.target = *target as u32;
            op.flags |= MicroOp::CONTROL;
        }
        Inst::JumpInd { reg } => {
            op.class = OpClass::JumpInd;
            op.srcs[0] = reg.0;
            op.flags |= MicroOp::BRANCH_STAT | MicroOp::CONTROL;
        }
        Inst::Call { target } => {
            op.class = OpClass::Call;
            op.target = *target as u32;
            op.flags |= MicroOp::CONTROL;
        }
        Inst::Ret => {
            op.class = OpClass::Ret;
            op.flags |= MicroOp::CONTROL;
        }
        Inst::Syscall => {
            op.class = OpClass::Syscall;
            op.serialize = SerializeClass::Always;
        }
        Inst::Cpuid => {
            op.class = OpClass::Cpuid;
            op.serialize = SerializeClass::Always;
        }
        Inst::Fence => {
            op.class = OpClass::Fence;
            op.serialize = SerializeClass::Always;
        }
        Inst::HfiEnter { config } => {
            op.class = OpClass::HfiEnter;
            op.serialize = if config.serialize {
                SerializeClass::Always
            } else {
                SerializeClass::No
            };
            op.flags |= MicroOp::HFI_MUTATE | MicroOp::PAYLOAD;
        }
        Inst::HfiEnterChild { config, .. } => {
            op.class = OpClass::HfiEnterChild;
            op.serialize = if config.serialize {
                SerializeClass::Always
            } else {
                SerializeClass::No
            };
            op.flags |= MicroOp::HFI_MUTATE | MicroOp::PAYLOAD;
        }
        Inst::HfiExit => {
            op.class = OpClass::HfiExit;
            op.serialize = SerializeClass::ExitDynamic;
            op.flags |= MicroOp::HFI_MUTATE;
        }
        Inst::HfiReenter => {
            op.class = OpClass::HfiReenter;
            op.flags |= MicroOp::HFI_MUTATE;
        }
        Inst::HfiSetRegion { .. } => {
            op.class = OpClass::HfiSetRegion;
            op.serialize = SerializeClass::IfEnabled;
            op.flags |= MicroOp::HFI_MUTATE | MicroOp::PAYLOAD;
        }
        Inst::HfiClearRegion { slot } => {
            op.class = OpClass::HfiClearRegion;
            op.region = *slot;
            op.serialize = SerializeClass::IfEnabled;
            op.flags |= MicroOp::HFI_MUTATE;
        }
        Inst::HfiClearAllRegions => {
            op.class = OpClass::HfiClearAllRegions;
            op.serialize = SerializeClass::IfEnabled;
            op.flags |= MicroOp::HFI_MUTATE;
        }
        Inst::Nop => op.class = OpClass::Nop,
        Inst::Halt => op.class = OpClass::Halt,
    }
    op
}

/// Partitions the micro-op array into basic blocks: a leader is the
/// entry point, every static control target, and every instruction
/// following a control instruction.
fn build_blocks(ops: &[MicroOp]) -> (Vec<BasicBlock>, Vec<u32>) {
    let n = ops.len();
    if n == 0 {
        return (Vec::new(), Vec::new());
    }
    let mut leader = vec![false; n];
    leader[0] = true;
    for (i, op) in ops.iter().enumerate() {
        if op.has(MicroOp::CONTROL) {
            if (op.target as usize) < n {
                leader[op.target as usize] = true;
            }
            if i + 1 < n {
                leader[i + 1] = true;
            }
        }
    }
    let mut blocks = Vec::new();
    let mut block_of = vec![0u32; n];
    let mut start = 0usize;
    for end in 1..=n {
        if end == n || leader[end] {
            let term = &ops[end - 1];
            let (fall_through, taken) = if term.has(MicroOp::CONTROL) {
                match term.class {
                    // The not-taken edge, or the post-return point.
                    OpClass::Branch | OpClass::BranchI | OpClass::Call => {
                        let fall = if end < n { end as u32 } else { NO_TARGET };
                        (fall, term.target)
                    }
                    OpClass::Jump => (NO_TARGET, term.target),
                    // Indirect flow has no static successor.
                    _ => (NO_TARGET, NO_TARGET),
                }
            } else {
                let fall = if end < n { end as u32 } else { NO_TARGET };
                (fall, NO_TARGET)
            };
            let index = blocks.len() as u32;
            for slot in &mut block_of[start..end] {
                *slot = index;
            }
            blocks.push(BasicBlock {
                start: start as u32,
                end: end as u32,
                fall_through,
                taken,
            });
            start = end;
        }
    }
    (blocks, block_of)
}

/// Dispatch class of one superinstruction: which fused execution routine
/// the block-threaded driver runs for it.
///
/// Fusion never crosses a basic-block boundary, so every kind describes a
/// straight-line run inside one block. The guard+access idiom of the
/// bounds-check compiler (`branch GeU idx, bound, trap` *then* the
/// access) spans two blocks by construction — the guard branch is a block
/// terminator — and is covered by block threading itself: the compare
/// fuses into [`SuperOpKind::CmpBranch`] and the fall-through block opens
/// with the [`SuperOpKind::GuardedAccess`] run it protects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum SuperOpKind {
    /// A run (≥ 1) of simple register ops: `AluRR`/`AluRI`/`Mov`/`MovI`/
    /// `Rdtsc`/`Nop`. No memory, no control, no HFI state.
    AluRun,
    /// A simple producer immediately feeding the block's conditional
    /// branch terminator (cmp+branch macro-fusion). Always 2 ops.
    CmpBranch,
    /// A run (≥ 1) of plain loads/stores: each op carries its implicit
    /// HFI data-region guard, fused with the access it protects.
    GuardedAccess,
    /// A run (≥ 1) of explicit-region `hmov` accesses (a checked-hmov
    /// chain: every constituent keeps its §3.2 hardware bounds check).
    HmovChain,
    /// A run (≥ 1) of HFI state transitions (`hfi_set_region`×k +
    /// `hfi_enter` prologues, exit epilogues). Executed op-at-a-time:
    /// every constituent can fault or redirect control.
    HfiSeq,
    /// Any other single op (control flow, syscalls, fences, flushes),
    /// executed through the reference step routine.
    Step,
}

/// One superinstruction: `count` consecutive micro-ops starting at
/// instruction index `start`, executed by the `kind` routine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuperOp {
    /// First constituent instruction index.
    pub start: u32,
    /// Number of constituent micro-ops (≥ 1).
    pub count: u32,
    /// Dispatch class.
    pub kind: SuperOpKind,
}

impl SuperOp {
    /// One past the last constituent instruction index.
    #[inline(always)]
    pub fn end(&self) -> usize {
        (self.start + self.count) as usize
    }
}

/// The superinstruction range of one basic block: the per-block dispatch
/// table entry. Parallel to [`DecodedProgram::blocks`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusedBlock {
    /// First superop index of the block (into [`FusedProgram::sops`]).
    pub sop_start: u32,
    /// One past the last superop index of the block.
    pub sop_end: u32,
}

/// Fusion category of one micro-op: which superop runs it may join.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FuseCat {
    /// Simple register op — joins an `AluRun` (or seeds a `CmpBranch`).
    Simple,
    /// Plain guarded load/store — joins a `GuardedAccess` run.
    Mem,
    /// Explicit-region `hmov` — joins an `HmovChain`.
    Hmov,
    /// HFI state transition — joins an `HfiSeq`.
    Hfi,
    /// Everything else — always a lone `Step`.
    Single,
}

fn fuse_cat(op: &MicroOp) -> FuseCat {
    // Springboard ops travel with the HFI transition they belong to:
    // categorizing them `Hfi` folds the whole zeroing/stack-switch/
    // fence/enter...exit sequence into one `HfiSeq` superop, which the
    // fused tier runs through the reference `step()` routine — so the
    // entry-contract check and every chaos site stay observable.
    if op.has(MicroOp::TRANSITION) {
        return FuseCat::Hfi;
    }
    match op.class {
        OpClass::AluRR
        | OpClass::AluRI
        | OpClass::MovI
        | OpClass::Mov
        | OpClass::Rdtsc
        | OpClass::Nop => FuseCat::Simple,
        OpClass::Load | OpClass::Store => FuseCat::Mem,
        OpClass::HmovLoad | OpClass::HmovStore => FuseCat::Hmov,
        OpClass::HfiEnter
        | OpClass::HfiEnterChild
        | OpClass::HfiExit
        | OpClass::HfiReenter
        | OpClass::HfiSetRegion
        | OpClass::HfiClearRegion
        | OpClass::HfiClearAllRegions => FuseCat::Hfi,
        _ => FuseCat::Single,
    }
}

/// Static plan-size ceiling for the fused tier's block dispatch.
///
/// Programs whose per-op plan exceeds this many micro-ops are marked as
/// *fallback* plans: [`Functional::run`](crate::Functional) routes them
/// through the per-op reference loop even when the fused tier is
/// selected. The cutoff targets statically large, dynamically short
/// programs — unrolled code like the `445.gobmk-like` kernel lowers to
/// ~1.5-2.4k micro-ops across ~450 tiny blocks but commits only ~7-12k
/// instructions per run, so each block executes a handful of times:
/// block-dispatch overhead and the one-time fusion-pass build can never
/// amortize, and the fused tier measured 25-30% *slower* than the
/// reference loop on those cells. Every other Fig. 3 kernel sits at
/// ≤120 micro-ops with millions of committed instructions, far below
/// the cutoff. The overlay is still built and structurally validated
/// for fallback programs (`verify_fusion` checks every direct target),
/// it just never drives dispatch.
pub const FUSED_FALLBACK_MAX_OPS: usize = 512;

/// True when `program`'s fused tier falls back to the per-op reference
/// loop (see [`FUSED_FALLBACK_MAX_OPS`]).
///
/// Decided from the base plan alone so callers (and the fused run loop
/// itself) can consult it without paying the fusion-pass build for a
/// plan that would never be dispatched.
pub fn fused_fallback(program: &Arc<Program>) -> bool {
    plan_of(program).len() > FUSED_FALLBACK_MAX_OPS
}

/// A [`DecodedProgram`] overlaid with its superinstruction plan: the
/// fusion pass output plus the per-block dispatch table.
///
/// The overlay is *purely structural*: it groups the base plan's
/// micro-ops into superinstructions without rewriting, reordering, or
/// dropping a single one, so any per-op consumer (the cycle core, the
/// `hfi-verify` dataflow pass, the chaos shadow monitor) keeps operating
/// on `base` unchanged. The block-threaded functional driver
/// (`Functional::run` with the fused tier selected) is the only consumer
/// of the grouping — and its fused routines preserve the reference
/// interpreter's per-op semantics exactly (checks, counters, f64 cycle
/// accumulation order, fault delivery); `FusedProgram::validate` plus the
/// fused-vs-unfused differential tests are the enforcement.
#[derive(Debug)]
pub struct FusedProgram {
    base: Arc<DecodedProgram>,
    sops: Vec<SuperOp>,
    blocks: Vec<FusedBlock>,
    fallback: bool,
}

impl FusedProgram {
    /// Runs the fusion pass over `base`.
    ///
    /// Each basic block is segmented greedily into maximal same-category
    /// runs; the last simple op before a conditional branch terminator is
    /// peeled into a [`SuperOpKind::CmpBranch`] pair. Superops never span
    /// blocks, so every branch target is a superop boundary.
    pub fn build(base: Arc<DecodedProgram>) -> Self {
        let ops = base.ops();
        let mut sops: Vec<SuperOp> = Vec::new();
        let mut blocks: Vec<FusedBlock> = Vec::with_capacity(base.blocks().len());
        for bb in base.blocks() {
            let sop_start = sops.len() as u32;
            let mut i = bb.start as usize;
            let end = bb.end as usize;
            while i < end {
                let cat = fuse_cat(&ops[i]);
                let mut j = i + 1;
                while j < end && cat != FuseCat::Single && fuse_cat(&ops[j]) == cat {
                    j += 1;
                }
                let kind = match cat {
                    FuseCat::Simple => {
                        if j < end && matches!(ops[j].class, OpClass::Branch | OpClass::BranchI) {
                            // Macro-fuse the producer with the branch it
                            // feeds; any earlier simples stay an AluRun.
                            if j - i > 1 {
                                sops.push(SuperOp {
                                    start: i as u32,
                                    count: (j - 1 - i) as u32,
                                    kind: SuperOpKind::AluRun,
                                });
                            }
                            sops.push(SuperOp {
                                start: (j - 1) as u32,
                                count: 2,
                                kind: SuperOpKind::CmpBranch,
                            });
                            i = j + 1;
                            continue;
                        }
                        SuperOpKind::AluRun
                    }
                    FuseCat::Mem => SuperOpKind::GuardedAccess,
                    FuseCat::Hmov => SuperOpKind::HmovChain,
                    FuseCat::Hfi => SuperOpKind::HfiSeq,
                    FuseCat::Single => SuperOpKind::Step,
                };
                sops.push(SuperOp {
                    start: i as u32,
                    count: (j - i) as u32,
                    kind,
                });
                i = j;
            }
            blocks.push(FusedBlock {
                sop_start,
                sop_end: sops.len() as u32,
            });
        }
        let fallback = ops.len() > FUSED_FALLBACK_MAX_OPS;
        let fused = Self {
            base,
            sops,
            blocks,
            fallback,
        };
        debug_assert_eq!(fused.validate(), Ok(()), "fusion pass broke an invariant");
        fused
    }

    /// True when this plan exceeds [`FUSED_FALLBACK_MAX_OPS`] and the
    /// fused tier runs the per-op reference loop instead of dispatching
    /// through the overlay. Agrees with [`fused_fallback`] by
    /// construction (both compare the base plan's length).
    #[inline(always)]
    pub fn fallback(&self) -> bool {
        self.fallback
    }

    /// The underlying per-op plan (shared with [`plan_of`]'s memo entry).
    #[inline(always)]
    pub fn base(&self) -> &Arc<DecodedProgram> {
        &self.base
    }

    /// All superops, in program order.
    #[inline(always)]
    pub fn sops(&self) -> &[SuperOp] {
        &self.sops
    }

    /// The superop at index `s`.
    #[inline(always)]
    pub fn sop(&self, s: usize) -> &SuperOp {
        &self.sops[s]
    }

    /// The per-block dispatch table, parallel to
    /// [`DecodedProgram::blocks`].
    #[inline(always)]
    pub fn blocks(&self) -> &[FusedBlock] {
        &self.blocks
    }

    /// The dispatch-table entry of block `b`.
    #[inline(always)]
    pub fn block(&self, b: usize) -> FusedBlock {
        self.blocks[b]
    }

    /// Translation validation of the fusion pass: proves the overlay is a
    /// faithful regrouping of the base plan, block by block.
    ///
    /// Checks, for every basic block: its superops tile exactly
    /// `[start, end)` in order with no gap, overlap, or spill into a
    /// neighbouring block; every superop's constituents match its kind's
    /// op-class contract; and no control-flow op hides anywhere but a
    /// block's final instruction. Together with the kind contracts this
    /// implies every micro-op of the program — every guard, every chaos
    /// injection site — appears in exactly one superop.
    pub fn validate(&self) -> Result<(), String> {
        let ops = self.base.ops();
        let bbs = self.base.blocks();
        if self.blocks.len() != bbs.len() {
            return Err(format!(
                "dispatch table has {} entries for {} blocks",
                self.blocks.len(),
                bbs.len()
            ));
        }
        let mut expect_sop = 0u32;
        for (b, (bb, fb)) in bbs.iter().zip(&self.blocks).enumerate() {
            if fb.sop_start != expect_sop {
                return Err(format!(
                    "block {b}: superop range starts at {} expected {expect_sop}",
                    fb.sop_start
                ));
            }
            if fb.sop_end < fb.sop_start || fb.sop_end as usize > self.sops.len() {
                return Err(format!("block {b}: bad superop range"));
            }
            expect_sop = fb.sop_end;
            let mut expect_op = bb.start;
            for s in fb.sop_start..fb.sop_end {
                let sop = &self.sops[s as usize];
                if sop.start != expect_op || sop.count == 0 || sop.end() > bb.end as usize {
                    return Err(format!(
                        "block {b} superop {s}: [{}, {}) does not tile at {expect_op}",
                        sop.start,
                        sop.end()
                    ));
                }
                expect_op = sop.end() as u32;
                let body = &ops[sop.start as usize..sop.end()];
                let kind_ok = match sop.kind {
                    SuperOpKind::AluRun => body.iter().all(|o| fuse_cat(o) == FuseCat::Simple),
                    SuperOpKind::CmpBranch => {
                        sop.count == 2
                            && fuse_cat(&body[0]) == FuseCat::Simple
                            && matches!(body[1].class, OpClass::Branch | OpClass::BranchI)
                    }
                    SuperOpKind::GuardedAccess => body.iter().all(|o| fuse_cat(o) == FuseCat::Mem),
                    SuperOpKind::HmovChain => body.iter().all(|o| fuse_cat(o) == FuseCat::Hmov),
                    SuperOpKind::HfiSeq => body.iter().all(|o| fuse_cat(o) == FuseCat::Hfi),
                    SuperOpKind::Step => sop.count == 1,
                };
                if !kind_ok {
                    return Err(format!(
                        "block {b} superop {s}: constituents violate {:?}",
                        sop.kind
                    ));
                }
                for (k, o) in body.iter().enumerate() {
                    let idx = sop.start as usize + k;
                    if o.has(MicroOp::CONTROL) && idx != bb.end as usize - 1 {
                        return Err(format!("block {b}: control op {idx} not at block end"));
                    }
                }
            }
            if expect_op != bb.end {
                return Err(format!(
                    "block {b}: superops cover [{}, {expect_op}) of [{}, {})",
                    bb.start, bb.start, bb.end
                ));
            }
        }
        if expect_sop as usize != self.sops.len() {
            return Err(format!(
                "{} superops but block ranges cover {expect_sop}",
                self.sops.len()
            ));
        }
        Ok(())
    }
}

/// Global plan memo: one cached lowering per live program allocation
/// *per variant* — the per-op [`DecodedProgram`] and the
/// [`FusedProgram`] overlay are distinct entries for the same `Arc`.
///
/// Keyed by the `Arc`'s pointer plus the [`PlanVariant`], with a `Weak`
/// liveness witness: if the allocation died and the address was reused by
/// a different program, the stale entry fails the `ptr_eq` upgrade check
/// and is replaced. Dead entries are purged on every lookup, so the memo
/// stays bounded by the number of *live* programs. Arc identity alone is
/// **not** a sufficient key: requesting both variants for one program
/// must never alias or evict the other (see
/// `tests::fused_and_unfused_memo_entries_never_alias`).
/// Entry list of an identity-keyed memo: `(Arc address, liveness
/// witness, cached value)`. Shared with the `emulate_arc` memo.
pub(crate) type MemoEntries<T> = Vec<(usize, Weak<Program>, Arc<T>)>;

/// Which lowering of a program a plan-memo entry caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanVariant {
    /// The flat per-op [`DecodedProgram`] ([`plan_of`]).
    Unfused,
    /// The [`FusedProgram`] superinstruction overlay ([`fused_plan_of`]).
    Fused,
}

/// One cached plan of either variant.
enum PlanEntry {
    Unfused(Arc<DecodedProgram>),
    Fused(Arc<FusedProgram>),
}

type PlanMemo = Vec<(usize, PlanVariant, Weak<Program>, PlanEntry)>;

static PLAN_MEMO: OnceLock<Mutex<PlanMemo>> = OnceLock::new();

/// The shared plan for `program`, building it on first sight.
///
/// Executors call this from their constructors, so harnesses that share
/// one `Arc<Program>` across many machines (and many grid threads) pay
/// for exactly one lowering per kernel × isolation.
pub fn plan_of(program: &Arc<Program>) -> Arc<DecodedProgram> {
    let memo = PLAN_MEMO.get_or_init(|| Mutex::new(Vec::new()));
    let key = Arc::as_ptr(program) as usize;
    let mut entries = memo.lock().expect("plan memo unpoisoned");
    entries.retain(|(_, _, witness, _)| witness.strong_count() > 0);
    for (entry_key, variant, witness, entry) in entries.iter() {
        if *entry_key == key && *variant == PlanVariant::Unfused {
            if let Some(alive) = witness.upgrade() {
                if Arc::ptr_eq(&alive, program) {
                    let PlanEntry::Unfused(plan) = entry else {
                        unreachable!("unfused memo entry holds a DecodedProgram");
                    };
                    return Arc::clone(plan);
                }
            }
        }
    }
    let plan = Arc::new(DecodedProgram::build(Arc::clone(program)));
    entries.retain(|(k, v, _, _)| !(*k == key && *v == PlanVariant::Unfused));
    entries.push((
        key,
        PlanVariant::Unfused,
        Arc::downgrade(program),
        PlanEntry::Unfused(Arc::clone(&plan)),
    ));
    plan
}

/// The shared *fused* plan for `program`, building it (and, if needed,
/// its base plan) on first sight.
///
/// The overlay embeds the same `Arc<DecodedProgram>` that [`plan_of`]
/// memoizes, so requesting both variants costs one lowering plus one
/// fusion pass — and the two memo entries coexist under the
/// variant-qualified key.
pub fn fused_plan_of(program: &Arc<Program>) -> Arc<FusedProgram> {
    // Resolve the base plan before taking the memo lock: plan_of locks
    // the same mutex, and the overlay must share its allocation.
    let base = plan_of(program);
    let memo = PLAN_MEMO.get_or_init(|| Mutex::new(Vec::new()));
    let key = Arc::as_ptr(program) as usize;
    let mut entries = memo.lock().expect("plan memo unpoisoned");
    entries.retain(|(_, _, witness, _)| witness.strong_count() > 0);
    for (entry_key, variant, witness, entry) in entries.iter() {
        if *entry_key == key && *variant == PlanVariant::Fused {
            if let Some(alive) = witness.upgrade() {
                if Arc::ptr_eq(&alive, program) {
                    let PlanEntry::Fused(fused) = entry else {
                        unreachable!("fused memo entry holds a FusedProgram");
                    };
                    return Arc::clone(fused);
                }
            }
        }
    }
    let fused = Arc::new(FusedProgram::build(base));
    entries.retain(|(k, v, _, _)| !(*k == key && *v == PlanVariant::Fused));
    entries.push((
        key,
        PlanVariant::Fused,
        Arc::downgrade(program),
        PlanEntry::Fused(Arc::clone(&fused)),
    ));
    fused
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{MemOperand, Reg};

    fn sample_program() -> Program {
        Program::new(
            vec![
                Inst::MovI {
                    dst: Reg(0),
                    imm: 4,
                }, // 0
                Inst::BranchI {
                    cond: Cond::Eq,
                    a: Reg(0),
                    imm: 0,
                    target: 4,
                }, // 1: block split
                Inst::AluRI {
                    op: AluOp::Sub,
                    dst: Reg(0),
                    a: Reg(0),
                    imm: 1,
                }, // 2
                Inst::Jump { target: 1 }, // 3
                Inst::Halt,               // 4
            ],
            0x1000,
        )
    }

    #[test]
    fn lowering_preserves_static_facts() {
        let program = Arc::new(sample_program());
        let plan = DecodedProgram::build(Arc::clone(&program));
        assert_eq!(plan.len(), program.len());
        for i in 0..program.len() {
            assert_eq!(plan.op(i).len as u64, program.inst(i).encoded_len());
            assert_eq!(plan.pc(i), program.pc_of(i));
            assert_eq!(
                plan.op(i).has(MicroOp::CONTROL),
                program.inst(i).is_control()
            );
            assert_eq!(plan.op(i).has(MicroOp::GATE_MEM), program.inst(i).is_mem());
        }
        assert_eq!(plan.op(1).target, 4);
        assert_eq!(plan.op(3).target, 1);
    }

    #[test]
    fn mem_operand_slots_follow_the_convention() {
        let plan = DecodedProgram::build(Arc::new(Program::new(
            vec![Inst::Store {
                src: Reg(7),
                mem: MemOperand::full(Reg(1), Reg(2), 8, -16),
                size: 4,
            }],
            0,
        )));
        let op = plan.op(0);
        assert_eq!(op.srcs, [1, 2, 7]);
        assert_eq!(op.scale, 8);
        assert_eq!(op.imm, -16);
        assert_eq!(op.size, 4);
        assert!(op.has(MicroOp::IS_STORE) && !op.has(MicroOp::IS_LOAD));
    }

    #[test]
    fn ea_templates_name_the_operand_slots() {
        use crate::isa::HmovOperand;
        let plan = DecodedProgram::build(Arc::new(Program::new(
            vec![
                Inst::Store {
                    src: Reg(7),
                    mem: MemOperand::full(Reg(1), Reg(2), 8, -16),
                    size: 4,
                },
                Inst::HmovLoad {
                    region: 1,
                    dst: Reg(3),
                    mem: HmovOperand::indexed(Reg(4), 2, 0x20),
                    size: 8,
                },
                Inst::Nop,
            ],
            0,
        )));
        let store = plan.op(0).ea_template().expect("store has a template");
        assert_eq!(
            store,
            EaTemplate {
                base: Some(1),
                index: Some(2),
                scale: 8,
                disp: -16,
                size: 4,
                is_store: true,
                region_relative: false,
            }
        );
        let hmov = plan.op(1).ea_template().expect("hmov has a template");
        assert_eq!(hmov.base, None, "hmov base is the region base");
        assert_eq!(hmov.index, Some(4));
        assert_eq!(hmov.scale, 2);
        assert_eq!(hmov.disp, 0x20);
        assert!(hmov.region_relative && !hmov.is_store);
        assert_eq!(plan.op(2).ea_template(), None);
    }

    #[test]
    fn block_table_partitions_the_program() {
        let plan = DecodedProgram::build(Arc::new(sample_program()));
        // Leaders: 0, 1 (branch target of jump), 2 (post-branch), 4.
        let blocks = plan.blocks();
        assert_eq!(blocks.first().map(|b| b.start), Some(0));
        assert_eq!(blocks.last().map(|b| b.end), Some(5));
        for pair in blocks.windows(2) {
            assert_eq!(pair[0].end, pair[1].start, "blocks must tile the program");
        }
        // The branch block: falls through to 2, takes to 4.
        let branch_block = blocks[plan.block_of(1)];
        assert_eq!(branch_block.end, 2);
        assert_eq!(branch_block.fall_through, 2);
        assert_eq!(branch_block.taken, 4);
        // The jump block: taken edge only.
        let jump_block = blocks[plan.block_of(3)];
        assert_eq!(jump_block.fall_through, NO_TARGET);
        assert_eq!(jump_block.taken, 1);
        // Every instruction maps into its containing block.
        for i in 0..plan.len() {
            let b = blocks[plan.block_of(i)];
            assert!(b.start as usize <= i && i < b.end as usize);
        }
    }

    #[test]
    fn serialize_classes_match_the_decode_rules() {
        use hfi_core::SandboxConfig;
        let insts = vec![
            Inst::Cpuid,
            Inst::Fence,
            Inst::Syscall,
            Inst::HfiEnter {
                config: SandboxConfig::hybrid().serialized(),
            },
            Inst::HfiEnter {
                config: SandboxConfig::hybrid(),
            },
            Inst::HfiExit,
            Inst::HfiReenter,
            Inst::HfiClearRegion { slot: 3 },
            Inst::HfiClearAllRegions,
            Inst::Nop,
        ];
        let plan = DecodedProgram::build(Arc::new(Program::new(insts, 0)));
        use SerializeClass::*;
        let expect = [
            Always,
            Always,
            Always,
            Always,
            No,
            ExitDynamic,
            No,
            IfEnabled,
            IfEnabled,
            No,
        ];
        for (i, want) in expect.iter().enumerate() {
            assert_eq!(plan.op(i).serialize, *want, "inst {i}");
        }
        assert_eq!(plan.op(7).region, 3, "clear_region slot rides inline");
    }

    #[test]
    fn plan_memo_shares_and_survives_reuse() {
        let program = Arc::new(sample_program());
        let a = plan_of(&program);
        let b = plan_of(&program);
        assert!(Arc::ptr_eq(&a, &b), "same allocation must share one plan");
        // A different allocation (even of identical content) gets its own
        // plan keyed by its own pointer.
        let other = Arc::new(sample_program());
        let c = plan_of(&other);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.len(), a.len());
    }

    #[test]
    fn fused_and_unfused_memo_entries_never_alias() {
        // Satellite regression: the memo key is (Arc pointer, variant) —
        // requesting both plans for one Arc<Program> must never alias,
        // evict, or rebuild the other variant's entry.
        let program = Arc::new(sample_program());
        let unfused = plan_of(&program);
        let fused = fused_plan_of(&program);
        assert!(
            Arc::ptr_eq(fused.base(), &unfused),
            "the overlay must share the memoized base plan"
        );
        // Neither request clobbered the other's entry.
        assert!(Arc::ptr_eq(&plan_of(&program), &unfused));
        assert!(Arc::ptr_eq(&fused_plan_of(&program), &fused));
        assert!(Arc::ptr_eq(&plan_of(&program), &unfused));
        // Fused-first order on a fresh allocation behaves identically.
        let other = Arc::new(sample_program());
        let f2 = fused_plan_of(&other);
        let u2 = plan_of(&other);
        assert!(Arc::ptr_eq(f2.base(), &u2));
        assert!(Arc::ptr_eq(&fused_plan_of(&other), &f2));
        assert!(Arc::ptr_eq(&plan_of(&other), &u2));
        assert!(!Arc::ptr_eq(&f2, &fused));
    }

    #[test]
    fn fusion_pass_tiles_blocks_and_validates() {
        let program = Arc::new(sample_program());
        let fused = FusedProgram::build(plan_of(&program));
        assert_eq!(fused.validate(), Ok(()));
        assert_eq!(fused.blocks().len(), fused.base().blocks().len());
        // Every instruction is covered exactly once, in order.
        let mut covered = 0usize;
        for sop in fused.sops() {
            assert_eq!(sop.start as usize, covered);
            covered = sop.end();
        }
        assert_eq!(covered, fused.base().len());
    }

    #[test]
    fn fusion_recognizes_the_idiom_superops() {
        use crate::isa::{HmovOperand, MemOperand, Reg};
        use hfi_core::SandboxConfig;
        let insts = vec![
            // Block 0: alu run feeding a conditional branch.
            Inst::MovI {
                dst: Reg(0),
                imm: 4,
            },
            Inst::AluRI {
                op: AluOp::Add,
                dst: Reg(1),
                a: Reg(0),
                imm: 1,
            },
            Inst::BranchI {
                cond: Cond::GeU,
                a: Reg(1),
                imm: 100,
                target: 8,
            },
            // Block 1: a guarded-access run, then an hmov chain.
            Inst::Load {
                dst: Reg(2),
                mem: MemOperand::base_disp(Reg(1), 0),
                size: 8,
            },
            Inst::Store {
                src: Reg(2),
                mem: MemOperand::base_disp(Reg(1), 8),
                size: 8,
            },
            Inst::HmovLoad {
                region: 6,
                dst: Reg(3),
                mem: HmovOperand::disp(0),
                size: 8,
            },
            Inst::HmovStore {
                region: 6,
                src: Reg(3),
                mem: HmovOperand::disp(8),
                size: 8,
            },
            Inst::Jump { target: 8 },
            // Block 2: an hfi prologue run, then halt.
            Inst::HfiSetRegion {
                slot: 0,
                region: hfi_core::Region::Code(
                    hfi_core::region::ImplicitCodeRegion::new(0x1000, 0xFFF, true).unwrap(),
                ),
            },
            Inst::HfiEnter {
                config: SandboxConfig::hybrid(),
            },
            Inst::HfiExit,
            Inst::Halt,
        ];
        let program = Arc::new(Program::new(insts, 0x1000));
        let fused = fused_plan_of(&program);
        assert_eq!(fused.validate(), Ok(()));
        let kinds: Vec<(SuperOpKind, u32, u32)> = fused
            .sops()
            .iter()
            .map(|s| (s.kind, s.start, s.count))
            .collect();
        assert_eq!(
            kinds,
            vec![
                (SuperOpKind::AluRun, 0, 1),
                (SuperOpKind::CmpBranch, 1, 2),
                (SuperOpKind::GuardedAccess, 3, 2),
                (SuperOpKind::HmovChain, 5, 2),
                (SuperOpKind::Step, 7, 1),
                (SuperOpKind::HfiSeq, 8, 3),
                (SuperOpKind::Step, 11, 1),
            ]
        );
    }
}
