//! Branch prediction: a 2-bit-counter pattern history table (PHT), a
//! branch target buffer (BTB), and a return address stack (RAS).
//!
//! The PHT is what Spectre-PHT trains (Fig. 7): in-bounds executions drive
//! the counter to strongly-taken, then the out-of-bounds probe speculates
//! down the stale taken path. The BTB serves indirect branch targets and is
//! the analogous Spectre-BTB surface.

/// A 2-bit saturating-counter PHT indexed by hashed PC.
#[derive(Debug, Clone)]
pub struct PatternHistoryTable {
    counters: Vec<u8>,
    mask: usize,
}

impl PatternHistoryTable {
    /// `entries` must be a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two());
        // Initialize weakly-taken so cold branches behave plausibly.
        Self {
            counters: vec![2; entries],
            mask: entries - 1,
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 1) as usize ^ (pc >> 13) as usize) & self.mask
    }

    /// Predicted direction for the branch at `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    /// Trains the counter with the resolved direction.
    pub fn update(&mut self, pc: u64, taken: bool) {
        let idx = self.index(pc);
        let counter = &mut self.counters[idx];
        if taken {
            *counter = (*counter + 1).min(3);
        } else {
            *counter = counter.saturating_sub(1);
        }
    }
}

/// A direct-mapped branch target buffer.
#[derive(Debug, Clone)]
pub struct BranchTargetBuffer {
    entries: Vec<Option<(u64, u64)>>, // (branch pc, target pc)
    mask: usize,
}

impl BranchTargetBuffer {
    /// `entries` must be a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two());
        Self {
            entries: vec![None; entries],
            mask: entries - 1,
        }
    }

    fn index(&self, pc: u64) -> usize {
        (pc >> 1) as usize & self.mask
    }

    /// Predicted target for the control-flow instruction at `pc`.
    pub fn predict(&self, pc: u64) -> Option<u64> {
        match self.entries[self.index(pc)] {
            Some((tag, target)) if tag == pc => Some(target),
            _ => None,
        }
    }

    /// Records the resolved target.
    pub fn update(&mut self, pc: u64, target: u64) {
        let idx = self.index(pc);
        self.entries[idx] = Some((pc, target));
    }
}

/// A return address stack.
#[derive(Debug, Clone, Default)]
pub struct ReturnAddressStack {
    stack: std::collections::VecDeque<u64>,
    depth: usize,
}

/// An O(1) squash-recovery token: the top-of-stack index and value at
/// checkpoint time. Real RAS recovery hardware checkpoints exactly this
/// (a TOS pointer plus the top entry), not the whole stack — entries the
/// wrong path overwrote *below* the checkpointed top stay corrupted,
/// which is the accepted mispredict-on-deep-wrong-path behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RasCheckpoint {
    len: usize,
    top: Option<u64>,
}

impl ReturnAddressStack {
    /// A RAS of `depth` entries.
    pub fn new(depth: usize) -> Self {
        Self {
            stack: std::collections::VecDeque::with_capacity(depth),
            depth,
        }
    }

    /// Pushes a return address (on call fetch).
    pub fn push(&mut self, addr: u64) {
        if self.stack.len() == self.depth {
            self.stack.pop_front();
        }
        self.stack.push_back(addr);
    }

    /// Pops the predicted return address (on return fetch).
    pub fn pop(&mut self) -> Option<u64> {
        self.stack.pop_back()
    }

    /// Captures a recovery token (on every call/return fetch). O(1) and
    /// allocation-free, unlike snapshotting the stack.
    pub fn checkpoint(&self) -> RasCheckpoint {
        RasCheckpoint {
            len: self.stack.len(),
            top: self.stack.back().copied(),
        }
    }

    /// Restores a checkpoint after a squash: the TOS pointer and top
    /// value come back exactly; deeper entries keep whatever the wrong
    /// path left there (zero-filled if the wrong path popped them away).
    pub fn restore(&mut self, checkpoint: RasCheckpoint) {
        self.stack.truncate(checkpoint.len);
        self.stack.resize(checkpoint.len, 0);
        if let (Some(top), Some(slot)) = (checkpoint.top, self.stack.back_mut()) {
            *slot = top;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pht_trains_to_taken() {
        let mut pht = PatternHistoryTable::new(1024);
        let pc = 0x4000;
        for _ in 0..4 {
            pht.update(pc, true);
        }
        assert!(pht.predict(pc));
        // One not-taken doesn't flip a saturated counter...
        pht.update(pc, false);
        assert!(pht.predict(pc));
        // ...two do.
        pht.update(pc, false);
        assert!(!pht.predict(pc));
    }

    #[test]
    fn btb_tags_exactly() {
        let mut btb = BranchTargetBuffer::new(256);
        btb.update(0x4000, 0x5000);
        assert_eq!(btb.predict(0x4000), Some(0x5000));
        // An aliasing PC with a different tag misses.
        assert_eq!(btb.predict(0x4000 + 512 * 2), None);
    }

    #[test]
    fn ras_round_trips() {
        let mut ras = ReturnAddressStack::new(16);
        ras.push(0x100);
        ras.push(0x200);
        assert_eq!(ras.pop(), Some(0x200));
        assert_eq!(ras.pop(), Some(0x100));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn ras_checkpoint_restore() {
        let mut ras = ReturnAddressStack::new(16);
        ras.push(0x100);
        let checkpoint = ras.checkpoint();
        ras.push(0x200);
        ras.pop();
        ras.pop();
        ras.restore(checkpoint);
        assert_eq!(ras.pop(), Some(0x100));
    }

    #[test]
    fn ras_checkpoint_is_copy_and_top_only() {
        let mut ras = ReturnAddressStack::new(4);
        ras.push(0x100);
        ras.push(0x200);
        let checkpoint = ras.checkpoint();
        // Copy: no allocation travels with the token.
        let same = checkpoint;
        // Wrong path: pop both, push different addresses.
        ras.pop();
        ras.pop();
        ras.push(0xBAD);
        ras.restore(same);
        // The top comes back exactly; the entry below it was clobbered
        // by the wrong path (TOS-only recovery).
        assert_eq!(ras.pop(), Some(0x200));
        assert_eq!(ras.pop(), Some(0xBAD));
    }
}
