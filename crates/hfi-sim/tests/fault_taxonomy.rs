//! Fault-taxonomy reachability: every [`HfiFault`] variant — and every
//! [`HmovViolation`] inside [`HfiFault::Hmov`] — must be reachable by a
//! real program on the cycle executor, and the functional executor must
//! agree on both the stop reason and the exit-reason MSR contents.
//!
//! This is the dynamic complement of the static verifier's coverage:
//! the chaos campaign classifies injected runs by which fault trapped,
//! so an unreachable variant would mean a slice of the fail-closed
//! taxonomy that no experiment can ever observe.

use std::sync::Arc;

use hfi_core::region::{ExplicitDataRegion, ImplicitCodeRegion, ImplicitDataRegion};
use hfi_core::{Access, ExitReason, HfiFault, HmovViolation, Region, SandboxConfig};
use hfi_sim::isa::MemOperand;
use hfi_sim::{Functional, HmovOperand, Machine, ProgramBuilder, Reg, Stop};

const CODE_BASE: u64 = 0x40_0000;
const DATA_BASE: u64 = 0x10_0000;
const HEAP_BASE: u64 = 0x100_0000;
const HEAP_BOUND: u64 = 1 << 16;

/// Standard hybrid-sandbox prologue: code + implicit data regions, and
/// optionally the explicit heap region in slot 6.
fn enter_hybrid(asm: &mut ProgramBuilder, heap: Option<ExplicitDataRegion>) {
    let code = ImplicitCodeRegion::new(CODE_BASE, 0xFFFF, true).unwrap();
    let data = ImplicitDataRegion::new(DATA_BASE, 0xFFFF, true, true).unwrap();
    asm.hfi_set_region(0, Region::Code(code));
    asm.hfi_set_region(2, Region::Data(data));
    if let Some(heap) = heap {
        asm.hfi_set_region(6, Region::Explicit(heap));
    }
    asm.hfi_enter(SandboxConfig::hybrid());
}

fn rw_heap() -> ExplicitDataRegion {
    ExplicitDataRegion::large(HEAP_BASE, HEAP_BOUND, true, true).unwrap()
}

/// Runs the program on both executors and checks: the cycle machine
/// stops with `expected`, and the functional interpreter reports the
/// *identical* stop and exit-reason MSR.
fn assert_fault(asm: ProgramBuilder, expected: HfiFault) {
    let program = Arc::new(asm.finish());

    let mut machine = Machine::new(program.clone());
    let cycle = machine.run(1_000_000);
    assert_eq!(
        cycle.stop,
        Stop::Fault(expected),
        "cycle executor: wrong stop"
    );
    assert_eq!(
        cycle.exit_reason,
        Some(ExitReason::Fault(expected)),
        "cycle executor: wrong exit-reason MSR"
    );

    let mut functional = Functional::new(program);
    let result = functional.run(1_000_000);
    assert_eq!(result.stop, cycle.stop, "executors disagree on stop");
    assert_eq!(
        functional.hfi.exit_reason(),
        cycle.exit_reason,
        "executors disagree on the exit-reason MSR"
    );
}

#[test]
fn data_bounds_read_is_reachable() {
    let mut asm = ProgramBuilder::new(CODE_BASE);
    enter_hybrid(&mut asm, None);
    asm.movi(Reg(0), 0x20_0000);
    asm.load(Reg(1), MemOperand::base_disp(Reg(0), 0), 8);
    asm.halt();
    assert_fault(
        asm,
        HfiFault::DataBounds {
            addr: 0x20_0000,
            access: Access::Read,
        },
    );
}

#[test]
fn data_bounds_write_is_reachable() {
    let mut asm = ProgramBuilder::new(CODE_BASE);
    enter_hybrid(&mut asm, None);
    asm.movi(Reg(0), 0x20_0000);
    asm.store(Reg(0), MemOperand::base_disp(Reg(0), 8), 8);
    asm.halt();
    assert_fault(
        asm,
        HfiFault::DataBounds {
            addr: 0x20_0008,
            access: Access::Write,
        },
    );
}

#[test]
fn code_bounds_is_reachable() {
    // An indirect jump out of the code region: the fetch of the target
    // fails the decode-time code check (a faulting NOP, §4.1).
    let mut asm = ProgramBuilder::new(CODE_BASE);
    enter_hybrid(&mut asm, None);
    asm.movi(Reg(0), 0x99_0000);
    asm.jump_ind(Reg(0));
    asm.halt();
    assert_fault(asm, HfiFault::CodeBounds { pc: 0x99_0000 });
}

#[test]
fn hmov_region_not_configured_is_reachable() {
    let mut asm = ProgramBuilder::new(CODE_BASE);
    enter_hybrid(&mut asm, None); // no explicit region installed
    asm.hmov_load(0, Reg(1), HmovOperand::disp(0), 8);
    asm.halt();
    assert_fault(
        asm,
        HfiFault::Hmov {
            region: 0,
            violation: HmovViolation::RegionNotConfigured,
        },
    );
}

#[test]
fn hmov_negative_operand_is_reachable() {
    let mut asm = ProgramBuilder::new(CODE_BASE);
    enter_hybrid(&mut asm, Some(rw_heap()));
    asm.movi(Reg(0), -1);
    asm.hmov_load(0, Reg(1), HmovOperand::indexed(Reg(0), 1, 0), 8);
    asm.halt();
    assert_fault(
        asm,
        HfiFault::Hmov {
            region: 0,
            violation: HmovViolation::NegativeOperand,
        },
    );
}

#[test]
fn hmov_overflow_is_reachable() {
    // index * scale overflows u64 with a non-negative index.
    let mut asm = ProgramBuilder::new(CODE_BASE);
    enter_hybrid(&mut asm, Some(rw_heap()));
    asm.movi(Reg(0), 0x4000_0000_0000_0000);
    asm.hmov_load(0, Reg(1), HmovOperand::indexed(Reg(0), 8, 0), 8);
    asm.halt();
    assert_fault(
        asm,
        HfiFault::Hmov {
            region: 0,
            violation: HmovViolation::Overflow,
        },
    );
}

#[test]
fn hmov_out_of_bounds_is_reachable() {
    let mut asm = ProgramBuilder::new(CODE_BASE);
    enter_hybrid(&mut asm, Some(rw_heap()));
    asm.hmov_load(0, Reg(1), HmovOperand::disp(HEAP_BOUND as i64), 8);
    asm.halt();
    assert_fault(
        asm,
        HfiFault::Hmov {
            region: 0,
            violation: HmovViolation::OutOfBounds,
        },
    );
}

#[test]
fn hmov_permission_denied_is_reachable() {
    let read_only = ExplicitDataRegion::large(HEAP_BASE, HEAP_BOUND, true, false).unwrap();
    let mut asm = ProgramBuilder::new(CODE_BASE);
    enter_hybrid(&mut asm, Some(read_only));
    asm.movi(Reg(0), 7);
    asm.hmov_store(0, Reg(0), HmovOperand::disp(0x40), 8);
    asm.halt();
    assert_fault(
        asm,
        HfiFault::Hmov {
            region: 0,
            violation: HmovViolation::PermissionDenied,
        },
    );
}

#[test]
fn privileged_instruction_is_reachable() {
    // A native sandbox attempting a region-register update. The exit
    // handler address is unmapped, so the fault surfaces as the stop.
    let mut asm = ProgramBuilder::new(CODE_BASE);
    let code = ImplicitCodeRegion::new(CODE_BASE, 0xFFFF, true).unwrap();
    let data = ImplicitDataRegion::new(DATA_BASE, 0xFFFF, true, true).unwrap();
    asm.hfi_set_region(0, Region::Code(code));
    asm.hfi_set_region(2, Region::Data(data));
    asm.hfi_enter(SandboxConfig::native(0xE00_0000));
    asm.hfi_set_region(2, Region::Data(data));
    asm.halt();
    assert_fault(asm, HfiFault::PrivilegedInstruction);
}

#[test]
fn hardware_fault_is_reachable() {
    // Outside any sandbox, an indirect jump to unmapped code is a plain
    // hardware fault, not an HFI code-bounds violation.
    let mut asm = ProgramBuilder::new(CODE_BASE);
    asm.movi(Reg(0), 0x99_0000);
    asm.jump_ind(Reg(0));
    asm.halt();
    assert_fault(asm, HfiFault::Hardware { addr: 0x99_0000 });
}
