//! Multi-memory sandboxes: all four explicit regions (`hmov0`–`hmov3`).
//!
//! Wasm's multi-memory proposal gives one instance several linear
//! memories; under guard pages each costs another 8 GiB reservation and
//! another pinned base register, while HFI assigns each to an explicit
//! region register (§2, §3.3.1 "multiplex HFI's (finite) registers among
//! a larger number of multi-memories").

use hfi_core::region::{ExplicitDataRegion, ImplicitCodeRegion};
use hfi_core::{HfiFault, Region, SandboxConfig};
use hfi_sim::{AluOp, Cond, HmovOperand, Machine, ProgramBuilder, Reg, Stop};

const CODE_BASE: u64 = 0x40_0000;
const MEM_BASES: [u64; 4] = [0x100_0000, 0x200_0000, 0x300_0000, 0x400_0000];

fn setup(asm: &mut ProgramBuilder, sizes: [u64; 4]) {
    let code = ImplicitCodeRegion::new(CODE_BASE, 0xFFFF, true).expect("valid");
    asm.hfi_set_region(0, Region::Code(code));
    for (i, (&base, &size)) in MEM_BASES.iter().zip(&sizes).enumerate() {
        let region = ExplicitDataRegion::large(base, size, true, true).expect("valid");
        asm.hfi_set_region(6 + i as u8, Region::Explicit(region));
    }
    asm.hfi_enter(SandboxConfig::hybrid());
}

#[test]
fn each_hmov_addresses_its_own_memory() {
    let mut asm = ProgramBuilder::new(CODE_BASE);
    setup(&mut asm, [1 << 20; 4]);
    for region in 0..4u8 {
        asm.movi(Reg(1), 100 + region as i64);
        asm.hmov_store(region, Reg(1), HmovOperand::disp(0x20), 8);
    }
    asm.hfi_exit();
    asm.halt();
    let mut machine = Machine::new(asm.finish());
    let result = machine.run(1_000_000);
    assert_eq!(result.stop, Stop::Halted);
    for (i, &base) in MEM_BASES.iter().enumerate() {
        assert_eq!(
            machine.mem.read(base + 0x20, 8),
            100 + i as u64,
            "memory {i}"
        );
    }
}

#[test]
fn memories_have_independent_bounds() {
    // Memory 2 is tiny; the same offset that works in memory 0 traps in
    // memory 2.
    let mut asm = ProgramBuilder::new(CODE_BASE);
    setup(&mut asm, [1 << 20, 1 << 20, 1 << 16, 1 << 20]);
    asm.hmov_load(0, Reg(1), HmovOperand::disp(0x2_0000), 8); // fine in mem0
    asm.hmov_load(2, Reg(2), HmovOperand::disp(0x2_0000), 8); // traps in mem2
    asm.hfi_exit();
    asm.halt();
    let mut machine = Machine::new(asm.finish());
    let result = machine.run(1_000_000);
    assert!(
        matches!(result.stop, Stop::Fault(HfiFault::Hmov { region: 2, .. })),
        "got {:?}",
        result.stop
    );
}

#[test]
fn cross_memory_copy() {
    // memcpy from memory 1 to memory 3 through registers — the
    // shared-buffer pattern multi-memories exist for.
    let mut asm = ProgramBuilder::new(CODE_BASE);
    setup(&mut asm, [1 << 20; 4]);
    let (i, v) = (Reg(5), Reg(6));
    asm.movi(i, 0);
    let top = asm.label_here("top");
    asm.hmov_load(1, v, HmovOperand::indexed(i, 1, 0), 8);
    asm.hmov_store(3, v, HmovOperand::indexed(i, 1, 0), 8);
    asm.alu_ri(AluOp::Add, i, i, 8);
    asm.branch_i(Cond::LtU, i, 256, top);
    asm.hfi_exit();
    asm.halt();
    let mut machine = Machine::new(asm.finish());
    for k in 0..32u64 {
        machine.mem.write(MEM_BASES[1] + k * 8, 0x1111 * (k + 1), 8);
    }
    let result = machine.run(1_000_000);
    assert_eq!(result.stop, Stop::Halted);
    for k in 0..32u64 {
        assert_eq!(machine.mem.read(MEM_BASES[3] + k * 8, 8), 0x1111 * (k + 1));
    }
}
