//! Pipeline-level tests of the switch-on-exit extension (paper §3.4/§4.5):
//! a trusted runtime running in its own serialized hybrid sandbox
//! multiplexes unserialized child sandboxes; child exits atomically
//! restore the parent's register file without disabling HFI, and the
//! per-switch serialization cost disappears.

use hfi_core::region::{ExplicitDataRegion, ImplicitCodeRegion, ImplicitDataRegion};
use hfi_core::{HfiFault, Region, SandboxConfig, NUM_REGIONS};
use hfi_sim::{AluOp, Cond, HmovOperand, Machine, MemOperand, ProgramBuilder, Reg, Stop};

const CODE_BASE: u64 = 0x40_0000;

fn regions() -> (Region, Region, [Option<Region>; NUM_REGIONS]) {
    let code = Region::Code(ImplicitCodeRegion::new(CODE_BASE, 0xFFFF, true).expect("valid"));
    let parent_data =
        Region::Data(ImplicitDataRegion::new(0x10_0000, 0xFFFF, true, true).expect("valid"));
    let child_heap = Region::Explicit(
        ExplicitDataRegion::large(0x100_0000, 1 << 20, true, true).expect("valid"),
    );
    let mut child_regions: [Option<Region>; NUM_REGIONS] = [None; NUM_REGIONS];
    child_regions[0] = Some(code);
    child_regions[6] = Some(child_heap);
    (code, parent_data, child_regions)
}

/// Builds: parent enters serialized hybrid sandbox; loops `iters` times
/// running a child (enter_child + small hmov workload + hfi_exit);
/// then the parent itself exits and halts.
fn build_switch_loop(iters: i64, serialize_children: bool) -> Machine {
    let (code, parent_data, child_regions) = regions();
    let mut asm = ProgramBuilder::new(CODE_BASE);
    asm.hfi_set_region(0, code);
    asm.hfi_set_region(2, parent_data);
    asm.hfi_enter(SandboxConfig::hybrid().serialized());
    let iter = Reg(5);
    asm.movi(iter, 0);
    let top = asm.label_here("top");
    if serialize_children {
        // Strawman: full serialization on every child entry/exit, no
        // switch-on-exit (children share the parent's register file, so
        // re-install the child heap each time).
        asm.hfi_set_region(6, child_regions[6].expect("heap set"));
        asm.hfi_enter(SandboxConfig::hybrid().serialized());
    } else {
        asm.hfi_enter_child(SandboxConfig::hybrid(), child_regions);
    }
    // Child workload: a couple of heap accesses.
    asm.movi(Reg(1), 7);
    asm.hmov_store(0, Reg(1), HmovOperand::disp(0x10), 8);
    asm.hmov_load(0, Reg(2), HmovOperand::disp(0x10), 8);
    asm.hfi_exit(); // switch-on-exit: back to the parent, HFI still on
    if serialize_children {
        // The strawman's exit disabled HFI; re-enter the parent sandbox.
        asm.hfi_enter(SandboxConfig::hybrid().serialized());
    }
    asm.alu_ri(AluOp::Add, iter, iter, 1);
    asm.branch_i(Cond::LtU, iter, iters, top);
    asm.hfi_exit();
    asm.halt();
    Machine::new(asm.finish())
}

#[test]
fn child_exit_returns_to_parent_with_hfi_enabled() {
    let mut machine = build_switch_loop(3, false);
    let result = machine.run(1_000_000);
    assert_eq!(result.stop, Stop::Halted);
    assert_eq!(result.regs[2], 7, "child workload must have run");
    // After the run the final parent hfi_exit disabled HFI.
    assert!(!machine.hfi.enabled());
}

#[test]
fn parent_regions_restored_after_child_exit() {
    // After a child exits, the parent can touch its own data region
    // (which the child's register file did not include).
    let (code, parent_data, child_regions) = regions();
    let mut asm = ProgramBuilder::new(CODE_BASE);
    asm.hfi_set_region(0, code);
    asm.hfi_set_region(2, parent_data);
    asm.hfi_enter(SandboxConfig::hybrid().serialized());
    asm.hfi_enter_child(SandboxConfig::hybrid(), child_regions);
    asm.hfi_exit(); // back to parent
    asm.movi(Reg(1), 0x10_0040);
    asm.movi(Reg(2), 99);
    asm.store(Reg(2), MemOperand::base_disp(Reg(1), 0), 8); // parent region
    asm.hfi_exit();
    asm.halt();
    let mut machine = Machine::new(asm.finish());
    let result = machine.run(1_000_000);
    assert_eq!(
        result.stop,
        Stop::Halted,
        "parent data region must be live again"
    );
    assert_eq!(machine.mem.read(0x10_0040, 8), 99);
}

#[test]
fn child_cannot_touch_parent_data() {
    // While the child runs, the parent's implicit data region is swapped
    // out: the same store that succeeds in the parent faults in the child.
    let (code, parent_data, child_regions) = regions();
    let mut asm = ProgramBuilder::new(CODE_BASE);
    asm.hfi_set_region(0, code);
    asm.hfi_set_region(2, parent_data);
    asm.hfi_enter(SandboxConfig::hybrid().serialized());
    asm.hfi_enter_child(SandboxConfig::hybrid(), child_regions);
    asm.movi(Reg(1), 0x10_0040); // parent's region, not the child's
    asm.movi(Reg(2), 1);
    asm.store(Reg(2), MemOperand::base_disp(Reg(1), 0), 8);
    asm.hfi_exit();
    asm.hfi_exit();
    asm.halt();
    let mut machine = Machine::new(asm.finish());
    let result = machine.run(1_000_000);
    assert!(
        matches!(result.stop, Stop::Fault(HfiFault::DataBounds { .. })),
        "got {:?}",
        result.stop
    );
}

#[test]
fn switch_on_exit_is_cheaper_than_per_child_serialization() {
    // The §4.5 claim, measured in the pipeline: multiplexing N children
    // with switch-on-exit costs less than serializing every entry/exit.
    let iters = 40;
    let mut soe = build_switch_loop(iters, false);
    let soe_cycles = soe.run(10_000_000).cycles;
    let mut serialized = build_switch_loop(iters, true);
    let ser_cycles = serialized.run(10_000_000).cycles;
    assert!(
        soe_cycles < ser_cycles,
        "switch-on-exit {soe_cycles} !< serialized {ser_cycles}"
    );
    // And the per-iteration saving is on the order of the drain costs.
    let saving = (ser_cycles - soe_cycles) / iters as u64;
    assert!(saving > 20, "per-iteration saving only {saving} cycles");
}
