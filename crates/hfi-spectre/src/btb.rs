//! A Spectre-BTB style attack: poisoning indirect-branch target
//! prediction.
//!
//! An indirect jump dispatches through a function pointer. Sixteen
//! training runs point it at a leak gadget, filling the BTB. The attacker
//! then rewrites the pointer to a benign target and flushes it; on the
//! next dispatch the pointer load is slow, the BTB still predicts the
//! *gadget*, and the gadget runs speculatively with an attacker-chosen
//! index — transmitting the secret through the cache exactly as in the
//! PHT variant.
//!
//! The paper notes (footnote 7) that gem5's BTB model cannot host the
//! real TransientFail attack and models it "using concrete control flow
//! that leaks secret data using the cache-side channel"; our simulator
//! *does* speculate through its BTB, so this is a faithful (if simplified)
//! in-place variant. HFI blocks it the same way: the gadget's speculative
//! load fails its region check before touching the cache.

use hfi_core::{Region, SandboxConfig};
use hfi_sim::{AluOp, Cond, Label, Machine, MemOperand, Program, ProgramBuilder, Reg, Stop};

use crate::layout::SpectreLayout;
use crate::pht::{AttackOutcome, Protection, HIT_THRESHOLD};

/// Byte address of the dispatched-through function pointer (inside the
/// `len` protective region, so the defended victim may read and write it).
fn fnptr_addr(layout: &SpectreLayout) -> u64 {
    layout.len_addr + 8
}

/// Builds the BTB attack with concrete gadget/benign byte addresses.
/// `gadget_pc`/`benign_pc` of 0 are placeholders for the first pass of the
/// two-pass build (identical encoding lengths keep the layout stable).
fn build(
    layout: &SpectreLayout,
    protection: Protection,
    gadget_pc: i64,
    benign_pc: i64,
) -> (ProgramBuilder, Label, Label) {
    let mut asm = ProgramBuilder::new(layout.code_base);
    let idx = Reg(1);
    let arr1 = Reg(2);
    let arr2 = Reg(4);
    let byte = Reg(6);
    let tmp = Reg(7);
    let iter = Reg(8);
    let fnreg = Reg(9);
    let t0 = Reg(10);
    let t1 = Reg(11);
    let fnp = Reg(12);
    let lat_ptr = Reg(13);

    if protection == Protection::Hfi {
        asm.hfi_set_region(0, Region::Code(layout.code_region()));
        for (i, region) in layout.protective_data_regions().into_iter().enumerate() {
            asm.hfi_set_region(2 + i as u8, Region::Data(region));
        }
        asm.hfi_enter(SandboxConfig::hybrid().serialized());
    }

    asm.movi(arr1, layout.array1 as i64);
    asm.movi(arr2, layout.array2 as i64);
    asm.movi(lat_ptr, layout.latencies as i64);
    asm.movi(fnp, fnptr_addr(layout) as i64);

    // fnptr <- gadget initially.
    asm.movi(tmp, gadget_pc);
    asm.store(tmp, MemOperand::base_disp(fnp, 0), 8);

    // The loop runs 4 rounds of 17 dispatches: in each round, phases
    // 0–15 train the BTB (pointer = gadget, in-bounds index) and phase 16
    // attacks (pointer rewritten to benign and flushed; the dispatch
    // speculates into the stale gadget prediction with the evil index).
    // Round 0's attack only warms the cold secret line; later rounds'
    // attacks complete the transmit — the same retry structure real PoCs
    // use. The probe array is flushed once, before round 0's attack, so
    // only re-training warmth (slot 1) and the transmitted slot survive.
    let loop_top = asm.label();
    let train_setup = asm.label();
    let dispatch = asm.label();
    let cont = asm.label();
    let skip_arr2_flush = asm.label();
    let gadget = asm.label();
    let benign = asm.label();
    let probe = asm.label();
    let phase = Reg(14);

    asm.movi(iter, 0);
    asm.place(loop_top);
    asm.alu_ri(AluOp::Rem, phase, iter, 17);
    asm.branch_i(Cond::Ne, phase, 16, train_setup);
    // Attack phase: retarget + flush the pointer.
    asm.movi(idx, layout.evil_index() as i64);
    asm.movi(tmp, benign_pc);
    asm.store(tmp, MemOperand::base_disp(fnp, 0), 8);
    asm.fence();
    asm.flush(MemOperand::base_disp(fnp, 0));
    asm.branch_i(Cond::Ne, iter, 16, skip_arr2_flush);
    asm.movi(byte, 0);
    let flush_top = asm.label_here("flush_top");
    asm.flush(MemOperand::full(arr2, byte, 1, 0));
    asm.alu_ri(AluOp::Add, byte, byte, layout.stride as i64);
    asm.branch_i(Cond::LtU, byte, (256 * layout.stride) as i64, flush_top);
    asm.place(skip_arr2_flush);
    asm.fence();
    asm.jump(dispatch);
    // Training phase: pointer = gadget, in-bounds index.
    asm.place(train_setup);
    asm.alu_ri(AluOp::And, idx, iter, (layout.array1_len - 1) as i64);
    asm.movi(tmp, gadget_pc);
    asm.store(tmp, MemOperand::base_disp(fnp, 0), 8);
    asm.place(dispatch);
    asm.load(fnreg, MemOperand::base_disp(fnp, 0), 8);
    asm.jump_ind(fnreg); // single dispatch site: one BTB entry

    asm.place(cont);
    asm.alu_ri(AluOp::Add, iter, iter, 1);
    asm.branch_i(Cond::LtU, iter, 4 * 17, loop_top);
    asm.jump(probe);

    // The leak gadget: dispatch target during training; speculative-only
    // target during the attack.
    asm.place(gadget);
    asm.load(byte, MemOperand::full(arr1, idx, 1, 0), 1);
    asm.alu_ri(
        AluOp::Shl,
        byte,
        byte,
        layout.stride.trailing_zeros() as i64,
    );
    asm.load(tmp, MemOperand::full(arr2, byte, 1, 0), 1);
    asm.jump(cont);

    // The benign target the rewritten pointer actually reaches.
    asm.place(benign);
    asm.jump(cont);

    // Probe loop (identical to the PHT variant).
    asm.place(probe);
    asm.movi(iter, 0);
    let probe_top = asm.label_here("probe_top");
    asm.alu_ri(
        AluOp::Shl,
        byte,
        iter,
        layout.stride.trailing_zeros() as i64,
    );
    asm.fence();
    asm.rdtsc(t0);
    asm.load(tmp, MemOperand::full(arr2, byte, 1, 0), 1);
    asm.fence();
    asm.rdtsc(t1);
    asm.alu(AluOp::Sub, t1, t1, t0);
    asm.store(t1, MemOperand::full(lat_ptr, iter, 8, 0), 8);
    asm.alu_ri(AluOp::Add, iter, iter, 1);
    asm.branch_i(Cond::LtU, iter, 256, probe_top);

    if protection == Protection::Hfi {
        asm.hfi_exit();
    }
    asm.halt();
    (asm, gadget, benign)
}

/// Builds the BTB attack program (two passes: the first discovers the
/// gadget and benign byte addresses, the second bakes them in).
pub fn build_attack(layout: &SpectreLayout, protection: Protection) -> Program {
    // Placeholders with the same i32 encoding class as the real PCs.
    let (first, gadget, benign) = build(layout, protection, 0x40_0000, 0x40_0000);
    let gadget_idx = first.resolved(gadget).expect("gadget placed");
    let benign_idx = first.resolved(benign).expect("benign placed");
    let first_prog = first.finish();
    let gadget_pc = first_prog.pc_of(gadget_idx) as i64;
    let benign_pc = first_prog.pc_of(benign_idx) as i64;
    let (second, _, _) = build(layout, protection, gadget_pc, benign_pc);
    let program = second.finish();
    debug_assert_eq!(program.pc_of(gadget_idx) as i64, gadget_pc);
    program
}

/// Runs the Spectre-BTB attack and reports the probe verdict.
pub fn run_attack(protection: Protection) -> AttackOutcome {
    run_attack_with_secret(protection, b'I')
}

/// Like [`run_attack`] with a chosen non-zero secret byte.
pub fn run_attack_with_secret(protection: Protection, secret: u8) -> AttackOutcome {
    assert_ne!(secret, 0, "secret 0 aliases the blocked-load value");
    let layout = SpectreLayout::new();
    let program = build_attack(&layout, protection);
    let mut machine = Machine::new(program);
    for i in 0..layout.array1_len {
        machine.mem.write(layout.array1 + i, 1, 1);
    }
    machine.mem.write(layout.len_addr, layout.array1_len, 8);
    machine.mem.write(layout.secret_addr, secret as u64, 1);

    let result = machine.run(10_000_000);
    assert_eq!(
        result.stop,
        Stop::Halted,
        "attack program must run to completion"
    );

    let latencies: Vec<u64> = (0..256)
        .map(|i| machine.mem.read(layout.latencies + i * 8, 8))
        .collect();
    let warm_indices = latencies
        .iter()
        .enumerate()
        .filter(|(_, &lat)| lat < HIT_THRESHOLD)
        .map(|(i, _)| i as u8)
        .collect();
    AttackOutcome {
        latencies,
        secret,
        warm_indices,
        cycles: result.cycles,
        speculative_loads: result.stats.squashed_loads_executed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unprotected_victim_leaks_via_btb() {
        let outcome = run_attack(Protection::None);
        assert!(
            outcome.leaked(),
            "expected BTB leak; warm={:?} spec_loads={}",
            outcome.warm_indices,
            outcome.speculative_loads
        );
    }

    #[test]
    fn hfi_blocks_btb_leak() {
        let outcome = run_attack(Protection::Hfi);
        assert!(!outcome.leaked(), "warm={:?}", outcome.warm_indices);
        assert!(outcome.latencies[outcome.secret as usize] >= HIT_THRESHOLD);
    }
}
