//! Memory layout and HFI region assignment shared by the attack builders.

use hfi_core::region::{ImplicitCodeRegion, ImplicitDataRegion};

/// Where the attack's data structures live in the simulated address space.
///
/// The layout is chosen so each structure can be covered by one implicit
/// (power-of-two, aligned) HFI region while the secret sits *just outside*
/// the `array1` region — the SafeSide PoC shape (paper §5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpectreLayout {
    /// The in-bounds victim array (16 bytes).
    pub array1: u64,
    /// Architectural length of `array1`.
    pub array1_len: u64,
    /// Address of the length variable (flushed to widen speculation).
    pub len_addr: u64,
    /// The secret byte, adjacent to (but outside) `array1`'s region.
    pub secret_addr: u64,
    /// The probe (transmission) array: 256 slots of `stride` bytes.
    pub array2: u64,
    /// Distance between probe slots in bytes.
    pub stride: u64,
    /// Where the probe loop stores its 256 measured latencies (u64 each).
    pub latencies: u64,
    /// Code base address.
    pub code_base: u64,
}

impl Default for SpectreLayout {
    fn default() -> Self {
        Self::new()
    }
}

impl SpectreLayout {
    /// The standard layout used by the attacks and the Fig. 7 harness.
    pub fn new() -> Self {
        Self {
            array1: 0x10_0000,
            array1_len: 16,
            len_addr: 0x10_8000,
            secret_addr: 0x10_0040,
            array2: 0x20_0000,
            stride: 512,
            latencies: 0x30_0000,
            code_base: 0x40_0000,
        }
    }

    /// The attacker-controlled out-of-bounds index that makes
    /// `array1[i]` read the secret.
    pub fn evil_index(&self) -> u64 {
        self.secret_addr - self.array1
    }

    /// The four implicit data regions a defending runtime installs: they
    /// cover `array1`, the length, `array2`, and the latency buffer — and
    /// deliberately exclude the secret (paper §5.3: "the memory range
    /// containing the global variable is in an HFI region without read or
    /// write permissions"; equivalently here, in no region at all).
    pub fn protective_data_regions(&self) -> [ImplicitDataRegion; 4] {
        [
            // 64 bytes: array1 only; the secret at +0x40 is outside.
            ImplicitDataRegion::new(self.array1, 0x3F, true, true).expect("array1 region is valid"),
            ImplicitDataRegion::new(self.len_addr, 0xFFF, true, true).expect("len region is valid"),
            // 256 slots x 512 B = 128 KiB.
            ImplicitDataRegion::new(self.array2, 256 * self.stride - 1, true, true)
                .expect("array2 region is valid"),
            ImplicitDataRegion::new(self.latencies, 0xFFF, true, true)
                .expect("latency region is valid"),
        ]
    }

    /// The code region covering the attack program.
    pub fn code_region(&self) -> ImplicitCodeRegion {
        ImplicitCodeRegion::new(self.code_base, 0xFFFF, true).expect("code region is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secret_is_outside_every_protective_region() {
        let layout = SpectreLayout::new();
        for region in layout.protective_data_regions() {
            assert!(!region.contains(layout.secret_addr));
        }
    }

    #[test]
    fn attack_structures_are_inside_regions() {
        let layout = SpectreLayout::new();
        let regions = layout.protective_data_regions();
        assert!(regions[0].contains(layout.array1));
        assert!(regions[0].contains(layout.array1 + layout.array1_len - 1));
        assert!(regions[1].contains(layout.len_addr));
        assert!(regions[2].contains(layout.array2));
        assert!(regions[2].contains(layout.array2 + 255 * layout.stride));
        assert!(regions[3].contains(layout.latencies + 255 * 8));
    }

    #[test]
    fn evil_index_reaches_secret() {
        let layout = SpectreLayout::new();
        assert_eq!(layout.array1 + layout.evil_index(), layout.secret_addr);
        assert!(layout.evil_index() >= layout.array1_len);
    }
}
