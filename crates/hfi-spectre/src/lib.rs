//! # hfi-spectre — Spectre proofs-of-concept against the simulated core
//!
//! Reproduces the paper's security evaluation (§5.3, Fig. 7): the in-place
//! Spectre-PHT attack in the style of Google SafeSide, and a Spectre-BTB
//! variant in the style of TransientFail, both running on the `hfi-sim`
//! out-of-order core and leaking through the simulated data cache.
//!
//! Each attack runs in two configurations:
//!
//! * **Unprotected** — the secret-dependent speculative load fills a cache
//!   line; a timed probe recovers the secret byte.
//! * **HFI** — the victim installs implicit regions covering everything
//!   *except* the secret; the speculative out-of-bounds load fails its
//!   region check before the physical address resolves, so the cache is
//!   never touched and the probe sees uniform misses (paper §4.1).
//!
//! ```
//! use hfi_spectre::{run_pht_attack, Protection};
//!
//! let vulnerable = run_pht_attack(Protection::None);
//! assert!(vulnerable.leaked());
//! let defended = run_pht_attack(Protection::Hfi);
//! assert!(!defended.leaked());
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod btb;
pub mod layout;
pub mod pht;

pub use btb::run_attack as run_btb_attack;
pub use layout::SpectreLayout;
pub use pht::{
    run_attack as run_pht_attack, run_attack_with_secret as run_pht_attack_with_secret,
    AttackOutcome, Protection, HIT_THRESHOLD,
};
