//! The in-place Spectre-PHT attack (Google SafeSide style, paper §5.3).
//!
//! Structure:
//!
//! 1. **Train** — run the bounds-checked gadget with in-bounds indices so
//!    the PHT learns the "in bounds" (not-taken) direction.
//! 2. **Flush** — evict the length variable (so the branch resolves late)
//!    and all 256 probe lines.
//! 3. **Attack** — run the gadget once with an out-of-bounds index. The
//!    mispredicted branch speculatively executes
//!    `array2[array1[evil] * stride]`, transmitting the secret into the
//!    data cache before the squash.
//! 4. **Probe** — time a load from each probe slot with `rdtsc`; the one
//!    warm line reveals the byte.
//!
//! With HFI enabled and the protective regions of
//! [`SpectreLayout::protective_data_regions`] installed, the speculative
//! `array1[evil]` load fails its implicit-region check *before* the cache
//! is touched, so no secret-dependent line warms (paper §4.1, Fig. 7).

use hfi_core::{Region, SandboxConfig};
use hfi_sim::{AluOp, Cond, Machine, MemOperand, ProgramBuilder, Reg, Stop};

use crate::layout::SpectreLayout;

/// Whether the victim protects itself with HFI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protection {
    /// No sandbox: the classic vulnerable configuration.
    None,
    /// HFI enabled with regions covering everything except the secret.
    Hfi,
}

/// The outcome of one attack run.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackOutcome {
    /// Measured probe latency (cycles) for each of the 256 byte guesses.
    pub latencies: Vec<u64>,
    /// The secret byte planted in the victim.
    pub secret: u8,
    /// Guesses whose latency fell below the hit/miss threshold.
    pub warm_indices: Vec<u8>,
    /// Cycles the whole run took.
    pub cycles: u64,
    /// Wrong-path loads that performed cache accesses.
    pub speculative_loads: u64,
}

impl AttackOutcome {
    /// Did the attack recover the secret?
    pub fn leaked(&self) -> bool {
        self.warm_indices.contains(&self.secret)
    }
}

/// Latency threshold separating cache hits from misses. L2 hits measure
/// ~20 cycles in the probe loop; memory ~200+.
pub const HIT_THRESHOLD: u64 = 100;

/// Builds the complete train→flush→attack→probe program.
pub fn build_attack(layout: &SpectreLayout, protection: Protection) -> hfi_sim::Program {
    let mut asm = ProgramBuilder::new(layout.code_base);
    // Register plan:
    let idx = Reg(1); // gadget input index
    let arr1 = Reg(2); // array1 base
    let len_ptr = Reg(3); // &array1_len
    let len = Reg(5);
    let byte = Reg(6); // loaded (possibly secret) byte
    let arr2 = Reg(4); // array2 base
    let tmp = Reg(7);
    let iter = Reg(8);
    let t0 = Reg(10);
    let t1 = Reg(11);
    let lat_ptr = Reg(13);

    if protection == Protection::Hfi {
        asm.hfi_set_region(0, Region::Code(layout.code_region()));
        for (i, region) in layout.protective_data_regions().into_iter().enumerate() {
            asm.hfi_set_region(2 + i as u8, Region::Data(region));
        }
        asm.hfi_enter(SandboxConfig::hybrid().serialized());
    }

    asm.movi(arr1, layout.array1 as i64);
    asm.movi(len_ptr, layout.len_addr as i64);
    asm.movi(arr2, layout.array2 as i64);
    asm.movi(lat_ptr, layout.latencies as i64);

    // The gadget, emitted once so training and attack share branch PCs:
    // executed with idx in `idx`; leaks array2[array1[idx] * stride] when
    // idx is (speculatively) accepted.
    let gadget = asm.label();
    let gadget_end = asm.label();
    let after_gadget_ret = asm.label();
    let train_loop = asm.label();
    let flush_phase = asm.label();

    asm.jump(train_loop);

    asm.place(gadget);
    asm.load(len, MemOperand::base_disp(len_ptr, 0), 8);
    asm.branch(Cond::GeU, idx, len, gadget_end); // bounds check
    asm.load(byte, MemOperand::full(arr1, idx, 1, 0), 1);
    asm.alu_ri(
        AluOp::Shl,
        byte,
        byte,
        layout.stride.trailing_zeros() as i64,
    );
    asm.load(tmp, MemOperand::full(arr2, byte, 1, 0), 1); // transmit
    asm.place(gadget_end);
    asm.ret();

    // --- Training: 32 in-bounds runs. ---
    asm.place(train_loop);
    asm.movi(iter, 0);
    let train_top = asm.label_here("train_top");
    asm.alu_ri(AluOp::And, idx, iter, (layout.array1_len - 1) as i64);
    asm.call(gadget);
    asm.alu_ri(AluOp::Add, iter, iter, 1);
    asm.branch_i(Cond::LtU, iter, 32, train_top);
    asm.jump(flush_phase);
    asm.place(after_gadget_ret);

    // --- Flush: evict the length and all probe lines. ---
    asm.place(flush_phase);
    asm.fence();
    asm.flush(MemOperand::base_disp(len_ptr, 0));
    asm.movi(iter, 0);
    let flush_top = asm.label_here("flush_top");
    asm.flush(MemOperand::full(arr2, iter, 1, 0));
    asm.alu_ri(AluOp::Add, iter, iter, layout.stride as i64);
    asm.branch_i(Cond::LtU, iter, (256 * layout.stride) as i64, flush_top);
    asm.fence();

    // --- Attack: three out-of-bounds attempts. The first speculative
    // pass only warms the (cold) secret line itself; the second completes
    // the dependent transmit inside the speculation window — the same
    // retry structure real PoCs use. The length is re-flushed each
    // attempt to keep the branch resolving late. ---
    let attempts = Reg(14);
    asm.movi(attempts, 0);
    let attack_top = asm.label_here("attack_top");
    asm.flush(MemOperand::base_disp(len_ptr, 0));
    asm.fence();
    asm.movi(idx, layout.evil_index() as i64);
    asm.call(gadget);
    asm.fence();
    asm.alu_ri(AluOp::Add, attempts, attempts, 1);
    asm.branch_i(Cond::LtU, attempts, 3, attack_top);

    // --- Probe: time each of the 256 slots. ---
    asm.movi(iter, 0);
    let probe_top = asm.label_here("probe_top");
    asm.alu_ri(
        AluOp::Shl,
        byte,
        iter,
        layout.stride.trailing_zeros() as i64,
    );
    asm.fence();
    asm.rdtsc(t0);
    asm.load(tmp, MemOperand::full(arr2, byte, 1, 0), 1);
    asm.fence();
    asm.rdtsc(t1);
    asm.alu(AluOp::Sub, t1, t1, t0);
    asm.store(t1, MemOperand::full(lat_ptr, iter, 8, 0), 8);
    asm.alu_ri(AluOp::Add, iter, iter, 1);
    asm.branch_i(Cond::LtU, iter, 256, probe_top);

    if protection == Protection::Hfi {
        asm.hfi_exit();
    }
    asm.halt();
    asm.finish()
}

/// Runs the Spectre-PHT attack under the given protection and returns the
/// probe latencies and verdict.
pub fn run_attack(protection: Protection) -> AttackOutcome {
    run_attack_with_secret(protection, b'I')
}

/// Like [`run_attack`] with a chosen secret byte (must be non-zero: a
/// blocked HFI load forwards zero, which aliases probe slot 0).
pub fn run_attack_with_secret(protection: Protection, secret: u8) -> AttackOutcome {
    assert_ne!(secret, 0, "secret 0 aliases the blocked-load value");
    let layout = SpectreLayout::new();
    let program = build_attack(&layout, protection);
    let mut machine = Machine::new(program);

    // Plant victim data: in-bounds array1 entries read as 1 so training
    // warms only slot 1; the secret sits outside array1's region.
    for i in 0..layout.array1_len {
        machine.mem.write(layout.array1 + i, 1, 1);
    }
    machine.mem.write(layout.len_addr, layout.array1_len, 8);
    machine.mem.write(layout.secret_addr, secret as u64, 1);

    let result = machine.run(10_000_000);
    assert_eq!(
        result.stop,
        Stop::Halted,
        "attack program must run to completion"
    );

    let latencies: Vec<u64> = (0..256)
        .map(|i| machine.mem.read(layout.latencies + i * 8, 8))
        .collect();
    let warm_indices = latencies
        .iter()
        .enumerate()
        .filter(|(_, &lat)| lat < HIT_THRESHOLD)
        .map(|(i, _)| i as u8)
        .collect();
    AttackOutcome {
        latencies,
        secret,
        warm_indices,
        cycles: result.cycles,
        speculative_loads: result.stats.squashed_loads_executed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unprotected_victim_leaks_the_secret() {
        let outcome = run_attack(Protection::None);
        assert!(
            outcome.leaked(),
            "expected leak; warm={:?} lat[secret]={}",
            outcome.warm_indices,
            outcome.latencies[outcome.secret as usize]
        );
        assert!(
            outcome.speculative_loads > 0,
            "attack must execute wrong-path loads"
        );
    }

    #[test]
    fn hfi_blocks_the_leak() {
        let outcome = run_attack(Protection::Hfi);
        assert!(
            !outcome.leaked(),
            "secret must not be recoverable; warm={:?}",
            outcome.warm_indices
        );
        // The secret's probe slot must look like a miss (Fig. 7: no access
        // latency below the threshold).
        assert!(outcome.latencies[outcome.secret as usize] >= HIT_THRESHOLD);
    }

    #[test]
    fn leak_works_for_multiple_secrets() {
        for secret in [7u8, 42, 200] {
            let outcome = run_attack_with_secret(Protection::None, secret);
            assert!(outcome.leaked(), "secret {secret} not leaked");
            let blocked = run_attack_with_secret(Protection::Hfi, secret);
            assert!(!blocked.leaked(), "secret {secret} leaked despite HFI");
        }
    }
}
