//! # hfi-util — dependency-free utilities shared across the workspace
//!
//! The build must work with **no registry access** (the experiment
//! containers are offline), so anything that would normally come from a
//! small external crate is vendored here instead. Currently that is a
//! deterministic PRNG ([`Rng`]: xoshiro256++ seeded via SplitMix64),
//! used for kernel input generation, the FaaS queue simulation, and the
//! randomized property tests that used to depend on `rand`/`proptest`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rng;

pub use rng::{split_mix64, Rng};
