//! A vendored xoshiro256++ PRNG (public-domain algorithm by Blackman &
//! Vigna), seeded through SplitMix64 exactly as the reference code
//! recommends.
//!
//! This is *not* a cryptographic generator; it exists so deterministic
//! pseudo-random inputs do not require the `rand` crate. Streams are
//! stable across platforms and releases — kernel inputs, queue
//! simulations, and randomized tests all rely on that stability.

/// One step of the SplitMix64 sequence: advances `state` and returns the
/// next output. Used standalone for cheap mixing and to seed [`Rng`].
pub fn split_mix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A xoshiro256++ generator.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed (SplitMix64-expanded, per
    /// the xoshiro reference implementation).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            split_mix64(&mut sm),
            split_mix64(&mut sm),
            split_mix64(&mut sm),
            split_mix64(&mut sm),
        ];
        Self { s }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniformly distributed byte.
    pub fn next_u8(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// A uniform value in `[0, bound)`. `bound` must be non-zero.
    ///
    /// Uses Lemire's multiply-shift reduction with a rejection step, so
    /// the distribution is exactly uniform.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Rejection threshold for exact uniformity.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// A uniform signed value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range");
        lo.wrapping_add(self.below(hi.wrapping_sub(lo) as u64) as i64)
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// `len` uniformly distributed bytes.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.next_u8()).collect()
    }

    /// A uniformly chosen element of `choices`.
    ///
    /// # Panics
    ///
    /// Panics if `choices` is empty.
    pub fn pick<'a, T>(&mut self, choices: &'a [T]) -> &'a T {
        assert!(!choices.is_empty(), "pick from empty slice");
        &choices[self.below(choices.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Rng::new(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Rng::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reached");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = Rng::new(9);
        for _ in 0..1000 {
            let u = r.range_u64(100, 200);
            assert!((100..200).contains(&u));
            let i = r.range_i64(-50, 50);
            assert!((-50..50).contains(&i));
            let f = r.f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn known_reference_values() {
        // Pin the stream so kernel inputs can never silently change.
        let mut r = Rng::new(0);
        let first: Vec<u64> = (0..3).map(|_| r.next_u64()).collect();
        let again: Vec<u64> = {
            let mut r2 = Rng::new(0);
            (0..3).map(|_| r2.next_u64()).collect()
        };
        assert_eq!(first, again);
        // SplitMix64 reference: first output from seed 0.
        let mut sm = 0u64;
        assert_eq!(split_mix64(&mut sm), 0xE220_A839_7B1D_CDAF);
    }
}
