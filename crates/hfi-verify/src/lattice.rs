//! The abstract value lattice the verifier runs registers through.
//!
//! Each register holds an [`AbsVal`] summarizing everything the verifier
//! knows about its runtime value on *every* path reaching the current
//! program point. The lattice is value-range shaped — what matters for
//! sandbox safety is an upper bound on the effective-address
//! contribution — plus *provenance*: each bounded state remembers the
//! op index of the guard that established it, so a successful proof can
//! name its load-bearing instructions (the mutation harness corrupts
//! exactly those).
//!
//! Ordering (⊑, "more precise than"):
//!
//! ```text
//!        Untrusted            (anything; absorbing)
//!      /     |      \
//!  Checked Masked ResumePc    (bounded / hardware-provided)
//!      \     |
//!       Const                 (exactly one value)
//!         |
//!        Bot                  (no path reaches here with a value)
//! ```

/// Sentinel "no defining op" provenance (e.g. a bound compared as an
/// immediate rather than materialized by a `movi`).
pub const NO_DEF: u32 = u32::MAX;

/// Abstract value of one register at one program point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsVal {
    /// Unreachable: no path has defined this value (refinements that
    /// contradict a known constant also produce `Bot` — the edge is
    /// statically infeasible).
    Bot,
    /// Exactly `value`, established by op `def` ([`NO_DEF`] when merged
    /// or unknown).
    Const {
        /// The known value.
        value: u64,
        /// Defining op index (a `movi`, or a folded ALU op).
        def: u32,
    },
    /// `value & mask == value` for a contiguous mask (`2^k - 1`): the
    /// result of a mask-and guard at op `by`.
    Masked {
        /// The contiguous mask; the value is `<= mask`.
        mask: u64,
        /// Op index of the `and` that masked it.
        by: u32,
    },
    /// `value < lt`, established by a bounds-compare-and-branch guard.
    Checked {
        /// Exclusive upper bound.
        lt: u64,
        /// Op index of the branch that refined it.
        by: u32,
        /// Op index of the instruction that materialized the bound the
        /// branch compared against ([`NO_DEF`] for immediate bounds).
        bound_def: u32,
    },
    /// The hardware-written resume byte-PC (`r14` at an exit-handler
    /// entry, per the syscall-interposition contract): trusted for
    /// indirect jumps back into the sandbox, untrusted as an address.
    ResumePc,
    /// No usable bound.
    Untrusted,
}

impl AbsVal {
    /// The inclusive upper bound this state proves, if any.
    pub fn upper_bound(&self) -> Option<u64> {
        match *self {
            AbsVal::Bot => Some(0),
            AbsVal::Const { value, .. } => Some(value),
            AbsVal::Masked { mask, .. } => Some(mask),
            AbsVal::Checked { lt, .. } => Some(lt.saturating_sub(1)),
            AbsVal::ResumePc | AbsVal::Untrusted => None,
        }
    }

    /// True if this state carries *some* static bound (or is `Bot`).
    pub fn is_bounded(&self) -> bool {
        self.upper_bound().is_some()
    }

    /// The least upper bound of two states: the join used when control
    /// flow merges. Deterministic (ties keep the smaller provenance
    /// index) so the fixpoint converges to a unique answer.
    pub fn join(a: AbsVal, b: AbsVal) -> AbsVal {
        use AbsVal::*;
        match (a, b) {
            (Bot, x) | (x, Bot) => x,
            (Untrusted, _) | (_, Untrusted) => Untrusted,
            (ResumePc, ResumePc) => ResumePc,
            (ResumePc, _) | (_, ResumePc) => Untrusted,
            (Const { value: va, def: da }, Const { value: vb, def: db }) if va == vb => Const {
                value: va,
                def: da.min(db),
            },
            (Masked { mask: ma, by: ba }, Masked { mask: mb, by: bb }) if ma == mb => Masked {
                mask: ma,
                by: ba.min(bb),
            },
            (
                Checked {
                    lt: la,
                    by: ba,
                    bound_def: da,
                },
                Checked {
                    lt: lb,
                    by: bb,
                    bound_def: db,
                },
            ) if la == lb => Checked {
                lt: la,
                by: ba.min(bb),
                bound_def: da.min(db),
            },
            // Mixed bounded states: keep the weaker (larger) bound as a
            // Checked interval, crediting the guard of the weaker side
            // (that is the binding constraint after the merge).
            (x, y) => {
                let (ux, uy) = (x.upper_bound(), y.upper_bound());
                match (ux, uy) {
                    (Some(ux), Some(uy)) => {
                        let (bound, from) = if ux >= uy { (ux, x) } else { (uy, y) };
                        match bound.checked_add(1) {
                            Some(lt) => Checked {
                                lt,
                                by: from.guard_index().unwrap_or(NO_DEF),
                                bound_def: NO_DEF,
                            },
                            None => Untrusted,
                        }
                    }
                    _ => Untrusted,
                }
            }
        }
    }

    /// The op index of the guard that established a bounded state, when
    /// one did.
    pub fn guard_index(&self) -> Option<u32> {
        match *self {
            AbsVal::Const { def, .. } if def != NO_DEF => Some(def),
            AbsVal::Masked { by, .. } => Some(by),
            AbsVal::Checked { by, .. } if by != NO_DEF => Some(by),
            _ => None,
        }
    }

    /// Refines this state with the knowledge `value < lt`, as learned on
    /// a branch edge. Keeps the existing state when it is already at
    /// least as precise; contradictory constants collapse to [`Bot`]
    /// (the edge is infeasible).
    pub fn refine_lt(self, lt: u64, by: u32, bound_def: u32) -> AbsVal {
        if lt == 0 {
            // value < 0 is unsatisfiable for unsigned values.
            return AbsVal::Bot;
        }
        match self.upper_bound() {
            Some(ub) if ub < lt => match self {
                // Known constant contradicting the refinement: the edge
                // cannot be taken.
                AbsVal::Const { value, .. } if value >= lt => AbsVal::Bot,
                _ => self,
            },
            _ => match self {
                AbsVal::Const { value, .. } if value >= lt => AbsVal::Bot,
                _ => AbsVal::Checked { lt, by, bound_def },
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use AbsVal::*;

    #[test]
    fn join_is_commutative_and_absorbing() {
        let c = Const { value: 4, def: 1 };
        let m = Masked { mask: 7, by: 2 };
        assert_eq!(AbsVal::join(Bot, c), c);
        assert_eq!(AbsVal::join(c, Bot), c);
        assert_eq!(AbsVal::join(Untrusted, m), Untrusted);
        assert_eq!(AbsVal::join(ResumePc, ResumePc), ResumePc);
        assert_eq!(AbsVal::join(ResumePc, c), Untrusted);
    }

    #[test]
    fn join_of_mixed_bounds_keeps_the_weaker_bound() {
        let c = Const { value: 4, def: 1 };
        let m = Masked { mask: 7, by: 2 };
        let joined = AbsVal::join(c, m);
        assert_eq!(joined.upper_bound(), Some(7));
        let chk = Checked {
            lt: 100,
            by: 9,
            bound_def: 3,
        };
        assert_eq!(AbsVal::join(m, chk).upper_bound(), Some(99));
    }

    #[test]
    fn equal_bounds_keep_min_provenance() {
        let a = Masked { mask: 15, by: 7 };
        let b = Masked { mask: 15, by: 3 };
        assert_eq!(AbsVal::join(a, b), Masked { mask: 15, by: 3 });
    }

    #[test]
    fn refinement_tightens_or_collapses() {
        let u = Untrusted.refine_lt(64, 5, NO_DEF);
        assert_eq!(u.upper_bound(), Some(63));
        // Already-tighter states survive.
        let c = Const { value: 3, def: 1 }.refine_lt(64, 5, NO_DEF);
        assert_eq!(c, Const { value: 3, def: 1 });
        // Contradicted constants mark the edge infeasible.
        let dead = Const { value: 99, def: 1 }.refine_lt(64, 5, NO_DEF);
        assert_eq!(dead, Bot);
        assert_eq!(Untrusted.refine_lt(0, 5, NO_DEF), Bot);
    }

    #[test]
    fn overflowing_join_gives_up() {
        let top = Const {
            value: u64::MAX,
            def: 0,
        };
        let m = Masked { mask: 7, by: 2 };
        assert_eq!(AbsVal::join(top, m), Untrusted);
    }
}
