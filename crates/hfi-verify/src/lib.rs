//! Static sandbox-safety verification for HFI programs, in the
//! VeriWasm tradition of checking the *output* of a sandboxing compiler
//! rather than trusting the compiler itself.
//!
//! The HFI paper's security story rests on two legs: the hardware bounds
//! checks of `hmov` (§3), and — for the A.2 *emulation* used to measure
//! overheads on today's silicon — the claim that the emulated
//! instruction stream faithfully stands in for the real one. Both legs
//! are only as strong as the code emitter. This crate closes that gap
//! with an abstract-interpretation dataflow pass over the simulator's
//! pre-decoded [`hfi_sim::plan::DecodedProgram`]:
//!
//! 1. **Memory safety** — every plain load/store effective address is
//!    provably confined to a spec-declared data window, via a
//!    value-range lattice ([`AbsVal`]) that recognizes the three guard
//!    idioms in use: bounds-compare-and-branch, mask-and, and the
//!    hardware-checked `hmov` itself.
//! 2. **Control safety** — every static branch/jump/call target lands on
//!    a block-table entry, indirect jumps only flow the hardware resume
//!    PC, and `hfi_enter`/`hfi_exit` pair correctly on all paths (a
//!    depth-interval analysis).
//! 3. **Region metadata** — the `hfi_set_region` payloads match the
//!    [`SandboxSpec`] the producer published, under the architectural
//!    slot-kind rule re-checked from `hfi-core`.
//!
//! A successful run returns a [`Proof`] naming the guard instructions
//! the verdict rests on; [`mutate`] turns those into fault-injection
//! mutants that the test suite demands are *all* rejected — the
//! verifier is continuously shown to bite, not just to accept.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lattice;
pub mod mutate;
pub mod spec;
pub mod verify;

pub use lattice::{AbsVal, NO_DEF};
pub use mutate::{direct_mutants, emulation_mutants, Mutant, MutationClass};
pub use spec::{DataWindow, SandboxSpec};
pub use verify::{
    block_successors, verify_emulation, verify_fusion, verify_plan, verify_program, ElisionProof,
    GuardKind, GuardSite, Proof, Reason, TransitionEvidence, Violation,
};
