//! Proof-guided fault injection: does the verifier actually bite?
//!
//! A verifier that accepts everything is worse than none. This module
//! manufactures *mutants* — single-site corruptions of a program that
//! each remove or weaken exactly one safety mechanism — and the test
//! harness demands that [`crate::verify_program`] rejects every one of
//! them while still accepting the unmutated original.
//!
//! Generation is *proof-guided*: sites come from the [`Proof`] returned
//! by a successful verification, i.e. the instructions the safety
//! argument actually rests on. Corrupting a load-bearing instruction is
//! guaranteed to invalidate the proof, so a surviving mutant is always a
//! verifier bug, never an uninteresting mutant — the kill-rate criterion
//! can be a hard 100%.
//!
//! Six corruption classes (mirroring how real compiler bugs break
//! sandboxes):
//!
//! * [`MutationClass::DropGuard`] — delete one guard instruction
//!   (mask-and, bounds branch, bound constant, `hfi_enter`/`hfi_exit`,
//!   `hfi_set_region`), as if the compiler forgot to emit it.
//! * [`MutationClass::WidenMask`] — keep the guard but weaken it: double
//!   a mask, a compared bound, or an installed region's extent.
//! * [`MutationClass::UncheckMov`] — swap a hardware-checked `hmov` for
//!   a plain `mov`-class access with the same operands.
//! * [`MutationClass::RetargetBranch`] — redirect one static control
//!   transfer past the end of the block table.
//! * [`MutationClass::UnzeroedLeak`] — delete one springboard
//!   register-zeroing op, leaking trusted-caller state into the sandbox
//!   past the declared transition contract.
//! * [`MutationClass::SkippedStackSwitch`] — delete the springboard's
//!   stack-pointer install, entering the sandbox on the host stack.

use std::sync::Arc;

use hfi_core::{ExplicitDataRegion, ImplicitCodeRegion, ImplicitDataRegion, Region};
use hfi_sim::{AluOp, Inst, MemOperand, Program, EMULATION_BASE};

use crate::verify::{GuardKind, Proof};

/// The six ways a mutant corrupts its program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MutationClass {
    /// A guard instruction is deleted (replaced by `nop`).
    DropGuard,
    /// A guard stays but enforces a weaker bound.
    WidenMask,
    /// A checked `hmov` becomes an equivalent unchecked access.
    UncheckMov,
    /// A static control transfer leaves the block table.
    RetargetBranch,
    /// A springboard register-zeroing op is deleted: the register keeps
    /// its trusted-caller value past the transition contract.
    UnzeroedLeak,
    /// The springboard's stack-pointer install is deleted: the sandbox
    /// runs on the host stack.
    SkippedStackSwitch,
}

impl MutationClass {
    /// All classes, for per-class coverage assertions.
    pub const ALL: [MutationClass; 6] = [
        MutationClass::DropGuard,
        MutationClass::WidenMask,
        MutationClass::UncheckMov,
        MutationClass::RetargetBranch,
        MutationClass::UnzeroedLeak,
        MutationClass::SkippedStackSwitch,
    ];
}

impl std::fmt::Display for MutationClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            MutationClass::DropGuard => "drop-guard",
            MutationClass::WidenMask => "widen-mask",
            MutationClass::UncheckMov => "uncheck-mov",
            MutationClass::RetargetBranch => "retarget-branch",
            MutationClass::UnzeroedLeak => "unzeroed-leak",
            MutationClass::SkippedStackSwitch => "skipped-stack-switch",
        })
    }
}

/// One corrupted program, with enough metadata for a kill-matrix report.
#[derive(Debug, Clone)]
pub struct Mutant {
    /// Corruption class.
    pub class: MutationClass,
    /// Instruction index that was corrupted.
    pub site: usize,
    /// Human-readable description of the corruption.
    pub description: String,
    /// The corrupted program.
    pub program: Arc<Program>,
}

/// Cap on sites per (class, program): keeps the suite fast while leaving
/// every class represented on every family. Sites beyond the cap are
/// evenly skipped, not truncated from the front, so mutants spread over
/// the whole program.
const SITES_PER_CLASS: usize = 8;

fn spread<T: Clone>(sites: &[T]) -> Vec<T> {
    if sites.len() <= SITES_PER_CLASS {
        return sites.to_vec();
    }
    (0..SITES_PER_CLASS)
        .map(|k| sites[k * sites.len() / SITES_PER_CLASS].clone())
        .collect()
}

fn rebuild(program: &Program, site: usize, replacement: Inst) -> Arc<Program> {
    let mut insts = program.insts().to_vec();
    insts[site] = replacement;
    Arc::new(program.with_insts(insts))
}

/// Doubles a region's extent, preserving everything else. `None` when
/// the widened region is unrepresentable (alignment/size constraints).
fn widen_region(region: &Region) -> Option<Region> {
    match region {
        Region::Code(c) => ImplicitCodeRegion::new(c.base_prefix(), c.lsb_mask() * 2 + 1, c.exec())
            .ok()
            .map(Region::Code),
        Region::Data(d) => {
            ImplicitDataRegion::new(d.base_prefix(), d.lsb_mask() * 2 + 1, d.read(), d.write())
                .ok()
                .map(Region::Data)
        }
        Region::Explicit(e) => e
            .bound()
            .checked_mul(2)
            .and_then(|bound| {
                ExplicitDataRegion::new(e.base(), bound, e.read(), e.write(), e.size_class()).ok()
            })
            .map(Region::Explicit),
    }
}

/// Mutants of a directly-verified program, generated from its proof's
/// guard sites plus its static control transfers.
pub fn direct_mutants(program: &Arc<Program>, proof: &Proof) -> Vec<Mutant> {
    let mut mutants = Vec::new();

    // DropGuard: every load-bearing instruction except the checked
    // accesses themselves (removing an *access* removes the obligation
    // along with the guard — that mutant would be legitimately safe)
    // and redundantly-paired guards (a partner instruction keeps the
    // value bounded, so a single-site drop is equivalent, not unsafe).
    let droppable: Vec<usize> = proof
        .guards
        .iter()
        .filter(|g| g.kind != GuardKind::CheckedHmov && !proof.paired.contains(&g.op))
        .map(|g| g.op)
        .collect();
    for site in spread(&droppable) {
        mutants.push(Mutant {
            class: MutationClass::DropGuard,
            site,
            description: format!("nop out guard at op {site}"),
            program: rebuild(program, site, Inst::Nop),
        });
    }

    // WidenMask: weaken the bound a guard enforces, site by site.
    // Paired guards are skipped for the same reason as above: widening
    // one of two independent bounds leaves the other enforcing.
    let mut widen_sites: Vec<(usize, Inst)> = Vec::new();
    for g in &proof.guards {
        if proof.paired.contains(&g.op) {
            continue;
        }
        let widened = match (g.kind, program.inst(g.op)) {
            (
                GuardKind::MaskAnd,
                Inst::AluRI {
                    op: AluOp::And,
                    dst,
                    a,
                    imm,
                },
            ) if *imm > 0 => imm
                .checked_mul(2)
                .and_then(|m| m.checked_add(1))
                .map(|imm| Inst::AluRI {
                    op: AluOp::And,
                    dst: *dst,
                    a: *a,
                    imm,
                }),
            (GuardKind::BoundConst, Inst::MovI { dst, imm }) if *imm > 0 => {
                imm.checked_mul(2).map(|imm| Inst::MovI { dst: *dst, imm })
            }
            (
                GuardKind::BoundsBranch,
                Inst::BranchI {
                    cond,
                    a,
                    imm,
                    target,
                },
            ) if *imm > 0 => imm.checked_mul(2).map(|imm| Inst::BranchI {
                cond: *cond,
                a: *a,
                imm,
                target: *target,
            }),
            (GuardKind::SlotInstall, Inst::HfiSetRegion { slot, region }) => widen_region(region)
                .map(|region| Inst::HfiSetRegion {
                    slot: *slot,
                    region,
                }),
            _ => None,
        };
        if let Some(inst) = widened {
            widen_sites.push((g.op, inst));
        }
    }
    for (site, inst) in spread(&widen_sites) {
        mutants.push(Mutant {
            class: MutationClass::WidenMask,
            site,
            description: format!("double the bound enforced at op {site}"),
            program: rebuild(program, site, inst),
        });
    }

    // UncheckMov: hardware-checked hmov -> plain absolute access with
    // identical operands (the region base silently dropped).
    let mut uncheck_sites: Vec<(usize, Inst)> = Vec::new();
    for g in &proof.guards {
        if g.kind != GuardKind::CheckedHmov {
            continue;
        }
        let unchecked = match program.inst(g.op) {
            Inst::HmovLoad { dst, mem, size, .. } => Some(Inst::Load {
                dst: *dst,
                mem: MemOperand {
                    base: None,
                    index: mem.index,
                    scale: mem.scale,
                    disp: mem.disp,
                },
                size: *size,
            }),
            Inst::HmovStore { src, mem, size, .. } => Some(Inst::Store {
                src: *src,
                mem: MemOperand {
                    base: None,
                    index: mem.index,
                    scale: mem.scale,
                    disp: mem.disp,
                },
                size: *size,
            }),
            _ => None,
        };
        if let Some(inst) = unchecked {
            uncheck_sites.push((g.op, inst));
        }
    }
    for (site, inst) in spread(&uncheck_sites) {
        mutants.push(Mutant {
            class: MutationClass::UncheckMov,
            site,
            description: format!("replace checked hmov at op {site} with unchecked access"),
            program: rebuild(program, site, inst),
        });
    }

    // UnzeroedLeak / SkippedStackSwitch: delete one instruction the
    // transition evidence names as establishing the springboard contract.
    // `with_insts` preserves the program's declared contract, so the
    // re-verification must notice the register is no longer in its
    // promised entry state.
    let mut zero_sites: Vec<usize> = Vec::new();
    let mut stack_sites: Vec<usize> = Vec::new();
    for ev in &proof.transitions {
        for &(_, def) in &ev.zeroing {
            if !zero_sites.contains(&(def as usize)) {
                zero_sites.push(def as usize);
            }
        }
        if let Some((_, def)) = ev.stack_switch {
            if !stack_sites.contains(&(def as usize)) {
                stack_sites.push(def as usize);
            }
        }
    }
    for site in spread(&zero_sites) {
        mutants.push(Mutant {
            class: MutationClass::UnzeroedLeak,
            site,
            description: format!("skip springboard zeroing at op {site}"),
            program: rebuild(program, site, Inst::Nop),
        });
    }
    for site in spread(&stack_sites) {
        mutants.push(Mutant {
            class: MutationClass::SkippedStackSwitch,
            site,
            description: format!("skip springboard stack switch at op {site}"),
            program: rebuild(program, site, Inst::Nop),
        });
    }

    mutants.extend(retarget_mutants(program));
    mutants
}

/// RetargetBranch mutants: shared between direct and emulation families
/// (a static target past the block table is ill-formed either way).
fn retarget_mutants(program: &Program) -> Vec<Mutant> {
    let past_end = program.len();
    let sites: Vec<(usize, Inst)> = program
        .insts()
        .iter()
        .enumerate()
        .filter_map(|(i, inst)| {
            let retargeted = match inst {
                Inst::Branch { cond, a, b, .. } => Some(Inst::Branch {
                    cond: *cond,
                    a: *a,
                    b: *b,
                    target: past_end,
                }),
                Inst::BranchI { cond, a, imm, .. } => Some(Inst::BranchI {
                    cond: *cond,
                    a: *a,
                    imm: *imm,
                    target: past_end,
                }),
                Inst::Jump { .. } => Some(Inst::Jump { target: past_end }),
                Inst::Call { .. } => Some(Inst::Call { target: past_end }),
                _ => None,
            };
            retargeted.map(|inst| (i, inst))
        })
        .collect();
    spread(&sites)
        .into_iter()
        .map(|(site, inst)| Mutant {
            class: MutationClass::RetargetBranch,
            site,
            description: format!("retarget control at op {site} past the block table"),
            program: rebuild(program, site, inst),
        })
        .collect()
}

/// Mutants of an *emulated* stream, to be checked with
/// [`crate::verify_emulation`] against the unmutated original: each one
/// perturbs the transform in a way the instruction-for-instruction
/// correspondence must notice.
pub fn emulation_mutants(emulated: &Program) -> Vec<Mutant> {
    let mut mutants = Vec::new();

    // DropGuard: delete an emulated serialization point (cpuid standing
    // in for enter/exit).
    let cpuids: Vec<usize> = emulated
        .insts()
        .iter()
        .enumerate()
        .filter_map(|(i, inst)| matches!(inst, Inst::Cpuid).then_some(i))
        .collect();
    for site in spread(&cpuids) {
        mutants.push(Mutant {
            class: MutationClass::DropGuard,
            site,
            description: format!("drop emulated serialization at op {site}"),
            program: rebuild(emulated, site, Inst::Nop),
        });
    }

    // The emulated hmovs: absolute accesses at EMULATION_BASE.
    let emulated_hmovs: Vec<(usize, MemOperand, hfi_sim::Reg, u8, bool)> = emulated
        .insts()
        .iter()
        .enumerate()
        .filter_map(|(i, inst)| match inst {
            Inst::Load { dst, mem, size }
                if mem.base.is_none() && mem.disp >= EMULATION_BASE as i64 =>
            {
                Some((i, *mem, *dst, *size, true))
            }
            Inst::Store { src, mem, size }
                if mem.base.is_none() && mem.disp >= EMULATION_BASE as i64 =>
            {
                Some((i, *mem, *src, *size, false))
            }
            _ => None,
        })
        .collect();

    // WidenMask: nudge the mirrored displacement outward (the transform
    // must keep disp == original + EMULATION_BASE exactly).
    for &(site, mem, reg, size, is_load) in &spread(&emulated_hmovs) {
        let mem = MemOperand {
            disp: mem.disp + (1 << 20),
            ..mem
        };
        mutants.push(Mutant {
            class: MutationClass::WidenMask,
            site,
            description: format!("shift emulated hmov at op {site} outside the mirror"),
            program: rebuild(emulated, site, rebuild_access(reg, mem, size, is_load)),
        });
    }

    // UncheckMov: strip the mirror base entirely — the access reads the
    // region-relative offset as an absolute address.
    for &(site, mem, reg, size, is_load) in &spread(&emulated_hmovs) {
        let mem = MemOperand {
            disp: mem.disp - EMULATION_BASE as i64,
            ..mem
        };
        mutants.push(Mutant {
            class: MutationClass::UncheckMov,
            site,
            description: format!("strip the mirror base from emulated hmov at op {site}"),
            program: rebuild(emulated, site, rebuild_access(reg, mem, size, is_load)),
        });
    }

    mutants.extend(retarget_mutants(emulated));
    mutants
}

fn rebuild_access(reg: hfi_sim::Reg, mem: MemOperand, size: u8, is_load: bool) -> Inst {
    if is_load {
        Inst::Load {
            dst: reg,
            mem,
            size,
        }
    } else {
        Inst::Store {
            src: reg,
            mem,
            size,
        }
    }
}
