//! What a verified program is *allowed* to do: the sandbox specification.
//!
//! A [`SandboxSpec`] is the verifier's ground truth, stated independently
//! of the compiler that emitted the program: which data windows plain
//! loads/stores may touch, which region registers must be installed with
//! which [`Region`] metadata before `hfi_enter`, whether the program must
//! leave the sandbox before halting, and which registers a syscall may
//! clobber. Producers of sandboxed code (the `hfi-wasm` compiler, the
//! `hfi-native` workloads) publish their spec next to their output so the
//! checker never has to trust the emitter.

use hfi_core::{slot_accepts, Region, TransitionContract};

/// One contiguous address window plain (non-`hmov`) loads and stores are
/// allowed to touch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataWindow {
    /// Human-readable name ("heap", "spill", "mirror") for reports.
    pub name: &'static str,
    /// First byte of the window.
    pub base: u64,
    /// Window length in bytes.
    pub len: u64,
}

impl DataWindow {
    /// True if the `size`-byte access spanning `[lo, hi]` (inclusive
    /// effective-address interval of its first byte) provably stays
    /// inside the window.
    pub fn covers(&self, lo: i128, hi: i128, size: u8) -> bool {
        let base = self.base as i128;
        let end = base + self.len as i128;
        lo >= base && hi + size as i128 <= end
    }
}

/// The safety contract one family of emitted programs must satisfy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SandboxSpec {
    /// Name of the program family ("wasm-hfi", "wasm-bounds", …).
    pub name: &'static str,
    /// Windows plain loads/stores must provably stay inside.
    pub windows: Vec<DataWindow>,
    /// Region registers the program must install — with exactly this
    /// metadata — before every `hfi_enter`.
    pub slots: Vec<(u8, Region)>,
    /// Whether every `halt` must be reached at sandbox depth zero (i.e.
    /// `hfi_enter`/`hfi_exit` must pair on all halting paths).
    pub require_exit_before_halt: bool,
    /// Whether an `hfi_enter` must be reachable at all. Without this, a
    /// program that simply never enters its sandbox would pass every
    /// per-path check while providing no isolation whatsoever.
    pub require_enter: bool,
    /// Whether every reachable `syscall` outside an exit handler must
    /// execute at sandbox depth >= 1, so the hardware redirects it to the
    /// handler (the syscall-interposition families).
    pub interpose_syscalls: bool,
    /// Registers a `syscall` may overwrite (the OS-model return register
    /// plus any registers an exit handler clobbers).
    pub syscall_clobbers: Vec<u8>,
    /// The springboard entry contract the program must *statically*
    /// establish at every reachable `hfi_enter`: each contract-zeroed
    /// register provably holds constant 0 and the switched stack pointer
    /// provably holds its declared top-of-stack. The proof records the
    /// defining instructions as [`crate::TransitionEvidence`].
    pub transition_contract: Option<TransitionContract>,
    /// Whether the program must *prove* the springboard tax elidable
    /// (the zero-cost transition schemes): every register in
    /// [`elision_regs`](Self::elision_regs) is dead into the sandbox
    /// (never read before written after `hfi_enter`) and no guard-state
    /// mutation (`hfi_set_region`/clear) or syscall runs inside it.
    pub require_elision_proof: bool,
    /// Registers that must be provably dead at `hfi_enter` for the
    /// elision proof (the set a springboard would otherwise zero, plus
    /// the stack pointer it would otherwise switch).
    pub elision_regs: u16,
}

impl SandboxSpec {
    /// A spec with no windows, no slots, default syscall clobbers
    /// (`r0`, the OS return register, and `r14`, the resume-PC register
    /// of redirected syscalls), and no exit-before-halt obligation.
    pub fn new(name: &'static str) -> Self {
        Self {
            name,
            windows: Vec::new(),
            slots: Vec::new(),
            require_exit_before_halt: false,
            require_enter: false,
            interpose_syscalls: false,
            syscall_clobbers: vec![0, 14],
            transition_contract: None,
            require_elision_proof: false,
            elision_regs: 0,
        }
    }

    /// Adds a data window.
    pub fn window(mut self, name: &'static str, base: u64, len: u64) -> Self {
        self.windows.push(DataWindow { name, base, len });
        self
    }

    /// Requires `slot` to be installed with exactly `region` before every
    /// `hfi_enter`.
    pub fn slot(mut self, slot: u8, region: Region) -> Self {
        self.slots.push((slot, region));
        self
    }

    /// Requires `hfi_exit` before every `halt`.
    pub fn require_exit(mut self) -> Self {
        self.require_exit_before_halt = true;
        self
    }

    /// Requires a reachable `hfi_enter`.
    pub fn require_enter(mut self) -> Self {
        self.require_enter = true;
        self
    }

    /// Requires every non-handler `syscall` to run inside the sandbox
    /// (where the hardware redirects it to the exit handler).
    pub fn interposed(mut self) -> Self {
        self.interpose_syscalls = true;
        self
    }

    /// Replaces the syscall clobber set.
    pub fn clobbers(mut self, regs: &[u8]) -> Self {
        self.syscall_clobbers = regs.to_vec();
        self
    }

    /// Requires the springboard entry contract to hold statically at
    /// every reachable `hfi_enter`.
    pub fn transition_contract(mut self, contract: TransitionContract) -> Self {
        self.transition_contract = Some(contract);
        self
    }

    /// Requires an elision proof: every register in `regs` (a bit mask)
    /// dead into the sandbox and no in-sandbox guard-state mutation.
    pub fn require_elision(mut self, regs: u16) -> Self {
        self.require_elision_proof = true;
        self.elision_regs = regs;
        self
    }

    /// The region metadata this spec requires in `slot`, if declared.
    pub fn region_for_slot(&self, slot: u8) -> Option<&Region> {
        self.slots.iter().find(|(s, _)| *s == slot).map(|(_, r)| r)
    }

    /// Structural self-check: every declared slot must accept its region
    /// kind under the architectural slot-kind rule, and every window and
    /// clobber must be well-formed. Returns a description of the first
    /// problem.
    pub fn validate(&self) -> Result<(), String> {
        for (slot, region) in &self.slots {
            slot_accepts(*slot as usize, region).map_err(|e| format!("slot {slot}: {e}"))?;
        }
        for w in &self.windows {
            if w.len == 0 {
                return Err(format!("window {}: empty", w.name));
            }
            if w.base.checked_add(w.len).is_none() {
                return Err(format!("window {}: wraps the address space", w.name));
            }
        }
        for r in &self.syscall_clobbers {
            if *r >= 16 {
                return Err(format!("syscall clobber r{r} out of range"));
            }
        }
        if let Some(contract) = &self.transition_contract {
            if let Some(sw) = &contract.stack {
                if sw.reg >= 16 || sw.save >= 16 {
                    return Err(format!(
                        "transition contract stack registers r{}/r{} out of range",
                        sw.reg, sw.save
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfi_core::{ExplicitDataRegion, ImplicitCodeRegion};

    #[test]
    fn window_coverage_is_end_exclusive() {
        let w = DataWindow {
            name: "heap",
            base: 0x1000,
            len: 0x100,
        };
        assert!(w.covers(0x1000, 0x1000, 1));
        assert!(w.covers(0x1000, 0x10F8, 8));
        assert!(!w.covers(0x1000, 0x10F9, 8));
        assert!(!w.covers(0xFFF, 0xFFF, 1));
    }

    #[test]
    fn validate_applies_the_slot_kind_rule() {
        let heap =
            Region::Explicit(ExplicitDataRegion::large(0x1000_0000, 1 << 20, true, true).unwrap());
        let code = Region::Code(ImplicitCodeRegion::new(0x40_0000, 0xFFFF, true).unwrap());
        assert!(SandboxSpec::new("ok")
            .slot(6, heap)
            .slot(0, code)
            .validate()
            .is_ok());
        assert!(SandboxSpec::new("bad").slot(2, heap).validate().is_err());
        assert!(SandboxSpec::new("bad")
            .window("w", u64::MAX, 2)
            .validate()
            .is_err());
        assert!(SandboxSpec::new("bad").clobbers(&[16]).validate().is_err());
    }
}
